//! The Network Name Service (§5, "NETWORKS").
//!
//! Conceptually two tables, exactly as in the paper:
//!
//! ```text
//! SiteTable: SiteName → SiteId × IpAddress
//! IdTable:   SiteName × IdName → HeapId
//! ```
//!
//! (Our `IdTable` stores the full network reference — heap id, site id,
//! node — because that is what the paper composes out of the two tables
//! when answering a lookup.)
//!
//! The service is a pure state machine driven by [`Packet`]s, so it can be
//! hosted by any node's daemon, replicated (see [`crate::failure`]) and
//! unit-tested in isolation. Lookups for identifiers not yet exported are
//! parked and answered when the export arrives — this is what makes
//! `import` block until the corresponding `export` executes.

use std::collections::HashMap;
use tyco_vm::codec::Packet;
use tyco_vm::program::ImportKind;
use tyco_vm::wire::WireWord;
use tyco_vm::word::{Identity, SiteId};

/// The name-service state.
#[derive(Debug, Default, Clone)]
pub struct NameService {
    /// `SiteTable`: site lexeme → (site id, node).
    site_table: HashMap<String, Identity>,
    /// `IdTable`: (site lexeme, identifier) → exported value.
    id_table: HashMap<(String, String), WireWord>,
    /// Lookups waiting for an export: (req, site, name, kind, reply_to).
    pending: Vec<(u64, String, String, ImportKind, Identity)>,
}

/// Kind-check an exported value against the requested import kind.
fn kind_ok(kind: ImportKind, w: &WireWord) -> bool {
    matches!(
        (kind, w),
        (ImportKind::Name, WireWord::Chan(_)) | (ImportKind::Class, WireWord::Class(_))
    )
}

impl NameService {
    pub fn new() -> NameService {
        NameService::default()
    }

    /// Register a site (done by the environment when the site is created;
    /// the paper: "site names are registered in a Network Name Service").
    pub fn register_site(&mut self, lexeme: &str, identity: Identity) {
        self.site_table.insert(lexeme.to_string(), identity);
    }

    /// Where a site lives.
    pub fn lookup_site(&self, lexeme: &str) -> Option<Identity> {
        self.site_table.get(lexeme).copied()
    }

    /// Number of exported identifiers (diagnostics).
    pub fn exported_count(&self) -> usize {
        self.id_table.len()
    }

    /// Pending (blocked) lookups.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Handle an `export` registration. Returns reply packets for every
    /// parked lookup this export satisfies.
    pub fn handle_register(
        &mut self,
        _from_site: SiteId,
        site_lexeme: &str,
        name: &str,
        value: WireWord,
    ) -> Vec<Packet> {
        self.id_table
            .insert((site_lexeme.to_string(), name.to_string()), value.clone());
        let mut replies = Vec::new();
        let mut keep = Vec::new();
        for (req, s, n, kind, reply_to) in self.pending.drain(..) {
            if s == site_lexeme && n == name {
                let result = if kind_ok(kind, &value) {
                    Ok(value.clone())
                } else {
                    Err(format!("`{s}.{n}` exported with the wrong kind"))
                };
                replies.push(Packet::NsImportReply {
                    to: reply_to,
                    req,
                    result,
                });
            } else {
                keep.push((req, s, n, kind, reply_to));
            }
        }
        self.pending = keep;
        replies
    }

    /// Handle an `import` lookup. Returns the reply packet when the
    /// identifier is known (or known-bad); parks the request otherwise.
    pub fn handle_import(
        &mut self,
        req: u64,
        site: &str,
        name: &str,
        kind: ImportKind,
        reply_to: Identity,
    ) -> Option<Packet> {
        // Unknown site lexeme is a permanent error (sites are registered
        // at creation, before any program runs).
        if !self.site_table.contains_key(site) {
            return Some(Packet::NsImportReply {
                to: reply_to,
                req,
                result: Err(format!("unknown site `{site}`")),
            });
        }
        match self.id_table.get(&(site.to_string(), name.to_string())) {
            Some(w) => {
                let result = if kind_ok(kind, w) {
                    Ok(w.clone())
                } else {
                    Err(format!("`{site}.{name}` has the wrong kind"))
                };
                Some(Packet::NsImportReply {
                    to: reply_to,
                    req,
                    result,
                })
            }
            None => {
                self.pending
                    .push((req, site.to_string(), name.to_string(), kind, reply_to));
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyco_vm::word::{NetRef, NodeId};

    fn ident(s: u32, n: u32) -> Identity {
        Identity {
            site: SiteId(s),
            node: NodeId(n),
        }
    }

    fn chan(h: u64) -> WireWord {
        WireWord::Chan(NetRef {
            heap_id: h,
            site: SiteId(0),
            node: NodeId(0),
        })
    }

    #[test]
    fn lookup_after_register() {
        let mut ns = NameService::new();
        ns.register_site("server", ident(0, 0));
        assert!(ns
            .handle_register(SiteId(0), "server", "p", chan(7))
            .is_empty());
        let reply = ns
            .handle_import(1, "server", "p", ImportKind::Name, ident(1, 1))
            .unwrap();
        match reply {
            Packet::NsImportReply {
                req: 1,
                result: Ok(WireWord::Chan(r)),
                ..
            } => {
                assert_eq!(r.heap_id, 7);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lookup_blocks_until_register() {
        let mut ns = NameService::new();
        ns.register_site("server", ident(0, 0));
        assert!(ns
            .handle_import(1, "server", "p", ImportKind::Name, ident(1, 1))
            .is_none());
        assert_eq!(ns.pending_count(), 1);
        let replies = ns.handle_register(SiteId(0), "server", "p", chan(3));
        assert_eq!(replies.len(), 1);
        assert_eq!(ns.pending_count(), 0);
        match &replies[0] {
            Packet::NsImportReply {
                req: 1,
                result: Ok(_),
                to,
            } => {
                assert_eq!(*to, ident(1, 1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_site_is_permanent_error() {
        let mut ns = NameService::new();
        let reply = ns
            .handle_import(1, "mars", "p", ImportKind::Name, ident(1, 1))
            .unwrap();
        assert!(matches!(
            reply,
            Packet::NsImportReply { result: Err(_), .. }
        ));
    }

    #[test]
    fn kind_mismatch_is_error() {
        let mut ns = NameService::new();
        ns.register_site("server", ident(0, 0));
        ns.handle_register(SiteId(0), "server", "p", chan(0));
        let reply = ns
            .handle_import(1, "server", "p", ImportKind::Class, ident(1, 1))
            .unwrap();
        assert!(matches!(
            reply,
            Packet::NsImportReply { result: Err(_), .. }
        ));
        // And the parked-then-registered path checks kinds too.
        assert!(ns
            .handle_import(2, "server", "k", ImportKind::Class, ident(1, 1))
            .is_none());
        let replies = ns.handle_register(SiteId(0), "server", "k", chan(1));
        assert!(matches!(
            &replies[0],
            Packet::NsImportReply { result: Err(_), .. }
        ));
    }

    #[test]
    fn multiple_waiters_all_answered() {
        let mut ns = NameService::new();
        ns.register_site("s", ident(0, 0));
        for req in 0..5 {
            assert!(ns
                .handle_import(req, "s", "x", ImportKind::Name, ident(req as u32, 0))
                .is_none());
        }
        let replies = ns.handle_register(SiteId(0), "s", "x", chan(9));
        assert_eq!(replies.len(), 5);
    }
}
