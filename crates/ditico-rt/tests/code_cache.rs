//! The content-addressed code cache, end to end: wire-level dedup of
//! repeat shipments, single-flight coalescing of concurrent fetches,
//! tamper detection at the fingerprint boundary, the `NeedCode`/`HaveCode`
//! refill round trip, and the capacity bound — exercised both through
//! whole clusters and by driving a daemon directly over the fabric.

use bytes::Bytes;
use crossbeam::channel::unbounded;
use ditico_rt::daemon::TermCounters;
use ditico_rt::{Cluster, Daemon, Fabric, FabricMode, LinkProfile, RtIncoming, RunLimits};
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;
use tyco_vm::codec::{self, Packet};
use tyco_vm::port::Incoming;
use tyco_vm::word::{NetRef, NodeId, SiteId};
use tyco_vm::{Digest, WireObj};

/// Server that ships an object (`Shipped`) to the requesting site, then
/// signals completion on a caller-provided channel — so a client can
/// sequence a *second* request causally after the first shipment landed.
const SHIP_SERVER: &str = r#"
    def Shipped(p, d) = p?(v) = (println("shipped", v) | d![])
    in def Srv(c) = c?{ applet(p, d) = (Shipped[p, d] | Srv[c]) }
    in export new s in Srv[s]
"#;

/// Requests the same object twice, strictly one after the other.
const SHIP_TWICE_CLIENT: &str = r#"
    import s from server in
    new d1 (new p (s!applet[p, d1] | p![1]) |
    d1?() = new d2 (new q (s!applet[q, d2] | q![2]) |
    d2?() = println("done")))
"#;

fn ship_twice_cluster() -> Cluster {
    let mut c = Cluster::new(FabricMode::Virtual, LinkProfile::fast_ethernet(), 1);
    let n0 = c.add_node();
    let n1 = c.add_node();
    c.add_site_src(n0, "server", SHIP_SERVER).unwrap();
    c.add_site_src(n1, "client", SHIP_TWICE_CLIENT).unwrap();
    c
}

#[test]
fn repeat_shipment_to_the_same_node_goes_digest_only() {
    let mut c = ship_twice_cluster();
    let report = c.run_deterministic(RunLimits::default());
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(
        report.output("client"),
        ["shipped 1", "shipped 2", "done"].map(String::from)
    );
    let cache = report.cache_totals();
    assert_eq!(cache.dedup_sends, 1, "second shipment is digest-only");
    assert_eq!(cache.hits, 1, "receiver rehydrates it from its store");
    assert!(
        cache.bytes_saved > Digest::SIZE as u64,
        "saved more than a digest: {}",
        cache.bytes_saved
    );
    assert_eq!(cache.misses, 0, "no refill round trip was needed");
    assert_eq!(cache.digest_mismatches, 0);
}

#[test]
fn disabling_the_cache_restores_full_shipments() {
    let mut c = ship_twice_cluster();
    c.set_code_cache(0);
    let report = c.run_deterministic(RunLimits::default());
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(
        report.output("client"),
        ["shipped 1", "shipped 2", "done"].map(String::from)
    );
    let cache = report.cache_totals();
    assert_eq!(cache.dedup_sends, 0);
    assert_eq!(cache.hits, 0);
    assert_eq!(cache.insertions, 0);
}

#[test]
fn concurrent_fetches_of_one_class_are_coalesced() {
    // Two sites on the same node race to fetch the same remote class; the
    // node's daemon must put exactly one FetchReq on the wire and fan the
    // reply out to both.
    let mut c = Cluster::new(FabricMode::Virtual, LinkProfile::fast_ethernet(), 1);
    let n0 = c.add_node();
    let n1 = c.add_node();
    c.add_site_src(
        n0,
        "server",
        r#"export def Applet(v) = println("applet", v) in 0"#,
    )
    .unwrap();
    c.add_site_src(n1, "a", "import Applet from server in Applet[1]")
        .unwrap();
    c.add_site_src(n1, "b", "import Applet from server in Applet[2]")
        .unwrap();
    let report = c.run_deterministic(RunLimits::default());
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(report.output("a"), ["applet 1".to_string()]);
    assert_eq!(report.output("b"), ["applet 2".to_string()]);
    let cache = report.cache_totals();
    assert_eq!(cache.coalesced, 1, "one of the two fetches was folded");
    assert_eq!(
        report.stats["server"].fetches_served, 1,
        "the server saw a single FetchReq"
    );
    assert_eq!(
        report.stats["a"].fetches + report.stats["b"].fetches,
        2,
        "both sites issued a fetch"
    );
    assert!(report.quiescent, "fan-out kept the packet balance");
}

#[test]
fn sequential_fetches_from_one_node_get_a_digest_only_reply() {
    // Site `a` fetches, then kicks `b` (over an exported channel), which
    // fetches the same class: the second FetchReply to node 1 must ship
    // digest-only and rehydrate from the node's store.
    let mut c = Cluster::new(FabricMode::Virtual, LinkProfile::fast_ethernet(), 1);
    let n0 = c.add_node();
    let n1 = c.add_node();
    c.add_site_src(
        n0,
        "server",
        r#"export def Applet(v) = println("applet", v) in 0"#,
    )
    .unwrap();
    c.add_site_src(
        n1,
        "a",
        "import Applet from server in (Applet[1] | import kick from b in kick![])",
    )
    .unwrap();
    c.add_site_src(
        n1,
        "b",
        "export new kick in kick?() = import Applet from server in Applet[2]",
    )
    .unwrap();
    let report = c.run_deterministic(RunLimits::default());
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(report.output("a"), ["applet 1".to_string()]);
    assert_eq!(report.output("b"), ["applet 2".to_string()]);
    let cache = report.cache_totals();
    assert_eq!(cache.coalesced, 0, "fetches were sequential, not folded");
    assert_eq!(cache.dedup_sends, 1, "second reply went digest-only");
    assert_eq!(cache.hits, 1);
    assert_eq!(report.stats["server"].fetches_served, 2);
}

// -- daemon-level: fingerprint boundary and the refill protocol --------------

/// A daemon on node 0 wired to a real (ideal) fabric, plus the receiver
/// end of node 1 so the test can observe what the daemon sends back.
struct Rig {
    fabric: Fabric,
    daemon: Daemon,
    peer_rx: crossbeam::channel::Receiver<(NodeId, Bytes)>,
    site_rx: crossbeam::channel::Receiver<RtIncoming>,
}

fn rig() -> Rig {
    let fabric = Fabric::new(FabricMode::Ideal, LinkProfile::ideal());
    let daemon_rx = fabric.register_node(NodeId(0));
    let peer_rx = fabric.register_node(NodeId(1));
    let (_out_tx, out_rx) = unbounded();
    let mut daemon = Daemon::new(
        NodeId(0),
        out_rx,
        daemon_rx,
        fabric.handle(),
        vec![NodeId(0)],
        Arc::new(AtomicUsize::new(0)),
        false,
        Arc::new(TermCounters::default()),
    );
    let (site_tx, site_rx) = unbounded();
    daemon.attach_site(
        SiteId(0),
        site_tx,
        ditico_rt::sched::SiteWake::Notify(Arc::new(ditico_rt::Notify::new())),
    );
    Rig {
        fabric,
        daemon,
        peer_rx,
        site_rx,
    }
}

/// A small verified image with its digest, shaped like a SHIPO payload.
fn shipped_obj() -> (Digest, WireObj) {
    let prog = tyco_vm::compile(&tyco_syntax::parse_core("new x x?{ go(n) = print(n) }").unwrap())
        .unwrap();
    let packed = tyco_vm::pack(&prog, &[0]);
    (
        packed.digest,
        WireObj {
            code: packed.code,
            table: 0,
            captured: vec![],
        },
    )
}

fn dest() -> NetRef {
    NetRef {
        heap_id: 1,
        site: SiteId(0),
        node: NodeId(0),
    }
}

fn inject(rig: &Rig, p: &Packet) {
    rig.fabric
        .handle()
        .send(NodeId(1), NodeId(0), codec::encode(p));
}

#[test]
fn tampered_image_is_rejected_and_counted() {
    let mut r = rig();
    let (digest, obj) = shipped_obj();
    inject(
        &r,
        &Packet::Obj {
            dest: dest(),
            digest: Digest(digest.0 ^ 1), // bytes no longer hash to this
            obj: obj.clone(),
        },
    );
    r.daemon.pump();
    assert_eq!(r.daemon.stats.cache.digest_mismatches, 1);
    assert_eq!(r.daemon.stats.rejected, 1);
    assert_eq!(r.daemon.code_cache_len(), 0, "tampered code is not cached");
    assert!(r.site_rx.try_recv().is_err(), "nothing was delivered");

    // The honest shipment is admitted, cached and delivered.
    inject(
        &r,
        &Packet::Obj {
            dest: dest(),
            digest,
            obj,
        },
    );
    r.daemon.pump();
    assert_eq!(r.daemon.stats.cache.digest_mismatches, 1);
    assert_eq!(r.daemon.code_cache_len(), 1);
    assert!(matches!(
        r.site_rx.try_recv(),
        Ok(RtIncoming::Vm(Incoming::Obj { .. }))
    ));
}

#[test]
fn missing_digest_negotiates_a_refill_then_delivers() {
    let mut r = rig();
    let (digest, obj) = shipped_obj();
    // A digest-only packet for an image this node never saw.
    inject(
        &r,
        &Packet::ObjRef {
            dest: dest(),
            digest,
            table: 0,
            captured: vec![],
        },
    );
    r.daemon.pump();
    assert_eq!(r.daemon.stats.cache.misses, 1);
    assert!(r.site_rx.try_recv().is_err(), "parked, not delivered");
    // The daemon asked the sender for the bytes.
    let (_, bytes) = r.peer_rx.try_recv().expect("a NeedCode went out");
    match codec::decode(bytes).unwrap() {
        Packet::NeedCode { from, digest: d } => {
            assert_eq!(from, NodeId(0));
            assert_eq!(d, digest);
        }
        other => panic!("expected NeedCode, got {other:?}"),
    }
    // Refill: the parked packet is rehydrated and delivered.
    inject(
        &r,
        &Packet::HaveCode {
            to: NodeId(0),
            digest,
            code: obj.code.clone(),
        },
    );
    r.daemon.pump();
    assert_eq!(r.daemon.stats.cache.hits, 1);
    assert_eq!(r.daemon.code_cache_len(), 1);
    assert!(matches!(
        r.site_rx.try_recv(),
        Ok(RtIncoming::Vm(Incoming::Obj { .. }))
    ));
}

#[test]
fn capacity_bound_is_honored_with_eviction() {
    let mut r = rig();
    r.daemon.set_code_cache(1);
    let (d1, o1) = shipped_obj();
    let prog2 = tyco_vm::compile(
        &tyco_syntax::parse_core(r#"new y y?{ put(a, b) = println("two", a, b) }"#).unwrap(),
    )
    .unwrap();
    let packed2 = tyco_vm::pack(&prog2, &[0]);
    let (d2, o2) = (
        packed2.digest,
        WireObj {
            code: packed2.code,
            table: 0,
            captured: vec![],
        },
    );
    assert_ne!(d1, d2);
    inject(
        &r,
        &Packet::Obj {
            dest: dest(),
            digest: d1,
            obj: o1,
        },
    );
    inject(
        &r,
        &Packet::Obj {
            dest: dest(),
            digest: d2,
            obj: o2,
        },
    );
    r.daemon.pump();
    assert_eq!(r.daemon.code_cache_len(), 1, "capacity 1 holds one image");
    assert_eq!(r.daemon.stats.cache.insertions, 2);
    assert_eq!(r.daemon.stats.cache.evictions, 1);
}

// -- refill retries and the restart hole -------------------------------------

use ditico_rt::daemon::{REFILL_MAX_ASKS, REFILL_RETRY_TICKS};
use ditico_rt::{ChaosEvent, ChaosPlan, ChaosSpec};

/// Drain every frame the rig's peer has received, decoded.
fn drain_peer(r: &Rig) -> Vec<Packet> {
    let mut out = Vec::new();
    while let Ok((_, bytes)) = r.peer_rx.try_recv() {
        out.push(codec::decode(bytes).unwrap());
    }
    out
}

#[test]
fn lost_refill_is_retried_on_idle_ticks() {
    let mut r = rig();
    let (digest, obj) = shipped_obj();
    inject(
        &r,
        &Packet::ObjRef {
            dest: dest(),
            digest,
            table: 0,
            captured: vec![],
        },
    );
    r.daemon.pump();
    assert_eq!(drain_peer(&r).len(), 1, "first NeedCode goes out eagerly");
    // The answer is lost. The old protocol never asked again; the retry
    // clock must re-ask after REFILL_RETRY_TICKS idle ticks — not before.
    for _ in 0..REFILL_RETRY_TICKS - 1 {
        r.daemon.tick_refills();
    }
    assert!(drain_peer(&r).is_empty(), "no premature re-ask");
    assert!(r.daemon.tick_refills(), "the retry fires on tick N");
    let resent = drain_peer(&r);
    assert_eq!(resent.len(), 1);
    assert!(matches!(resent[0], Packet::NeedCode { .. }));
    // The second ask is answered; the parked packet is delivered.
    inject(
        &r,
        &Packet::HaveCode {
            to: NodeId(0),
            digest,
            code: obj.code.clone(),
        },
    );
    r.daemon.pump();
    assert!(!r.daemon.has_pending_refills());
    assert!(matches!(
        r.site_rx.try_recv(),
        Ok(RtIncoming::Vm(Incoming::Obj { .. }))
    ));
}

#[test]
fn refill_gives_up_after_bounded_asks_and_compensates() {
    let mut r = rig();
    let (digest, _) = shipped_obj();
    inject(
        &r,
        &Packet::ObjRef {
            dest: dest(),
            digest,
            table: 0,
            captured: vec![],
        },
    );
    r.daemon.pump();
    drain_peer(&r);
    // Nobody ever answers. After REFILL_MAX_ASKS fruitless asks the
    // parked packet must be rejected, not parked forever.
    let mut reasks = 0;
    for _ in 0..REFILL_MAX_ASKS * REFILL_RETRY_TICKS + REFILL_RETRY_TICKS {
        r.daemon.tick_refills();
        reasks += drain_peer(&r).len();
        if !r.daemon.has_pending_refills() {
            break;
        }
    }
    assert_eq!(
        reasks as u32,
        REFILL_MAX_ASKS - 1,
        "bounded re-asks on top of the eager first one"
    );
    assert!(!r.daemon.has_pending_refills(), "gave up, nothing parked");
    assert_eq!(r.daemon.stats.rejected, 1, "the parked packet was dropped");
    assert!(r.site_rx.try_recv().is_err(), "nothing was delivered");
}

#[test]
fn restarted_daemon_reconverges_on_digest_only_shipment() {
    let mut r = rig();
    let (digest, obj) = shipped_obj();
    // First shipment lands in full and is cached.
    inject(
        &r,
        &Packet::Obj {
            dest: dest(),
            digest,
            obj: obj.clone(),
        },
    );
    r.daemon.pump();
    assert_eq!(r.daemon.code_cache_len(), 1);
    r.site_rx.try_recv().expect("first delivery");

    // The daemon process bounces: cache gone, but the sender's dedup
    // bookkeeping still believes this node holds the digest.
    r.daemon.simulate_restart();
    assert_eq!(r.daemon.code_cache_len(), 0, "restart empties the store");

    // The stale sender ships digest-only. Pre-fix this was rejected or
    // parked forever; now it must negotiate a refill and converge.
    inject(
        &r,
        &Packet::ObjRef {
            dest: dest(),
            digest,
            table: 0,
            captured: vec![],
        },
    );
    r.daemon.pump();
    assert_eq!(r.daemon.stats.cache.misses, 1, "restart hole detected");
    let asks = drain_peer(&r);
    assert!(
        asks.iter().any(|p| matches!(p, Packet::NeedCode { .. })),
        "the restarted node asks for the bytes back: {asks:?}"
    );
    inject(
        &r,
        &Packet::HaveCode {
            to: NodeId(0),
            digest,
            code: obj.code,
        },
    );
    r.daemon.pump();
    assert_eq!(r.daemon.code_cache_len(), 1, "cache repopulated");
    assert!(matches!(
        r.site_rx.try_recv(),
        Ok(RtIncoming::Vm(Incoming::Obj { .. }))
    ));
}

#[test]
fn restart_between_shipments_converges_at_cluster_level() {
    // Baseline: how long does the undisturbed SHIP_TWICE run take?
    let baseline = ship_twice_cluster().run_deterministic(RunLimits::default());
    assert!(baseline.quiescent);
    let v = baseline.virtual_ns;
    assert!(v > 0);

    // Bounce the client's daemon at some point mid-run. The exact
    // fraction that lands between the two shipments depends on link
    // timing, so probe a few; the regression holds if at least one
    // placement yields a complete run that needed a refill (misses > 0 ⇒
    // the restart emptied the cache between the dedup'd shipments).
    let mut converged_with_refill = false;
    for num in [3u64, 4, 5, 6] {
        let mut c = ship_twice_cluster();
        let plan =
            ChaosPlan::new(ChaosSpec::quiet(1)).at(v * num / 8, ChaosEvent::RestartNode(NodeId(1)));
        c.set_chaos(plan).unwrap();
        let report = c.run_deterministic(RunLimits::default());
        let chaos = report.chaos.expect("chaos report present");
        assert_eq!(chaos.restarts, 1, "the restart fired");
        assert!(
            report.errors.is_empty(),
            "restart must never crash a site: {:?}",
            report.errors
        );
        let done = report.output("client").last().map(String::as_str) == Some("done");
        if done && report.cache_totals().misses > 0 {
            converged_with_refill = true;
        }
    }
    assert!(
        converged_with_refill,
        "no restart placement reconverged via a NeedCode refill"
    );
}
