//! The two value domains — the calculus interpreter's `Val` and the VM's
//! `Word` — must give identical builtin semantics: same results for the
//! same operands, and errors in exactly the same cases.

use proptest::prelude::*;
use tyco_calculus::{eval_binop, Val};
use tyco_syntax::ast::{BinOp, UnOp};
use tyco_vm::word::Word;
use tyco_vm::{binop as vm_binop, unop as vm_unop};

#[derive(Debug, Clone)]
enum V {
    Unit,
    Int(i64),
    Bool(bool),
    Str(String),
    Float(f64),
}

impl V {
    fn val(&self) -> Val {
        match self {
            V::Unit => Val::Unit,
            V::Int(i) => Val::Int(*i),
            V::Bool(b) => Val::Bool(*b),
            V::Str(s) => Val::Str(s.as_str().into()),
            V::Float(x) => Val::Float(*x),
        }
    }

    fn word(&self) -> Word {
        match self {
            V::Unit => Word::Unit,
            V::Int(i) => Word::Int(*i),
            V::Bool(b) => Word::Bool(*b),
            V::Str(s) => Word::Str(s.as_str().into()),
            V::Float(x) => Word::Float(*x),
        }
    }
}

fn arb_v() -> impl Strategy<Value = V> {
    prop_oneof![
        Just(V::Unit),
        any::<i64>().prop_map(V::Int),
        any::<bool>().prop_map(V::Bool),
        "[a-z]{0,6}".prop_map(V::Str),
        // Finite floats only: NaN breaks Eq comparisons in both domains
        // identically, but makes the test oracle awkward.
        (-1e12f64..1e12).prop_map(V::Float),
    ]
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Concat),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// Binary builtins agree across the two semantics: both succeed with
    /// display-equal results, or both fail.
    #[test]
    fn binop_agreement(op in arb_binop(), a in arb_v(), b in arb_v()) {
        let calc = eval_binop(op, a.val(), b.val());
        let vm = vm_binop(op, a.word(), b.word());
        match (calc, vm) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x.display(), y.display(), "{:?} {:?} {:?}", op, a, b),
            (Err(_), Err(_)) => {}
            (c, v) => prop_assert!(false, "disagreement on {op:?} {a:?} {b:?}: {c:?} vs {v:?}"),
        }
    }

    /// Unary builtins agree.
    #[test]
    fn unop_agreement(neg in any::<bool>(), a in arb_v()) {
        let op = if neg { UnOp::Neg } else { UnOp::Not };
        let vm = vm_unop(op, a.word());
        // The calculus evaluates unops inline (no public helper); replicate
        // its rule here as the oracle.
        let calc: Result<Val, ()> = match (op, a.val()) {
            (UnOp::Neg, Val::Int(i)) => Ok(Val::Int(-i)),
            (UnOp::Neg, Val::Float(x)) => Ok(Val::Float(-x)),
            (UnOp::Not, Val::Bool(b)) => Ok(Val::Bool(!b)),
            _ => Err(()),
        };
        match (calc, vm) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x.display(), y.display()),
            (Err(()), Err(_)) => {}
            (c, v) => prop_assert!(false, "disagreement on {op:?} {a:?}: {c:?} vs {v:?}"),
        }
    }
}
