//! Tree-shaken code shipping, end to end: with shaking enabled the
//! machine packs each shipped method table against the whole-program
//! analysis rooted at the shipped tables, pruning sibling classes the
//! mobile code can never instantiate. Outputs must be identical with
//! shaking on and off; the only observable difference is smaller wire
//! images, surfaced through the `shaken_packs` / `shake_bytes_saved`
//! counters.

use ditico_rt::{Cluster, FabricMode, LinkProfile, RunLimits};

/// The applet's method carries a constant-dead debug arm (`1 > 2` never
/// holds) whose parallel composition forks three tracing blocks. The
/// plain pack ships those blocks and their strings with the object; the
/// analyzer folds the branch, proves the arm dead, and the shaken pack
/// drops them from the wire image.
const SHAKE_SERVER: &str = r#"
    def Mk(p, d) = p?(v) =
        ((if 1 > 2
          then (println("debug-enter", v) | println("debug-value", v + 1)
                | println("debug-exit", v + 2))
          else println("shipped", v)) | d![])
    in def Srv(c) = c?{ applet(p, d) = (Mk[p, d] | Srv[c]) }
    in export new s in Srv[s]
"#;

const SHAKE_CLIENT: &str = r#"
    import s from server in
    new d (new p (s!applet[p, d] | p![7]) | d?() = println("done"))
"#;

fn cluster() -> Cluster {
    let mut c = Cluster::new(FabricMode::Virtual, LinkProfile::fast_ethernet(), 1);
    let n0 = c.add_node();
    let n1 = c.add_node();
    c.add_site_src(n0, "server", SHAKE_SERVER).unwrap();
    c.add_site_src(n1, "client", SHAKE_CLIENT).unwrap();
    c
}

#[test]
fn shaken_shipping_preserves_output_and_saves_bytes() {
    let mut plain = cluster();
    let r_plain = plain.run_deterministic(RunLimits::default());
    assert!(r_plain.errors.is_empty(), "{:?}", r_plain.errors);

    let mut shaken = cluster();
    shaken.set_shake(true);
    assert!(shaken.shake());
    let r_shaken = shaken.run_deterministic(RunLimits::default());
    assert!(r_shaken.errors.is_empty(), "{:?}", r_shaken.errors);

    // Identical observable behaviour on both sites.
    assert_eq!(r_shaken.output("client"), r_plain.output("client"));
    assert_eq!(r_shaken.output("server"), r_plain.output("server"));
    assert_eq!(
        r_plain.output("client"),
        ["shipped 7", "done"].map(String::from)
    );

    // The plain run never consults the analyzer…
    assert_eq!(r_plain.shake_totals(), (0, 0));
    // …the shaken run packed at least one table and shipped fewer bytes
    // than the full image would have needed.
    let (packs, saved) = r_shaken.shake_totals();
    assert!(packs > 0, "no shaken packs recorded");
    assert!(saved > 0, "shaking saved no bytes: {packs} packs");
}

#[test]
fn shake_toggle_reaches_existing_sites() {
    // set_shake after the sites were added must still apply to them.
    let mut c = cluster();
    c.set_shake(true);
    let report = c.run_deterministic(RunLimits::default());
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(
        report.output("client"),
        ["shipped 7", "done"].map(String::from)
    );
    assert!(report.shake_totals().0 > 0);
}
