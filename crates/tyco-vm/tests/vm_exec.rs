//! Execution tests for the TyCO virtual machine: single-machine programs
//! on a loopback port, and a minimal two-machine harness that exercises the
//! mobility instructions (SHIPM / SHIPO / FETCH) without the full
//! distributed runtime.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use tyco_vm::port::{FetchReplyNow, ImportReply, Incoming, NetPort};
use tyco_vm::program::ImportKind;
use tyco_vm::wire::{WireGroup, WireObj, WireWord};
use tyco_vm::word::{Identity, NetRef, SiteId};
use tyco_vm::{LoopbackPort, Machine};

fn run(src: &str) -> Machine<LoopbackPort> {
    let mut m = Machine::from_source(src, LoopbackPort::new("main")).expect("compile");
    m.run_to_quiescence(1_000_000).expect("run");
    m
}

#[test]
fn prints_literals_and_arithmetic() {
    let m = run("print(1 + 2 * 3) | println(\"a\" ^ \"b\", true)");
    let mut io = m.io.clone();
    io.sort();
    assert_eq!(io, vec!["7".to_string(), "ab true".to_string()]);
}

#[test]
fn cell_example_runs() {
    let m = run(r#"
        def Cell(self, v) =
            self ? {
                read(r)  = r![v] | Cell[self, v],
                write(u) = Cell[self, u]
            }
        in new x (
            Cell[x, 9]
          | new z (x!read[z] | z?(w) = print(w))
        )
    "#);
    assert_eq!(m.io, vec!["9".to_string()]);
    assert_eq!(m.stats.comm, 2);
    assert_eq!(m.stats.inst, 2);
}

#[test]
fn cell_write_read_fifo() {
    let m = run(r#"
        def Cell(self, v) =
            self ? { read(r) = r![v] | Cell[self, v], write(u) = Cell[self, u] }
        in new x (
            Cell[x, 1]
          | x!write[42]
          | new z (x!read[z] | z?(w) = print(w))
        )
    "#);
    assert_eq!(m.io, vec!["42".to_string()]);
}

#[test]
fn conditionals_and_recursion() {
    let m = run(r#"
        def Count(n) = if n > 0 then print(n) | Count[n - 1] else println("liftoff")
        in Count[3]
    "#);
    assert_eq!(m.io, vec!["3", "2", "1", "liftoff"]);
    assert_eq!(m.stats.inst, 4);
}

#[test]
fn mutual_recursion_across_group() {
    let m = run(r#"
        def Even(n) = if n == 0 then println("even") else Odd[n - 1]
        and Odd(n)  = if n == 0 then println("odd") else Even[n - 1]
        in Even[5]
    "#);
    assert_eq!(m.io, vec!["odd"]);
}

#[test]
fn fine_grained_threads() {
    // The paper: "typically a few tens of byte-code instructions per
    // thread" — check the granularity histogram on a busy program.
    let m = run(r#"
        def Ring(n) = if n > 0 then new c (c![n] | c?(v) = Ring[v - 1]) else println("done")
        in Ring[50]
    "#);
    assert_eq!(m.io, vec!["done"]);
    assert!(
        m.stats.thread_len.mean() < 64.0,
        "mean {}",
        m.stats.thread_len.mean()
    );
    assert!(m.stats.threads > 100);
}

#[test]
fn export_import_loopback() {
    let m = run(r#"
        export new srv in (
            srv?{ ping(r) = r!pong[] }
          | import srv from main in new a (srv!ping[a] | a?{ pong() = println("got pong") })
        )
    "#);
    assert_eq!(m.io, vec!["got pong"]);
    assert!(m.port.registered("srv").is_some());
}

#[test]
fn import_unknown_site_fails() {
    let mut m =
        Machine::from_source("import p from mars in p![1]", LoopbackPort::new("main")).unwrap();
    let err = m.run_to_quiescence(10_000).unwrap_err();
    assert!(matches!(err, tyco_vm::VmError::ImportFailed(_)), "{err}");
}

#[test]
fn protocol_error_no_method() {
    let mut m = Machine::from_source(
        "new x (x!bad[] | x?{ good() = 0 })",
        LoopbackPort::new("main"),
    )
    .unwrap();
    let err = m.run_to_quiescence(10_000).unwrap_err();
    assert!(matches!(err, tyco_vm::VmError::NoMethod { .. }), "{err}");
}

#[test]
fn gc_reclaims_reply_channels() {
    // Each iteration allocates a reply channel that dies immediately; the
    // collector must keep the live set bounded.
    let mut m = Machine::from_source(
        r#"
        def Server(s) = s?{ get(r) = r![1] | Server[s] }
        and Loop(s, n) =
            if n > 0 then new r (s!get[r] | r?(v) = Loop[s, n - v]) else println("end")
        in new s (Server[s] | Loop[s, 20000])
        "#,
        LoopbackPort::new("main"),
    )
    .unwrap();
    m.run_to_quiescence(100_000_000).unwrap();
    assert_eq!(m.io, vec!["end"]);
    assert!(m.stats.gcs > 0, "GC never ran");
    assert!(m.stats.chans_collected > 10_000);
    assert!(m.live_channels() < 10_000, "live {}", m.live_channels());
}

// ---------------------------------------------------------------------------
// Two-machine harness: a shared "ether" that routes packets and resolves
// imports, exercising the machine's mobility paths directly.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Ether {
    registry: HashMap<(String, String), WireWord>,
    queues: HashMap<SiteId, VecDeque<Incoming>>,
    next_req: u64,
    /// Pending imports: req → (site, waiting site).
    pending: Vec<(u64, String, String, ImportKind, SiteId)>,
}

struct EtherPort {
    me: Identity,
    lexeme: String,
    ether: Rc<RefCell<Ether>>,
}

impl NetPort for EtherPort {
    fn identity(&self) -> Identity {
        self.me
    }

    fn register(&mut self, name: &str, value: WireWord) {
        let mut e = self.ether.borrow_mut();
        e.registry
            .insert((self.lexeme.clone(), name.to_string()), value);
        // Wake pending imports that now resolve.
        let ready: Vec<(u64, SiteId)> = e
            .pending
            .iter()
            .filter(|(_, s, n, _, _)| s == &self.lexeme && n == name)
            .map(|(req, _, _, _, from)| (*req, *from))
            .collect();
        e.pending
            .retain(|(_, s, n, _, _)| !(s == &self.lexeme && n == name));
        for (req, from) in ready {
            e.queues
                .entry(from)
                .or_default()
                .push_back(Incoming::ImportReady { req });
        }
    }

    fn import(&mut self, site: &str, name: &str, kind: ImportKind) -> ImportReply {
        let mut e = self.ether.borrow_mut();
        if let Some(w) = e.registry.get(&(site.to_string(), name.to_string())) {
            return ImportReply::Ready(w.clone());
        }
        e.next_req += 1;
        let req = e.next_req;
        e.pending
            .push((req, site.to_string(), name.to_string(), kind, self.me.site));
        ImportReply::Pending(req)
    }

    fn send_msg(&mut self, dest: NetRef, label: &str, args: Vec<WireWord>) {
        self.ether
            .borrow_mut()
            .queues
            .entry(dest.site)
            .or_default()
            .push_back(Incoming::Msg {
                dest: dest.heap_id,
                label: label.to_string(),
                args,
            });
    }

    fn send_obj(&mut self, dest: NetRef, _digest: tyco_vm::Digest, obj: WireObj) {
        self.ether
            .borrow_mut()
            .queues
            .entry(dest.site)
            .or_default()
            .push_back(Incoming::Obj {
                dest: dest.heap_id,
                obj,
            });
    }

    fn fetch(&mut self, class: NetRef) -> FetchReplyNow {
        let mut e = self.ether.borrow_mut();
        e.next_req += 1;
        let req = e.next_req;
        e.queues
            .entry(class.site)
            .or_default()
            .push_back(Incoming::FetchReq {
                dest: class.heap_id,
                req,
                reply_to: self.me,
            });
        FetchReplyNow::Pending(req)
    }

    fn fetch_reply(
        &mut self,
        to: Identity,
        req: u64,
        _digest: tyco_vm::Digest,
        group: WireGroup,
        index: u8,
    ) {
        self.ether
            .borrow_mut()
            .queues
            .entry(to.site)
            .or_default()
            .push_back(Incoming::FetchReply { req, group, index });
    }

    fn poll(&mut self) -> Option<Incoming> {
        self.ether
            .borrow_mut()
            .queues
            .entry(self.me.site)
            .or_default()
            .pop_front()
    }
}

fn duo(server_src: &str, client_src: &str) -> (Machine<EtherPort>, Machine<EtherPort>) {
    let ether = Rc::new(RefCell::new(Ether::default()));
    let server_port = EtherPort {
        me: Identity {
            site: SiteId(0),
            node: Default::default(),
        },
        lexeme: "server".to_string(),
        ether: ether.clone(),
    };
    let client_port = EtherPort {
        me: Identity {
            site: SiteId(1),
            node: Default::default(),
        },
        lexeme: "client".to_string(),
        ether,
    };
    let server = Machine::from_source(server_src, server_port).expect("server compiles");
    let client = Machine::from_source(client_src, client_port).expect("client compiles");
    (server, client)
}

fn run_duo(server: &mut Machine<EtherPort>, client: &mut Machine<EtherPort>) {
    // Alternate slices until both are idle and queues are drained.
    for _ in 0..1000 {
        let a = server.run_slice(100_000).expect("server slice");
        let b = client.run_slice(100_000).expect("client slice");
        if !a.runnable && !b.runnable && a.instrs == 0 && b.instrs == 0 {
            break;
        }
    }
}

#[test]
fn remote_message_ships_and_reduces() {
    let (mut server, mut client) = duo(
        "export new p in p?{ go(n) = print(n * 2) }",
        "import p from server in p!go[21]",
    );
    run_duo(&mut server, &mut client);
    assert_eq!(server.io, vec!["42"]);
    assert_eq!(client.stats.msgs_sent, 1);
    assert_eq!(server.stats.msgs_recv, 1);
    assert_eq!(server.stats.comm, 1);
}

#[test]
fn rpc_round_trip_between_machines() {
    let (mut server, mut client) = duo(
        "export new p in p?{ val(x, r) = r![x + 1] }",
        "import p from server in new a (p!val[41, a] | a?(y) = print(y))",
    );
    run_duo(&mut server, &mut client);
    assert_eq!(client.io, vec!["42"]);
    // Request ships client→server; reply ships server→client.
    assert_eq!(client.stats.msgs_sent, 1);
    assert_eq!(server.stats.msgs_sent, 1);
}

#[test]
fn object_migrates_to_remote_name() {
    // The applet-server shipping pattern: the server receives a
    // client-allocated name and ships an object to it.
    let (mut server, mut client) = duo(
        r#"
        def Srv(s) = s?{ applet(p) = (p?(x) = print(x * 10)) | Srv[s] }
        in export new appletserver in Srv[appletserver]
        "#,
        r#"
        import appletserver from server in
        new p (appletserver!applet[p] | p![7])
        "#,
    );
    run_duo(&mut server, &mut client);
    // The applet body ran at the CLIENT.
    assert_eq!(client.io, vec!["70"]);
    assert_eq!(server.stats.objs_sent, 1);
    assert_eq!(client.stats.objs_recv, 1);
}

#[test]
fn class_fetch_downloads_and_instantiates_locally() {
    let (mut server, mut client) = duo(
        r#"export def Applet(v) = println("applet", v) in 0"#,
        "import Applet from server in Applet[5]",
    );
    run_duo(&mut server, &mut client);
    assert_eq!(client.io, vec!["applet 5"]);
    assert_eq!(client.stats.fetches, 1);
    assert_eq!(server.stats.fetches_served, 1);
    assert_eq!(client.stats.inst, 1, "instantiation happened at the client");
    assert_eq!(server.stats.inst, 0);
}

#[test]
fn fetched_recursion_runs_locally_with_cache() {
    let (mut server, mut client) = duo(
        "export def Loop(n) = if n > 0 then print(n) | Loop[n - 1] else println(\"done\") in 0",
        "import Loop from server in Loop[3]",
    );
    run_duo(&mut server, &mut client);
    assert_eq!(client.io, vec!["3", "2", "1", "done"]);
    assert_eq!(server.stats.fetches_served, 1, "downloaded once");
    assert_eq!(client.stats.inst, 4, "recursion local after download");
}

#[test]
fn import_blocks_then_resumes() {
    // Client starts first; its import parks until the server exports.
    let (mut server, mut client) = duo(
        "export new p in p?{ go(n) = print(n) }",
        "import p from server in p!go[5]",
    );
    // Run the CLIENT first: the import must park.
    let st = client.run_slice(100_000).unwrap();
    assert_eq!(st.parked, 1);
    run_duo(&mut server, &mut client);
    assert_eq!(server.io, vec!["5"]);
    assert_eq!(client.parked_count(), 0);
}

#[test]
fn seti_pattern_install_go_loop() {
    let ether = Rc::new(RefCell::new(Ether::default()));
    let seti_port = EtherPort {
        me: Identity {
            site: SiteId(0),
            node: Default::default(),
        },
        lexeme: "seti".to_string(),
        ether: ether.clone(),
    };
    let client_port = EtherPort {
        me: Identity {
            site: SiteId(1),
            node: Default::default(),
        },
        lexeme: "client".to_string(),
        ether,
    };
    let mut seti = Machine::from_source(
        r#"
        new database (
            export def Install() = println("installed") | Go[]
            and Go() = let data = database!newChunk[] in (println(data) | Go[])
            in database ? { newChunk(replyTo) = replyTo![17] }
        )
        "#,
        seti_port,
    )
    .unwrap();
    let mut client =
        Machine::from_source("import Install from seti in Install[]", client_port).unwrap();
    // The Go loop never terminates; run a bounded number of alternating
    // slices.
    for _ in 0..50 {
        seti.run_slice(2_000).unwrap();
        client.run_slice(2_000).unwrap();
    }
    assert_eq!(client.io.first().map(String::as_str), Some("installed"));
    assert!(client.io.contains(&"17".to_string()), "{:?}", client.io);
    assert_eq!(seti.stats.fetches_served, 1);
    // The chunk requests ship from client to seti.
    assert!(client.stats.msgs_sent >= 1);
}

#[test]
fn duplicate_fetch_reply_is_dropped_not_relinked() {
    // A FetchReply for a request the machine is not waiting on (late or
    // duplicated delivery) must be dropped and counted — linking it again
    // would instantiate a second disjoint copy of the class.
    let prog =
        tyco_vm::compile(&tyco_syntax::parse_core("def K(a) = print(a) in K[1]").expect("parses"))
            .expect("compiles");
    let packed = tyco_vm::pack(&prog, &[0]);
    let group = WireGroup {
        code: packed.code,
        table: 0,
        captured: vec![],
    };

    let mut m = Machine::from_source("print(0)", LoopbackPort::new("main")).unwrap();
    m.run_to_quiescence(10_000).unwrap();
    let blocks_before = m.program.blocks.len();

    m.port.inject(Incoming::FetchReply {
        req: 999, // never issued
        group,
        index: 0,
    });
    m.run_to_quiescence(10_000).expect("drop, not error");
    assert_eq!(m.stats.dup_fetch_replies, 1);
    assert_eq!(
        m.program.blocks.len(),
        blocks_before,
        "nothing was linked for the orphan reply"
    );
}

#[test]
fn trace_buffer_records_last_instructions() {
    let mut m = Machine::from_source(
        "new x (x!bad[] | x?{ good() = 0 })",
        LoopbackPort::new("main"),
    )
    .unwrap();
    m.set_trace(4);
    let err = m.run_to_quiescence(10_000).unwrap_err();
    assert!(matches!(err, tyco_vm::VmError::NoMethod { .. }));
    let trace = m.render_trace();
    let lines: Vec<&str> = trace.lines().collect();
    assert_eq!(
        lines.len(),
        4,
        "ring buffer holds exactly its capacity:\n{trace}"
    );
    assert!(
        trace.contains("TrObj") || trace.contains("TrMsg"),
        "{trace}"
    );
    // Disabling clears it.
    m.set_trace(0);
    assert!(m.render_trace().is_empty());
}
