//! Property tests over the compiled-artifact pipeline: for arbitrary
//! generated programs, the assembly and image representations round-trip
//! and execute identically to the directly compiled program.

use proptest::prelude::*;
use tyco_syntax::arbitrary::arb_closed_program;
use tyco_vm::{
    compile, emit_asm, image_from_bytes, image_to_bytes, parse_asm, LoopbackPort, Machine, Program,
};

fn run(prog: Program) -> Vec<String> {
    let mut m = Machine::new(prog, LoopbackPort::new("main"));
    m.run_to_quiescence(10_000_000).expect("runs");
    let mut io = m.io;
    io.sort();
    io
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse_asm ∘ emit_asm preserves execution.
    #[test]
    fn assembly_round_trip_preserves_behaviour(p in arb_closed_program()) {
        let prog = compile(&p).expect("compiles");
        let text = emit_asm(&prog);
        let back = parse_asm(&text).expect("assembles");
        // The re-assembled program emits the same assembly (fixpoint)…
        prop_assert_eq!(emit_asm(&back), text);
        // …and runs identically.
        prop_assert_eq!(run(back), run(prog));
    }

    /// image_from_bytes ∘ image_to_bytes = id, exactly.
    #[test]
    fn image_round_trip_is_identity(p in arb_closed_program()) {
        let prog = compile(&p).expect("compiles");
        let back = image_from_bytes(image_to_bytes(&prog)).expect("loads");
        prop_assert_eq!(&back, &prog);
    }

    /// Shipping every method table of a program through pack → link into a
    /// fresh program area yields callable code (the mobility pipeline never
    /// corrupts blocks).
    #[test]
    fn pack_link_is_well_formed(p in arb_closed_program()) {
        let prog = compile(&p).expect("compiles");
        if prog.tables.is_empty() {
            return Ok(());
        }
        let roots: Vec<u32> = (0..prog.tables.len() as u32).collect();
        let packed = tyco_vm::pack(&prog, &roots);
        let mut dest = Program::default();
        let lm = tyco_vm::link(&mut dest, &packed.code).expect("packed code verifies");
        // Every linked table entry points at a real block with a method
        // frame that can be built.
        for &t in &lm.tables {
            for (_, b) in &dest.tables[t as usize].entries {
                let blk = &dest.blocks[*b as usize];
                prop_assert!(blk.frame_size() >= blk.nparams as usize);
            }
        }
        // Jump targets stay inside their blocks.
        for b in &dest.blocks {
            for ins in b.code.iter() {
                match ins {
                    tyco_vm::Instr::Jump(t) | tyco_vm::Instr::JumpIfFalse(t) => {
                        prop_assert!((*t as usize) <= b.code.len());
                    }
                    tyco_vm::Instr::Fork { block, .. } => {
                        prop_assert!((*block as usize) < dest.blocks.len());
                    }
                    _ => {}
                }
            }
        }
    }
}
