//! TyCOd — the per-node communication daemon (§5, Fig. 4).
//!
//! *"The TyCOd daemon is responsible for all the data exchange between
//! sites in the network. Interactions between sites may be local, when
//! sites belong to the same node, or remote when the sites belong to
//! different nodes. Local interactions are optimized using shared
//! memory."*
//!
//! The remote path is the paper's 3-step protocol: (1) the site places a
//! packaged process on its outgoing queue; (2) the local TyCOd reads the
//! destination from the network reference and forwards the bytes through
//! the fabric to the remote TyCOd; (3) the remote TyCOd places it on the
//! destination site's incoming queue. The local path skips the fabric and
//! the byte codec entirely — packets move by reference.
//!
//! The daemon also hosts (a replica of) the name service when configured
//! to, and answers `export`/`import` traffic for its sites.

use crate::fabric::{FabricHandle, PacketFabric};
use crate::nameservice::NameService;
use crate::sched::SiteWake;
use crate::site::RtIncoming;
use crate::wake::Notify;
use bytes::{Bytes, BytesMut};
use crossbeam::channel::{Receiver, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use tyco_vm::codec::{self, Packet};
use tyco_vm::port::Incoming;
use tyco_vm::word::{NodeId, SiteId};

/// Cluster-wide packet-conservation counters used by the termination
/// detector (see [`crate::termination`]).
#[derive(Debug, Default)]
pub struct TermCounters {
    /// Packets injected into the system (site sends + NS-generated replies).
    pub injected: AtomicU64,
    /// Packets fully consumed (handled by the NS, or drained by a site).
    pub consumed: AtomicU64,
}

/// Per-daemon traffic statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DaemonStats {
    /// Packets delivered through shared memory (same node).
    pub local_deliveries: u64,
    /// Packets serialized and pushed into the fabric.
    pub remote_sends: u64,
    /// Fabric flushes those packets went out in; mean batch occupancy is
    /// `remote_sends / remote_batches`.
    pub remote_batches: u64,
    /// Bytes serialized for remote sends.
    pub bytes_out: u64,
    /// Packets received from the fabric.
    pub remote_recvs: u64,
    /// Name-service operations handled locally.
    pub ns_ops: u64,
    /// Fabric packets dropped at the trust boundary: undecodable bytes,
    /// or mobile code that failed static verification before link.
    pub rejected: u64,
}

/// An outgoing batch for one destination node: packets are encoded
/// back-to-back into one buffer, frozen once per flush, and handed to the
/// fabric as zero-copy slice views — one allocation per batch instead of
/// one per packet.
#[derive(Default)]
struct OutBuf {
    buf: BytesMut,
    /// End offset of each encoded packet in `buf`.
    ends: Vec<usize>,
    /// Reusable scratch for the per-packet slice views.
    ready: Vec<Bytes>,
}

/// The per-node communication daemon.
pub struct Daemon {
    pub node: NodeId,
    /// Inboxes of local sites, plus each site's wakeup (a dedicated
    /// thread's notify, or the scheduler's readiness handle).
    sites: HashMap<SiteId, (Sender<RtIncoming>, SiteWake)>,
    /// Shared outgoing queue of all local sites.
    from_sites: Receiver<(SiteId, Packet)>,
    /// Inbound packets from other nodes.
    from_fabric: Receiver<(NodeId, Bytes)>,
    /// The outbound network: the in-process fabric, or (in distributed
    /// runs) the TCP transport's handle, swapped in via [`Daemon::set_fabric`].
    fabric: Arc<dyn PacketFabric>,
    /// Outgoing bytes per destination node, flushed to the fabric once
    /// per pump (per-link FIFO; buffers keep their allocation).
    out_bufs: HashMap<NodeId, OutBuf>,
    /// Local deliveries per site, flushed to each site inbox once per
    /// pump (one inbox lock + one wakeup per site per pump).
    site_bufs: HashMap<SiteId, Vec<RtIncoming>>,
    /// Reusable drain buffers for the two inbound queues.
    scratch_pkts: Vec<(SiteId, Packet)>,
    scratch_bytes: Vec<(NodeId, Bytes)>,
    /// This daemon's own thread wakeup: sites and the fabric notify it.
    waker: Arc<Notify>,
    /// Nodes hosting name-service replicas (primary chosen by
    /// `ns_primary`).
    ns_nodes: Vec<NodeId>,
    /// Index into `ns_nodes` of the current primary (shared for failover).
    ns_primary: Arc<AtomicUsize>,
    /// The local replica, when this node hosts one.
    pub ns: Option<NameService>,
    /// Liveness info gathered from heartbeats: node → latest sequence.
    pub heartbeats: HashMap<NodeId, u64>,
    pub stats: DaemonStats,
    term: Arc<TermCounters>,
    hb_seq: u64,
}

impl Daemon {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        node: NodeId,
        from_sites: Receiver<(SiteId, Packet)>,
        from_fabric: Receiver<(NodeId, Bytes)>,
        fabric: FabricHandle,
        ns_nodes: Vec<NodeId>,
        ns_primary: Arc<AtomicUsize>,
        hosts_ns: bool,
        term: Arc<TermCounters>,
    ) -> Daemon {
        Daemon {
            node,
            sites: HashMap::new(),
            from_sites,
            from_fabric,
            fabric: Arc::new(fabric),
            out_bufs: HashMap::new(),
            site_bufs: HashMap::new(),
            scratch_pkts: Vec::new(),
            scratch_bytes: Vec::new(),
            waker: Arc::new(Notify::new()),
            ns_nodes,
            ns_primary,
            ns: if hosts_ns {
                Some(NameService::new())
            } else {
                None
            },
            heartbeats: HashMap::new(),
            stats: DaemonStats::default(),
            term,
            hb_seq: 0,
        }
    }

    /// Attach a local site's inbox and its wakeup.
    pub fn attach_site(&mut self, site: SiteId, inbox: Sender<RtIncoming>, waker: SiteWake) {
        self.sites.insert(site, (inbox, waker));
    }

    /// Swap a site's wakeup (the threaded runtime rebinds sites to the
    /// scheduler's readiness protocol before the workers start).
    pub fn set_site_waker(&mut self, site: SiteId, waker: SiteWake) {
        if let Some(entry) = self.sites.get_mut(&site) {
            entry.1 = waker;
        }
    }

    /// This daemon thread's wakeup (sites and the fabric notify it when
    /// they hand it work).
    pub fn waker(&self) -> &Arc<Notify> {
        &self.waker
    }

    /// Replace the outbound network. Distributed runs rebind each local
    /// daemon to the TCP transport's handle so packets addressed to
    /// remote nodes leave the process; in-process runs never call this.
    pub fn set_fabric(&mut self, fabric: Arc<dyn PacketFabric>) {
        self.fabric = fabric;
    }

    /// The node currently acting as name-service primary.
    fn ns_primary_node(&self) -> NodeId {
        let i = self.ns_primary.load(Ordering::Relaxed) % self.ns_nodes.len().max(1);
        *self.ns_nodes.get(i).unwrap_or(&self.node)
    }

    /// Drain both queues once (each backlog moves under a single queue
    /// lock), then flush the per-site and per-destination outgoing
    /// batches. Returns whether anything was processed.
    pub fn pump(&mut self) -> bool {
        let mut progress = false;
        let mut pkts = std::mem::take(&mut self.scratch_pkts);
        if self.from_sites.drain_into(&mut pkts) > 0 {
            progress = true;
            for (_, packet) in pkts.drain(..) {
                self.route(packet);
            }
        }
        self.scratch_pkts = pkts;
        let mut raw = std::mem::take(&mut self.scratch_bytes);
        if self.from_fabric.drain_into(&mut raw) > 0 {
            progress = true;
            for (_, bytes) in raw.drain(..) {
                self.stats.remote_recvs += 1;
                match codec::decode(bytes) {
                    Ok(packet) => {
                        if Self::screen(&packet).is_some() {
                            self.reject();
                        } else {
                            self.deliver_local(packet);
                        }
                    }
                    // Undecodable bytes are dropped and counted; the
                    // daemon (and the node's sites) stay up.
                    Err(_) => self.reject(),
                }
            }
        }
        self.scratch_bytes = raw;
        self.flush_local();
        self.flush_remote();
        progress
    }

    /// Drop a fabric packet at the trust boundary. The sender already
    /// counted it as injected, so the drop must count as consumed or the
    /// termination detector would wait on it forever.
    fn reject(&mut self) {
        self.stats.rejected += 1;
        self.term.consumed.fetch_add(1, Ordering::Relaxed);
    }

    /// Static screening of mobile code arriving from the fabric (§6: the
    /// receiver cannot trust that shipped byte-code was produced by our
    /// compiler). Returns a reason to reject, or `None` to admit. Packets
    /// without code images pass through; their field-level validation
    /// happened in the codec. Also used by the TCP transport's reader,
    /// which sits on an even less trustworthy boundary.
    pub(crate) fn screen(p: &Packet) -> Option<String> {
        let (code, table) = match p {
            Packet::Obj { obj, .. } => (&obj.code, obj.table),
            Packet::FetchReply { group, .. } => (&group.code, group.table),
            _ => return None,
        };
        if let Err(e) = tyco_vm::verify_wire(code) {
            return Some(e.to_string());
        }
        if table as usize >= code.tables.len() {
            return Some(format!(
                "entry table {table} out of range ({} tables shipped)",
                code.tables.len()
            ));
        }
        None
    }

    /// Hand each site its buffered backlog: one inbox lock and one wakeup
    /// per site per pump, order per site preserved.
    fn flush_local(&mut self) {
        for (site, buf) in self.site_bufs.iter_mut() {
            if buf.is_empty() {
                continue;
            }
            let n = buf.len() as u64;
            match self.sites.get(site) {
                Some((tx, waker)) => match tx.send_iter(buf.drain(..)) {
                    // Delivery first, wake second: the scheduler's
                    // readiness protocol relies on the inbox being
                    // populated before `mark_ready` runs.
                    Ok(_) => waker.wake(),
                    // The site is gone (program exited); drop, like the
                    // paper's freed sites.
                    Err(_) => {
                        self.term.consumed.fetch_add(n, Ordering::Relaxed);
                    }
                },
                None => {
                    // Unknown site on this node: drop (can only happen
                    // after a site was destroyed).
                    buf.clear();
                    self.term.consumed.fetch_add(n, Ordering::Relaxed);
                }
            }
        }
    }

    /// Hand every buffered per-destination backlog to the fabric in one
    /// batched send each (per-link FIFO preserved; see
    /// [`FabricHandle::send_batch`]). The batch's encodings share one
    /// frozen allocation; each packet is a slice view into it.
    fn flush_remote(&mut self) {
        let node = self.node;
        for (to, ob) in self.out_bufs.iter_mut() {
            if ob.ends.is_empty() {
                continue;
            }
            let frozen = std::mem::take(&mut ob.buf).freeze();
            let mut start = 0;
            for &end in &ob.ends {
                ob.ready.push(frozen.slice(start..end));
                start = end;
            }
            ob.ends.clear();
            self.stats.remote_batches += 1;
            self.fabric.send_batch(node, *to, &mut ob.ready);
        }
    }

    /// Emit a liveness beacon to the name-service nodes.
    pub fn send_heartbeat(&mut self) {
        self.hb_seq += 1;
        let seq = self.hb_seq;
        for ns_node in self.ns_nodes.clone() {
            let p = Packet::Heartbeat {
                node: self.node,
                seq,
            };
            self.term.injected.fetch_add(1, Ordering::Relaxed);
            if ns_node == self.node {
                self.deliver_local(p);
            } else {
                self.send_remote(ns_node, &p);
            }
        }
        // Heartbeats are emitted outside the pump loop (scheduler rounds);
        // don't leave them sitting in the batch buffers.
        self.flush_remote();
    }

    fn send_remote(&mut self, to: NodeId, p: &Packet) {
        let ob = self.out_bufs.entry(to).or_default();
        let start = ob.buf.len();
        codec::encode_into(p, &mut ob.buf);
        ob.ends.push(ob.buf.len());
        self.stats.remote_sends += 1;
        self.stats.bytes_out += (ob.buf.len() - start) as u64;
    }

    /// Route a packet by its destination, local or remote.
    pub fn route(&mut self, p: Packet) {
        let target: NodeId = match &p {
            Packet::Msg { dest, .. } | Packet::Obj { dest, .. } => dest.node,
            Packet::FetchReq { class, .. } => class.node,
            Packet::FetchReply { to, .. } | Packet::NsImportReply { to, .. } => to.node,
            Packet::NsRegister { .. } => {
                // Registrations go to every replica so failover loses no
                // exports. The broadcast fans one injected packet out into
                // N consumed ones; account for the extra copies.
                let extra = self.ns_nodes.len().saturating_sub(1) as u64;
                self.term.injected.fetch_add(extra, Ordering::Relaxed);
                for ns_node in self.ns_nodes.clone() {
                    if ns_node == self.node {
                        self.deliver_local(p.clone());
                    } else {
                        self.send_remote(ns_node, &p);
                    }
                }
                return;
            }
            Packet::NsImport { .. } => self.ns_primary_node(),
            Packet::Heartbeat { .. } | Packet::TermProbe { .. } | Packet::TermReport { .. } => {
                self.ns_primary_node()
            }
            // Handshakes live on the transport layer; one reaching the
            // routing layer is consumed and ignored.
            Packet::Hello { .. } => self.node,
        };
        if target == self.node {
            self.deliver_local(p);
        } else {
            self.send_remote(target, &p);
        }
    }

    /// Deliver a packet whose destination is on this node (the
    /// shared-memory path) or handle it in the local name service.
    fn deliver_local(&mut self, p: Packet) {
        match p {
            Packet::Msg { dest, label, args } => {
                self.deliver_to_site(
                    dest.site,
                    RtIncoming::Vm(Incoming::Msg {
                        dest: dest.heap_id,
                        label,
                        args,
                    }),
                );
            }
            Packet::Obj { dest, obj } => {
                self.deliver_to_site(
                    dest.site,
                    RtIncoming::Vm(Incoming::Obj {
                        dest: dest.heap_id,
                        obj,
                    }),
                );
            }
            Packet::FetchReq {
                class,
                req,
                reply_to,
            } => {
                self.deliver_to_site(
                    class.site,
                    RtIncoming::Vm(Incoming::FetchReq {
                        dest: class.heap_id,
                        req,
                        reply_to,
                    }),
                );
            }
            Packet::FetchReply {
                to,
                req,
                group,
                index,
            } => {
                self.deliver_to_site(
                    to.site,
                    RtIncoming::Vm(Incoming::FetchReply { req, group, index }),
                );
            }
            Packet::NsImportReply { to, req, result } => {
                self.deliver_to_site(to.site, RtIncoming::ImportResolved { req, result });
            }
            Packet::NsRegister {
                from_site,
                site_lexeme,
                name,
                value,
                stamp,
            } => {
                self.stats.ns_ops += 1;
                if let Some(ns) = &mut self.ns {
                    let replies = ns.handle_register(from_site, &site_lexeme, &name, value, stamp);
                    for r in replies {
                        self.term.injected.fetch_add(1, Ordering::Relaxed);
                        self.route(r);
                    }
                }
                // Consume the request only after its replies are injected:
                // the opposite order has a window where the counters look
                // balanced while a reply is still pending, which could
                // falsely satisfy the termination detector.
                self.term.consumed.fetch_add(1, Ordering::Relaxed);
            }
            Packet::NsImport {
                req,
                site,
                name,
                kind,
                reply_to,
                expect,
            } => {
                self.stats.ns_ops += 1;
                if let Some(ns) = &mut self.ns {
                    if let Some(reply) = ns.handle_import(req, &site, &name, kind, reply_to, expect)
                    {
                        self.term.injected.fetch_add(1, Ordering::Relaxed);
                        self.route(reply);
                    }
                }
                self.term.consumed.fetch_add(1, Ordering::Relaxed);
            }
            Packet::Heartbeat { node, seq } => {
                self.term.consumed.fetch_add(1, Ordering::Relaxed);
                let e = self.heartbeats.entry(node).or_insert(0);
                *e = (*e).max(seq);
            }
            Packet::TermProbe { .. } | Packet::TermReport { .. } | Packet::Hello { .. } => {
                // Termination detection runs at the environment level in
                // this implementation (and handshakes at the transport
                // layer); wire packets are accepted and ignored here.
                self.term.consumed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn deliver_to_site(&mut self, site: SiteId, item: RtIncoming) {
        self.stats.local_deliveries += 1;
        self.site_bufs.entry(site).or_default().push(item);
    }
}
