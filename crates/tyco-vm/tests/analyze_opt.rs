//! Whole-program analysis, tree shaking and the verified optimizer as
//! *semantic* transformations: for arbitrary generated programs the
//! optimized and shaken forms must verify, execute without panic, and
//! preserve every observable output — under both the fused and unfused
//! machines. Shaking must also be idempotent (a shaken program has
//! nothing left to shake).

use proptest::prelude::*;
use tyco_syntax::arbitrary::arb_closed_program;
use tyco_vm::{
    compile, image_to_bytes, optimize, shake, verify_program, verify_wire, LoopbackPort, Machine,
    Program,
};

fn run_fused(prog: Program) -> Vec<String> {
    let mut m = Machine::new(prog, LoopbackPort::new("main"));
    m.run_to_quiescence(10_000_000).expect("runs");
    let mut io = m.io;
    io.sort();
    io
}

fn run_unfused(prog: Program) -> Vec<String> {
    let mut m = Machine::new_unfused(prog, LoopbackPort::new("main"));
    m.run_to_quiescence(10_000_000).expect("runs");
    let mut io = m.io;
    io.sort();
    io
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `optimize` is a refinement: the output verifies and produces the
    /// same observable I/O as the input, fused and unfused.
    #[test]
    fn optimize_preserves_io(p in arb_closed_program()) {
        let prog = compile(&p).expect("compiles");
        let opt = optimize(&prog);
        prop_assert!(verify_program(&opt).is_ok(), "{:?}", verify_program(&opt));
        prop_assert_eq!(run_fused(opt.clone()), run_fused(prog.clone()));
        prop_assert_eq!(run_unfused(opt), run_unfused(prog));
    }

    /// Optimizing an already optimized program changes nothing: the
    /// rewrite rules reach a fixpoint in one application.
    #[test]
    fn optimize_is_idempotent(p in arb_closed_program()) {
        let prog = compile(&p).expect("compiles");
        let once = optimize(&prog);
        let twice = optimize(&once);
        prop_assert_eq!(&twice, &once);
    }

    /// Entry-rooted shaking preserves behaviour: the pruned program
    /// verifies, serializes no larger than the original, and emits the
    /// same observable I/O.
    #[test]
    fn shake_preserves_io(p in arb_closed_program()) {
        let prog = compile(&p).expect("compiles");
        let shaken = shake(&prog).program;
        prop_assert!(verify_program(&shaken).is_ok(), "{:?}", verify_program(&shaken));
        prop_assert!(image_to_bytes(&shaken).len() <= image_to_bytes(&prog).len());
        prop_assert_eq!(run_fused(shaken.clone()), run_fused(prog.clone()));
        prop_assert_eq!(run_unfused(shaken), run_unfused(prog));
    }

    /// shake ∘ shake = shake: a shaken program is a fixpoint.
    #[test]
    fn shake_is_idempotent(p in arb_closed_program()) {
        let prog = compile(&p).expect("compiles");
        let once = shake(&prog);
        let twice = shake(&once.program);
        prop_assert_eq!(&twice.program, &once.program);
        prop_assert_eq!(twice.blocks_dropped, 0);
        prop_assert_eq!(twice.instrs_dropped, 0);
    }

    /// The composition the compiler pipeline actually ships:
    /// optimize → shake still verifies and preserves I/O (branch folding
    /// exposes dead arms that shaking then removes).
    #[test]
    fn optimize_then_shake_preserves_io(p in arb_closed_program()) {
        let prog = compile(&p).expect("compiles");
        let slim = shake(&optimize(&prog)).program;
        prop_assert!(verify_program(&slim).is_ok(), "{:?}", verify_program(&slim));
        prop_assert_eq!(run_fused(slim), run_fused(prog));
    }

    /// Table-rooted shaken wire form: `pack_shaken` output passes wire
    /// verification (the trust boundary a fetching site applies) and its
    /// byte size never exceeds the plain pack of the same roots.
    #[test]
    fn pack_shaken_verifies_and_never_grows(p in arb_closed_program()) {
        let prog = compile(&p).expect("compiles");
        if prog.tables.is_empty() {
            return Ok(());
        }
        let roots: Vec<u32> = (0..prog.tables.len() as u32).collect();
        let full = tyco_vm::pack(&prog, &roots);
        let shaken = tyco_vm::pack_shaken(&prog, &roots);
        prop_assert!(verify_wire(&shaken.code).is_ok(), "{:?}", verify_wire(&shaken.code));
        // Every root the full pack maps must be mapped by the shaken pack.
        for t in &roots {
            prop_assert_eq!(
                full.table_map.contains_key(t),
                shaken.table_map.contains_key(t)
            );
        }
        let full_len = tyco_vm::codec::code_bytes(&full.code).len();
        let shaken_len = tyco_vm::codec::code_bytes(&shaken.code).len();
        prop_assert!(shaken_len <= full_len, "shaken {shaken_len} > full {full_len}");
    }
}
