//! Quickstart: the paper's §2 polymorphic cell, run on a single site.
//!
//! ```sh
//! cargo run --example quickstart            # run and print the outputs
//! cargo run --example quickstart -- --stats # add VM statistics (C1 granularity)
//! cargo run --example quickstart -- --disasm # show the compiled byte-code
//! ```

use ditico::{Env, Program};

const CELL: &str = r#"
// The polymorphic cell of §2: one class, instantiated at int and at bool.
def Cell(self, v) =
    self ? {
        read(r)  = r![v] | Cell[self, v],
        write(u) = Cell[self, u]
    }
in
new x (
    Cell[x, 9]
  | new z (x!read[z] | z?(w) = println("int cell holds", w))
)
| new y (
    Cell[y, true]
  | y!write[false]
  | new z (y!read[z] | z?(w) = println("bool cell holds", w))
)
"#;

fn main() {
    let args: Vec<String> = std::env::args().collect();

    if args.iter().any(|a| a == "--disasm") {
        let program = Program::compile(CELL).expect("the cell type-checks");
        println!("--- canonical form ---\n{}\n", program.pretty());
        println!("--- byte-code ---\n{}", program.disassemble());
        return;
    }

    let env = Env::local().site("main", CELL).expect("the cell compiles");
    let want_stats = args.iter().any(|a| a == "--stats");
    let report = env.run().expect("the cell runs");

    println!("I/O port of site `main`:");
    for line in report.output("main") {
        println!("  {line}");
    }

    if want_stats {
        let stats = &report.stats["main"];
        println!("\nVM statistics (note the per-thread granularity — §5 of the");
        println!("paper: \"typically a few tens of byte-code instructions per thread\"):");
        println!("{stats}");
    }
}
