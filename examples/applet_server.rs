//! The applet server of §4, in both variants the paper gives:
//!
//! * **fetch** — the server exports applet *classes*; the client's
//!   instantiation triggers FETCH: the byte-code downloads once and every
//!   instantiation afterwards is local;
//! * **ship**  — the server exports an object whose methods *ship* an
//!   applet object to a client-allocated name (SHIPO).
//!
//! ```sh
//! cargo run --example applet_server -- fetch
//! cargo run --example applet_server -- ship
//! ```

use ditico::{Env, FabricMode, LinkProfile, Topology};

fn topology() -> Topology {
    Topology {
        nodes: 2,
        mode: FabricMode::Virtual,
        link: LinkProfile::myrinet(),
        ns_replicas: 1,
    }
}

fn run_fetch() {
    println!("=== code-fetching applet server (classes download to the client) ===");
    let env = Env::new(topology())
        .site(
            "server",
            r#"
            export def Applet1(v) = println("applet1 computes", v + 1)
            and Applet2(v) = println("applet2 computes", v * 2)
            in 0
            "#,
        )
        .expect("server compiles")
        .site(
            "client",
            r#"
            import Applet1 from server in
            import Applet2 from server in
            Applet1[10] | Applet2[10] | Applet1[20]
            "#,
        )
        .expect("client compiles");
    let report = env.run().expect("runs");
    for line in report.output("client") {
        println!("  client: {line}");
    }
    let c = &report.stats["client"];
    println!(
        "  downloads (FETCH): {}; cache hits: {}; local instantiations: {}",
        c.fetches, c.fetch_cache_hits, c.inst
    );
    println!(
        "  => the applets ran AT THE CLIENT; the server did {} instantiations",
        report.stats["server"].inst
    );
}

fn run_ship() {
    println!("=== code-shipping applet server (objects migrate to the client) ===");
    let env = Env::new(topology())
        .site(
            "server",
            r#"
            def AppletServer(self) =
                self ? {
                    applet1(p) = (p?(x) = println("shipped applet1 got", x)) | AppletServer[self],
                    applet2(p) = (p?(x) = println("shipped applet2 got", x)) | AppletServer[self]
                }
            in export new appletserver in AppletServer[appletserver]
            "#,
        )
        .expect("server compiles")
        .site(
            "client",
            r#"
            import appletserver from server in
            new p (appletserver!applet1[p] | p![7])
          | new q (appletserver!applet2[q] | q![8])
            "#,
        )
        .expect("client compiles");
    let report = env.run().expect("runs");
    for line in report.output("client") {
        println!("  client: {line}");
    }
    let s = &report.stats["server"];
    let c = &report.stats["client"];
    println!(
        "  objects shipped (SHIPO): {}; received at client: {}; requests shipped (SHIPM): {}",
        s.objs_sent, c.objs_recv, c.msgs_sent
    );
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("fetch") => run_fetch(),
        Some("ship") => run_ship(),
        _ => {
            run_fetch();
            println!();
            run_ship();
        }
    }
}
