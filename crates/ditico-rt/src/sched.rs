//! M:N cooperative site scheduler: thousands of sites multiplexed over a
//! fixed worker pool.
//!
//! The paper makes the *site* the basic sequential unit ("threads each
//! running an extended TyCO virtual machine", §5) and the seed runtime
//! took that literally — one OS thread per site. That is the scaling wall
//! for many-site nodes: beyond a few hundred sites the node drowns in
//! context switches and idle-poll wakeups. This module multiplexes any
//! number of sites over `workers` OS threads (default: available
//! parallelism), following the executor-pool design of the Mob abstract
//! machine:
//!
//! * **Edge-triggered readiness.** A site enters a run queue only when the
//!   daemon delivers into its inbox ([`ReadyHandle::mark_ready`]) or its
//!   own pump slice reports runnable threads / a non-empty inbox. An idle
//!   site costs nothing: no parked OS thread, no timeout polls.
//! * **Per-worker LIFO run queues with randomized stealing.** A worker
//!   pops its own queue from the back (the site it just ran is hot), takes
//!   from the global injector next, and finally steals half of a random
//!   victim's queue from the front (the coldest entries).
//! * **Pool-level parking.** A worker that finds every queue empty
//!   registers itself on a parked stack, re-checks, and parks on its own
//!   [`Notify`]; any enqueue pops one parked worker and wakes it. The
//!   register-then-recheck / publish-then-wake ordering makes the handoff
//!   race-free (see the comments in [`Worker::run`]).
//!
//! ## Interaction with the termination detector
//!
//! The per-site `active` flags of the thread-per-site design become
//! scheduler-owned: a site is *active* iff its state is `QUEUED`,
//! `RUNNING` or `DIRTY`; the pool keeps a global count of active sites
//! ([`Shared::active`]). The seed's publish-before-pump race fix is
//! re-proven in this design as follows. A false termination needs the
//! detector to see balanced counters and zero active sites while an
//! effect is still pending. Pending effects are:
//!
//! 1. *A packet in flight* (site outgoing buffer, daemon queue, fabric, or
//!    site inbox): counted `injected` at `RtPort::send` time and only
//!    counted `consumed` when drained, so the counters are unbalanced —
//!    the detector cannot fire, active or not.
//! 2. *A site mid-slice*: consuming a packet (`consumed` moves) and
//!    reacting to it (`injected` moves) happen strictly inside a slice,
//!    and a slice runs only in state `RUNNING` — the active count is
//!    positive for the whole window. The worker enters `RUNNING` (SeqCst)
//!    before the slice's first poll and leaves it only after the slice's
//!    sends are flushed (hence counted).
//! 3. *A delivery racing with retirement*: the daemon pushes to the inbox
//!    *before* calling `mark_ready`. If the worker's retire check already
//!    saw the item, it requeues. If `mark_ready` finds the state
//!    `RUNNING`, it CASes to `DIRTY` and the retire CAS `RUNNING→IDLE`
//!    fails — requeue. If the retire CAS won first, `mark_ready` finds
//!    `IDLE` and enqueues. In every interleaving the site ends up queued
//!    (active) or the packet is still uncounted-consumed (unbalanced).
//!
//! The last worker to retire a site (active count hits zero) signals
//! [`Shared::idle`], which drives the environment thread's termination
//! probes event-style instead of on a 1 ms poll quantum.

use crate::site::Site;
use crate::wake::Notify;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use tyco_vm::VmError;

/// Sentinel for [`Shared::running`]: the worker is not pumping any slot.
const NO_SLOT: u32 = u32::MAX;

/// Site scheduling states (stored in [`Slot::state`]).
const IDLE: u8 = 0;
/// In exactly one run queue (local or injector).
const QUEUED: u8 = 1;
/// A worker is pumping it.
const RUNNING: u8 = 2;
/// Running, and new work arrived during the slice: requeue on retire.
const DIRTY: u8 = 3;

/// Scheduler configuration.
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// Worker pool size; 0 means available parallelism.
    pub workers: usize,
    /// Byte-code instructions per pump slice (context-switch granularity
    /// between sites sharing a worker).
    pub slice_fuel: u64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            workers: 0,
            slice_fuel: 8192,
        }
    }
}

impl SchedConfig {
    /// The effective worker count (resolves 0 to available parallelism).
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Aggregated scheduler counters, reported in
/// [`crate::cluster::RunReport`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SchedStats {
    /// Worker pool size of the run.
    pub workers: u64,
    /// Batches stolen from another worker's queue.
    pub steals: u64,
    /// Sites pushed onto the global injector (edge-triggered wakeups).
    pub injector_pushes: u64,
    /// Times a worker parked with every queue empty.
    pub parks: u64,
    /// Wakeups issued to parked workers.
    pub unparks: u64,
    /// Deepest any ready queue (injector or local) ever got.
    pub max_ready_depth: u64,
    /// Total pump slices executed.
    pub slices: u64,
    /// Most slices any single site consumed.
    pub max_site_slices: u64,
}

/// One scheduled site: the site itself plus its scheduling state. The
/// state machine guarantees at most one worker holds the mutex at a time
/// (a site is popped from exactly one queue), so the lock is always
/// uncontended — it exists to keep the slot `Sync` safely.
struct Slot {
    site: Mutex<Site>,
    state: AtomicU8,
    slices: AtomicU64,
}

/// State shared by the workers, the daemons' [`ReadyHandle`]s and the
/// environment thread.
pub struct Shared {
    slots: Vec<Slot>,
    /// Global FIFO injector: newly readied sites land here.
    injector: Mutex<VecDeque<u32>>,
    /// Per-worker run queues (owner pops back, thieves steal front).
    locals: Vec<Mutex<VecDeque<u32>>>,
    /// Stack of parked worker indices (LIFO keeps hot workers busy).
    parked: Mutex<Vec<usize>>,
    n_parked: AtomicUsize,
    /// One wakeup flag per worker.
    wakers: Vec<Notify>,
    /// The slot each worker is currently pumping ([`NO_SLOT`] if none).
    /// Consulted after a worker thread dies to identify the site it
    /// abandoned mid-slice.
    running: Vec<AtomicU32>,
    /// Sites in state QUEUED/RUNNING/DIRTY. The transition to zero is the
    /// pool's idle edge.
    active: AtomicUsize,
    /// Signaled on the active-count zero edge (and on stop): drives the
    /// environment thread's termination probes. An `Arc` so the TCP
    /// transport can share it as its activity notify — the environment
    /// thread then parks on one primitive for both "the sites went idle"
    /// and "the wire changed shape" (see `Transport::set_activity_notify`).
    pub idle: Arc<Notify>,
    stop: AtomicBool,
    // Counters.
    steals: AtomicU64,
    injector_pushes: AtomicU64,
    parks: AtomicU64,
    unparks: AtomicU64,
    max_ready_depth: AtomicU64,
}

impl Shared {
    /// Build the pool state over `sites`, all initially runnable (every
    /// site starts with its program's initial thread).
    pub fn new(sites: Vec<Site>, workers: usize) -> Arc<Shared> {
        let n = sites.len();
        let slots: Vec<Slot> = sites
            .into_iter()
            .map(|s| Slot {
                site: Mutex::new(s),
                state: AtomicU8::new(QUEUED),
                slices: AtomicU64::new(0),
            })
            .collect();
        let shared = Shared {
            slots,
            injector: Mutex::new((0..n as u32).collect()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            parked: Mutex::new(Vec::new()),
            n_parked: AtomicUsize::new(0),
            wakers: (0..workers).map(|_| Notify::new()).collect(),
            running: (0..workers).map(|_| AtomicU32::new(NO_SLOT)).collect(),
            active: AtomicUsize::new(n),
            idle: Arc::new(Notify::new()),
            stop: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            injector_pushes: AtomicU64::new(n as u64),
            parks: AtomicU64::new(0),
            unparks: AtomicU64::new(0),
            max_ready_depth: AtomicU64::new(n as u64),
        };
        if n == 0 {
            // Nothing will ever retire; report the idle edge immediately.
            shared.idle.notify();
        }
        Arc::new(shared)
    }

    /// A readiness handle for one site (handed to its node's daemon).
    pub fn handle(self: &Arc<Shared>, slot: u32) -> ReadyHandle {
        ReadyHandle {
            shared: self.clone(),
            slot,
        }
    }

    /// Number of currently active (queued or running) sites.
    pub fn active_sites(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Ask every worker to exit and wake them all.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for w in &self.wakers {
            w.notify();
        }
        self.idle.notify();
    }

    /// Push a ready site onto the global injector and wake one parked
    /// worker. The push happens *before* the parked-list check: a worker
    /// registers itself as parked *before* its final queue re-check, so
    /// either it sees this push or we see its registration.
    fn inject(&self, slot: u32) {
        let depth = {
            let mut inj = self.injector.lock();
            inj.push_back(slot);
            inj.len() as u64
        };
        self.injector_pushes.fetch_add(1, Ordering::Relaxed);
        self.max_ready_depth.fetch_max(depth, Ordering::Relaxed);
        self.unpark_one();
    }

    fn unpark_one(&self) {
        if self.n_parked.load(Ordering::SeqCst) == 0 {
            return;
        }
        let popped = self.parked.lock().pop();
        if let Some(w) = popped {
            self.n_parked.fetch_sub(1, Ordering::SeqCst);
            self.unparks.fetch_add(1, Ordering::Relaxed);
            self.wakers[w].notify();
        }
    }

    /// Snapshot the pool counters (plus per-site slice totals).
    pub fn stats(&self) -> SchedStats {
        let mut slices = 0;
        let mut max_site = 0;
        for slot in &self.slots {
            let s = slot.slices.load(Ordering::Relaxed);
            slices += s;
            max_site = max_site.max(s);
        }
        SchedStats {
            workers: self.locals.len() as u64,
            steals: self.steals.load(Ordering::Relaxed),
            injector_pushes: self.injector_pushes.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            unparks: self.unparks.load(Ordering::Relaxed),
            max_ready_depth: self.max_ready_depth.load(Ordering::Relaxed),
            slices,
            max_site_slices: max_site,
        }
    }

    /// Visit every site after the workers have stopped (report
    /// collection). Locks are uncontended then.
    pub fn for_each_site<F: FnMut(&Site)>(&self, mut f: F) {
        for slot in &self.slots {
            f(&slot.site.lock());
        }
    }

    /// The slot `worker` was pumping when it last checked in, cleared as a
    /// side effect. Used after joining a panicked worker thread: the slot
    /// it abandoned never retires (its state stays `RUNNING`), so the
    /// environment marks it errored via [`Shared::mark_errored`] instead.
    pub fn take_running(&self, worker: usize) -> Option<u32> {
        match self.running[worker].swap(NO_SLOT, Ordering::SeqCst) {
            NO_SLOT => None,
            s => Some(s),
        }
    }

    /// Record a runtime-level failure on `slot`'s site: set its error (if
    /// the slice didn't already record one) and drop its inbox so pending
    /// deliveries are counted consumed (the errored-site draining
    /// discipline). Only sound after every worker has stopped — the site
    /// mutex may be poisoned by the panic, which our `parking_lot` shim's
    /// `lock()` recovers from, but no live worker may still be inside it.
    pub fn mark_errored(&self, slot: u32, err: VmError) {
        let cell = &self.slots[slot as usize];
        let mut site = cell.site.lock();
        if site.error.is_none() {
            site.error = Some(err);
        }
        site.machine.port.drop_inbox();
    }
}

/// The daemon-side readiness handle of one site: delivery into the site's
/// inbox is followed by `mark_ready`, which queues the site unless it is
/// already queued or running (edge-triggered, at most one queue entry per
/// site).
pub struct ReadyHandle {
    shared: Arc<Shared>,
    slot: u32,
}

impl ReadyHandle {
    pub fn mark_ready(&self) {
        let st = &self.shared.slots[self.slot as usize].state;
        loop {
            match st.load(Ordering::SeqCst) {
                IDLE => {
                    if st
                        .compare_exchange(IDLE, QUEUED, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        self.shared.active.fetch_add(1, Ordering::SeqCst);
                        self.shared.inject(self.slot);
                        return;
                    }
                }
                RUNNING => {
                    // The slice may already have checked its inbox; DIRTY
                    // forces the worker to requeue instead of retiring.
                    if st
                        .compare_exchange(RUNNING, DIRTY, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued (or already marked dirty): the pending
                // wakeup covers this delivery too.
                _ => return,
            }
        }
    }
}

/// How a daemon wakes a site after delivering into its inbox: a dedicated
/// thread's [`Notify`] (thread-per-site baseline, deterministic mode) or
/// the scheduler's readiness protocol. Delivery must complete before the
/// wake in either case.
pub enum SiteWake {
    Notify(Arc<Notify>),
    Sched(ReadyHandle),
}

impl SiteWake {
    pub fn wake(&self) {
        match self {
            SiteWake::Notify(n) => n.notify(),
            SiteWake::Sched(h) => h.mark_ready(),
        }
    }
}

/// How many injector entries a worker moves to its local queue per grab.
const INJECTOR_BATCH: usize = 32;

/// One pool worker. Runs on its own OS thread via [`Worker::run`].
pub struct Worker {
    shared: Arc<Shared>,
    index: usize,
    slice_fuel: u64,
    /// xorshift state for randomized victim selection.
    rng: u64,
}

impl Worker {
    pub fn new(shared: Arc<Shared>, index: usize, slice_fuel: u64) -> Worker {
        Worker {
            shared,
            index,
            slice_fuel,
            rng: 0x9e3779b97f4a7c15 ^ (index as u64 + 1).wrapping_mul(0xbf58476d1ce4e5b9),
        }
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// The worker loop: find a ready site, pump one slice, requeue or
    /// retire it; park when every queue is empty.
    pub fn run(mut self) {
        loop {
            if self.shared.stop.load(Ordering::Relaxed) {
                return;
            }
            match self.find_work() {
                Some(slot) => self.run_slot(slot),
                None => {
                    // Register as parked BEFORE the final re-check: any
                    // producer pushes work before checking the parked
                    // list, so either our re-check sees the work or the
                    // producer sees us and wakes us.
                    self.shared.parked.lock().push(self.index);
                    self.shared.n_parked.fetch_add(1, Ordering::SeqCst);
                    self.shared.parks.fetch_add(1, Ordering::Relaxed);
                    if self.any_work() || self.shared.stop.load(Ordering::Relaxed) {
                        self.unregister_parked();
                        continue;
                    }
                    // The timeout only bounds worst-case stop latency; the
                    // normal path is an explicit unpark.
                    self.shared.wakers[self.index]
                        .wait_timeout(std::time::Duration::from_millis(100));
                    self.unregister_parked();
                }
            }
        }
    }

    /// Remove this worker from the parked stack if a producer did not
    /// already pop it.
    fn unregister_parked(&self) {
        let mut parked = self.shared.parked.lock();
        if let Some(pos) = parked.iter().position(|&w| w == self.index) {
            parked.remove(pos);
            self.shared.n_parked.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Is there anything anywhere (injector or any local queue)?
    fn any_work(&self) -> bool {
        if !self.shared.injector.lock().is_empty() {
            return true;
        }
        self.shared.locals.iter().any(|q| !q.lock().is_empty())
    }

    /// Local LIFO pop → injector grab (batched) → randomized steal.
    fn find_work(&mut self) -> Option<u32> {
        if let Some(s) = self.shared.locals[self.index].lock().pop_back() {
            return Some(s);
        }
        {
            let mut inj = self.shared.injector.lock();
            if let Some(s) = inj.pop_front() {
                // Move a batch into the local queue to amortize the
                // injector lock; surplus is stealable there.
                let extra: Vec<u32> = (1..INJECTOR_BATCH).map_while(|_| inj.pop_front()).collect();
                drop(inj);
                if !extra.is_empty() {
                    let mut local = self.shared.locals[self.index].lock();
                    local.extend(extra);
                    let depth = local.len() as u64;
                    drop(local);
                    self.shared
                        .max_ready_depth
                        .fetch_max(depth, Ordering::Relaxed);
                    self.shared.unpark_one();
                }
                return Some(s);
            }
        }
        let n = self.shared.locals.len();
        if n <= 1 {
            return None;
        }
        // One randomized sweep over the other workers; steal half of the
        // first non-empty victim queue, coldest entries first.
        let start = (self.next_rand() as usize) % n;
        for i in 0..n {
            let victim = (start + i) % n;
            if victim == self.index {
                continue;
            }
            let mut v = self.shared.locals[victim].lock();
            if v.is_empty() {
                continue;
            }
            let take = v.len().div_ceil(2);
            let stolen: Vec<u32> = v.drain(..take).collect();
            drop(v);
            self.shared.steals.fetch_add(1, Ordering::Relaxed);
            let (first, rest) = stolen.split_first().expect("take >= 1");
            if !rest.is_empty() {
                self.shared.locals[self.index].lock().extend(rest);
            }
            return Some(*first);
        }
        None
    }

    /// Pump one slice of `slot` and requeue or retire it.
    fn run_slot(&mut self, slot: u32) {
        let cell = &self.shared.slots[slot as usize];
        // The slot came out of exactly one queue, so no other worker can
        // hold it: the only possible concurrent transition is
        // QUEUED→QUEUED no-ops from mark_ready. Entering RUNNING before
        // the first poll keeps the active count covering every consumed
        // packet (termination-safety point 2 in the module docs).
        cell.state.store(RUNNING, Ordering::SeqCst);
        cell.slices.fetch_add(1, Ordering::Relaxed);
        self.shared.running[self.index].store(slot, Ordering::SeqCst);
        let outcome = {
            let mut site = cell.site.lock();
            site.pump_slice(self.slice_fuel)
        };
        self.shared.running[self.index].store(NO_SLOT, Ordering::SeqCst);
        if outcome.runnable || outcome.inbox_nonempty {
            // Still work to do: back of the local queue (hot site runs
            // next). Overwrites DIRTY, which is fine — requeueing is what
            // DIRTY asks for.
            cell.state.store(QUEUED, Ordering::SeqCst);
            let mut local = self.shared.locals[self.index].lock();
            local.push_back(slot);
            let depth = local.len() as u64;
            let surplus = local.len() > 1;
            drop(local);
            self.shared
                .max_ready_depth
                .fetch_max(depth, Ordering::Relaxed);
            if surplus {
                // More than this worker can run next: offer it to a
                // parked worker.
                self.shared.unpark_one();
            }
            return;
        }
        // Retire: nothing runnable, inbox empty at the check. A delivery
        // that raced in since then flipped the state to DIRTY and the CAS
        // fails — requeue instead (termination-safety point 3).
        match cell
            .state
            .compare_exchange(RUNNING, IDLE, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => {
                if self.shared.active.fetch_sub(1, Ordering::SeqCst) == 1 {
                    // Pool idle edge: let the environment thread probe.
                    self.shared.idle.notify();
                }
            }
            Err(_) => {
                cell.state.store(QUEUED, Ordering::SeqCst);
                let mut local = self.shared.locals[self.index].lock();
                local.push_back(slot);
                drop(local);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_resolves_workers() {
        let c = SchedConfig::default();
        assert!(c.effective_workers() >= 1);
        let c = SchedConfig {
            workers: 3,
            ..SchedConfig::default()
        };
        assert_eq!(c.effective_workers(), 3);
    }

    #[test]
    fn empty_pool_signals_idle_immediately() {
        let shared = Shared::new(Vec::new(), 2);
        assert_eq!(shared.active_sites(), 0);
        // The idle notification is already pending.
        let t0 = std::time::Instant::now();
        shared.idle.wait_timeout(std::time::Duration::from_secs(5));
        assert!(t0.elapsed() < std::time::Duration::from_secs(1));
    }
}
