//! Hardware-independent byte encoding of packets and mobile byte-code.
//!
//! §1 of the paper: *"we provide inter-platform support in heterogeneous
//! networks by using emulated byte-code for implementation technology"*.
//! Everything that crosses a node boundary is serialized with this codec:
//! shipped messages and objects, fetched class groups, and the name-service
//! protocol. All integers are little-endian; strings are length-prefixed
//! UTF-8; floats are IEEE-754 bit patterns.

use crate::digest::Digest;
use crate::program::{Block, ImportKind, Instr};
use crate::wire::{WireCode, WireGroup, WireObj, WireWord};
use crate::word::{Identity, NetRef, NodeId, SiteId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use tyco_syntax::ast::{BinOp, UnOp};

/// A decoding failure.
#[derive(Debug, Clone, PartialEq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

type R<T> = Result<T, CodecError>;

fn err<T>(msg: impl Into<String>) -> R<T> {
    Err(CodecError(msg.into()))
}

/// A hash of an exported identifier's canonical type, shipped alongside
/// name-service traffic so the importer can be refused *at bind time* when
/// the two sites disagree about a protocol (§7: static checks across
/// sites). The canonical string rides along so that a fingerprint miss can
/// fall back to a structural compatibility check (open rows widen).
#[derive(Debug, Clone, PartialEq)]
pub struct TypeStamp {
    /// FNV-1a hash of `canonical`.
    pub fingerprint: u64,
    /// The α-renamed canonical form of the type (see `tyco_types::canonical`).
    pub canonical: String,
}

/// Version of the TCP wire protocol (frame layout + packet encodings).
/// Each side announces it in the [`Packet::Hello`] handshake; a mismatch
/// closes the connection instead of misinterpreting bytes.
///
/// v2: code-carrying packets ([`Packet::Obj`], [`Packet::FetchReply`])
/// carry a content digest, and the digest-only dedup variants
/// ([`Packet::ObjRef`], [`Packet::FetchReplyRef`], [`Packet::NeedCode`],
/// [`Packet::HaveCode`]) exist.
///
/// v3: sharded name service — the lease-granting answer
/// ([`Packet::NsLease`]), the re-export epoch invalidation
/// ([`Packet::NsInvalidate`]), and the shard replication record
/// ([`Packet::NsRepl`]) exist.
pub const WIRE_VERSION: u32 = 3;

/// Upper bound on a frame body. A length prefix beyond this is treated as
/// a corrupt or hostile stream and the connection is dropped — the bound
/// exists so a single bad length cannot make a reader allocate gigabytes.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Sentinel node id for transport-level control frames (handshake,
/// heartbeats): they are consumed by the connection actor and never enter
/// a node's packet queue.
pub const CONTROL_NODE: NodeId = NodeId(u32::MAX);

/// Everything a TyCOd daemon routes between nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum Packet {
    /// A shipped asynchronous message (SHIPM).
    Msg {
        dest: NetRef,
        label: String,
        args: Vec<WireWord>,
    },
    /// A migrating object (SHIPO). Carries the content digest of
    /// `obj.code` so receivers can cache the image and senders can switch
    /// to [`Packet::ObjRef`] for later shipments of the same code.
    Obj {
        dest: NetRef,
        digest: Digest,
        obj: WireObj,
    },
    /// Request for the byte-code of an exported class (FETCH, step 1).
    FetchReq {
        class: NetRef,
        req: u64,
        reply_to: Identity,
    },
    /// The packaged byte-code (FETCH, step 2), stamped with the content
    /// digest of `group.code`.
    FetchReply {
        to: Identity,
        req: u64,
        digest: Digest,
        group: WireGroup,
        index: u8,
    },
    /// Name-service registration of an exported identifier.
    NsRegister {
        from_site: SiteId,
        site_lexeme: String,
        name: String,
        value: WireWord,
        /// Type stamp of the export; `None` for untyped registrations.
        stamp: Option<TypeStamp>,
    },
    /// Name-service lookup.
    NsImport {
        req: u64,
        site: String,
        name: String,
        kind: ImportKind,
        reply_to: Identity,
        /// What the importer expects the name's type to be; `None` skips
        /// the bind-time compatibility check.
        expect: Option<TypeStamp>,
    },
    /// Name-service answer.
    NsImportReply {
        to: Identity,
        req: u64,
        result: Result<WireWord, String>,
    },
    /// Node liveness beacon (failure detection, §7 future work).
    Heartbeat { node: NodeId, seq: u64 },
    /// Termination-detection probe (coordinator → nodes).
    TermProbe { round: u64 },
    /// Termination-detection report (node → coordinator).
    TermReport {
        node: NodeId,
        round: u64,
        sent: u64,
        recv: u64,
        active: bool,
    },
    /// Transport handshake: the first frame on every TCP connection. It
    /// announces the sender's wire-protocol version and the node ids the
    /// sending process hosts, so the receiver can route outbound packets
    /// for those nodes over this connection.
    Hello { version: u32, nodes: Vec<NodeId> },
    /// Deduplicated [`Packet::Obj`]: the code image is replaced by its
    /// digest because the sender believes the receiving node already
    /// holds it. The per-shipment state (`table`, `captured`) still
    /// rides along in full.
    ObjRef {
        dest: NetRef,
        digest: Digest,
        table: u32,
        captured: Vec<WireWord>,
    },
    /// Deduplicated [`Packet::FetchReply`]: digest instead of code.
    FetchReplyRef {
        to: Identity,
        req: u64,
        digest: Digest,
        table: u32,
        captured: Vec<WireWord>,
        index: u8,
    },
    /// Cache-miss negotiation: a node received a digest-only packet for
    /// code it does not hold and asks the sender to ship the bytes.
    NeedCode { from: NodeId, digest: Digest },
    /// Answer to [`Packet::NeedCode`]: the full code image for `digest`.
    HaveCode {
        to: NodeId,
        digest: Digest,
        code: WireCode,
    },
    /// Name-service answer that also grants the importing *node* a lease
    /// on the binding (sharded mode). The receiving daemon caches
    /// `(site, name) → (value, stamp, epoch)` in its `NameCache` until
    /// the lease TTL runs out or a [`Packet::NsInvalidate`] arrives, then
    /// hands the resolved value to the waiting site exactly like a
    /// [`Packet::NsImportReply`]. Errors never grant leases and keep
    /// using `NsImportReply`.
    NsLease {
        to: Identity,
        req: u64,
        site: String,
        name: String,
        value: WireWord,
        stamp: Option<TypeStamp>,
        /// Re-export epoch of the binding at the owning shard. A later
        /// invalidation only applies if it carries a higher epoch.
        epoch: u64,
    },
    /// Re-export notification: the owning shard bumped the binding's
    /// epoch, so every lessee node must drop its cached entry (and tell
    /// its sites to forget the resolved binding) before the next import.
    NsInvalidate {
        to: NodeId,
        site: String,
        name: String,
        epoch: u64,
    },
    /// Asynchronous shard replication: a registration applied by the
    /// shard that accepted it, shipped to its replica partner. `seq` is
    /// the shipper's log position; links are FIFO so the partner applies
    /// records in order and drops stale re-deliveries.
    NsRepl {
        to: NodeId,
        seq: u64,
        from_site: SiteId,
        site_lexeme: String,
        name: String,
        value: WireWord,
        stamp: Option<TypeStamp>,
        epoch: u64,
    },
}

// -- primitive writers -------------------------------------------------------

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> R<String> {
    if buf.remaining() < 4 {
        return err("truncated string length");
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n {
        return err("truncated string body");
    }
    let s = std::str::from_utf8(&buf.chunk()[..n])
        .map_err(|e| CodecError(format!("bad utf8: {e}")))?
        .to_owned();
    buf.advance(n);
    Ok(s)
}

fn put_stamp(buf: &mut BytesMut, s: &Option<TypeStamp>) {
    match s {
        None => buf.put_u8(0),
        Some(t) => {
            buf.put_u8(1);
            buf.put_u64_le(t.fingerprint);
            put_str(buf, &t.canonical);
        }
    }
}

fn get_stamp(buf: &mut Bytes) -> R<Option<TypeStamp>> {
    if !buf.has_remaining() {
        return err("truncated stamp flag");
    }
    match buf.get_u8() {
        0 => Ok(None),
        1 => {
            if buf.remaining() < 8 {
                return err("truncated stamp fingerprint");
            }
            let fingerprint = buf.get_u64_le();
            let canonical = get_str(buf)?;
            Ok(Some(TypeStamp {
                fingerprint,
                canonical,
            }))
        }
        f => err(format!("bad stamp flag {f}")),
    }
}

fn put_netref(buf: &mut BytesMut, r: &NetRef) {
    buf.put_u64_le(r.heap_id);
    buf.put_u32_le(r.site.0);
    buf.put_u32_le(r.node.0);
}

fn get_netref(buf: &mut Bytes) -> R<NetRef> {
    if buf.remaining() < 16 {
        return err("truncated netref");
    }
    Ok(NetRef {
        heap_id: buf.get_u64_le(),
        site: SiteId(buf.get_u32_le()),
        node: NodeId(buf.get_u32_le()),
    })
}

fn put_digest(buf: &mut BytesMut, d: &Digest) {
    buf.put_u128_le(d.0);
}

fn get_digest(buf: &mut Bytes) -> R<Digest> {
    if buf.remaining() < Digest::SIZE {
        return err("truncated digest");
    }
    Ok(Digest(buf.get_u128_le()))
}

fn put_identity(buf: &mut BytesMut, i: &Identity) {
    buf.put_u32_le(i.site.0);
    buf.put_u32_le(i.node.0);
}

fn get_identity(buf: &mut Bytes) -> R<Identity> {
    if buf.remaining() < 8 {
        return err("truncated identity");
    }
    Ok(Identity {
        site: SiteId(buf.get_u32_le()),
        node: NodeId(buf.get_u32_le()),
    })
}

// -- wire words ---------------------------------------------------------------

fn put_word(buf: &mut BytesMut, w: &WireWord) {
    match w {
        WireWord::Unit => buf.put_u8(0),
        WireWord::Int(i) => {
            buf.put_u8(1);
            buf.put_i64_le(*i);
        }
        WireWord::Bool(b) => {
            buf.put_u8(2);
            buf.put_u8(*b as u8);
        }
        WireWord::Float(x) => {
            buf.put_u8(3);
            buf.put_u64_le(x.to_bits());
        }
        WireWord::Str(s) => {
            buf.put_u8(4);
            put_str(buf, s);
        }
        WireWord::Chan(r) => {
            buf.put_u8(5);
            put_netref(buf, r);
        }
        WireWord::Class(r) => {
            buf.put_u8(6);
            put_netref(buf, r);
        }
    }
}

fn get_word(buf: &mut Bytes) -> R<WireWord> {
    if !buf.has_remaining() {
        return err("truncated word tag");
    }
    Ok(match buf.get_u8() {
        0 => WireWord::Unit,
        1 => {
            if buf.remaining() < 8 {
                return err("truncated int");
            }
            WireWord::Int(buf.get_i64_le())
        }
        2 => {
            if !buf.has_remaining() {
                return err("truncated bool");
            }
            WireWord::Bool(buf.get_u8() != 0)
        }
        3 => {
            if buf.remaining() < 8 {
                return err("truncated float");
            }
            WireWord::Float(f64::from_bits(buf.get_u64_le()))
        }
        4 => WireWord::Str(get_str(buf)?),
        5 => WireWord::Chan(get_netref(buf)?),
        6 => WireWord::Class(get_netref(buf)?),
        t => return err(format!("bad word tag {t}")),
    })
}

fn put_words(buf: &mut BytesMut, ws: &[WireWord]) {
    buf.put_u32_le(ws.len() as u32);
    for w in ws {
        put_word(buf, w);
    }
}

fn get_words(buf: &mut Bytes) -> R<Vec<WireWord>> {
    if buf.remaining() < 4 {
        return err("truncated word list");
    }
    let n = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        out.push(get_word(buf)?);
    }
    Ok(out)
}

// -- instructions ----------------------------------------------------------------

fn binop_code(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Mod => 4,
        BinOp::Eq => 5,
        BinOp::Ne => 6,
        BinOp::Lt => 7,
        BinOp::Le => 8,
        BinOp::Gt => 9,
        BinOp::Ge => 10,
        BinOp::And => 11,
        BinOp::Or => 12,
        BinOp::Concat => 13,
    }
}

fn binop_from(code: u8) -> R<BinOp> {
    Ok(match code {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Mod,
        5 => BinOp::Eq,
        6 => BinOp::Ne,
        7 => BinOp::Lt,
        8 => BinOp::Le,
        9 => BinOp::Gt,
        10 => BinOp::Ge,
        11 => BinOp::And,
        12 => BinOp::Or,
        13 => BinOp::Concat,
        other => return err(format!("bad binop {other}")),
    })
}

fn put_instr(buf: &mut BytesMut, ins: &Instr) {
    match ins {
        Instr::PushLocal(s) => {
            buf.put_u8(0);
            buf.put_u16_le(*s);
        }
        Instr::PushInt(i) => {
            buf.put_u8(1);
            buf.put_i64_le(*i);
        }
        Instr::PushBool(b) => {
            buf.put_u8(2);
            buf.put_u8(*b as u8);
        }
        Instr::PushFloat(x) => {
            buf.put_u8(3);
            buf.put_u64_le(x.to_bits());
        }
        Instr::PushStr(s) => {
            buf.put_u8(4);
            buf.put_u32_le(*s);
        }
        Instr::PushUnit => buf.put_u8(5),
        Instr::PushSibling(i) => {
            buf.put_u8(6);
            buf.put_u8(*i);
        }
        Instr::Store(s) => {
            buf.put_u8(7);
            buf.put_u16_le(*s);
        }
        Instr::Bin(op) => {
            buf.put_u8(8);
            buf.put_u8(binop_code(*op));
        }
        Instr::Un(op) => {
            buf.put_u8(9);
            buf.put_u8(matches!(op, UnOp::Not) as u8);
        }
        Instr::Jump(t) => {
            buf.put_u8(10);
            buf.put_u32_le(*t);
        }
        Instr::JumpIfFalse(t) => {
            buf.put_u8(11);
            buf.put_u32_le(*t);
        }
        Instr::Halt => buf.put_u8(12),
        Instr::NewChan(s) => {
            buf.put_u8(13);
            buf.put_u16_le(*s);
        }
        Instr::Fork { block, nfree } => {
            buf.put_u8(14);
            buf.put_u32_le(*block);
            buf.put_u16_le(*nfree);
        }
        Instr::TrMsg { label, argc } => {
            buf.put_u8(15);
            buf.put_u32_le(*label);
            buf.put_u8(*argc);
        }
        Instr::TrObj { table, nfree } => {
            buf.put_u8(16);
            buf.put_u32_le(*table);
            buf.put_u16_le(*nfree);
        }
        Instr::InstOf { argc } => {
            buf.put_u8(17);
            buf.put_u8(*argc);
        }
        Instr::MkGroup {
            table,
            dst,
            count,
            nfree,
        } => {
            buf.put_u8(18);
            buf.put_u32_le(*table);
            buf.put_u16_le(*dst);
            buf.put_u8(*count);
            buf.put_u16_le(*nfree);
        }
        Instr::ExportName { slot, name } => {
            buf.put_u8(19);
            buf.put_u16_le(*slot);
            buf.put_u32_le(*name);
        }
        Instr::ExportClass { slot, name } => {
            buf.put_u8(20);
            buf.put_u16_le(*slot);
            buf.put_u32_le(*name);
        }
        Instr::Import {
            dst,
            site,
            name,
            kind,
        } => {
            buf.put_u8(21);
            buf.put_u16_le(*dst);
            buf.put_u32_le(*site);
            buf.put_u32_le(*name);
            buf.put_u8(matches!(kind, ImportKind::Class) as u8);
        }
        Instr::Print { argc, newline } => {
            buf.put_u8(22);
            buf.put_u8(*argc);
            buf.put_u8(*newline as u8);
        }
        // Fused superinstructions are machine-internal (see `crate::fuse`):
        // the wire opcode set is frozen at 0–22 and every serialization
        // entry point (`wire::pack`, `image::to_bytes`, `asm::emit`)
        // normalizes before reaching the codec, so there is deliberately no
        // encoding — and therefore no way for untrusted bytes to decode —
        // for these forms.
        Instr::PushLocal2 { .. }
        | Instr::PushLocalInt { .. }
        | Instr::PushIntBin { .. }
        | Instr::BinJumpIfFalse { .. }
        | Instr::PushLocalTrMsg { .. }
        | Instr::PushLocalTrObj { .. }
        | Instr::PushLocalInstOf { .. }
        | Instr::PushSiblingInstOf { .. }
        | Instr::PushSiblingLocal { .. } => {
            unreachable!("attempted to serialize a fused superinstruction")
        }
    }
}

fn get_instr(buf: &mut Bytes) -> R<Instr> {
    if !buf.has_remaining() {
        return err("truncated instruction");
    }
    macro_rules! need {
        ($n:expr) => {
            if buf.remaining() < $n {
                return err("truncated operand");
            }
        };
    }
    Ok(match buf.get_u8() {
        0 => {
            need!(2);
            Instr::PushLocal(buf.get_u16_le())
        }
        1 => {
            need!(8);
            Instr::PushInt(buf.get_i64_le())
        }
        2 => {
            need!(1);
            Instr::PushBool(buf.get_u8() != 0)
        }
        3 => {
            need!(8);
            Instr::PushFloat(f64::from_bits(buf.get_u64_le()))
        }
        4 => {
            need!(4);
            Instr::PushStr(buf.get_u32_le())
        }
        5 => Instr::PushUnit,
        6 => {
            need!(1);
            Instr::PushSibling(buf.get_u8())
        }
        7 => {
            need!(2);
            Instr::Store(buf.get_u16_le())
        }
        8 => {
            need!(1);
            Instr::Bin(binop_from(buf.get_u8())?)
        }
        9 => {
            need!(1);
            Instr::Un(if buf.get_u8() != 0 {
                UnOp::Not
            } else {
                UnOp::Neg
            })
        }
        10 => {
            need!(4);
            Instr::Jump(buf.get_u32_le())
        }
        11 => {
            need!(4);
            Instr::JumpIfFalse(buf.get_u32_le())
        }
        12 => Instr::Halt,
        13 => {
            need!(2);
            Instr::NewChan(buf.get_u16_le())
        }
        14 => {
            need!(6);
            Instr::Fork {
                block: buf.get_u32_le(),
                nfree: buf.get_u16_le(),
            }
        }
        15 => {
            need!(5);
            Instr::TrMsg {
                label: buf.get_u32_le(),
                argc: buf.get_u8(),
            }
        }
        16 => {
            need!(6);
            Instr::TrObj {
                table: buf.get_u32_le(),
                nfree: buf.get_u16_le(),
            }
        }
        17 => {
            need!(1);
            Instr::InstOf { argc: buf.get_u8() }
        }
        18 => {
            need!(9);
            Instr::MkGroup {
                table: buf.get_u32_le(),
                dst: buf.get_u16_le(),
                count: buf.get_u8(),
                nfree: buf.get_u16_le(),
            }
        }
        19 => {
            need!(6);
            Instr::ExportName {
                slot: buf.get_u16_le(),
                name: buf.get_u32_le(),
            }
        }
        20 => {
            need!(6);
            Instr::ExportClass {
                slot: buf.get_u16_le(),
                name: buf.get_u32_le(),
            }
        }
        21 => {
            need!(11);
            Instr::Import {
                dst: buf.get_u16_le(),
                site: buf.get_u32_le(),
                name: buf.get_u32_le(),
                kind: if buf.get_u8() != 0 {
                    ImportKind::Class
                } else {
                    ImportKind::Name
                },
            }
        }
        22 => {
            need!(2);
            Instr::Print {
                argc: buf.get_u8(),
                newline: buf.get_u8() != 0,
            }
        }
        t => return err(format!("bad opcode {t}")),
    })
}

// -- code bundles -------------------------------------------------------------------

pub(crate) fn put_code(buf: &mut BytesMut, code: &WireCode) {
    buf.put_u32_le(code.blocks.len() as u32);
    for b in &code.blocks {
        put_str(buf, &b.name);
        buf.put_u16_le(b.nfree);
        buf.put_u16_le(b.nparams);
        buf.put_u16_le(b.nlocals);
        buf.put_u8(b.is_class_body as u8);
        buf.put_u32_le(b.code.len() as u32);
        for ins in b.code.iter() {
            put_instr(buf, ins);
        }
    }
    buf.put_u32_le(code.tables.len() as u32);
    for t in &code.tables {
        buf.put_u32_le(t.len() as u32);
        for (l, b) in t {
            buf.put_u32_le(*l);
            buf.put_u32_le(*b);
        }
    }
    buf.put_u32_le(code.labels.len() as u32);
    for l in &code.labels {
        put_str(buf, l);
    }
    buf.put_u32_le(code.strings.len() as u32);
    for s in &code.strings {
        put_str(buf, s);
    }
}

/// The canonical byte serialization of a code bundle — exactly the bytes
/// `put_code` emits inside [`Packet::Obj`] / [`Packet::FetchReply`] /
/// [`Packet::HaveCode`]. This is the input to content fingerprinting: any
/// two sites that would ship identical bytes agree on the digest.
pub fn code_bytes(code: &WireCode) -> Bytes {
    let mut buf = BytesMut::with_capacity(code.approx_size());
    put_code(&mut buf, code);
    buf.freeze()
}

/// Content digest of a code bundle over its canonical codec bytes.
pub fn code_digest(code: &WireCode) -> Digest {
    Digest::of(&code_bytes(code))
}

pub(crate) fn get_code(buf: &mut Bytes) -> R<WireCode> {
    macro_rules! count {
        () => {{
            if buf.remaining() < 4 {
                return err("truncated count");
            }
            buf.get_u32_le() as usize
        }};
    }
    let nblocks = count!();
    let mut blocks = Vec::with_capacity(nblocks.min(4096));
    for _ in 0..nblocks {
        let name = get_str(buf)?;
        if buf.remaining() < 7 {
            return err("truncated block header");
        }
        let nfree = buf.get_u16_le();
        let nparams = buf.get_u16_le();
        let nlocals = buf.get_u16_le();
        let is_class_body = buf.get_u8() != 0;
        let ninstrs = count!();
        let mut code = Vec::with_capacity(ninstrs.min(65536));
        for _ in 0..ninstrs {
            code.push(get_instr(buf)?);
        }
        blocks.push(Block {
            name,
            nfree,
            nparams,
            nlocals,
            is_class_body,
            code: code.into(),
        });
    }
    let ntables = count!();
    let mut tables = Vec::with_capacity(ntables.min(4096));
    for _ in 0..ntables {
        let n = count!();
        let mut t = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            if buf.remaining() < 8 {
                return err("truncated table entry");
            }
            t.push((buf.get_u32_le(), buf.get_u32_le()));
        }
        tables.push(t);
    }
    let nlabels = count!();
    let mut labels = Vec::with_capacity(nlabels.min(4096));
    for _ in 0..nlabels {
        labels.push(get_str(buf)?);
    }
    let nstrings = count!();
    let mut strings = Vec::with_capacity(nstrings.min(4096));
    for _ in 0..nstrings {
        strings.push(get_str(buf)?);
    }
    Ok(WireCode {
        blocks,
        tables,
        labels,
        strings,
    })
}

// -- packets -------------------------------------------------------------------------

/// Encode a packet to bytes.
pub fn encode(p: &Packet) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    encode_into(p, &mut buf);
    buf.freeze()
}

/// Append a packet's encoding to an existing buffer. Batching many
/// packets into one buffer (then freezing once and slicing) costs one
/// allocation per batch instead of one per packet.
pub fn encode_into(p: &Packet, buf: &mut BytesMut) {
    match p {
        Packet::Msg { dest, label, args } => {
            buf.put_u8(0);
            put_netref(buf, dest);
            put_str(buf, label);
            put_words(buf, args);
        }
        Packet::Obj { dest, digest, obj } => {
            buf.put_u8(1);
            put_netref(buf, dest);
            put_digest(buf, digest);
            put_code(buf, &obj.code);
            buf.put_u32_le(obj.table);
            put_words(buf, &obj.captured);
        }
        Packet::FetchReq {
            class,
            req,
            reply_to,
        } => {
            buf.put_u8(2);
            put_netref(buf, class);
            buf.put_u64_le(*req);
            put_identity(buf, reply_to);
        }
        Packet::FetchReply {
            to,
            req,
            digest,
            group,
            index,
        } => {
            buf.put_u8(3);
            put_identity(buf, to);
            buf.put_u64_le(*req);
            put_digest(buf, digest);
            put_code(buf, &group.code);
            buf.put_u32_le(group.table);
            put_words(buf, &group.captured);
            buf.put_u8(*index);
        }
        Packet::NsRegister {
            from_site,
            site_lexeme,
            name,
            value,
            stamp,
        } => {
            buf.put_u8(4);
            buf.put_u32_le(from_site.0);
            put_str(buf, site_lexeme);
            put_str(buf, name);
            put_word(buf, value);
            put_stamp(buf, stamp);
        }
        Packet::NsImport {
            req,
            site,
            name,
            kind,
            reply_to,
            expect,
        } => {
            buf.put_u8(5);
            buf.put_u64_le(*req);
            put_str(buf, site);
            put_str(buf, name);
            buf.put_u8(matches!(kind, ImportKind::Class) as u8);
            put_identity(buf, reply_to);
            put_stamp(buf, expect);
        }
        Packet::NsImportReply { to, req, result } => {
            buf.put_u8(6);
            put_identity(buf, to);
            buf.put_u64_le(*req);
            match result {
                Ok(w) => {
                    buf.put_u8(1);
                    put_word(buf, w);
                }
                Err(e) => {
                    buf.put_u8(0);
                    put_str(buf, e);
                }
            }
        }
        Packet::Heartbeat { node, seq } => {
            buf.put_u8(7);
            buf.put_u32_le(node.0);
            buf.put_u64_le(*seq);
        }
        Packet::TermProbe { round } => {
            buf.put_u8(8);
            buf.put_u64_le(*round);
        }
        Packet::TermReport {
            node,
            round,
            sent,
            recv,
            active,
        } => {
            buf.put_u8(9);
            buf.put_u32_le(node.0);
            buf.put_u64_le(*round);
            buf.put_u64_le(*sent);
            buf.put_u64_le(*recv);
            buf.put_u8(*active as u8);
        }
        Packet::Hello { version, nodes } => {
            buf.put_u8(10);
            buf.put_u32_le(*version);
            buf.put_u32_le(nodes.len() as u32);
            for n in nodes {
                buf.put_u32_le(n.0);
            }
        }
        Packet::ObjRef {
            dest,
            digest,
            table,
            captured,
        } => {
            buf.put_u8(11);
            put_netref(buf, dest);
            put_digest(buf, digest);
            buf.put_u32_le(*table);
            put_words(buf, captured);
        }
        Packet::FetchReplyRef {
            to,
            req,
            digest,
            table,
            captured,
            index,
        } => {
            buf.put_u8(12);
            put_identity(buf, to);
            buf.put_u64_le(*req);
            put_digest(buf, digest);
            buf.put_u32_le(*table);
            put_words(buf, captured);
            buf.put_u8(*index);
        }
        Packet::NeedCode { from, digest } => {
            buf.put_u8(13);
            buf.put_u32_le(from.0);
            put_digest(buf, digest);
        }
        Packet::HaveCode { to, digest, code } => {
            buf.put_u8(14);
            buf.put_u32_le(to.0);
            put_digest(buf, digest);
            put_code(buf, code);
        }
        Packet::NsLease {
            to,
            req,
            site,
            name,
            value,
            stamp,
            epoch,
        } => {
            buf.put_u8(15);
            put_identity(buf, to);
            buf.put_u64_le(*req);
            put_str(buf, site);
            put_str(buf, name);
            put_word(buf, value);
            put_stamp(buf, stamp);
            buf.put_u64_le(*epoch);
        }
        Packet::NsInvalidate {
            to,
            site,
            name,
            epoch,
        } => {
            buf.put_u8(16);
            buf.put_u32_le(to.0);
            put_str(buf, site);
            put_str(buf, name);
            buf.put_u64_le(*epoch);
        }
        Packet::NsRepl {
            to,
            seq,
            from_site,
            site_lexeme,
            name,
            value,
            stamp,
            epoch,
        } => {
            buf.put_u8(17);
            buf.put_u32_le(to.0);
            buf.put_u64_le(*seq);
            buf.put_u32_le(from_site.0);
            put_str(buf, site_lexeme);
            put_str(buf, name);
            put_word(buf, value);
            put_stamp(buf, stamp);
            buf.put_u64_le(*epoch);
        }
    }
}

/// Decode a packet from bytes.
pub fn decode(mut buf: Bytes) -> R<Packet> {
    if !buf.has_remaining() {
        return err("empty packet");
    }
    let tag = buf.get_u8();
    let p = match tag {
        0 => Packet::Msg {
            dest: get_netref(&mut buf)?,
            label: get_str(&mut buf)?,
            args: get_words(&mut buf)?,
        },
        1 => {
            let dest = get_netref(&mut buf)?;
            let digest = get_digest(&mut buf)?;
            let code = get_code(&mut buf)?;
            if buf.remaining() < 4 {
                return err("truncated obj table");
            }
            let table = buf.get_u32_le();
            let captured = get_words(&mut buf)?;
            Packet::Obj {
                dest,
                digest,
                obj: WireObj {
                    code,
                    table,
                    captured,
                },
            }
        }
        2 => {
            let class = get_netref(&mut buf)?;
            if buf.remaining() < 8 {
                return err("truncated req");
            }
            let req = buf.get_u64_le();
            let reply_to = get_identity(&mut buf)?;
            Packet::FetchReq {
                class,
                req,
                reply_to,
            }
        }
        3 => {
            let to = get_identity(&mut buf)?;
            if buf.remaining() < 8 {
                return err("truncated req");
            }
            let req = buf.get_u64_le();
            let digest = get_digest(&mut buf)?;
            let code = get_code(&mut buf)?;
            if buf.remaining() < 4 {
                return err("truncated group table");
            }
            let table = buf.get_u32_le();
            let captured = get_words(&mut buf)?;
            if !buf.has_remaining() {
                return err("truncated index");
            }
            let index = buf.get_u8();
            Packet::FetchReply {
                to,
                req,
                digest,
                group: WireGroup {
                    code,
                    table,
                    captured,
                },
                index,
            }
        }
        4 => {
            if buf.remaining() < 4 {
                return err("truncated site id");
            }
            let from_site = SiteId(buf.get_u32_le());
            let site_lexeme = get_str(&mut buf)?;
            let name = get_str(&mut buf)?;
            let value = get_word(&mut buf)?;
            let stamp = get_stamp(&mut buf)?;
            Packet::NsRegister {
                from_site,
                site_lexeme,
                name,
                value,
                stamp,
            }
        }
        5 => {
            if buf.remaining() < 8 {
                return err("truncated req");
            }
            let req = buf.get_u64_le();
            let site = get_str(&mut buf)?;
            let name = get_str(&mut buf)?;
            if !buf.has_remaining() {
                return err("truncated kind");
            }
            let kind = if buf.get_u8() != 0 {
                ImportKind::Class
            } else {
                ImportKind::Name
            };
            let reply_to = get_identity(&mut buf)?;
            let expect = get_stamp(&mut buf)?;
            Packet::NsImport {
                req,
                site,
                name,
                kind,
                reply_to,
                expect,
            }
        }
        6 => {
            let to = get_identity(&mut buf)?;
            if buf.remaining() < 9 {
                return err("truncated reply");
            }
            let req = buf.get_u64_le();
            let ok = buf.get_u8() != 0;
            let result = if ok {
                Ok(get_word(&mut buf)?)
            } else {
                Err(get_str(&mut buf)?)
            };
            Packet::NsImportReply { to, req, result }
        }
        7 => {
            if buf.remaining() < 12 {
                return err("truncated heartbeat");
            }
            Packet::Heartbeat {
                node: NodeId(buf.get_u32_le()),
                seq: buf.get_u64_le(),
            }
        }
        8 => {
            if buf.remaining() < 8 {
                return err("truncated probe");
            }
            Packet::TermProbe {
                round: buf.get_u64_le(),
            }
        }
        9 => {
            if buf.remaining() < 29 {
                return err("truncated report");
            }
            Packet::TermReport {
                node: NodeId(buf.get_u32_le()),
                round: buf.get_u64_le(),
                sent: buf.get_u64_le(),
                recv: buf.get_u64_le(),
                active: buf.get_u8() != 0,
            }
        }
        10 => {
            if buf.remaining() < 8 {
                return err("truncated hello");
            }
            let version = buf.get_u32_le();
            let n = buf.get_u32_le() as usize;
            let mut nodes = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                if buf.remaining() < 4 {
                    return err("truncated hello node list");
                }
                nodes.push(NodeId(buf.get_u32_le()));
            }
            Packet::Hello { version, nodes }
        }
        11 => {
            let dest = get_netref(&mut buf)?;
            let digest = get_digest(&mut buf)?;
            if buf.remaining() < 4 {
                return err("truncated objref table");
            }
            let table = buf.get_u32_le();
            let captured = get_words(&mut buf)?;
            Packet::ObjRef {
                dest,
                digest,
                table,
                captured,
            }
        }
        12 => {
            let to = get_identity(&mut buf)?;
            if buf.remaining() < 8 {
                return err("truncated req");
            }
            let req = buf.get_u64_le();
            let digest = get_digest(&mut buf)?;
            if buf.remaining() < 4 {
                return err("truncated replyref table");
            }
            let table = buf.get_u32_le();
            let captured = get_words(&mut buf)?;
            if !buf.has_remaining() {
                return err("truncated index");
            }
            let index = buf.get_u8();
            Packet::FetchReplyRef {
                to,
                req,
                digest,
                table,
                captured,
                index,
            }
        }
        13 => {
            if buf.remaining() < 4 {
                return err("truncated needcode node");
            }
            let from = NodeId(buf.get_u32_le());
            let digest = get_digest(&mut buf)?;
            Packet::NeedCode { from, digest }
        }
        14 => {
            if buf.remaining() < 4 {
                return err("truncated havecode node");
            }
            let to = NodeId(buf.get_u32_le());
            let digest = get_digest(&mut buf)?;
            let code = get_code(&mut buf)?;
            Packet::HaveCode { to, digest, code }
        }
        15 => {
            let to = get_identity(&mut buf)?;
            if buf.remaining() < 8 {
                return err("truncated lease req");
            }
            let req = buf.get_u64_le();
            let site = get_str(&mut buf)?;
            let name = get_str(&mut buf)?;
            let value = get_word(&mut buf)?;
            let stamp = get_stamp(&mut buf)?;
            if buf.remaining() < 8 {
                return err("truncated lease epoch");
            }
            let epoch = buf.get_u64_le();
            Packet::NsLease {
                to,
                req,
                site,
                name,
                value,
                stamp,
                epoch,
            }
        }
        16 => {
            if buf.remaining() < 4 {
                return err("truncated invalidate node");
            }
            let to = NodeId(buf.get_u32_le());
            let site = get_str(&mut buf)?;
            let name = get_str(&mut buf)?;
            if buf.remaining() < 8 {
                return err("truncated invalidate epoch");
            }
            let epoch = buf.get_u64_le();
            Packet::NsInvalidate {
                to,
                site,
                name,
                epoch,
            }
        }
        17 => {
            if buf.remaining() < 16 {
                return err("truncated repl header");
            }
            let to = NodeId(buf.get_u32_le());
            let seq = buf.get_u64_le();
            let from_site = SiteId(buf.get_u32_le());
            let site_lexeme = get_str(&mut buf)?;
            let name = get_str(&mut buf)?;
            let value = get_word(&mut buf)?;
            let stamp = get_stamp(&mut buf)?;
            if buf.remaining() < 8 {
                return err("truncated repl epoch");
            }
            let epoch = buf.get_u64_le();
            Packet::NsRepl {
                to,
                seq,
                from_site,
                site_lexeme,
                name,
                value,
                stamp,
                epoch,
            }
        }
        t => return err(format!("bad packet tag {t}")),
    };
    if buf.has_remaining() {
        return err(format!("{} trailing bytes", buf.remaining()));
    }
    Ok(p)
}

// -- TCP frames ---------------------------------------------------------------------

/// One length-prefixed unit on a TCP connection between two TyCOd
/// processes. Layout on the wire:
///
/// ```text
/// u32le body_len | u32le from_node | u32le to_node | packet bytes
/// ```
///
/// The `from`/`to` header exists because a packet's encoding does not
/// always name its destination node (e.g. `NsRegister` is broadcast) and
/// one OS process may host several nodes. Control traffic (handshake,
/// heartbeats) uses [`CONTROL_NODE`] as `to` and is consumed by the
/// connection actor instead of being routed to a node.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    pub from: NodeId,
    pub to: NodeId,
    pub payload: Bytes,
}

/// Append the wire encoding of a frame carrying `payload` to `buf`.
pub fn encode_frame_into(from: NodeId, to: NodeId, payload: &[u8], buf: &mut BytesMut) {
    buf.put_u32_le((payload.len() + 8) as u32);
    buf.put_u32_le(from.0);
    buf.put_u32_le(to.0);
    buf.put_slice(payload);
}

/// Encode a single frame to its own buffer.
pub fn encode_frame(from: NodeId, to: NodeId, payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(payload.len() + 12);
    encode_frame_into(from, to, payload, &mut buf);
    buf.freeze()
}

/// Try to decode one frame from the front of `buf`.
///
/// Returns `Ok(None)` when the buffer holds only a partial frame (read
/// more bytes and retry), `Ok(Some((frame, consumed)))` when a complete
/// frame was parsed (`consumed` bytes should be drained from the front),
/// and `Err` when the stream is corrupt (undersized body or a length
/// prefix beyond [`MAX_FRAME_LEN`]) and the connection must be dropped.
pub fn decode_frame(buf: &[u8]) -> R<Option<(Frame, usize)>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let body_len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if body_len < 8 {
        return err(format!("frame body too short: {body_len} bytes"));
    }
    if body_len > MAX_FRAME_LEN {
        return err(format!("frame body too long: {body_len} bytes"));
    }
    if buf.len() < 4 + body_len {
        return Ok(None);
    }
    let from = NodeId(u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]));
    let to = NodeId(u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]));
    let payload = Bytes::copy_from_slice(&buf[12..4 + body_len]);
    Ok(Some((Frame { from, to, payload }, 4 + body_len)))
}

/// Zero-copy variant of [`decode_frame`]: the payload is a [`Bytes`]
/// view sharing `buf`'s allocation instead of a fresh copy. The
/// event-loop transport accumulates socket reads into a `BytesMut`,
/// freezes it once at least one complete frame is present, and hands
/// each payload onward as a slice of that frozen buffer — the only copy
/// between the kernel and the daemon is the `read(2)` itself.
pub fn decode_frame_view(buf: &Bytes) -> R<Option<(Frame, usize)>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let body_len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if body_len < 8 {
        return err(format!("frame body too short: {body_len} bytes"));
    }
    if body_len > MAX_FRAME_LEN {
        return err(format!("frame body too long: {body_len} bytes"));
    }
    if buf.len() < 4 + body_len {
        return Ok(None);
    }
    let from = NodeId(u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]));
    let to = NodeId(u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]));
    let payload = buf.slice(12..4 + body_len);
    Ok(Some((Frame { from, to, payload }, 4 + body_len)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::wire;
    use tyco_syntax::parse_core;

    fn roundtrip(p: Packet) {
        let bytes = encode(&p);
        let q = decode(bytes).expect("decode");
        assert_eq!(p, q);
    }

    fn nref(h: u64) -> NetRef {
        NetRef {
            heap_id: h,
            site: SiteId(3),
            node: NodeId(1),
        }
    }

    #[test]
    fn msg_roundtrip() {
        roundtrip(Packet::Msg {
            dest: nref(42),
            label: "read".into(),
            args: vec![
                WireWord::Int(-7),
                WireWord::Bool(true),
                WireWord::Str("héllo".into()),
                WireWord::Float(2.5),
                WireWord::Unit,
                WireWord::Chan(nref(9)),
                WireWord::Class(nref(10)),
            ],
        });
    }

    #[test]
    fn obj_with_real_code_roundtrip() {
        let prog = compile(
            &parse_core(
                r#"new x x?{ go(n) = if n > 0 then (print(n) | x!go[n - 1]) else println("done") }"#,
            )
            .unwrap(),
        )
        .unwrap();
        let packed = wire::pack(&prog, &[0]);
        roundtrip(Packet::Obj {
            dest: nref(1),
            digest: code_digest(&packed.code),
            obj: WireObj {
                code: packed.code.clone(),
                table: 0,
                captured: vec![WireWord::Chan(nref(5))],
            },
        });
    }

    #[test]
    fn fetch_roundtrips() {
        roundtrip(Packet::FetchReq {
            class: nref(2),
            req: 77,
            reply_to: Identity {
                site: SiteId(1),
                node: NodeId(0),
            },
        });
        let prog = compile(&parse_core("def K(a) = print(a) in K[1]").unwrap()).unwrap();
        let packed = wire::pack(&prog, &[0]);
        roundtrip(Packet::FetchReply {
            to: Identity {
                site: SiteId(1),
                node: NodeId(0),
            },
            req: 77,
            digest: code_digest(&packed.code),
            group: WireGroup {
                code: packed.code,
                table: 0,
                captured: vec![],
            },
            index: 0,
        });
    }

    #[test]
    fn dedup_variants_roundtrip() {
        roundtrip(Packet::ObjRef {
            dest: nref(1),
            digest: Digest(0x0123456789abcdef_fedcba9876543210),
            table: 4,
            captured: vec![WireWord::Chan(nref(5)), WireWord::Int(12)],
        });
        roundtrip(Packet::FetchReplyRef {
            to: Identity {
                site: SiteId(1),
                node: NodeId(0),
            },
            req: 78,
            digest: Digest(u128::MAX),
            table: 0,
            captured: vec![],
            index: 2,
        });
        roundtrip(Packet::NeedCode {
            from: NodeId(3),
            digest: Digest(1),
        });
        let prog = compile(&parse_core("def K(a) = print(a) in K[1]").unwrap()).unwrap();
        let packed = wire::pack(&prog, &[0]);
        roundtrip(Packet::HaveCode {
            to: NodeId(2),
            digest: code_digest(&packed.code),
            code: packed.code,
        });
    }

    #[test]
    fn code_digest_is_stable_across_reencoding() {
        // Encode → decode → digest must agree with the digest of the
        // original: the digest is over canonical bytes, so a re-shipped
        // image keeps its identity.
        let prog = compile(&parse_core("def K(a) = print(a) in K[1]").unwrap()).unwrap();
        let packed = wire::pack(&prog, &[0]);
        let d = code_digest(&packed.code);
        let p = Packet::HaveCode {
            to: NodeId(0),
            digest: d,
            code: packed.code,
        };
        match decode(encode(&p)).unwrap() {
            Packet::HaveCode { code, .. } => assert_eq!(code_digest(&code), d),
            other => panic!("unexpected {other:?}"),
        }
        // And a different program gets a different digest.
        let other = compile(&parse_core("def K(a) = print(a + 1) in K[2]").unwrap()).unwrap();
        assert_ne!(code_digest(&wire::pack(&other, &[0]).code), d);
    }

    #[test]
    fn nameservice_roundtrips() {
        roundtrip(Packet::NsRegister {
            from_site: SiteId(2),
            site_lexeme: "server".into(),
            name: "appletserver".into(),
            value: WireWord::Chan(nref(0)),
            stamp: None,
        });
        roundtrip(Packet::NsRegister {
            from_site: SiteId(2),
            site_lexeme: "server".into(),
            name: "appletserver".into(),
            value: WireWord::Chan(nref(0)),
            stamp: Some(TypeStamp {
                fingerprint: 0xdeadbeef,
                canonical: "^{val(int)|r0}".into(),
            }),
        });
        roundtrip(Packet::NsImport {
            req: 5,
            site: "server".into(),
            name: "p".into(),
            kind: ImportKind::Class,
            reply_to: Identity {
                site: SiteId(9),
                node: NodeId(2),
            },
            expect: None,
        });
        roundtrip(Packet::NsImport {
            req: 5,
            site: "server".into(),
            name: "p".into(),
            kind: ImportKind::Class,
            reply_to: Identity {
                site: SiteId(9),
                node: NodeId(2),
            },
            expect: Some(TypeStamp {
                fingerprint: 1,
                canonical: "^{val(bool)}".into(),
            }),
        });
        roundtrip(Packet::NsImportReply {
            to: Identity {
                site: SiteId(9),
                node: NodeId(2),
            },
            req: 5,
            result: Ok(WireWord::Class(nref(3))),
        });
        roundtrip(Packet::NsImportReply {
            to: Identity {
                site: SiteId(9),
                node: NodeId(2),
            },
            req: 6,
            result: Err("no such identifier".into()),
        });
    }

    #[test]
    fn sharded_nameservice_roundtrips() {
        roundtrip(Packet::NsLease {
            to: Identity {
                site: SiteId(9),
                node: NodeId(2),
            },
            req: 5,
            site: "server".into(),
            name: "p".into(),
            value: WireWord::Chan(nref(3)),
            stamp: Some(TypeStamp {
                fingerprint: 0xfeed,
                canonical: "^{val(int)|r0}".into(),
            }),
            epoch: 7,
        });
        roundtrip(Packet::NsLease {
            to: Identity {
                site: SiteId(0),
                node: NodeId(0),
            },
            req: 0,
            site: "s".into(),
            name: "n".into(),
            value: WireWord::Class(nref(1)),
            stamp: None,
            epoch: 1,
        });
        roundtrip(Packet::NsInvalidate {
            to: NodeId(3),
            site: "server".into(),
            name: "p".into(),
            epoch: 8,
        });
        roundtrip(Packet::NsRepl {
            to: NodeId(1),
            seq: 42,
            from_site: SiteId(2),
            site_lexeme: "server".into(),
            name: "p".into(),
            value: WireWord::Chan(nref(9)),
            stamp: Some(TypeStamp {
                fingerprint: 1,
                canonical: "^{val(bool)}".into(),
            }),
            epoch: 3,
        });
    }

    #[test]
    fn control_packets_roundtrip() {
        roundtrip(Packet::Heartbeat {
            node: NodeId(4),
            seq: 123,
        });
        roundtrip(Packet::TermProbe { round: 2 });
        roundtrip(Packet::TermReport {
            node: NodeId(1),
            round: 2,
            sent: 100,
            recv: 99,
            active: false,
        });
    }

    #[test]
    fn all_instructions_roundtrip() {
        let instrs = vec![
            Instr::PushLocal(7),
            Instr::PushInt(-1),
            Instr::PushBool(true),
            Instr::PushFloat(1.5),
            Instr::PushStr(3),
            Instr::PushUnit,
            Instr::PushSibling(2),
            Instr::Store(1),
            Instr::Bin(BinOp::Concat),
            Instr::Un(UnOp::Not),
            Instr::Un(UnOp::Neg),
            Instr::Jump(9),
            Instr::JumpIfFalse(4),
            Instr::Halt,
            Instr::NewChan(2),
            Instr::Fork { block: 1, nfree: 2 },
            Instr::TrMsg { label: 0, argc: 3 },
            Instr::TrObj { table: 1, nfree: 0 },
            Instr::InstOf { argc: 2 },
            Instr::MkGroup {
                table: 0,
                dst: 4,
                count: 2,
                nfree: 1,
            },
            Instr::ExportName { slot: 0, name: 1 },
            Instr::ExportClass { slot: 1, name: 2 },
            Instr::Import {
                dst: 3,
                site: 0,
                name: 1,
                kind: ImportKind::Class,
            },
            Instr::Print {
                argc: 2,
                newline: true,
            },
        ];
        let code = WireCode {
            blocks: vec![Block {
                name: "all".into(),
                nfree: 1,
                nparams: 2,
                nlocals: 3,
                is_class_body: true,
                code: instrs.into(),
            }],
            tables: vec![vec![(0, 0)]],
            labels: vec!["go".into()],
            strings: vec!["s".into()],
        };
        roundtrip(Packet::Obj {
            dest: nref(0),
            digest: code_digest(&code),
            obj: WireObj {
                code,
                table: 0,
                captured: vec![],
            },
        });
    }

    #[test]
    fn hello_roundtrip() {
        roundtrip(Packet::Hello {
            version: WIRE_VERSION,
            nodes: vec![NodeId(0), NodeId(3)],
        });
        roundtrip(Packet::Hello {
            version: 99,
            nodes: vec![],
        });
    }

    #[test]
    fn frame_roundtrip_and_partial_reads() {
        let p = encode(&Packet::Heartbeat {
            node: NodeId(2),
            seq: 9,
        });
        let mut buf = BytesMut::new();
        encode_frame_into(NodeId(2), CONTROL_NODE, &p, &mut buf);
        encode_frame_into(NodeId(0), NodeId(1), b"xyz", &mut buf);
        let bytes = buf.freeze();

        // Every prefix shorter than the first frame is "incomplete",
        // never an error.
        let first_len = 4 + 8 + p.len();
        for cut in 0..first_len {
            assert_eq!(decode_frame(&bytes[..cut]).unwrap(), None, "prefix {cut}");
        }
        let (f1, used1) = decode_frame(&bytes).unwrap().unwrap();
        assert_eq!(f1.from, NodeId(2));
        assert_eq!(f1.to, CONTROL_NODE);
        assert_eq!(
            decode(f1.payload).unwrap(),
            Packet::Heartbeat {
                node: NodeId(2),
                seq: 9
            }
        );
        let (f2, used2) = decode_frame(&bytes[used1..]).unwrap().unwrap();
        assert_eq!(f2.to, NodeId(1));
        assert_eq!(f2.payload.as_ref(), b"xyz");
        assert_eq!(used1 + used2, bytes.len());
    }

    #[test]
    fn frame_view_decode_matches_copying_decode() {
        let p = encode(&Packet::Heartbeat {
            node: NodeId(2),
            seq: 9,
        });
        let mut buf = BytesMut::new();
        encode_frame_into(NodeId(2), CONTROL_NODE, &p, &mut buf);
        encode_frame_into(NodeId(0), NodeId(1), b"xyz", &mut buf);
        let bytes = buf.freeze();

        // Walk both decoders over the same stream; the view variant must
        // agree frame-for-frame (its payloads are slices of `bytes`, not
        // copies, but that is unobservable by value).
        let mut cur = bytes.clone();
        let mut off = 0usize;
        for _ in 0..2 {
            let (a, ua) = decode_frame(&bytes[off..]).unwrap().unwrap();
            let (b, ub) = decode_frame_view(&cur).unwrap().unwrap();
            assert_eq!(ua, ub);
            assert_eq!(a.from, b.from);
            assert_eq!(a.to, b.to);
            assert_eq!(a.payload, b.payload);
            off += ua;
            cur.advance(ub);
        }
        assert_eq!(decode_frame_view(&cur).unwrap(), None);
        // Corrupt lengths error identically.
        let huge = Bytes::from(((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec());
        assert!(decode_frame_view(&huge).is_err());
    }

    #[test]
    fn frame_rejects_bad_lengths() {
        // Body length below the 8-byte from/to header is corrupt.
        let short = 4u32.to_le_bytes();
        assert!(decode_frame(&short).is_err());
        // A length prefix beyond MAX_FRAME_LEN is rejected before any
        // allocation of that size happens.
        let huge = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes();
        assert!(decode_frame(&huge).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode(Bytes::from_static(b"")).is_err());
        assert!(decode(Bytes::from_static(b"\xff")).is_err());
        assert!(decode(Bytes::from_static(b"\x00\x01")).is_err());
        // Trailing bytes are an error too.
        let mut ok = encode(&Packet::TermProbe { round: 1 }).to_vec();
        ok.push(0);
        assert!(decode(Bytes::from(ok)).is_err());
    }
}
