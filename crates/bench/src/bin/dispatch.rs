//! Hot-path throughput harness: single-site VM dispatch (instrs/sec) and
//! cross-site fabric messaging (messages/sec), recorded to
//! `BENCH_dispatch.json`.
//!
//! ```sh
//! cargo run --release -p ditico-bench --bin dispatch -- --record current
//! ```
//!
//! `--record baseline` stores the measurements under the `baseline` key,
//! `--record current` (the default) under `current`; whichever section the
//! file already holds is preserved, and when both are present the speedup
//! ratios are recomputed. The workloads are fixed-size and deterministic so
//! baseline and current runs measure the same work.
//!
//! The single-site measurement is an A/B pair over *byte-identical*
//! programs (compiled once, cloned into each machine): the default fused
//! machine and a `Machine::new_unfused` control. The recorded
//! `instrs_per_sec` is the fused number; the unfused control and the ratio
//! land next to it so a fusion regression is visible in the JSON diff.
//! Method inline-cache hit rate and the dominant opcode digrams (from an
//! instrumented telemetry run, never from the timed runs) are recorded too.
//!
//! `--smoke` runs 1%-scale workloads once, skips recording, and instead
//! checks that an existing `BENCH_dispatch.json` still parses and carries
//! both sections — the CI guard against clobbering the A/B record.

use std::time::{Duration, Instant};

use ditico::{Cluster, FabricMode, LinkProfile};
use ditico_bench::{cell_churn, str_churn};
use tyco_vm::{compile, LoopbackPort, Machine, Program};

/// Cell transactions for the single-site dispatch workload.
const CHURN_ITERS: u64 = 500_000;
/// Same shape, but shuttling string payloads (exercises `PushStr`).
const STR_ITERS: u64 = 350_000;
/// Repetitions per single-site workload; best run is recorded.
const REPS: usize = 3;
/// Messages streamed to the hub per cross-site client.
const MSGS_PER_CLIENT: u64 = 96_000;
/// Flow-control window: after every `BURST` pings the client waits for a
/// sync ack, bounding in-flight traffic without idling the wires.
const BURST: u64 = 1_000;
/// Client sites per worker node.
const CLIENTS_PER_NODE: usize = 2;
/// Worker nodes (plus one hub node).
const WORKER_NODES: usize = 3;
/// Hard cap on the threaded run.
const WALL_LIMIT: Duration = Duration::from_secs(60);

fn compile_src(src: &str) -> Program {
    compile(&tyco_syntax::parse_core(src).expect("parses")).expect("compiles")
}

/// Best-of-`reps` wall-clock execution of a pre-compiled single-site
/// program; returns (instructions, ic hit rate, best elapsed). Both A/B
/// arms clone the same `Program`, so they execute byte-identical inputs.
fn time_single_site(prog: &Program, fused: bool, reps: usize) -> (u64, f64, Duration) {
    let mut best = Duration::MAX;
    let mut instrs = 0;
    let mut ic_rate = 0.0;
    for _ in 0..reps {
        let port = LoopbackPort::new("main");
        let mut m = if fused {
            Machine::new(prog.clone(), port)
        } else {
            Machine::new_unfused(prog.clone(), port)
        };
        let start = Instant::now();
        m.run_to_quiescence(u64::MAX).expect("runs");
        let elapsed = start.elapsed();
        instrs = m.stats.instrs;
        ic_rate = m.stats.ic_hit_rate().unwrap_or(0.0);
        if elapsed < best {
            best = elapsed;
        }
    }
    (instrs, ic_rate, best)
}

struct SingleSite {
    fused_ips: f64,
    unfused_ips: f64,
    ic_hit_rate: f64,
}

fn measure_instrs_per_sec(churn_iters: u64, str_iters: u64, reps: usize) -> SingleSite {
    let cell = compile_src(&cell_churn(churn_iters));
    let strp = compile_src(&str_churn(str_iters));
    let mut ips = [0.0f64; 2];
    let mut ic = 0.0;
    for (slot, fused) in [(0, false), (1, true)] {
        let (i1, r1, t1) = time_single_site(&cell, fused, reps);
        let (i2, _r2, t2) = time_single_site(&strp, fused, reps);
        let total = (i1 + i2) as f64;
        let secs = t1.as_secs_f64() + t2.as_secs_f64();
        ips[slot] = total / secs;
        if fused {
            ic = r1;
        }
        println!(
            "single-site[{}]: {} instrs in {:.3}s (cell {:.3}s + str {:.3}s) -> {:.0} instrs/sec",
            if fused { "fused" } else { "unfused" },
            i1 + i2,
            secs,
            t1.as_secs_f64(),
            t2.as_secs_f64(),
            total / secs
        );
    }
    println!(
        "fusion speedup: {:.3}x   method-ic hit rate: {:.1}%",
        ips[1] / ips[0],
        ic * 100.0
    );
    SingleSite {
        fused_ips: ips[1],
        unfused_ips: ips[0],
        ic_hit_rate: ic,
    }
}

/// Dominant dynamic opcode digrams, from a dedicated `--opstats` telemetry
/// run over unfused base opcodes (a fraction of the timed workload; the
/// timed runs carry no instrumentation).
fn top_digrams(n: usize) -> Vec<(String, u64)> {
    let prog = compile_src(&cell_churn(CHURN_ITERS / 100));
    let mut m = Machine::new_unfused(prog, LoopbackPort::new("main"));
    m.enable_opstats();
    m.run_to_quiescence(u64::MAX).expect("runs");
    let ops = m.stats.ops.as_ref().expect("opstats enabled");
    ops.top_digrams(n)
        .into_iter()
        .map(|(a, b, count)| (format!("{a};{b}"), count))
        .collect()
}

/// Threaded cluster: one hub node draining a message stream, `WORKER_NODES`
/// nodes of `CLIENTS_PER_NODE` sites each pushing `msgs_per_client` pings
/// in `BURST`-sized windows closed by a sync round-trip.
fn measure_msgs_per_sec(msgs_per_client: u64) -> f64 {
    let mut c = Cluster::new(FabricMode::Ideal, LinkProfile::ideal(), 1);
    let hub_node = c.add_node();
    c.add_site_src(
        hub_node,
        "hub",
        "def Hub(self) = self?{ ping(x) = Hub[self], sync(r) = (r![0] | Hub[self]) } \
         in export new hub in Hub[hub]",
    )
    .expect("hub compiles");
    let bursts = (msgs_per_client / BURST).max(1);
    for n in 0..WORKER_NODES {
        let node = c.add_node();
        for s in 0..CLIENTS_PER_NODE {
            c.add_site_src(
                node,
                &format!("w{n}{s}"),
                &format!(
                    r#"
                    import hub from hub in
                    def Outer(m) =
                        if m > 0 then new a (Burst[{BURST}, a] | a?(v) = Outer[m - 1])
                        else println("done")
                    and Burst(k, a) =
                        if k > 0 then (hub!ping[k] | Burst[k - 1, a])
                        else hub!sync[a]
                    in Outer[{bursts}]
                    "#
                ),
            )
            .expect("client compiles");
        }
    }
    let start = Instant::now();
    let report = c.run_threaded(WALL_LIMIT);
    let elapsed = start.elapsed();
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    let clients = (WORKER_NODES * CLIENTS_PER_NODE) as u64;
    let expected = clients * (bursts * BURST + 2 * bursts);
    assert!(
        report.fabric_packets >= expected,
        "run ended early: {} of {expected} packets carried",
        report.fabric_packets
    );
    let done = report
        .outputs
        .iter()
        .filter(|(site, lines)| site.starts_with('w') && lines.iter().any(|l| l == "done"))
        .count();
    println!(
        "cross-site: {} fabric packets in {:.3}s ({} of {} clients finished) -> {:.0} msgs/sec",
        report.fabric_packets,
        elapsed.as_secs_f64(),
        done,
        WORKER_NODES * CLIENTS_PER_NODE,
        report.fabric_packets as f64 / elapsed.as_secs_f64()
    );
    report.fabric_packets as f64 / elapsed.as_secs_f64()
}

/// Extract `"key": <number>` from the given JSON section, if present.
fn extract(json: &str, section: &str, key: &str) -> Option<f64> {
    let sec = json.find(&format!("\"{section}\""))?;
    let body = &json[sec..];
    let open = body.find('{')?;
    let close = body[open..].find('}')? + open;
    let body = &body[open..close];
    let k = body.find(&format!("\"{key}\""))?;
    let rest = &body[k..];
    let colon = rest.find(':')?;
    let num: String = rest[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    num.parse().ok()
}

struct Measured {
    single: SingleSite,
    mps: f64,
    digrams: Vec<(String, u64)>,
}

fn section(label: &str, vals: Option<&Measured>, kept: Option<(f64, f64)>) -> String {
    match (vals, kept) {
        (Some(m), _) => {
            let digrams = m
                .digrams
                .iter()
                .map(|(d, c)| format!("      {{ \"digram\": \"{d}\", \"count\": {c} }}"))
                .collect::<Vec<_>>()
                .join(",\n");
            format!(
                "  \"{label}\": {{\n    \"instrs_per_sec\": {:.0},\n    \
                 \"unfused_instrs_per_sec\": {:.0},\n    \
                 \"fusion_speedup\": {:.3},\n    \
                 \"ic_hit_rate\": {:.4},\n    \
                 \"messages_per_sec\": {:.0},\n    \
                 \"top_digrams\": [\n{digrams}\n    ]\n  }}",
                m.single.fused_ips,
                m.single.unfused_ips,
                m.single.fused_ips / m.single.unfused_ips,
                m.single.ic_hit_rate,
                m.mps,
            )
        }
        (None, Some((ips, mps))) => format!(
            "  \"{label}\": {{\n    \"instrs_per_sec\": {ips:.0},\n    \"messages_per_sec\": {mps:.0}\n  }}"
        ),
        (None, None) => format!("  \"{label}\": null"),
    }
}

/// CI guard: the recorded file must parse and carry both sections.
fn smoke_check_record(path: &str) {
    let json = match std::fs::read_to_string(path) {
        Ok(j) => j,
        Err(_) => {
            println!("smoke: no {path} to check (ok on fresh clones)");
            return;
        }
    };
    for sec in ["baseline", "current"] {
        let ips = extract(&json, sec, "instrs_per_sec");
        let mps = extract(&json, sec, "messages_per_sec");
        assert!(
            ips.is_some() && mps.is_some(),
            "{path}: section '{sec}' missing instrs_per_sec/messages_per_sec"
        );
        println!(
            "smoke: {path} '{sec}' ok ({:.0} instrs/sec, {:.0} msgs/sec)",
            ips.unwrap(),
            mps.unwrap()
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let record = match args.iter().position(|a| a == "--record") {
        Some(i) => args.get(i + 1).cloned().unwrap_or_else(|| "current".into()),
        None => "current".into(),
    };
    assert!(
        record == "baseline" || record == "current",
        "--record must be 'baseline' or 'current'"
    );
    let path = "BENCH_dispatch.json";

    if smoke {
        // 1%-scale everything, once, no recording: proves the harness and
        // both machine constructions still run end to end.
        let single = measure_instrs_per_sec(CHURN_ITERS / 100, STR_ITERS / 100, 1);
        assert!(single.fused_ips > 0.0 && single.unfused_ips > 0.0);
        let mps = measure_msgs_per_sec(MSGS_PER_CLIENT / 100);
        assert!(mps > 0.0);
        smoke_check_record(path);
        println!("smoke ok");
        return;
    }

    let measured = Measured {
        single: measure_instrs_per_sec(CHURN_ITERS, STR_ITERS, REPS),
        mps: measure_msgs_per_sec(MSGS_PER_CLIENT),
        digrams: top_digrams(4),
    };

    // Preserve the other section from an existing file.
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let other = if record == "baseline" {
        "current"
    } else {
        "baseline"
    };
    let other_vals = extract(&existing, other, "instrs_per_sec").zip(extract(
        &existing,
        other,
        "messages_per_sec",
    ));

    let (base_ips, base_mps, cur_ips, cur_mps) = if record == "baseline" {
        let (ci, cm) = other_vals.unzip();
        (Some(measured.single.fused_ips), Some(measured.mps), ci, cm)
    } else {
        let (bi, bm) = other_vals.unzip();
        (bi, bm, Some(measured.single.fused_ips), Some(measured.mps))
    };
    let speedup = match (base_ips, base_mps, cur_ips, cur_mps) {
        (Some(bi), Some(bm), Some(ci), Some(cm)) => format!(
            "  \"speedup\": {{\n    \"instrs_per_sec\": {:.2},\n    \"messages_per_sec\": {:.2}\n  }}",
            ci / bi,
            cm / bm
        ),
        _ => "  \"speedup\": null".to_string(),
    };
    let (bsec, csec) = if record == "baseline" {
        (
            section("baseline", Some(&measured), None),
            section("current", None, cur_ips.zip(cur_mps)),
        )
    } else {
        (
            section("baseline", None, base_ips.zip(base_mps)),
            section("current", Some(&measured), None),
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"dispatch\",\n  \"workload\": {{\n    \"single_site\": \"cell_churn({CHURN_ITERS}) + str_churn({STR_ITERS}), best of {REPS}, fused vs unfused A/B on byte-identical programs\",\n    \"cross_site\": \"{WORKER_NODES} nodes x {CLIENTS_PER_NODE} sites streaming {MSGS_PER_CLIENT} msgs (sync every {BURST}) to one hub, ideal fabric, threaded\"\n  }},\n{bsec},\n{csec},\n{speedup}\n}}\n"
    );
    std::fs::write(path, &json).expect("write BENCH_dispatch.json");
    println!("recorded '{record}' in {path}");
}
