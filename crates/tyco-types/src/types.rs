//! The type language of TyCO.
//!
//! Channel types are records of method signatures (§2 of the paper: TyCO
//! "features a (Damas-Milner) polymorphic type-system"). A channel that
//! carries methods `l1 … lk` has type `^{ l1: (T̃1), …, lk: (T̃k) }`. Rows can
//! be *open* (ending in a row variable, produced by message sends which only
//! constrain one label) or *closed* (produced by objects, which offer an
//! exact method collection).

use std::collections::BTreeMap;
use std::fmt;

/// A type variable identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TvId(pub u32);

/// A row variable identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RvId(pub u32);

/// Method label.
pub type Label = String;

/// A TyCO type.
#[derive(Debug, Clone, PartialEq)]
pub enum Type {
    /// A unification variable.
    Var(TvId),
    /// Builtin base types.
    Unit,
    Int,
    Bool,
    Str,
    Float,
    /// A channel type: a row of method signatures.
    Chan(Row),
}

/// A row of method signatures; `rest` is `Some` for open rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Row {
    pub fields: BTreeMap<Label, Vec<Type>>,
    pub rest: Option<RvId>,
}

impl Row {
    /// A closed row with the given fields.
    pub fn closed(fields: impl IntoIterator<Item = (Label, Vec<Type>)>) -> Row {
        Row {
            fields: fields.into_iter().collect(),
            rest: None,
        }
    }

    /// An open row with the given fields and tail variable.
    pub fn open(fields: impl IntoIterator<Item = (Label, Vec<Type>)>, rest: RvId) -> Row {
        Row {
            fields: fields.into_iter().collect(),
            rest: Some(rest),
        }
    }

    pub fn is_closed(&self) -> bool {
        self.rest.is_none()
    }
}

impl Type {
    /// Convenience: a channel carrying a single `val(T̃)` method (closed).
    pub fn val_chan(args: Vec<Type>) -> Type {
        Type::Chan(Row::closed([(crate::VAL.to_string(), args)]))
    }

    /// Collect the free type variables and row variables of the type.
    pub fn free_vars(&self, tvs: &mut Vec<TvId>, rvs: &mut Vec<RvId>) {
        match self {
            Type::Var(v) => {
                if !tvs.contains(v) {
                    tvs.push(*v);
                }
            }
            Type::Unit | Type::Int | Type::Bool | Type::Str | Type::Float => {}
            Type::Chan(row) => {
                for args in row.fields.values() {
                    for t in args {
                        t.free_vars(tvs, rvs);
                    }
                }
                if let Some(r) = row.rest {
                    if !rvs.contains(&r) {
                        rvs.push(r);
                    }
                }
            }
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Var(TvId(n)) => write!(f, "'t{n}"),
            Type::Unit => write!(f, "unit"),
            Type::Int => write!(f, "int"),
            Type::Bool => write!(f, "bool"),
            Type::Str => write!(f, "string"),
            Type::Float => write!(f, "float"),
            Type::Chan(row) => {
                write!(f, "^{{")?;
                let mut first = true;
                for (l, args) in &row.fields {
                    if !first {
                        write!(f, ", ")?;
                    }
                    first = false;
                    write!(f, "{l}(")?;
                    for (i, t) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{t}")?;
                    }
                    write!(f, ")")?;
                }
                if let Some(RvId(r)) = row.rest {
                    if !first {
                        write!(f, " ")?;
                    }
                    write!(f, "| 'r{r}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// A type scheme `∀ ᾱ ρ̄ . T̃` for class variables (classes are processes
/// parameterized on a sequence of names, so their "type" is the sequence of
/// parameter types).
#[derive(Debug, Clone, PartialEq)]
pub struct Scheme {
    pub tvars: Vec<TvId>,
    pub rvars: Vec<RvId>,
    pub params: Vec<Type>,
}

impl Scheme {
    /// A monomorphic scheme (no quantified variables).
    pub fn mono(params: Vec<Type>) -> Scheme {
        Scheme {
            tvars: Vec::new(),
            rvars: Vec::new(),
            params,
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.tvars.is_empty() || !self.rvars.is_empty() {
            write!(f, "forall")?;
            for TvId(v) in &self.tvars {
                write!(f, " 't{v}")?;
            }
            for RvId(v) in &self.rvars {
                write!(f, " 'r{v}")?;
            }
            write!(f, ". ")?;
        }
        write!(f, "(")?;
        for (i, t) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let t = Type::Chan(Row::closed([
            ("read".to_string(), vec![Type::val_chan(vec![Type::Int])]),
            ("write".to_string(), vec![Type::Int]),
        ]));
        assert_eq!(t.to_string(), "^{read(^{val(int)}), write(int)}");
        let open = Type::Chan(Row::open([("l".to_string(), vec![])], RvId(3)));
        assert_eq!(open.to_string(), "^{l() | 'r3}");
    }

    #[test]
    fn free_vars_are_deduplicated() {
        let t = Type::Chan(Row::open(
            [(
                "l".to_string(),
                vec![Type::Var(TvId(1)), Type::Var(TvId(1))],
            )],
            RvId(2),
        ));
        let mut tvs = Vec::new();
        let mut rvs = Vec::new();
        t.free_vars(&mut tvs, &mut rvs);
        assert_eq!(tvs, vec![TvId(1)]);
        assert_eq!(rvs, vec![RvId(2)]);
    }
}
