//! Static byte-code verifier: abstract interpretation of code images
//! *before* they are linked into a program area.
//!
//! DiTyCO ships emulated byte-code between sites (SHIPO / FETCH, §5 of the
//! paper) and dynamically links it into the receiver's program area. A
//! corrupt or adversarial packet could therefore make the emulator index
//! out of bounds or misinterpret a heap word. This module is the static
//! gate: every [`WireCode`] bundle (and every whole [`Program`] image) is
//! checked once, after decode and before link, so the dispatch loop in
//! `machine.rs` never has to re-validate ids or stack depths.
//!
//! The design follows the JVM-verifier shape, specialised to the TyCO
//! instruction set:
//!
//! * **Referential integrity** — every block, method-table, label and
//!   string id referenced by an instruction or a table entry indexes into
//!   the image's own vectors.
//! * **Register-window bounds** — every frame slot access (`pushloc`,
//!   `store`, `newc`, `mkgroup`, `export*`, `import`) stays inside the
//!   block's declared frame (`frame_size()`).
//! * **Operand-stack simulation** — per block, a worklist pass computes
//!   the stack depth and an abstract word kind (`unit`, `int`, `bool`,
//!   `float`, `str`, `chan`, `class`/code-ref, or `⊤`) for every program
//!   point. Underflow, depth disagreement at join points, and *provable*
//!   kind misuse (e.g. `instof` on an integer) are rejected.
//! * **Frame-layout consistency** — a `fork` target must expect exactly
//!   the captured words the spawner pushes; method-table entries reached
//!   by `trobj` must be plain method bodies with matching capture counts;
//!   `mkgroup` tables must contain class bodies (slot 0 holds the
//!   self-class word).
//!
//! Kind checking is deliberately *lenient where the emulator is already
//! safe*: the machine raises clean `VmError`s for dynamically-detected
//! type confusion (`NotAChannel`, `BadOperands`, …), so the verifier only
//! rejects kind errors it can prove, and never rejects any image the
//! compiler produces from a well-typed source (the soundness property
//! tested in `tests/verify_props.rs`).

use crate::program::{Block, Pool, Program};
use crate::wire::WireCode;
use crate::Instr;
use std::fmt;

/// A static well-formedness violation found in a code image.
///
/// Every variant carries enough context (block index, program counter) to
/// point at the offending instruction of the *image*, i.e. packet-relative
/// ids for [`verify_wire`] and program ids for [`verify_program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The program's entry block is missing or expects captures/params.
    BadEntry(String),
    /// An instruction references an id outside the image (`what` is one of
    /// `"block"`, `"table"`, `"label"`, `"string"`).
    BadRef {
        block: u32,
        pc: u32,
        what: &'static str,
        id: u32,
        limit: u32,
    },
    /// A frame-slot access outside the block's register window.
    BadSlot {
        block: u32,
        pc: u32,
        slot: u32,
        frame: u32,
    },
    /// The operand stack would underflow.
    Underflow {
        block: u32,
        pc: u32,
        need: u32,
        have: u32,
    },
    /// Two control-flow paths reach the same point with different depths.
    DepthMismatch { block: u32, pc: u32, a: u32, b: u32 },
    /// A provable abstract-kind misuse (e.g. `instof` on an int).
    KindMismatch {
        block: u32,
        pc: u32,
        expected: &'static str,
        found: &'static str,
    },
    /// A jump target outside the block (`target == len` is the legal
    /// fall-off-the-end halt).
    BadJump {
        block: u32,
        pc: u32,
        target: u32,
        len: u32,
    },
    /// A closure-layout disagreement between a spawn site and its target
    /// block (fork capture count, class-body flag, …).
    FrameLayout { block: u32, pc: u32, detail: String },
    /// A method table entry with an out-of-range label or block id.
    BadTable { table: u32, detail: String },
    /// The same label (method or class id) registered twice in one table:
    /// linking would silently shadow the earlier block.
    DuplicateMethod { table: u32, label: String },
    /// `pushsib` outside a class body (slot 0 holds no class word there).
    SiblingOutsideClass { block: u32, pc: u32 },
    /// A block declares a register window larger than [`MAX_FRAME`]: a
    /// mobile image must not be able to demand an arbitrarily large
    /// allocation per activation.
    FrameTooLarge { block: u32, size: u32, limit: u32 },
}

/// Resource bound on a block's register window (`nfree + nparams +
/// nlocals`, plus the self-class slot). The compiler emits frames of at
/// most a few dozen slots; a fetched image declaring more is either
/// corrupt or a memory bomb — every instantiation would allocate the
/// declared size up front.
pub const MAX_FRAME: u32 = 4096;

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::BadEntry(d) => write!(f, "bad entry block: {d}"),
            VerifyError::BadRef {
                block,
                pc,
                what,
                id,
                limit,
            } => write!(
                f,
                "block {block} pc {pc}: {what} id {id} out of range (< {limit})"
            ),
            VerifyError::BadSlot {
                block,
                pc,
                slot,
                frame,
            } => write!(
                f,
                "block {block} pc {pc}: frame slot {slot} outside window (frame size {frame})"
            ),
            VerifyError::Underflow {
                block,
                pc,
                need,
                have,
            } => write!(
                f,
                "block {block} pc {pc}: operand stack underflow (need {need}, have {have})"
            ),
            VerifyError::DepthMismatch { block, pc, a, b } => write!(
                f,
                "block {block} pc {pc}: inconsistent stack depth at join ({a} vs {b})"
            ),
            VerifyError::KindMismatch {
                block,
                pc,
                expected,
                found,
            } => write!(
                f,
                "block {block} pc {pc}: expected {expected} on stack, found {found}"
            ),
            VerifyError::BadJump {
                block,
                pc,
                target,
                len,
            } => write!(
                f,
                "block {block} pc {pc}: jump target {target} outside block (len {len})"
            ),
            VerifyError::FrameLayout { block, pc, detail } => {
                write!(f, "block {block} pc {pc}: frame layout mismatch: {detail}")
            }
            VerifyError::BadTable { table, detail } => {
                write!(f, "method table {table}: {detail}")
            }
            VerifyError::DuplicateMethod { table, label } => write!(
                f,
                "method table {table}: duplicate registration for label `{label}`"
            ),
            VerifyError::SiblingOutsideClass { block, pc } => {
                write!(f, "block {block} pc {pc}: pushsib outside a class body")
            }
            VerifyError::FrameTooLarge { block, size, limit } => {
                write!(
                    f,
                    "block {block}: frame of {size} slots exceeds the {limit}-slot limit"
                )
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Abstract word kind — the verifier's value lattice. `Top` (⊤) is
/// "any word"; everything else is an exactly-known kind. The paper's
/// "code-ref" words are `Class` (a class/group reference is the only word
/// that carries code identity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Top,
    Unit,
    Int,
    Bool,
    Float,
    Str,
    Chan,
    Class,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Top => "any",
            Kind::Unit => "unit",
            Kind::Int => "int",
            Kind::Bool => "bool",
            Kind::Float => "float",
            Kind::Str => "string",
            Kind::Chan => "channel",
            Kind::Class => "class",
        }
    }

    fn join(self, other: Kind) -> Kind {
        if self == other {
            self
        } else {
            Kind::Top
        }
    }
}

/// Where the image's label names live (for error messages only).
enum Labels<'a> {
    Pool(&'a Pool),
    List(&'a [String]),
}

impl Labels<'_> {
    fn name(&self, l: u32) -> String {
        match self {
            Labels::Pool(p) => p.get(l).to_string(),
            Labels::List(v) => v[l as usize].clone(),
        }
    }
}

/// A borrowed, representation-agnostic view of a code image: whole
/// programs and packet-relative wire bundles verify identically.
struct View<'a> {
    blocks: &'a [Block],
    tables: Vec<&'a [(u32, u32)]>,
    labels: Labels<'a>,
    nlabels: u32,
    nstrings: u32,
}

impl View<'_> {
    /// Upper bound on any valid `pushsib` index. A class group's members
    /// are the entries of one method table from the image that shipped
    /// the group's code (`MkGroup` locally, `link_group` for fetched
    /// code), so no sibling index can reach past the image's widest
    /// table.
    fn max_sibling(&self) -> u32 {
        self.tables.iter().map(|t| t.len()).max().unwrap_or(0) as u32
    }
}

impl View<'_> {
    fn check(&self) -> Result<(), VerifyError> {
        self.check_tables()?;
        for bi in 0..self.blocks.len() as u32 {
            self.check_block(bi)?;
        }
        Ok(())
    }

    /// Label-table referential integrity: every entry indexes a real
    /// label and a real block, and no label is registered twice (method
    /// dispatch and positional class lookup both take the *first* match,
    /// so a duplicate would silently shadow the earlier block).
    fn check_tables(&self) -> Result<(), VerifyError> {
        for (ti, entries) in self.tables.iter().enumerate() {
            let mut seen: Vec<u32> = Vec::with_capacity(entries.len());
            for &(l, b) in entries.iter() {
                if l >= self.nlabels {
                    return Err(VerifyError::BadTable {
                        table: ti as u32,
                        detail: format!("label id {l} out of range (< {})", self.nlabels),
                    });
                }
                if b as usize >= self.blocks.len() {
                    return Err(VerifyError::BadTable {
                        table: ti as u32,
                        detail: format!("block id {b} out of range (< {})", self.blocks.len()),
                    });
                }
                if seen.contains(&l) {
                    return Err(VerifyError::DuplicateMethod {
                        table: ti as u32,
                        label: self.labels.name(l),
                    });
                }
                seen.push(l);
            }
        }
        Ok(())
    }

    /// Abstract interpretation of one block: a worklist fixpoint over
    /// (stack kinds, frame kinds) states at every program point.
    fn check_block(&self, bi: u32) -> Result<(), VerifyError> {
        let b = &self.blocks[bi as usize];
        // Fused superinstructions (machine-internal, see `crate::fuse`) are
        // verified through their normalized two-instruction expansion, so
        // the abstract interpreter models only the base instruction set and
        // fusion can never change a verification verdict. (Error `pc`s for
        // a fused block refer to the normalized code.)
        let normalized;
        let b = match crate::fuse::unfuse_code(&b.code) {
            Some(code) => {
                normalized = Block {
                    code: code.into(),
                    ..b.clone()
                };
                &normalized
            }
            None => b,
        };
        if b.frame_size() as u32 > MAX_FRAME {
            return Err(VerifyError::FrameTooLarge {
                block: bi,
                size: b.frame_size() as u32,
                limit: MAX_FRAME,
            });
        }
        let len = b.code.len() as u32;
        if len == 0 {
            return Ok(());
        }
        // The frame a spawner builds: the self-class word (class bodies
        // only), then captures and parameters of unknown kind, then locals
        // — which the machine zero-fills with `unit` words.
        let mut frame0 = Vec::with_capacity(b.frame_size());
        if b.is_class_body {
            frame0.push(Kind::Class);
        }
        frame0.extend(std::iter::repeat_n(
            Kind::Top,
            b.nfree as usize + b.nparams as usize,
        ));
        frame0.extend(std::iter::repeat_n(Kind::Unit, b.nlocals as usize));
        let mut states: Vec<Option<State>> = vec![None; b.code.len()];
        states[0] = Some(State {
            stack: Vec::new(),
            frame: frame0,
        });
        let mut work: Vec<u32> = vec![0];
        while let Some(pc) = work.pop() {
            let mut st = states[pc as usize].clone().expect("queued pc has a state");
            let succ = self.step(bi, b, pc, &mut st)?;
            let mut flow = |target: u32, work: &mut Vec<u32>| -> Result<(), VerifyError> {
                if target == len {
                    return Ok(()); // falling off the end halts the thread
                }
                if merge(&mut states[target as usize], &st).map_err(|(a, c)| {
                    VerifyError::DepthMismatch {
                        block: bi,
                        pc: target,
                        a,
                        b: c,
                    }
                })? {
                    work.push(target);
                }
                Ok(())
            };
            match succ {
                Succ::Fall => flow(pc + 1, &mut work)?,
                Succ::Jump(t) => flow(t, &mut work)?,
                Succ::Branch(t) => {
                    flow(pc + 1, &mut work)?;
                    flow(t, &mut work)?;
                }
                Succ::Halt => {}
            }
        }
        Ok(())
    }

    /// Transfer function for a single instruction. Mutates `st` into the
    /// out-state and reports the control-flow successors.
    fn step(&self, bi: u32, b: &Block, pc: u32, st: &mut State) -> Result<Succ, VerifyError> {
        let frame = b.frame_size() as u32;
        let len = b.code.len() as u32;
        let slot_ok = |slot: u32| -> Result<(), VerifyError> {
            if slot >= frame {
                Err(VerifyError::BadSlot {
                    block: bi,
                    pc,
                    slot,
                    frame,
                })
            } else {
                Ok(())
            }
        };
        let ref_ok = |what: &'static str, id: u32, limit: u32| -> Result<(), VerifyError> {
            if id >= limit {
                Err(VerifyError::BadRef {
                    block: bi,
                    pc,
                    what,
                    id,
                    limit,
                })
            } else {
                Ok(())
            }
        };
        let jump_ok = |target: u32| -> Result<(), VerifyError> {
            if target > len {
                Err(VerifyError::BadJump {
                    block: bi,
                    pc,
                    target,
                    len,
                })
            } else {
                Ok(())
            }
        };
        macro_rules! pop {
            ($n:expr) => {{
                let n = $n as usize;
                if st.stack.len() < n {
                    return Err(VerifyError::Underflow {
                        block: bi,
                        pc,
                        need: n as u32,
                        have: st.stack.len() as u32,
                    });
                }
                st.stack.truncate(st.stack.len() - n);
            }};
        }
        /// Pop the top word, requiring a kind (Top always passes).
        macro_rules! pop_kind {
            ($ok:pat, $expected:expr) => {{
                match st.stack.pop() {
                    None => {
                        return Err(VerifyError::Underflow {
                            block: bi,
                            pc,
                            need: 1,
                            have: 0,
                        })
                    }
                    Some(Kind::Top) | Some($ok) => {}
                    Some(found) => {
                        return Err(VerifyError::KindMismatch {
                            block: bi,
                            pc,
                            expected: $expected,
                            found: found.name(),
                        })
                    }
                }
            }};
        }
        /// Require the kind held in a (bounds-checked) frame slot.
        macro_rules! slot_kind {
            ($slot:expr, $ok:pat, $expected:expr) => {{
                match st.frame[$slot as usize] {
                    Kind::Top | $ok => {}
                    found => {
                        return Err(VerifyError::KindMismatch {
                            block: bi,
                            pc,
                            expected: $expected,
                            found: found.name(),
                        })
                    }
                }
            }};
        }

        match b.code[pc as usize] {
            Instr::PushLocal(s) => {
                slot_ok(s as u32)?;
                let k = st.frame[s as usize];
                st.stack.push(k);
            }
            Instr::PushInt(_) => st.stack.push(Kind::Int),
            Instr::PushBool(_) => st.stack.push(Kind::Bool),
            Instr::PushFloat(_) => st.stack.push(Kind::Float),
            Instr::PushUnit => st.stack.push(Kind::Unit),
            Instr::PushStr(s) => {
                ref_ok("string", s, self.nstrings)?;
                st.stack.push(Kind::Str);
            }
            Instr::PushSibling(i) => {
                if !b.is_class_body {
                    return Err(VerifyError::SiblingOutsideClass { block: bi, pc });
                }
                // The group this body belongs to draws its members from
                // one table of this same image (see `max_sibling`).
                ref_ok("sibling", i as u32, self.max_sibling())?;
                st.stack.push(Kind::Class);
            }
            Instr::Store(s) => {
                slot_ok(s as u32)?;
                let Some(k) = st.stack.pop() else {
                    return Err(VerifyError::Underflow {
                        block: bi,
                        pc,
                        need: 1,
                        have: 0,
                    });
                };
                st.frame[s as usize] = k;
            }
            Instr::Bin(_) => {
                pop!(2);
                st.stack.push(Kind::Top);
            }
            Instr::Un(_) => {
                pop!(1);
                st.stack.push(Kind::Top);
            }
            Instr::Jump(t) => {
                jump_ok(t)?;
                return Ok(Succ::Jump(t));
            }
            Instr::JumpIfFalse(t) => {
                pop_kind!(Kind::Bool, "bool");
                jump_ok(t)?;
                return Ok(Succ::Branch(t));
            }
            Instr::Halt => return Ok(Succ::Halt),
            Instr::NewChan(s) => {
                slot_ok(s as u32)?;
                st.frame[s as usize] = Kind::Chan;
            }
            Instr::Fork { block, nfree } => {
                ref_ok("block", block, self.blocks.len() as u32)?;
                pop!(nfree);
                let tb = &self.blocks[block as usize];
                if tb.nfree != nfree || tb.nparams != 0 || tb.is_class_body {
                    return Err(VerifyError::FrameLayout {
                        block: bi,
                        pc,
                        detail: format!(
                            "fork of block {block} (free={} params={}{}) with {nfree} captures",
                            tb.nfree,
                            tb.nparams,
                            if tb.is_class_body { " class" } else { "" },
                        ),
                    });
                }
            }
            Instr::TrMsg { label, argc } => {
                ref_ok("label", label, self.nlabels)?;
                pop_kind!(Kind::Chan, "channel");
                pop!(argc);
            }
            Instr::TrObj { table, nfree } => {
                ref_ok("table", table, self.tables.len() as u32)?;
                pop_kind!(Kind::Chan, "channel");
                pop!(nfree);
                for &(_, blk) in self.tables[table as usize] {
                    let eb = &self.blocks[blk as usize];
                    if eb.nfree != nfree || eb.is_class_body {
                        return Err(VerifyError::FrameLayout {
                            block: bi,
                            pc,
                            detail: format!(
                                "trobj table {table} entry block {blk} (free={}{}) \
                                 with {nfree} captures",
                                eb.nfree,
                                if eb.is_class_body { " class" } else { "" },
                            ),
                        });
                    }
                }
            }
            Instr::InstOf { argc } => {
                pop_kind!(Kind::Class, "class");
                pop!(argc);
            }
            Instr::MkGroup {
                table,
                dst,
                count,
                nfree,
            } => {
                ref_ok("table", table, self.tables.len() as u32)?;
                pop!(nfree);
                let end = dst as u32 + count as u32;
                if end > frame {
                    return Err(VerifyError::BadSlot {
                        block: bi,
                        pc,
                        slot: end.saturating_sub(1),
                        frame,
                    });
                }
                for slot in dst..dst + count as u16 {
                    st.frame[slot as usize] = Kind::Class;
                }
                for &(_, blk) in self.tables[table as usize] {
                    let eb = &self.blocks[blk as usize];
                    if eb.nfree != nfree || !eb.is_class_body {
                        return Err(VerifyError::FrameLayout {
                            block: bi,
                            pc,
                            detail: format!(
                                "mkgroup table {table} entry block {blk} (free={}{}) \
                                 with {nfree} captures",
                                eb.nfree,
                                if eb.is_class_body {
                                    " class"
                                } else {
                                    " not-class"
                                },
                            ),
                        });
                    }
                }
            }
            Instr::ExportName { slot, name } => {
                slot_ok(slot as u32)?;
                ref_ok("string", name, self.nstrings)?;
                slot_kind!(slot, Kind::Chan, "channel");
            }
            Instr::ExportClass { slot, name } => {
                slot_ok(slot as u32)?;
                ref_ok("string", name, self.nstrings)?;
                slot_kind!(slot, Kind::Class, "class");
            }
            Instr::Import {
                dst, site, name, ..
            } => {
                slot_ok(dst as u32)?;
                ref_ok("string", site, self.nstrings)?;
                ref_ok("string", name, self.nstrings)?;
                // The resolved word (channel or class) is written into
                // `dst` asynchronously — unknown kind from here on.
                st.frame[dst as usize] = Kind::Top;
            }
            Instr::Print { argc, .. } => pop!(argc),
            // Fused superinstructions cannot reach the transfer function:
            // `check_block` normalizes the code first, and the wire decoder
            // has no encoding that could produce them from untrusted bytes.
            Instr::PushLocal2 { .. }
            | Instr::PushLocalInt { .. }
            | Instr::PushIntBin { .. }
            | Instr::BinJumpIfFalse { .. }
            | Instr::PushLocalTrMsg { .. }
            | Instr::PushLocalTrObj { .. }
            | Instr::PushLocalInstOf { .. }
            | Instr::PushSiblingInstOf { .. }
            | Instr::PushSiblingLocal { .. } => {
                unreachable!("fused superinstruction survived normalization")
            }
        }
        Ok(Succ::Fall)
    }
}

/// Control-flow successors of one instruction.
enum Succ {
    Fall,
    Jump(u32),
    Branch(u32),
    Halt,
}

/// The abstract machine state at one program point: kinds for the operand
/// stack (variable depth) and for every frame slot (fixed width).
#[derive(Debug, Clone, PartialEq, Eq)]
struct State {
    stack: Vec<Kind>,
    frame: Vec<Kind>,
}

/// Merge `src` into the state at a program point. Returns `Ok(true)` if
/// the state changed (the point must be re-queued), `Err((a, b))` on a
/// stack-depth disagreement.
fn merge(dst: &mut Option<State>, src: &State) -> Result<bool, (u32, u32)> {
    match dst {
        None => {
            *dst = Some(src.clone());
            Ok(true)
        }
        Some(cur) => {
            if cur.stack.len() != src.stack.len() {
                return Err((cur.stack.len() as u32, src.stack.len() as u32));
            }
            let mut changed = false;
            let pairs = cur
                .stack
                .iter_mut()
                .zip(&src.stack)
                .chain(cur.frame.iter_mut().zip(&src.frame));
            for (c, s) in pairs {
                let j = c.join(*s);
                if j != *c {
                    *c = j;
                    changed = true;
                }
            }
            Ok(changed)
        }
    }
}

/// Verify a packet-relative wire bundle before linking it (the SHIPO /
/// FETCH receive path). All ids are checked against the packet's own
/// vectors, so a verified bundle can be linked without bounds checks.
pub fn verify_wire(code: &WireCode) -> Result<(), VerifyError> {
    View {
        blocks: &code.blocks,
        tables: code.tables.iter().map(|t| t.as_slice()).collect(),
        labels: Labels::List(&code.labels),
        nlabels: code.labels.len() as u32,
        nstrings: code.strings.len() as u32,
    }
    .check()
}

/// Verify a whole program image (the compile / image-load path). On top
/// of the per-block checks this validates the entry block: it must exist
/// and take neither captures nor parameters (it is spawned with an empty
/// frame prefix).
pub fn verify_program(prog: &Program) -> Result<(), VerifyError> {
    let view = View {
        blocks: &prog.blocks,
        tables: prog.tables.iter().map(|t| t.entries.as_slice()).collect(),
        labels: Labels::Pool(&prog.labels),
        nlabels: prog.labels.len() as u32,
        nstrings: prog.strings.len() as u32,
    };
    view.check()?;
    let Some(entry) = prog.blocks.get(prog.entry as usize) else {
        return Err(VerifyError::BadEntry(format!(
            "entry block {} out of range (< {})",
            prog.entry,
            prog.blocks.len()
        )));
    };
    if entry.nfree != 0 || entry.nparams != 0 || entry.is_class_body {
        return Err(VerifyError::BadEntry(format!(
            "entry block {} expects free={} params={}{}",
            prog.entry,
            entry.nfree,
            entry.nparams,
            if entry.is_class_body { " class" } else { "" },
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::program::{Block, MethodTable};
    use tyco_syntax::parse_core;

    fn prog(src: &str) -> Program {
        compile(&parse_core(src).unwrap()).unwrap()
    }

    fn block(code: Vec<Instr>) -> Block {
        Block {
            name: "t".into(),
            nfree: 0,
            nparams: 0,
            nlocals: 2,
            is_class_body: false,
            code: code.into(),
        }
    }

    fn one_block_prog(code: Vec<Instr>) -> Program {
        Program {
            blocks: vec![block(code)],
            ..Program::default()
        }
    }

    #[test]
    fn accepts_compiler_output() {
        for src in [
            "new x x!go[1, true]",
            "new x (x?{ read(r) = r![1], write(u) = 0 } | x!read[x])",
            "def X(a) = Y[a] and Y(b) = print(b) in X[1]",
            "if 1 < 2 then print(1) else print(2)",
            "new v new x (x?{ get(r) = r![v] } | let u = x!get[] in print(u))",
            "export new srv in import q from other in (srv?{ go() = 0 } | q![1])",
        ] {
            let p = prog(src);
            verify_program(&p).unwrap_or_else(|e| panic!("{src:?}: {e}"));
            if !p.tables.is_empty() {
                let roots: Vec<u32> = (0..p.tables.len() as u32).collect();
                let packed = crate::wire::pack(&p, &roots);
                verify_wire(&packed.code).unwrap_or_else(|e| panic!("wire {src:?}: {e}"));
            }
        }
    }

    #[test]
    fn rejects_oversized_frame() {
        let mut p = one_block_prog(vec![Instr::Halt]);
        p.blocks[0].nlocals = (MAX_FRAME + 1) as u16;
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::FrameTooLarge { block: 0, .. })
        ));
    }

    #[test]
    fn rejects_sibling_index_beyond_any_table() {
        // `def X(a) = Y[a] and Y(b) = print(b)` compiles to a two-entry
        // class table, so sibling indices 0 and 1 are the only ones any
        // group built from this image can resolve.
        let mut p = prog("def X(a) = Y[a] and Y(b) = print(b) in X[1]");
        assert!(verify_program(&p).is_ok());
        for b in p.blocks.iter_mut() {
            let rewritten: Vec<Instr> = b
                .code
                .iter()
                .map(|i| match i {
                    Instr::PushSibling(_) => Instr::PushSibling(9),
                    other => *other,
                })
                .collect();
            b.code = rewritten.into();
        }
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::BadRef {
                what: "sibling",
                id: 9,
                ..
            })
        ));
    }

    #[test]
    fn rejects_stack_underflow() {
        let p = one_block_prog(vec![Instr::Store(0)]);
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::Underflow { .. })
        ));
    }

    #[test]
    fn rejects_out_of_window_slot() {
        let p = one_block_prog(vec![Instr::PushLocal(99)]);
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::BadSlot { slot: 99, .. })
        ));
    }

    #[test]
    fn rejects_wild_jump() {
        let p = one_block_prog(vec![Instr::Jump(7)]);
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::BadJump { target: 7, .. })
        ));
    }

    #[test]
    fn fall_off_end_target_is_legal() {
        let p = one_block_prog(vec![Instr::Jump(1)]);
        verify_program(&p).unwrap();
    }

    #[test]
    fn rejects_depth_mismatch_at_join() {
        // Branch pushes on one path only, then both paths join at pc 3.
        let p = one_block_prog(vec![
            Instr::PushBool(true),
            Instr::JumpIfFalse(3),
            Instr::PushInt(1),
            Instr::Halt,
        ]);
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::DepthMismatch { .. })
        ));
    }

    #[test]
    fn rejects_instof_on_int() {
        let p = one_block_prog(vec![Instr::PushInt(3), Instr::InstOf { argc: 0 }]);
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::KindMismatch {
                expected: "class",
                ..
            })
        ));
    }

    #[test]
    fn rejects_sibling_outside_class_body() {
        let p = one_block_prog(vec![
            Instr::PushSibling(0),
            Instr::Print {
                argc: 1,
                newline: false,
            },
        ]);
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::SiblingOutsideClass { .. })
        ));
    }

    #[test]
    fn rejects_fork_layout_mismatch() {
        let mut p = one_block_prog(vec![Instr::Fork { block: 1, nfree: 0 }]);
        p.blocks.push(Block {
            name: "kid".into(),
            nfree: 2, // expects two captures, fork pushes none
            nparams: 0,
            nlocals: 0,
            is_class_body: false,
            code: vec![Instr::Halt].into(),
        });
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::FrameLayout { .. })
        ));
    }

    #[test]
    fn tracks_frame_kinds_through_slots() {
        // newc makes slot 0 a channel; exporting it as a class is a
        // provable kind error.
        let p = one_block_prog(vec![
            Instr::NewChan(0),
            Instr::ExportClass { slot: 0, name: 0 },
        ]);
        let mut p = p;
        p.strings.intern("s");
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::KindMismatch {
                expected: "class",
                found: "channel",
                ..
            })
        ));
    }

    #[test]
    fn rejects_trmsg_on_provable_class_slot() {
        // An uninitialised local is a unit word — sending on it can never
        // fire COMM.
        let p = one_block_prog(vec![
            Instr::PushLocal(0),
            Instr::TrMsg { label: 0, argc: 0 },
        ]);
        let mut p = p;
        p.labels.intern("go");
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::KindMismatch {
                expected: "channel",
                found: "unit",
                ..
            })
        ));
    }

    #[test]
    fn rejects_dangling_table_entry() {
        let mut p = one_block_prog(vec![Instr::Halt]);
        let l = p.labels.intern("go");
        p.tables.push(MethodTable {
            entries: vec![(l, 42)],
        });
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::BadTable { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_table_label() {
        let mut p = one_block_prog(vec![Instr::Halt]);
        let l = p.labels.intern("go");
        p.tables.push(MethodTable {
            entries: vec![(l, 0), (l, 0)],
        });
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::DuplicateMethod { .. })
        ));
    }

    #[test]
    fn rejects_bad_entry() {
        let mut p = prog("print(1)");
        p.entry = 99;
        assert!(matches!(verify_program(&p), Err(VerifyError::BadEntry(_))));
    }

    #[test]
    fn rejects_wire_bundle_with_dangling_string() {
        let p = prog("new x x?{ go(n) = println(\"hi\", n) }");
        let packed = crate::wire::pack(&p, &[0]);
        let mut bad = packed.code.clone();
        bad.strings.clear(); // every PushStr id now dangles
        assert!(matches!(
            verify_wire(&bad),
            Err(VerifyError::BadRef { what: "string", .. })
        ));
    }
}
