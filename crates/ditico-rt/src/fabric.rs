//! The network fabric: the in-process stand-in for the paper's hardware
//! platform (Fig. 1 — a 1 Gb/s Myrinet switch plus a 100 Mb/s Fast
//! Ethernet uplink).
//!
//! Substitution note (see DESIGN.md §2): the paper's claims are about
//! *relative* behaviour under different latency/bandwidth regimes, so the
//! fabric models point-to-point links with configurable [`LinkProfile`]s
//! and supports three delivery disciplines:
//!
//! * **Ideal** — immediate delivery (functional testing);
//! * **Virtual** — discrete-event delivery against a virtual clock
//!   (deterministic experiments: latency hiding, crossovers);
//! * **RealTime** — a delivery thread that holds packets for the modelled
//!   latency + serialization delay (threaded benchmarks).
//!
//! Packets are byte-encoded ([`tyco_vm::codec`]) before entering the
//! fabric, so byte counts are real.

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use tyco_vm::word::NodeId;

/// Latency/bandwidth model of a point-to-point link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProfile {
    /// One-way latency in nanoseconds.
    pub latency_ns: u64,
    /// Bandwidth in bytes per second (`f64::INFINITY` for ideal).
    pub bandwidth_bps: f64,
}

impl LinkProfile {
    /// The paper's 1 Gb/s Myrinet switch: ~9 µs one-way latency.
    pub fn myrinet() -> LinkProfile {
        LinkProfile { latency_ns: 9_000, bandwidth_bps: 125_000_000.0 }
    }

    /// The paper's 100 Mb/s Fast Ethernet uplink: ~70 µs latency.
    pub fn fast_ethernet() -> LinkProfile {
        LinkProfile { latency_ns: 70_000, bandwidth_bps: 12_500_000.0 }
    }

    /// A wide-area link: 20 ms, 10 Mb/s.
    pub fn wan() -> LinkProfile {
        LinkProfile { latency_ns: 20_000_000, bandwidth_bps: 1_250_000.0 }
    }

    /// Zero-latency, infinite-bandwidth (functional testing).
    pub fn ideal() -> LinkProfile {
        LinkProfile { latency_ns: 0, bandwidth_bps: f64::INFINITY }
    }

    /// Total transfer time for a payload of `bytes`.
    pub fn transfer_ns(&self, bytes: usize) -> u64 {
        let ser = if self.bandwidth_bps.is_finite() {
            (bytes as f64 / self.bandwidth_bps * 1e9) as u64
        } else {
            0
        };
        self.latency_ns + ser
    }
}

/// Delivery discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricMode {
    /// Deliver immediately on send.
    Ideal,
    /// Discrete-event queue against a virtual clock (deterministic).
    Virtual,
    /// Real wall-clock delays via a delivery thread.
    RealTime,
}

/// Aggregate traffic counters.
#[derive(Debug, Default)]
pub struct FabricStats {
    pub packets: AtomicU64,
    pub bytes: AtomicU64,
}

struct Event {
    due_ns: u64,
    seq: u64,
    from: NodeId,
    to: NodeId,
    payload: Bytes,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.due_ns == other.due_ns && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due_ns, self.seq).cmp(&(other.due_ns, other.seq))
    }
}

struct Shared {
    mode: FabricMode,
    default_link: LinkProfile,
    links: HashMap<(NodeId, NodeId), LinkProfile>,
    inboxes: HashMap<NodeId, Sender<(NodeId, Bytes)>>,
    /// Virtual/RealTime pending deliveries (min-heap on due time).
    pending: BinaryHeap<Reverse<Event>>,
    seq: u64,
    /// Virtual clock (ns). In RealTime mode, unused.
    now_ns: u64,
    /// Epoch for RealTime deadlines (shared by senders and the delivery
    /// thread).
    epoch: std::time::Instant,
    /// Last scheduled arrival per directed link: links are FIFO (a later
    /// small packet must not overtake an earlier large one), like the
    /// point-to-point switch links of Fig. 1.
    link_last: HashMap<(NodeId, NodeId), u64>,
    /// Dead nodes drop all traffic (failure injection).
    dead: Vec<NodeId>,
}

/// The network fabric connecting node daemons.
pub struct Fabric {
    shared: Arc<Mutex<Shared>>,
    cond: Arc<Condvar>,
    pub stats: Arc<FabricStats>,
    stop: Arc<AtomicBool>,
    delivery_thread: Option<std::thread::JoinHandle<()>>,
}

/// A cloneable handle daemons use to send.
#[derive(Clone)]
pub struct FabricHandle {
    shared: Arc<Mutex<Shared>>,
    cond: Arc<Condvar>,
    stats: Arc<FabricStats>,
}

impl Fabric {
    pub fn new(mode: FabricMode, default_link: LinkProfile) -> Fabric {
        Fabric {
            shared: Arc::new(Mutex::new(Shared {
                mode,
                default_link,
                links: HashMap::new(),
                inboxes: HashMap::new(),
                pending: BinaryHeap::new(),
                seq: 0,
                now_ns: 0,
                epoch: std::time::Instant::now(),
                link_last: HashMap::new(),
                dead: Vec::new(),
            })),
            cond: Arc::new(Condvar::new()),
            stats: Arc::new(FabricStats::default()),
            stop: Arc::new(AtomicBool::new(false)),
            delivery_thread: None,
        }
    }

    /// Override the profile of one directed link.
    pub fn set_link(&self, a: NodeId, b: NodeId, profile: LinkProfile) {
        let mut s = self.shared.lock();
        s.links.insert((a, b), profile);
        s.links.insert((b, a), profile);
    }

    /// Register a node; returns its inbound packet queue.
    pub fn register_node(&self, node: NodeId) -> Receiver<(NodeId, Bytes)> {
        let (tx, rx) = unbounded();
        self.shared.lock().inboxes.insert(node, tx);
        rx
    }

    /// A sending handle for daemons.
    pub fn handle(&self) -> FabricHandle {
        FabricHandle {
            shared: self.shared.clone(),
            cond: self.cond.clone(),
            stats: self.stats.clone(),
        }
    }

    /// Mark a node dead: all traffic to/from it is dropped (failure
    /// injection for the §7 future-work experiments).
    pub fn kill_node(&self, node: NodeId) {
        self.shared.lock().dead.push(node);
    }

    /// Virtual mode: the due time of the earliest pending event.
    pub fn next_event_ns(&self) -> Option<u64> {
        self.shared.lock().pending.peek().map(|Reverse(e)| e.due_ns)
    }

    /// Virtual mode: current virtual time.
    pub fn now_ns(&self) -> u64 {
        self.shared.lock().now_ns
    }

    /// Virtual mode: advance the clock and deliver everything due.
    /// Returns the number of packets delivered.
    pub fn advance_to(&self, t_ns: u64) -> usize {
        let mut s = self.shared.lock();
        s.now_ns = s.now_ns.max(t_ns);
        let mut delivered = 0;
        while let Some(Reverse(e)) = s.pending.peek() {
            if e.due_ns > s.now_ns {
                break;
            }
            let Reverse(e) = s.pending.pop().expect("peeked");
            if !s.dead.contains(&e.to) {
                if let Some(tx) = s.inboxes.get(&e.to) {
                    let _ = tx.send((e.from, e.payload));
                    delivered += 1;
                }
            }
        }
        delivered
    }

    /// Start the RealTime delivery thread (no-op for other modes).
    pub fn start(&mut self) {
        let is_rt = self.shared.lock().mode == FabricMode::RealTime;
        if !is_rt || self.delivery_thread.is_some() {
            return;
        }
        let shared = self.shared.clone();
        let cond = self.cond.clone();
        let stop = self.stop.clone();
        self.delivery_thread = Some(std::thread::spawn(move || {
            loop {
                let mut s = shared.lock();
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                let now = s.epoch.elapsed().as_nanos() as u64;
                // Deliver everything due.
                while let Some(Reverse(e)) = s.pending.peek() {
                    if e.due_ns > now {
                        break;
                    }
                    let Reverse(e) = s.pending.pop().expect("peeked");
                    if !s.dead.contains(&e.to) {
                        if let Some(tx) = s.inboxes.get(&e.to) {
                            let _ = tx.send((e.from, e.payload));
                        }
                    }
                }
                match s.pending.peek() {
                    Some(Reverse(e)) => {
                        let wait = std::time::Duration::from_nanos(e.due_ns.saturating_sub(now));
                        cond.wait_for(&mut s, wait.min(std::time::Duration::from_millis(10)));
                    }
                    None => {
                        cond.wait_for(&mut s, std::time::Duration::from_millis(10));
                    }
                }
            }
        }));
    }

    /// Stop the delivery thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.cond.notify_all();
        if let Some(h) = self.delivery_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Fabric {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl FabricHandle {
    /// Send a payload from one node to another, applying the link model.
    pub fn send(&self, from: NodeId, to: NodeId, payload: Bytes) {
        self.stats.packets.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes.fetch_add(payload.len() as u64, Ordering::Relaxed);
        let mut s = self.shared.lock();
        if s.dead.contains(&from) || s.dead.contains(&to) {
            return;
        }
        let profile = s.links.get(&(from, to)).copied().unwrap_or(s.default_link);
        match s.mode {
            FabricMode::Ideal => {
                if let Some(tx) = s.inboxes.get(&to) {
                    let _ = tx.send((from, payload));
                }
            }
            FabricMode::Virtual => {
                let raw = s.now_ns + profile.transfer_ns(payload.len());
                let last = s.link_last.get(&(from, to)).copied().unwrap_or(0);
                let due = raw.max(last.saturating_add(1));
                s.link_last.insert((from, to), due);
                s.seq += 1;
                let seq = s.seq;
                s.pending.push(Reverse(Event { due_ns: due, seq, from, to, payload }));
            }
            FabricMode::RealTime => {
                // Deadlines are absolute against the fabric-wide epoch.
                let now = s.epoch.elapsed().as_nanos() as u64;
                let raw = now + profile.transfer_ns(payload.len());
                let last = s.link_last.get(&(from, to)).copied().unwrap_or(0);
                let due = raw.max(last.saturating_add(1));
                s.link_last.insert((from, to), due);
                s.seq += 1;
                let seq = s.seq;
                s.pending.push(Reverse(Event { due_ns: due, seq, from, to, payload }));
                drop(s);
                self.cond.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn ideal_mode_delivers_immediately() {
        let f = Fabric::new(FabricMode::Ideal, LinkProfile::ideal());
        let rx = f.register_node(n(1));
        f.handle().send(n(0), n(1), Bytes::from_static(b"hi"));
        let (from, payload) = rx.try_recv().expect("delivered");
        assert_eq!(from, n(0));
        assert_eq!(&payload[..], b"hi");
        assert_eq!(f.stats.packets.load(Ordering::Relaxed), 1);
        assert_eq!(f.stats.bytes.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn virtual_mode_orders_by_latency() {
        let f = Fabric::new(FabricMode::Virtual, LinkProfile::myrinet());
        f.set_link(n(0), n(2), LinkProfile::wan());
        let rx1 = f.register_node(n(1));
        let rx2 = f.register_node(n(2));
        let h = f.handle();
        h.send(n(0), n(2), Bytes::from_static(b"slow"));
        h.send(n(0), n(1), Bytes::from_static(b"fast"));
        // Nothing delivered until the clock advances.
        assert!(rx1.try_recv().is_err());
        // Advance past Myrinet latency but before WAN latency.
        assert_eq!(f.advance_to(1_000_000), 1);
        assert!(rx1.try_recv().is_ok());
        assert!(rx2.try_recv().is_err());
        // Advance past WAN latency.
        f.advance_to(100_000_000);
        assert!(rx2.try_recv().is_ok());
    }

    #[test]
    fn virtual_bandwidth_delays_large_payloads() {
        let f = Fabric::new(FabricMode::Virtual, LinkProfile::fast_ethernet());
        let rx = f.register_node(n(1));
        let h = f.handle();
        h.send(n(0), n(1), Bytes::from(vec![0u8; 125_000])); // 10 ms at 100 Mb/s
        assert!(f.next_event_ns().unwrap() > 9_000_000, "{:?}", f.next_event_ns());
        f.advance_to(20_000_000);
        assert!(rx.try_recv().is_ok());
    }

    #[test]
    fn dead_nodes_drop_traffic() {
        let f = Fabric::new(FabricMode::Ideal, LinkProfile::ideal());
        let rx = f.register_node(n(1));
        f.kill_node(n(1));
        f.handle().send(n(0), n(1), Bytes::from_static(b"lost"));
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn realtime_mode_delivers_after_delay() {
        let mut f = Fabric::new(FabricMode::RealTime, LinkProfile::ideal());
        let rx = f.register_node(n(1));
        f.start();
        f.handle().send(n(0), n(1), Bytes::from_static(b"rt"));
        let got = rx.recv_timeout(std::time::Duration::from_secs(2));
        assert!(got.is_ok());
        f.shutdown();
    }

    #[test]
    fn profiles_transfer_times() {
        let m = LinkProfile::myrinet();
        let e = LinkProfile::fast_ethernet();
        // Latency dominates small messages; Myrinet is ~8x faster.
        assert!(m.transfer_ns(64) * 5 < e.transfer_ns(64));
        // Bandwidth dominates large ones.
        assert!(m.transfer_ns(1_000_000) * 5 < e.transfer_ns(1_000_000));
        assert_eq!(LinkProfile::ideal().transfer_ns(1 << 20), 0);
    }
}
