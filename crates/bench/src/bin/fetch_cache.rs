//! Repeated remote instantiation with and without the content-addressed
//! code cache, recorded to `BENCH_fetch_cache.json`.
//!
//! ```sh
//! cargo run --release -p ditico-bench --bin fetch_cache            # full sweep
//! cargo run --release -p ditico-bench --bin fetch_cache -- --smoke # CI smoke
//! ```
//!
//! The workload is the paper's applet pattern at its worst: one server
//! exports a large class (a ~`TERMS`-term arithmetic body, so the packed
//! image is kilobytes, not the usual tens of bytes), and `K` client sites
//! on a second node fetch and instantiate it one after another — each
//! site kicks the next only after its own import completed, so every
//! fetch is a separate round trip and none can coalesce. Over a slow WAN
//! link the uncached protocol pays the full image serialization `K`
//! times; the cached protocol pays it once and ships a 16-byte digest
//! thereafter. Time is deterministic virtual time, so the speedup is a
//! property of the protocol, not of the host machine.
//!
//! A second sweep instantiates the same class from `K` sites
//! *concurrently* to measure single-flight coalescing: the client node
//! folds the simultaneous FetchReqs into one, so the server serves one
//! request and the image crosses the wire once, regardless of `K`.

use ditico_rt::{Cluster, FabricMode, LinkProfile, RunLimits, RunReport};
use tyco_vm::Digest;

/// Terms in the applet body; sets the shipped image size (~10 KB packed).
const TERMS: usize = 1200;
/// Client-site counts swept.
const SIZES: [usize; 4] = [2, 4, 8, 16];
/// A slow WAN-ish link: 100 µs one-way latency, 1 MB/s — code shipment
/// cost is dominated by image serialization, exactly where dedup pays.
fn wan() -> LinkProfile {
    LinkProfile::new(100_000, 1_000_000.0).expect("valid link")
}

/// `export def Applet(v) = println("applet", v + 1 + 2 + ... ) in 0`
fn server_src() -> String {
    let mut sum = String::from("v");
    for i in 1..=TERMS {
        sum.push_str(&format!(" + {}", i % 7));
    }
    format!(r#"export def Applet(v) = println("applet", {sum}) in 0"#)
}

/// The chain: site `c0` fetches immediately; each later site waits for
/// its predecessor's kick, which is sent from inside the predecessor's
/// import continuation — i.e. causally after its FetchReply landed.
fn chain_site_src(i: usize, k: usize) -> String {
    let fetch_and_use = format!("import Applet from server in (Applet[{i}] | KICKNEXT)");
    let next = i + 1;
    let kick_next = if next < k {
        format!("import kick{next} from c{next} in kick{next}![]")
    } else {
        "0".to_string()
    };
    let body = fetch_and_use.replace("KICKNEXT", &kick_next);
    if i == 0 {
        body
    } else {
        format!("export new kick{i} in kick{i}?() = {body}")
    }
}

fn build_chain(k: usize, code_cache: usize) -> Cluster {
    let mut c = Cluster::new(FabricMode::Virtual, wan(), 1);
    let n0 = c.add_node();
    let n1 = c.add_node();
    c.set_code_cache(code_cache);
    c.add_site_src(n0, "server", &server_src())
        .expect("server compiles");
    for i in 0..k {
        c.add_site_src(n1, &format!("c{i}"), &chain_site_src(i, k))
            .expect("chain site compiles");
    }
    c
}

fn build_concurrent(k: usize, code_cache: usize) -> Cluster {
    let mut c = Cluster::new(FabricMode::Virtual, wan(), 1);
    let n0 = c.add_node();
    let n1 = c.add_node();
    c.set_code_cache(code_cache);
    c.add_site_src(n0, "server", &server_src())
        .expect("server compiles");
    for i in 0..k {
        c.add_site_src(
            n1,
            &format!("c{i}"),
            &format!("import Applet from server in Applet[{i}]"),
        )
        .expect("client compiles");
    }
    c
}

struct Sample {
    virtual_ms: f64,
    fetches_per_sec: f64,
    fabric_bytes: u64,
    report: RunReport,
}

fn run(mut c: Cluster, k: usize) -> Sample {
    let report = c.run_deterministic(RunLimits::default());
    assert!(report.errors.is_empty(), "VM errors: {:?}", report.errors);
    assert!(report.quiescent, "run did not terminate");
    for i in 0..k {
        let out = report.output(&format!("c{i}"));
        assert_eq!(out.len(), 1, "site c{i} must print once, got {out:?}");
    }
    let secs = report.virtual_ns as f64 / 1e9;
    Sample {
        virtual_ms: report.virtual_ns as f64 / 1e6,
        fetches_per_sec: k as f64 / secs,
        fabric_bytes: report.fabric_bytes,
        report,
    }
}

fn json_sample(s: &Sample) -> String {
    let cache = s.report.cache_totals();
    format!(
        "{{ \"virtual_ms\": {:.3}, \"fetches_per_sec\": {:.1}, \"fabric_bytes\": {}, \
         \"cache_hits\": {}, \"coalesced\": {}, \"dedup_sends\": {}, \"bytes_saved\": {} }}",
        s.virtual_ms,
        s.fetches_per_sec,
        s.fabric_bytes,
        cache.hits,
        cache.coalesced,
        cache.dedup_sends,
        cache.bytes_saved
    )
}

/// CI smoke: smallest chain point plus a concurrent run, both modes,
/// asserting the protocol invariants rather than a timing threshold.
fn smoke() {
    let k = 4;
    let base = run(build_chain(k, 0), k);
    let cached = run(build_chain(k, 256), k);
    let bc = base.report.cache_totals();
    assert_eq!(bc.dedup_sends, 0, "disabled cache must not dedup");
    let cc = cached.report.cache_totals();
    assert_eq!(
        cc.dedup_sends,
        (k - 1) as u64,
        "all but the first reply go digest-only"
    );
    assert_eq!(cc.hits, (k - 1) as u64);
    assert!(
        cached.fabric_bytes < base.fabric_bytes,
        "dedup must shrink wire traffic: {} vs {}",
        cached.fabric_bytes,
        base.fabric_bytes
    );
    let speedup = base.virtual_ms / cached.virtual_ms;
    assert!(
        speedup > 1.5,
        "cached chain should be clearly faster, got {speedup:.2}x"
    );

    let conc = run(build_concurrent(k, 256), k);
    let cf = conc.report.cache_totals();
    assert_eq!(
        cf.coalesced,
        (k - 1) as u64,
        "concurrent fetches fold into one FetchReq"
    );
    assert_eq!(conc.report.stats["server"].fetches_served, 1);
    println!(
        "smoke ok: chain x{k} speedup {speedup:.2}x, {} B saved, \
         concurrent x{k} coalesced {} -> 1 server fetch",
        cc.bytes_saved, cf.coalesced
    );
}

fn sweep() {
    let mut chain_rows = Vec::new();
    let mut conc_rows = Vec::new();
    let mut speedup_at_8 = 0.0;
    let mut image_wire_bytes = 0u64;
    for &k in &SIZES {
        eprintln!("== {k} sequential fetches ==");
        let base = run(build_chain(k, 0), k);
        eprintln!(
            "   uncached: {:.1} ms virtual, {} B on the wire",
            base.virtual_ms, base.fabric_bytes
        );
        let cached = run(build_chain(k, 256), k);
        let cc = cached.report.cache_totals();
        eprintln!(
            "   cached:   {:.1} ms virtual, {} B on the wire ({} dedup sends, {} B saved)",
            cached.virtual_ms, cached.fabric_bytes, cc.dedup_sends, cc.bytes_saved
        );
        let speedup = base.virtual_ms / cached.virtual_ms;
        eprintln!("   speedup: {speedup:.2}x");
        if k == 8 {
            speedup_at_8 = speedup;
        }
        // bytes_saved counts (full image - digest) per dedup send.
        if let Some(saved_per_send) = cc.bytes_saved.checked_div(cc.dedup_sends) {
            image_wire_bytes = saved_per_send + Digest::SIZE as u64;
        }
        chain_rows.push(format!(
            "    {{\n      \"k\": {k},\n      \"uncached\": {},\n      \"cached\": {},\n      \
             \"speedup\": {speedup:.2}\n    }}",
            json_sample(&base),
            json_sample(&cached)
        ));

        let conc = run(build_concurrent(k, 256), k);
        let cf = conc.report.cache_totals();
        eprintln!(
            "   concurrent x{k}: {} coalesced, server served {} fetch(es), {} B on the wire",
            cf.coalesced, conc.report.stats["server"].fetches_served, conc.fabric_bytes
        );
        conc_rows.push(format!(
            "    {{\n      \"k\": {k},\n      \"cached\": {},\n      \
             \"server_fetches_served\": {}\n    }}",
            json_sample(&conc),
            conc.report.stats["server"].fetches_served
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"fetch_cache\",\n  \"workload\": \"K client sites on one node \
         import a {TERMS}-term class from a second node over a 100us/1MBps link; \
         chain = strictly sequential fetches, concurrent = simultaneous fetches\",\n  \
         \"baseline\": \"--code-cache 0 (every reply ships the full image)\",\n  \
         \"cached\": \"content-addressed store, single-flight coalescing, digest-only replies\",\n  \
         \"image_wire_bytes\": {image_wire_bytes},\n  \"digest_wire_bytes\": {},\n  \
         \"speedup_at_8\": {speedup_at_8:.2},\n  \"chain\": [\n{}\n  ],\n  \
         \"concurrent\": [\n{}\n  ]\n}}\n",
        Digest::SIZE,
        chain_rows.join(",\n"),
        conc_rows.join(",\n")
    );
    std::fs::write("BENCH_fetch_cache.json", &json).expect("write BENCH_fetch_cache.json");
    println!(
        "recorded BENCH_fetch_cache.json (speedup at 8 fetches: {speedup_at_8:.2}x, \
         image {image_wire_bytes} B -> digest {} B)",
        Digest::SIZE
    );
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
    } else {
        sweep();
    }
}
