//! Type fingerprints for the dynamic half of DiTyCO's hybrid type checking.
//!
//! §7 of the paper: *"We have developed a type checking scheme that ensures
//! that no type mismatch or protocol errors occur in remote interactions.
//! The scheme combines both static and dynamic type checking."*
//!
//! Statically, each site checks its own program ([`crate::infer`]). At link
//! time (when an `import` instruction resolves an identifier through the
//! name service) the importer's *expected* protocol — inferred from local
//! usage — is checked against the exporter's *actual* protocol. Because a
//! message send only constrains the labels it uses, the expectation can be
//! an open row; the check is therefore a structural *compatibility* test
//! rather than fingerprint equality. Fingerprints (stable 64-bit hashes of
//! canonicalized types) are used when exact protocol identity is required,
//! e.g. for cached fetched classes.

use crate::types::*;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Render a type to a canonical string with variables α-renamed in first
/// occurrence order, so structurally equal types print identically.
pub fn canonical(t: &Type) -> String {
    let mut cx = Canon::default();
    let mut out = String::new();
    cx.write(t, &mut out);
    out
}

#[derive(Default)]
struct Canon {
    tvs: HashMap<TvId, usize>,
    rvs: HashMap<RvId, usize>,
}

impl Canon {
    fn write(&mut self, t: &Type, out: &mut String) {
        match t {
            Type::Var(v) => {
                let n = self.tvs.len();
                let id = *self.tvs.entry(*v).or_insert(n);
                let _ = write!(out, "t{id}");
            }
            Type::Unit => out.push_str("unit"),
            Type::Int => out.push_str("int"),
            Type::Bool => out.push_str("bool"),
            Type::Str => out.push_str("string"),
            Type::Float => out.push_str("float"),
            Type::Chan(row) => {
                out.push_str("^{");
                // BTreeMap keeps labels sorted, so iteration is canonical.
                for (i, (l, args)) in row.fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{l}(");
                    for (j, a) in args.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        self.write(a, out);
                    }
                    out.push(')');
                }
                if let Some(r) = row.rest {
                    let n = self.rvs.len();
                    let id = *self.rvs.entry(r).or_insert(n);
                    let _ = write!(out, "|r{id}");
                }
                out.push('}');
            }
        }
    }
}

/// A stable 64-bit fingerprint of a (zonked) type. FNV-1a over the
/// canonical rendering; hardware-independent, suitable for the wire.
pub fn fingerprint(t: &Type) -> u64 {
    fnv1a(canonical(t).as_bytes())
}

/// Parse a [`canonical`] rendering back into a [`Type`].
///
/// Export records cross the wire as (fingerprint, canonical string) pairs;
/// when the fast fingerprint-equality test fails, the name service
/// re-parses both sides with this function and falls back to the
/// structural [`compatible`] check — open rows mean two perfectly
/// compatible protocols rarely hash equal. Returns `None` on any input
/// `canonical` cannot have produced.
pub fn parse_canonical(s: &str) -> Option<Type> {
    let mut p = CanonParser { s, i: 0 };
    let t = p.ty()?;
    if p.i == s.len() {
        Some(t)
    } else {
        None
    }
}

struct CanonParser<'a> {
    s: &'a str,
    i: usize,
}

impl CanonParser<'_> {
    fn eat(&mut self, w: &str) -> bool {
        if self.s[self.i..].starts_with(w) {
            self.i += w.len();
            true
        } else {
            false
        }
    }

    fn number(&mut self) -> Option<u32> {
        let start = self.i;
        while self
            .s
            .as_bytes()
            .get(self.i)
            .is_some_and(u8::is_ascii_digit)
        {
            self.i += 1;
        }
        if self.i == start {
            None
        } else {
            self.s[start..self.i].parse().ok()
        }
    }

    /// Read the closing `|r<id>}` / `}` of a row, after its last field.
    fn row_end(&mut self) -> Option<Option<RvId>> {
        if self.eat("|r") {
            let id = self.number()?;
            if self.eat("}") {
                Some(Some(RvId(id)))
            } else {
                None
            }
        } else if self.eat("}") {
            Some(None)
        } else {
            None
        }
    }

    fn ty(&mut self) -> Option<Type> {
        if self.eat("unit") {
            return Some(Type::Unit);
        }
        if self.eat("int") {
            return Some(Type::Int);
        }
        if self.eat("bool") {
            return Some(Type::Bool);
        }
        if self.eat("string") {
            return Some(Type::Str);
        }
        if self.eat("float") {
            return Some(Type::Float);
        }
        if self.eat("t") {
            return Some(Type::Var(TvId(self.number()?)));
        }
        if !self.eat("^{") {
            return None;
        }
        let mut fields = std::collections::BTreeMap::new();
        if self.s[self.i..].starts_with('}') || self.s[self.i..].starts_with('|') {
            let rest = self.row_end()?;
            return Some(Type::Chan(Row { fields, rest }));
        }
        loop {
            // Label: everything up to the argument list's `(`.
            let start = self.i;
            while self
                .s
                .as_bytes()
                .get(self.i)
                .is_some_and(|c| !matches!(c, b'(' | b')' | b',' | b'|' | b'{' | b'}'))
            {
                self.i += 1;
            }
            if self.i == start || !self.eat("(") {
                return None;
            }
            let label = self.s[start..self.i - 1].to_string();
            let mut args = Vec::new();
            if !self.eat(")") {
                loop {
                    args.push(self.ty()?);
                    if self.eat(")") {
                        break;
                    }
                    if !self.eat(",") {
                        return None;
                    }
                }
            }
            fields.insert(label, args);
            if self.eat(",") {
                continue;
            }
            let rest = self.row_end()?;
            return Some(Type::Chan(Row { fields, rest }));
        }
    }
}

/// FNV-1a hash (public for reuse on other wire-level identities).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Is the importer's `expected` protocol consistent with the exporter's
/// `actual` one?
///
/// This is a best-effort *evidence-based* check (the paper's scheme is
/// hybrid: anything the link-time check cannot rule out is still guarded
/// by the dynamic check at reduction time):
///
/// * type variables on either side are wildcards;
/// * labels known to both sides must agree in arity and (recursively) in
///   argument compatibility;
/// * a label known to one side but absent from the other is a mismatch
///   only when the other side's row is *closed* — an open row means that
///   side simply has no evidence about the label.
///
/// Channels occur both co- and contravariantly (a reply channel sent as an
/// argument is *written* by the exporter and *read* by the importer), so
/// the relation is deliberately symmetric in open/closed treatment.
pub fn compatible(expected: &Type, actual: &Type) -> bool {
    match (expected, actual) {
        (Type::Var(_), _) | (_, Type::Var(_)) => true,
        (Type::Unit, Type::Unit)
        | (Type::Int, Type::Int)
        | (Type::Bool, Type::Bool)
        | (Type::Str, Type::Str)
        | (Type::Float, Type::Float) => true,
        (Type::Chan(exp), Type::Chan(act)) => {
            for (l, eargs) in &exp.fields {
                match act.fields.get(l) {
                    None => {
                        if act.rest.is_none() {
                            return false;
                        }
                    }
                    Some(aargs) => {
                        if eargs.len() != aargs.len() {
                            return false;
                        }
                        if !eargs.iter().zip(aargs).all(|(e, a)| compatible(e, a)) {
                            return false;
                        }
                    }
                }
            }
            // Labels only the exporter mentions: fine unless the importer
            // committed to an exact protocol (closed row) AND the exporter
            // is also committed (closed) — then the sets must match.
            if exp.rest.is_none() && act.rest.is_none() {
                return exp.fields.len() == act.fields.len();
            }
            if exp.rest.is_none() {
                // Expected closed, actual open: the actual's *known*
                // labels must all be offered by the expected protocol.
                return act.fields.keys().all(|l| exp.fields.contains_key(l));
            }
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan(fields: Vec<(&str, Vec<Type>)>, rest: Option<RvId>) -> Type {
        Type::Chan(Row {
            fields: fields
                .into_iter()
                .map(|(l, a)| (l.to_string(), a))
                .collect(),
            rest,
        })
    }

    #[test]
    fn canonical_is_alpha_invariant() {
        let a = chan(vec![("l", vec![Type::Var(TvId(7))])], Some(RvId(3)));
        let b = chan(vec![("l", vec![Type::Var(TvId(0))])], Some(RvId(9)));
        assert_eq!(canonical(&a), canonical(&b));
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn fingerprint_distinguishes_protocols() {
        let a = chan(vec![("read", vec![Type::Int])], None);
        let b = chan(vec![("read", vec![Type::Bool])], None);
        let c = chan(vec![("write", vec![Type::Int])], None);
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn open_expectation_is_satisfied_by_superset() {
        let expected = chan(vec![("go", vec![Type::Int])], Some(RvId(0)));
        let actual = chan(vec![("go", vec![Type::Int]), ("stop", vec![])], None);
        assert!(compatible(&expected, &actual));
    }

    #[test]
    fn open_expectation_rejects_wrong_args() {
        let expected = chan(vec![("go", vec![Type::Int])], Some(RvId(0)));
        let actual = chan(vec![("go", vec![Type::Bool])], None);
        assert!(!compatible(&expected, &actual));
        let actual2 = chan(vec![("go", vec![Type::Int, Type::Int])], None);
        assert!(!compatible(&expected, &actual2));
    }

    #[test]
    fn open_expectation_rejects_missing_label_on_closed_actual() {
        let expected = chan(vec![("go", vec![])], Some(RvId(0)));
        let actual = chan(vec![("halt", vec![])], None);
        assert!(!compatible(&expected, &actual));
    }

    #[test]
    fn closed_expectation_requires_exact_match() {
        let expected = chan(vec![("a", vec![]), ("b", vec![])], None);
        let exact = chan(vec![("a", vec![]), ("b", vec![])], None);
        let wider = chan(vec![("a", vec![]), ("b", vec![]), ("c", vec![])], None);
        assert!(compatible(&expected, &exact));
        assert!(!compatible(&expected, &wider));
        // Closed expected vs OPEN actual that only mentions offered
        // labels: consistent (no evidence of mismatch).
        let open_subset = chan(vec![("a", vec![])], Some(RvId(0)));
        assert!(compatible(&expected, &open_subset));
        // Closed expected vs open actual mentioning an unoffered label:
        // evidenced mismatch.
        let open_extra = chan(vec![("z", vec![])], Some(RvId(0)));
        assert!(!compatible(&expected, &open_extra));
    }

    #[test]
    fn vars_are_wildcards() {
        let expected = chan(vec![("m", vec![Type::Var(TvId(0))])], Some(RvId(0)));
        let actual = chan(vec![("m", vec![Type::val_chan(vec![Type::Int])])], None);
        assert!(compatible(&expected, &actual));
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn parse_canonical_round_trips() {
        let cases = [
            Type::Unit,
            Type::Int,
            Type::Bool,
            Type::Str,
            Type::Float,
            Type::Var(TvId(3)),
            chan(vec![], None),
            chan(vec![], Some(RvId(0))),
            chan(
                vec![
                    ("read", vec![Type::val_chan(vec![Type::Int])]),
                    ("write", vec![Type::Int, Type::Bool]),
                ],
                Some(RvId(2)),
            ),
            chan(vec![("go", vec![Type::Var(TvId(1))])], None),
        ];
        for t in cases {
            let c = canonical(&t);
            let back = parse_canonical(&c).unwrap_or_else(|| panic!("parses: {c}"));
            // α-renaming makes structural equality too strict; the
            // canonical rendering itself is the identity to preserve.
            assert_eq!(canonical(&back), c);
        }
    }

    #[test]
    fn parse_canonical_rejects_garbage() {
        for s in [
            "", "in", "intx", "^{", "^{l(}", "^{l()|r}", "^{l()}}", "t", "nope",
        ] {
            assert!(parse_canonical(s).is_none(), "{s:?} must not parse");
        }
    }
}
