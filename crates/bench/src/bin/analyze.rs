//! Whole-program analysis and tree shaking measured, recorded to
//! `BENCH_analyze.json`.
//!
//! ```sh
//! cargo run --release -p ditico-bench --bin analyze            # full sweep
//! cargo run --release -p ditico-bench --bin analyze -- --smoke # CI smoke
//! ```
//!
//! Two questions, matching the two consumers of the analyzer:
//!
//! 1. **Image shrink.** For every example applet under `examples/dity/`,
//!    how much smaller is the stored image after tree shaking, and after
//!    the verified optimizer has folded constant branches first? Also
//!    records the analysis wall time per example — the cost a `ditico
//!    check --analyze` CI gate pays.
//!
//! 2. **FETCH latency.** A class whose body carries a constant-dead
//!    debug harness (dozens of forked tracing blocks) is fetched over a
//!    slow WAN link by a chain of client sites with the code cache off,
//!    so every fetch ships the full image. With `--shake` the machine
//!    packs against the table-rooted analysis and the dead harness never
//!    crosses the wire: virtual completion time and fabric bytes both
//!    drop, deterministically.

use ditico_rt::{Cluster, FabricMode, LinkProfile, RunLimits, RunReport};
use std::time::Instant;

/// Forked tracing blocks in the dead debug arm of the fetch workload.
const DEBUG_FORKS: usize = 48;
/// Sequential fetch chain length (each fetch re-ships: cache disabled).
const CHAIN: usize = 4;

fn wan() -> LinkProfile {
    LinkProfile::new(100_000, 1_000_000.0).expect("valid link")
}

struct Shrink {
    name: String,
    full_bytes: usize,
    shaken_bytes: usize,
    opt_shaken_bytes: usize,
    analysis_us: f64,
    findings: usize,
}

fn shrink_example(path: &std::path::Path) -> Option<Shrink> {
    let name = path.file_name()?.to_string_lossy().into_owned();
    let src = std::fs::read_to_string(path).ok()?;
    let p = ditico::Program::compile(&src).ok()?;

    let t0 = Instant::now();
    let analysis = p.analyze();
    let analysis_us = t0.elapsed().as_secs_f64() * 1e6;
    let findings = analysis.findings(&p.code).len();

    let full_bytes = tyco_vm::image_to_bytes(&p.code).len();
    let shaken_bytes = tyco_vm::image_to_bytes_shaken(&p.code).len();
    let opt_shaken_bytes = tyco_vm::image_to_bytes_shaken(&tyco_vm::optimize(&p.code)).len();
    Some(Shrink {
        name,
        full_bytes,
        shaken_bytes,
        opt_shaken_bytes,
        analysis_us,
        findings,
    })
}

fn shrink_sweep() -> Vec<Shrink> {
    let dir = std::path::Path::new("examples/dity");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("run from the workspace root: examples/dity not found")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "dity"))
        .collect();
    paths.sort();
    paths.iter().filter_map(|p| shrink_example(p)).collect()
}

/// `export def Applet(v) = if 1 > 2 then <forked debug harness> else … in 0`
fn fetch_server_src(forks: usize) -> String {
    let harness: Vec<String> = (0..forks)
        .map(|i| format!(r#"println("debug-{i}", v + {i})"#))
        .collect();
    format!(
        r#"export def Applet(v) = if 1 > 2 then ({}) else println("applet", v) in 0"#,
        harness.join(" | ")
    )
}

fn chain_site_src(i: usize, k: usize) -> String {
    let next = i + 1;
    let kick_next = if next < k {
        format!("import kick{next} from c{next} in kick{next}![]")
    } else {
        "0".to_string()
    };
    let body = format!("import Applet from server in (Applet[{i}] | {kick_next})");
    if i == 0 {
        body
    } else {
        format!("export new kick{i} in kick{i}?() = {body}")
    }
}

fn build_fetch_chain(k: usize, shake: bool) -> Cluster {
    let mut c = Cluster::new(FabricMode::Virtual, wan(), 1);
    let n0 = c.add_node();
    let n1 = c.add_node();
    c.set_code_cache(0); // every fetch ships the full image
    c.set_shake(shake);
    c.add_site_src(n0, "server", &fetch_server_src(DEBUG_FORKS))
        .expect("server compiles");
    for i in 0..k {
        c.add_site_src(n1, &format!("c{i}"), &chain_site_src(i, k))
            .expect("chain site compiles");
    }
    c
}

struct FetchSample {
    virtual_ms: f64,
    fabric_bytes: u64,
    report: RunReport,
}

fn run_fetch(mut c: Cluster, k: usize) -> FetchSample {
    let report = c.run_deterministic(RunLimits::default());
    assert!(report.errors.is_empty(), "VM errors: {:?}", report.errors);
    assert!(report.quiescent, "run did not terminate");
    for i in 0..k {
        let out = report.output(&format!("c{i}"));
        assert_eq!(out, [format!("applet {i}")], "site c{i} output");
    }
    FetchSample {
        virtual_ms: report.virtual_ns as f64 / 1e6,
        fabric_bytes: report.fabric_bytes,
        report,
    }
}

fn json_shrink(rows: &[Shrink]) -> String {
    rows.iter()
        .map(|s| {
            format!(
                "    {{ \"example\": \"{}\", \"full_bytes\": {}, \"shaken_bytes\": {}, \
                 \"opt_shaken_bytes\": {}, \"shrink_ratio\": {:.4}, \
                 \"opt_shrink_ratio\": {:.4}, \"analysis_us\": {:.1}, \"findings\": {} }}",
                s.name,
                s.full_bytes,
                s.shaken_bytes,
                s.opt_shaken_bytes,
                s.shaken_bytes as f64 / s.full_bytes as f64,
                s.opt_shaken_bytes as f64 / s.full_bytes as f64,
                s.analysis_us,
                s.findings
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

fn record(rows: &[Shrink], plain: &FetchSample, shaken: &FetchSample) {
    let (packs, saved) = shaken.report.shake_totals();
    let best = rows
        .iter()
        .map(|s| s.shaken_bytes as f64 / s.full_bytes as f64)
        .fold(1.0f64, f64::min);
    let speedup = plain.virtual_ms / shaken.virtual_ms;
    let json = format!(
        "{{\n  \"bench\": \"analyze\",\n  \"workload\": \"image shrink over examples/dity \
         plus a {CHAIN}-site sequential fetch chain of a {DEBUG_FORKS}-fork dead-harness \
         class over a 100us/1MBps link with the code cache off\",\n  \
         \"best_shrink_ratio\": {best:.4},\n  \"examples\": [\n{}\n  ],\n  \
         \"fetch\": {{\n    \"plain\": {{ \"virtual_ms\": {:.3}, \"fabric_bytes\": {} }},\n    \
         \"shaken\": {{ \"virtual_ms\": {:.3}, \"fabric_bytes\": {}, \
         \"shaken_packs\": {packs}, \"shake_bytes_saved\": {saved} }},\n    \
         \"speedup\": {speedup:.2}\n  }}\n}}\n",
        json_shrink(rows),
        plain.virtual_ms,
        plain.fabric_bytes,
        shaken.virtual_ms,
        shaken.fabric_bytes,
    );
    std::fs::write("BENCH_analyze.json", &json).expect("write BENCH_analyze.json");
    println!(
        "recorded BENCH_analyze.json (best shrink ratio {best:.3}, \
         fetch speedup {speedup:.2}x, {saved} B saved over {packs} shaken packs)"
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    let rows = shrink_sweep();
    assert!(!rows.is_empty(), "no examples compiled");
    for s in &rows {
        eprintln!(
            "  {}: {} B -> {} B shaken ({} B with --optimize), analysis {:.0} us, {} finding(s)",
            s.name, s.full_bytes, s.shaken_bytes, s.opt_shaken_bytes, s.analysis_us, s.findings
        );
    }
    assert!(
        rows.iter().any(|s| s.shaken_bytes < s.full_bytes),
        "tree shaking must shrink at least one example image"
    );

    let k = if smoke { 2 } else { CHAIN };
    let plain = run_fetch(build_fetch_chain(k, false), k);
    let shaken = run_fetch(build_fetch_chain(k, true), k);
    assert_eq!(plain.report.shake_totals().0, 0);
    let (packs, saved) = shaken.report.shake_totals();
    assert!(packs > 0, "shaken run recorded no shaken packs");
    assert!(saved > 0, "shaking saved no wire bytes");
    assert!(
        shaken.fabric_bytes < plain.fabric_bytes,
        "shaken fetches must shrink wire traffic: {} vs {}",
        shaken.fabric_bytes,
        plain.fabric_bytes
    );
    assert!(
        shaken.virtual_ms < plain.virtual_ms,
        "shaken fetches must be faster over a slow link: {:.3} vs {:.3} ms",
        shaken.virtual_ms,
        plain.virtual_ms
    );

    record(&rows, &plain, &shaken);
    if smoke {
        println!(
            "smoke ok: {} example(s) shrink, fetch chain x{k} {:.2}x faster shaken",
            rows.iter()
                .filter(|s| s.shaken_bytes < s.full_bytes)
                .count(),
            plain.virtual_ms / shaken.virtual_ms
        );
    }
}
