//! Smoke tests: every example binary must run to completion and produce
//! its expected headline output.

use std::process::Command;

fn run_example(name: &str, args: &[&str]) -> (String, String) {
    // Examples are built by the test harness's workspace; invoke via cargo
    // to reuse the build cache.
    let out = Command::new(env!("CARGO"))
        .args(["run", "--quiet", "--example", name, "--"])
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to run example {name}: {e}"));
    assert!(
        out.status.success(),
        "example {name} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
    )
}

#[test]
fn quickstart() {
    let (stdout, _) = run_example("quickstart", &["--stats"]);
    assert!(stdout.contains("int cell holds 9"), "{stdout}");
    assert!(stdout.contains("bool cell holds false"), "{stdout}");
    assert!(stdout.contains("granularity"), "{stdout}");
    let (disasm, _) = run_example("quickstart", &["--disasm"]);
    assert!(disasm.contains("byte-code"), "{disasm}");
}

#[test]
fn rpc() {
    let (stdout, _) = run_example("rpc", &[]);
    assert!(stdout.contains("12 squared remotely is 144"), "{stdout}");
    assert!(stdout.contains("client shipped 1 message"), "{stdout}");
}

#[test]
fn applet_server_both_modes() {
    let (stdout, _) = run_example("applet_server", &[]);
    assert!(stdout.contains("applet1 computes 11"), "{stdout}");
    assert!(stdout.contains("shipped applet1 got 7"), "{stdout}");
}

#[test]
fn seti_two_workers() {
    let (stdout, _) = run_example("seti", &["2"]);
    assert!(stdout.contains("served 2 class download(s)"), "{stdout}");
}

#[test]
fn ring_small() {
    let (stdout, _) = run_example("ring", &["3", "30"]);
    assert!(stdout.contains("token died here after 30 hops"), "{stdout}");
    assert!(
        stdout.contains("hops shipped over the fabric: 30"),
        "{stdout}"
    );
}

#[test]
fn cluster_sim_orders_links() {
    let (stdout, _) = run_example("cluster_sim", &[]);
    // The table rows must appear, and Myrinet must beat Ethernet.
    let time_of = |needle: &str| -> u64 {
        let line = stdout
            .lines()
            .find(|l| l.starts_with(needle))
            .unwrap_or_else(|| {
                panic!("missing row {needle} in\n{stdout}");
            });
        line.split_whitespace()
            .nth(2)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("bad row: {line}"))
    };
    assert!(time_of("myrinet") < time_of("ethernet"));
    assert!(time_of("ethernet") < time_of("wan"));
}

#[test]
fn tycosh_piped() {
    use std::io::Write as _;
    let mut child = Command::new(env!("CARGO"))
        .args(["run", "--quiet", "--example", "tycosh"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .env("TYCOSH_BATCH", "1")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"site m println(\"piped\")\nrun\noutput m\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("piped"));
}

#[test]
fn mapreduce_sums_squares() {
    let (stdout, _) = run_example("mapreduce", &["3", "20"]);
    // sum of squares 1..=20 = 2870
    assert!(stdout.contains("total 2870"), "{stdout}");
    assert!(stdout.contains("3 workers fetched"), "{stdout}");
}
