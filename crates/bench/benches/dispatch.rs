//! Hot-path micro-benchmarks backing `BENCH_dispatch.json`.
//!
//! Three Criterion groups cover the layers the zero-allocation work
//! targets: raw VM dispatch (instructions retired running the cell-churn
//! program), packet codec encode/decode (the per-message serialization
//! cost on the fabric path), and batched fabric sends (one lock + one
//! wakeup amortized over a whole backlog). The end-to-end numbers live in
//! the `dispatch` binary (`cargo run --release -p ditico-bench --bin
//! dispatch`); these isolate each stage so a regression is attributable.

use bytes::{Bytes, BytesMut};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ditico_bench::cell_churn;
use ditico_rt::{Fabric, FabricMode, LinkProfile};
use tyco_vm::codec::{self, Packet};
use tyco_vm::wire::WireWord;
use tyco_vm::word::{NetRef, NodeId, SiteId};
use tyco_vm::{compile, LoopbackPort, Machine};

/// Cell transactions per VM-dispatch iteration (small: Criterion repeats).
const CHURN_ITERS: u64 = 2_000;

fn bench_vm_dispatch(c: &mut Criterion) {
    let prog = compile(&tyco_syntax::parse_core(&cell_churn(CHURN_ITERS)).expect("parses"))
        .expect("compiles");
    // Count instructions once so throughput is reported per-instruction.
    let mut probe = Machine::new(prog.clone(), LoopbackPort::new("probe"));
    probe.run_to_quiescence(u64::MAX).expect("runs");
    let instrs = probe.stats.instrs;

    let mut group = c.benchmark_group("dispatch_vm");
    group.throughput(Throughput::Elements(instrs));
    group.bench_function("cell_churn", |b| {
        b.iter(|| {
            let mut m = Machine::new(prog.clone(), LoopbackPort::new("main"));
            m.run_to_quiescence(u64::MAX).expect("runs");
            m.stats.instrs
        });
    });
    group.finish();
}

fn sample_msg() -> Packet {
    Packet::Msg {
        dest: NetRef {
            heap_id: 7,
            site: SiteId(3),
            node: NodeId(1),
        },
        label: "ping".into(),
        args: vec![WireWord::Int(42), WireWord::Str("payload".into())],
    }
}

fn bench_codec(c: &mut Criterion) {
    let pkt = sample_msg();
    let encoded = codec::encode(&pkt);

    let mut group = c.benchmark_group("dispatch_codec");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    // Reused buffer: the daemon's batch-encode path (`encode_into` into a
    // shared `BytesMut`), versus allocating per packet.
    group.bench_function("encode_into_reused", |b| {
        let mut buf = BytesMut::with_capacity(256);
        b.iter(|| {
            buf.clear();
            codec::encode_into(&pkt, &mut buf);
            buf.len()
        });
    });
    group.bench_function("encode_fresh", |b| {
        b.iter(|| codec::encode(&pkt).len());
    });
    group.bench_function("decode", |b| {
        b.iter(|| codec::decode(encoded.clone()).expect("decodes"));
    });
    group.finish();
}

fn bench_fabric_batch(c: &mut Criterion) {
    let payload = codec::encode(&sample_msg());
    let mut group = c.benchmark_group("dispatch_fabric");
    for &batch in &[1usize, 64, 1024] {
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(
            BenchmarkId::new("send_batch", batch),
            &batch,
            |b, &batch| {
                let fabric = Fabric::new(FabricMode::Ideal, LinkProfile::ideal());
                let rx = fabric.register_node(NodeId(1));
                let h = fabric.handle();
                let mut scratch: Vec<Bytes> = Vec::with_capacity(batch);
                b.iter(|| {
                    scratch.extend(std::iter::repeat_n(payload.clone(), batch));
                    h.send_batch(NodeId(0), NodeId(1), &mut scratch);
                    let got = rx.try_iter().count();
                    assert_eq!(got, batch);
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_vm_dispatch, bench_codec, bench_fabric_batch);
criterion_main!(benches);
