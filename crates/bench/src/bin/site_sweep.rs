//! Site-count scaling sweep: the M:N work-stealing scheduler against the
//! old thread-per-site execution, at a fixed total message volume, recorded
//! to `BENCH_scheduler.json`.
//!
//! ```sh
//! cargo run --release -p ditico-bench --bin site_sweep                  # full sweep
//! cargo run --release -p ditico-bench --bin site_sweep -- --smoke \
//!     --sites 256 --workers 2                                           # CI correctness smoke
//! cargo run --release -p ditico-bench --bin site_sweep -- --smoke-bench # CI bench smoke (8 sites)
//! ```
//!
//! The workload is a ring over 4 nodes: site `i` exports a slot, imports
//! its successor's, streams `TOTAL/sites` pings around the ring and counts
//! the same number arriving before reporting "done". Total traffic is
//! constant across sweep sizes, so the sweep isolates how each execution
//! strategy scales with site count, not with work. Runs that hit the wall
//! limit are recorded with their partial throughput and `completed < sites`.

use std::time::{Duration, Instant};

use ditico_rt::sched::SchedConfig;
use ditico_rt::{Cluster, FabricMode, LinkProfile, RunReport};
use tyco_vm::word::NodeId;

/// Sweep points (sites spread round-robin over `NODES` nodes).
const SIZES: [usize; 5] = [8, 64, 256, 1024, 4096];
/// Total pings crossing the fabric per run, split evenly across sites.
const TOTAL_MSGS: u64 = 98_304;
/// Nodes in the cluster (the paper's 4-node platform).
const NODES: usize = 4;
/// Wall limit for scheduler runs (expected to finish far earlier).
const SCHED_WALL: Duration = Duration::from_secs(120);
/// Wall limit for thread-per-site baseline runs; large site counts are
/// expected to blow through this and get scored on partial throughput.
const BASELINE_WALL: Duration = Duration::from_secs(30);

fn ring_site_src(i: usize, n: usize, msgs: u64) -> String {
    let next = (i + 1) % n;
    format!(
        r#"
        export new slot{i} in
        import slot{next} from s{next} in (
            def Send(j) = if j > 0 then (slot{next}!ping[j] | Send[j - 1]) else 0
            and Recv(self, r) =
                if r > 0 then self ? {{ ping(x) = Recv[self, r - 1] }}
                else println("done")
            in (Send[{msgs}] | Recv[slot{i}, {msgs}])
        )
        "#
    )
}

fn build(sites: usize, msgs_per_site: u64) -> Cluster {
    let mut c = Cluster::new(FabricMode::Ideal, LinkProfile::ideal(), 1);
    let nodes: Vec<NodeId> = (0..NODES).map(|_| c.add_node()).collect();
    for i in 0..sites {
        c.add_site_src(
            nodes[i % NODES],
            &format!("s{i}"),
            &ring_site_src(i, sites, msgs_per_site),
        )
        .expect("ring site compiles");
    }
    c
}

struct Sample {
    msgs_per_sec: f64,
    elapsed: Duration,
    completed: usize,
    report: RunReport,
}

fn score(report: RunReport, elapsed: Duration, sites: usize) -> Sample {
    let completed = (0..sites)
        .filter(|i| report.output(&format!("s{i}")).iter().any(|l| l == "done"))
        .count();
    assert!(
        report.errors.is_empty(),
        "run produced VM errors: {:?}",
        report.errors
    );
    Sample {
        msgs_per_sec: report.fabric_packets as f64 / elapsed.as_secs_f64(),
        elapsed,
        completed,
        report,
    }
}

fn run_sched(sites: usize, msgs_per_site: u64, workers: usize) -> Sample {
    let mut c = build(sites, msgs_per_site);
    c.sched = SchedConfig {
        workers,
        ..SchedConfig::default()
    };
    let start = Instant::now();
    let report = c.run_threaded(SCHED_WALL);
    score(report, start.elapsed(), sites)
}

fn run_baseline(sites: usize, msgs_per_site: u64) -> Sample {
    let c = build(sites, msgs_per_site);
    let start = Instant::now();
    let report = c.run_threaded_thread_per_site(BASELINE_WALL);
    score(report, start.elapsed(), sites)
}

fn arg_after(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// CI correctness smoke: scheduler only, must fully complete and terminate.
fn smoke(sites: usize, workers: usize) {
    let msgs_per_site = 32;
    let s = run_sched(sites, msgs_per_site, workers);
    assert!(
        s.report.quiescent,
        "smoke run hit the wall limit instead of terminating"
    );
    assert_eq!(
        s.completed, sites,
        "only {} of {sites} sites finished",
        s.completed
    );
    println!(
        "smoke ok: {sites} sites x {msgs_per_site} msgs on {} workers in {:.3}s \
         ({} slices, {} steals, max ready depth {})",
        s.report.sched.workers,
        s.elapsed.as_secs_f64(),
        s.report.sched.slices,
        s.report.sched.steals,
        s.report.sched.max_ready_depth
    );
}

/// CI bench smoke: the smallest sweep point, both strategies, reduced
/// volume — proves the comparative harness itself still runs.
fn smoke_bench() {
    let sites = SIZES[0];
    let msgs_per_site = 1024;
    let base = run_baseline(sites, msgs_per_site);
    let sched = run_sched(sites, msgs_per_site, 0);
    assert_eq!(base.completed, sites, "baseline did not finish");
    assert_eq!(sched.completed, sites, "scheduler did not finish");
    println!(
        "bench smoke ok: {sites} sites, baseline {:.0} msgs/s, scheduler {:.0} msgs/s",
        base.msgs_per_sec, sched.msgs_per_sec
    );
}

fn json_sample(s: &Sample, sched: bool) -> String {
    let mut out = format!(
        "{{ \"msgs_per_sec\": {:.0}, \"elapsed_s\": {:.3}, \"completed_sites\": {} ",
        s.msgs_per_sec,
        s.elapsed.as_secs_f64(),
        s.completed
    );
    if sched {
        let st = &s.report.sched;
        out.push_str(&format!(
            ", \"workers\": {}, \"slices\": {}, \"steals\": {}, \"injector_pushes\": {}, \
             \"parks\": {}, \"unparks\": {}, \"max_ready_depth\": {}, \"max_site_slices\": {} ",
            st.workers,
            st.slices,
            st.steals,
            st.injector_pushes,
            st.parks,
            st.unparks,
            st.max_ready_depth,
            st.max_site_slices
        ));
    }
    out.push('}');
    out
}

fn sweep(workers: usize) {
    let mut rows = Vec::new();
    let mut speedup_at_1024 = 0.0;
    for &sites in &SIZES {
        let msgs_per_site = TOTAL_MSGS / sites as u64;
        eprintln!("== {sites} sites x {msgs_per_site} msgs ==");
        let base = run_baseline(sites, msgs_per_site);
        eprintln!(
            "   thread-per-site: {:.0} msgs/s in {:.2}s ({}/{sites} done)",
            base.msgs_per_sec,
            base.elapsed.as_secs_f64(),
            base.completed
        );
        let sched = run_sched(sites, msgs_per_site, workers);
        eprintln!(
            "   scheduler:       {:.0} msgs/s in {:.2}s ({}/{sites} done, {} workers, \
             {} slices, {} steals)",
            sched.msgs_per_sec,
            sched.elapsed.as_secs_f64(),
            sched.completed,
            sched.report.sched.workers,
            sched.report.sched.slices,
            sched.report.sched.steals
        );
        let speedup = sched.msgs_per_sec / base.msgs_per_sec;
        eprintln!("   speedup: {speedup:.2}x");
        if sites == 1024 {
            speedup_at_1024 = speedup;
        }
        // A wall-capped baseline can carry zero packets; null beats `inf`.
        let speedup_json = if speedup.is_finite() {
            format!("{speedup:.2}")
        } else {
            "null".to_string()
        };
        rows.push(format!(
            "    {{\n      \"sites\": {sites},\n      \"msgs_per_site\": {msgs_per_site},\n      \
             \"baseline\": {},\n      \"sched\": {},\n      \"speedup\": {speedup_json}\n    }}",
            json_sample(&base, false),
            json_sample(&sched, true)
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"site_sweep\",\n  \"workload\": \"ring over {NODES} nodes, \
         {TOTAL_MSGS} total pings split across sites, ideal fabric\",\n  \
         \"baseline\": \"run_threaded_thread_per_site (one OS thread per site, wall limit {}s)\",\n  \
         \"sched\": \"M:N work-stealing scheduler (run_threaded)\",\n  \
         \"speedup_at_1024\": {speedup_at_1024:.2},\n  \"sizes\": [\n{}\n  ]\n}}\n",
        BASELINE_WALL.as_secs(),
        rows.join(",\n")
    );
    std::fs::write("BENCH_scheduler.json", &json).expect("write BENCH_scheduler.json");
    println!("recorded BENCH_scheduler.json (speedup at 1024 sites: {speedup_at_1024:.2}x)");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workers: usize = arg_after(&args, "--workers")
        .and_then(|w| w.parse().ok())
        .unwrap_or(0);
    if args.iter().any(|a| a == "--smoke") {
        let sites: usize = arg_after(&args, "--sites")
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        smoke(sites, workers);
    } else if args.iter().any(|a| a == "--smoke-bench") {
        smoke_bench();
    } else {
        sweep(workers);
    }
}
