//! Experiment F2 (Fig. 2 — the DiTyCO architecture).
//!
//! Nodes host pools of sites; the site-level communication topology is
//! dynamic (export/import at run time) while the node topology is static.
//! Workload: N nodes × M sites per node, every site imports a shared hub
//! and a ring neighbour, producing mixed local/remote traffic. Measured:
//! wall-clock of the deterministic scheduler (Criterion) and the
//! local/remote traffic split (printed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ditico::{Cluster, FabricMode, LinkProfile, RunLimits};
use tyco_vm::word::NodeId;

fn build_cluster(nodes: u32, sites_per_node: u32, pings: u64) -> Cluster {
    let mut c = Cluster::new(FabricMode::Virtual, LinkProfile::myrinet(), 1);
    let node_ids: Vec<NodeId> = (0..nodes).map(|_| c.add_node()).collect();
    c.add_site_src(
        node_ids[0],
        "hub",
        r#"
        def Hub(self, n) = self?{ ping(r) = r![n] | Hub[self, n + 1] }
        in export new hub in Hub[hub, 0]
        "#,
    )
    .expect("hub compiles");
    for node in 0..nodes {
        for s in 0..sites_per_node {
            let lexeme = format!("w{node}_{s}");
            c.add_site_src(
                node_ids[node as usize],
                &lexeme,
                &format!(
                    r#"
                    import hub from hub in
                    def Loop(k) =
                        if k > 0 then new a (hub!ping[a] | a?(v) = Loop[k - 1])
                        else println("done")
                    in Loop[{pings}]
                    "#
                ),
            )
            .expect("worker compiles");
        }
    }
    c
}

fn bench_architecture(c: &mut Criterion) {
    // Print the traffic split for the paper's 4x2 configuration.
    {
        let mut cluster = build_cluster(4, 2, 20);
        let report = cluster.run_deterministic(RunLimits::default());
        assert!(report.errors.is_empty());
        let local: u64 = report.daemon_stats.iter().map(|d| d.local_deliveries).sum();
        let remote: u64 = report.daemon_stats.iter().map(|d| d.remote_sends).sum();
        println!("\n=== F2: 4 nodes x 2 sites, 8 workers x 20 pings to one hub ===");
        println!(
            "local (shared-memory) deliveries: {local}; remote (fabric) sends: {remote}; \
             fabric bytes: {}",
            report.fabric_bytes
        );
        println!("virtual completion time: {} µs", report.virtual_ns / 1_000);
    }

    let mut group = c.benchmark_group("f2_scheduler");
    group.sample_size(10);
    for &(nodes, sites) in &[(1u32, 8u32), (4, 2), (8, 1)] {
        let total_pings = 8 * 20;
        group.throughput(Throughput::Elements(total_pings));
        group.bench_with_input(
            BenchmarkId::new("deterministic_run", format!("{nodes}n_x_{sites}s")),
            &(nodes, sites),
            |b, &(nodes, sites)| {
                b.iter(|| {
                    let mut cluster = build_cluster(nodes, sites, 20);
                    let report = cluster.run_deterministic(RunLimits::default());
                    assert!(report.errors.is_empty());
                    report.total_instrs
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_architecture);
criterion_main!(benches);
