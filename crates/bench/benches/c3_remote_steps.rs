//! Experiment C3 — "a remote communication involves two reduction steps"
//! (§3): one SHIP to move the prefixed process to the target site, one
//! local rendez-vous to consume it.
//!
//! Verified on both semantics (the calculus interpreter counts rule
//! applications; the VM counts ships and comms), across messages, objects
//! and class fetches. Also the A2 ablation: the two-step σ translation
//! (sender export-table pass + receiver resolution pass) measured against
//! the raw send.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ditico::LinkProfile;
use ditico_bench::{run_two_node, sequential_client, ECHO_SERVER};
use tyco_calculus::Network;

fn steps_table() {
    println!("\n=== C3: reduction steps per remote interaction (calculus) ===");
    println!(
        "{:<28} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "interaction", "shipm", "shipo", "fetch", "comm", "inst"
    );
    let cases: [(&str, &str, &str); 3] = [
        (
            "remote message",
            "export new p in p?{ go(n) = 0 }",
            "import p from server in p!go[1]",
        ),
        (
            "object migration",
            r#"def S(p) = p?{ go(q) = (q?(x) = 0) | S[p] } in export new p in S[p]"#,
            "import p from server in new q (p!go[q] | q![1])",
        ),
        (
            "class fetch + inst",
            "export def K(v) = 0 in 0",
            "import K from server in K[1]",
        ),
    ];
    for (name, server, client) in cases {
        let mut net = Network::new();
        net.add_site_src("server", server).unwrap();
        net.add_site_src("client", client).unwrap();
        let out = net.run(100_000).unwrap();
        let c = out.counters;
        println!(
            "{:<28} {:>6} {:>6} {:>6} {:>6} {:>6}",
            name, c.shipm, c.shipo, c.fetch, c.comm, c.inst
        );
    }
    println!("(each ship/fetch is paired with exactly one local comm/inst — two steps)");

    // The VM agrees: 32 RPCs = 64 ships (request+reply) and 64 comms.
    let report = run_two_node(
        LinkProfile::myrinet(),
        ECHO_SERVER,
        &sequential_client(32),
        10_000_000,
    );
    let ships: u64 = report.stats.values().map(|s| s.msgs_sent).sum();
    let comms: u64 = report.stats.values().map(|s| s.comm).sum();
    println!("\nVM check over 32 RPCs: ships={ships} local-rendez-vous={comms} (expected 64/64)");
    assert_eq!(ships, 64);
    assert_eq!(comms, 64);
}

fn bench_remote_steps(c: &mut Criterion) {
    steps_table();

    // A2: the cost of the two-step translation on real runs — an RPC whose
    // arguments are channels (heavy translation: every word goes through
    // the export table twice) vs ints (no table traffic).
    let mut group = c.benchmark_group("c3_sigma_translation");
    group.sample_size(20);
    group.throughput(Throughput::Elements(64));
    group.bench_function("rpc_int_args", |b| {
        b.iter(|| {
            let r = run_two_node(
                LinkProfile::ideal(),
                ECHO_SERVER,
                &sequential_client(64),
                100_000_000,
            );
            assert!(r.errors.is_empty());
        });
    });
    group.bench_function("rpc_chan_args", |b| {
        // Every request carries TWO channels (the payload channel and the
        // reply channel), both of which must be exported and resolved.
        let server = r#"
            def Srv(p) = p?{ val(ch, r) = r![ch] | Srv[p] }
            in export new p in Srv[p]
        "#;
        let client = r#"
            import p from server in
            def Loop(k) =
                if k > 0 then new payload new a (p!val[payload, a] | a?(v) = Loop[k - 1])
                else println("done")
            in Loop[64]
        "#;
        b.iter(|| {
            let r = run_two_node(LinkProfile::ideal(), server, client, 100_000_000);
            assert!(r.errors.is_empty(), "{:?}", r.errors);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_remote_steps);
criterion_main!(benches);
