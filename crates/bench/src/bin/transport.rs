//! Connection-scaling benchmark for the TCP transport (ISSUE 8).
//!
//! Topology: one *hub* process-half runs a real [`Transport`] hosting
//! `NodeId(0)`; an echo thread drains node 0's fabric inbox and sends
//! every payload straight back to its sender. The other half is a swarm
//! of N raw-protocol loopback clients — each speaks the real wire format
//! (Hello handshake, then pipelined data frames carrying Heartbeat
//! packets, which pass the daemon's verifier screen as data) — all
//! driven from a single bench thread on its own [`Poller`], so the
//! client side never becomes the thread-count confound being measured.
//!
//! Each client keeps a window of 8 round-trips in flight until it has
//! completed its quota; RTT is measured per echo (same-connection FIFO
//! ordering makes a timestamp queue exact). The sweep doubles peers
//! 4 → 1024 against the event-loop backend, and `--ab` repeats each
//! point against the thread-per-peer baseline (`IoBackend::Threads`,
//! 2 threads per connection) until the baseline misses a point deadline.
//!
//! Modes, following the other bench binaries:
//!   --smoke   event backend only, 4 and 64 peers, asserts completion
//!             and that the emitted JSON is well-formed (CI gate)
//!   --ab      full sweep with the thread-per-peer baseline A/B
//!   (none)    full sweep, event backend only
//!
//! Full sweeps write `BENCH_transport.json`; smoke writes
//! `BENCH_transport_smoke.json` so a CI run never clobbers committed
//! sweep results.

#[cfg(target_os = "linux")]
mod unix_bench {
    use ditico_rt::poller::{connect_start, ConnectStart, Interest, PendingConnect, Poller};
    use ditico_rt::{
        Fabric, FabricMode, IoBackend, LinkProfile, PacketFabric, Transport, TransportConfig,
    };
    use std::io::{Read, Write};
    use std::net::{SocketAddr, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::{Duration, Instant};
    use tyco_vm::codec::{self, Packet, CONTROL_NODE, WIRE_VERSION};
    use tyco_vm::word::NodeId;

    /// Round-trips each client keeps in flight.
    const WINDOW: u64 = 8;
    /// Dials in flight *as the hub sees them*: started but not yet
    /// acknowledged by the hub's Hello. Gating on our own connect
    /// completion is not enough — the kernel finishes handshakes into
    /// the hub's accept queue long before the hub accept()s them, so an
    /// unpaced swarm overflows the listener backlog (128) and every
    /// subsequent SYN is silently dropped and retried after a ~1s RTO,
    /// which reads as a mysterious throughput collapse.
    const MAX_DIAL: usize = 64;
    const READ_CHUNK: usize = 64 * 1024;

    /// First remote node id; clients are `CLIENT_BASE + i`.
    const CLIENT_BASE: u32 = 1000;

    pub struct PointResult {
        pub completed: bool,
        pub echoes: u64,
        pub elapsed_s: f64,
        pub msgs_per_sec: f64,
        pub p99_us: f64,
        pub threads: usize,
    }

    enum ClientState {
        Idle,
        Dialing(PendingConnect),
        Up(TcpStream),
    }

    struct Client {
        state: ClientState,
        node: NodeId,
        rbuf: Vec<u8>,
        rpos: usize,
        wbuf: Vec<u8>,
        woff: usize,
        want_write: bool,
        sent: u64,
        recvd: u64,
        inflight: std::collections::VecDeque<Instant>,
        dial_retries: u32,
        saw_hello: bool,
        done: bool,
    }

    impl Client {
        fn new(i: usize) -> Client {
            Client {
                state: ClientState::Idle,
                node: NodeId(CLIENT_BASE + i as u32),
                rbuf: Vec::new(),
                rpos: 0,
                wbuf: Vec::new(),
                woff: 0,
                want_write: false,
                sent: 0,
                recvd: 0,
                inflight: std::collections::VecDeque::new(),
                dial_retries: 0,
                saw_hello: false,
                done: false,
            }
        }

        fn queue_msg(&mut self, now: Instant) {
            let p = Packet::Heartbeat {
                node: self.node,
                seq: self.sent,
            };
            let frame = codec::encode_frame(self.node, NodeId(0), &codec::encode(&p));
            self.wbuf.extend_from_slice(&frame);
            self.inflight.push_back(now);
            self.sent += 1;
        }
    }

    /// Count of OS threads in this process, from /proc (0 if unreadable).
    fn process_threads() -> usize {
        let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
            return 0;
        };
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    }

    struct Swarm {
        poller: Poller,
        clients: Vec<Client>,
        addr: SocketAddr,
        next_dial: usize,
        hellos_seen: usize,
        connected: usize,
        done_count: usize,
        msgs_per_client: u64,
        rtts_us: Vec<u64>,
        first_send: Option<Instant>,
        last_echo: Option<Instant>,
        threads_at_peak: usize,
        failed: Option<String>,
    }

    impl Swarm {
        /// Start dials until `MAX_DIAL` are outstanding (started, no hub
        /// Hello yet) — the pacing that keeps the hub's accept queue
        /// bounded below its backlog.
        fn fill_dials(&mut self) {
            while self.failed.is_none()
                && self.next_dial < self.clients.len()
                && self.next_dial - self.hellos_seen < MAX_DIAL
            {
                let i = self.next_dial;
                self.next_dial += 1;
                self.start_dial(i);
            }
        }

        fn start_dial(&mut self, i: usize) {
            match connect_start(&self.addr) {
                Ok(ConnectStart::Connected(s)) => self.install(i, s, false),
                Ok(ConnectStart::Pending(p)) => {
                    if let Err(e) = self.poller.register(p.raw_fd(), i, Interest::WRITE) {
                        self.failed = Some(format!("register dial {i}: {e}"));
                        return;
                    }
                    self.clients[i].state = ClientState::Dialing(p);
                }
                Err(e) => self.dial_failed(i, e.to_string()),
            }
        }

        fn dial_failed(&mut self, i: usize, why: String) {
            self.clients[i].dial_retries += 1;
            if self.clients[i].dial_retries > 3 {
                self.failed = Some(format!("client {i} cannot connect: {why}"));
            } else {
                self.start_dial(i);
            }
        }

        /// A connected socket: prime hello + first window, register.
        fn install(&mut self, i: usize, sock: TcpStream, registered: bool) {
            let _ = sock.set_nodelay(true);
            let _ = sock.set_nonblocking(true);
            let now = Instant::now();
            if self.first_send.is_none() {
                self.first_send = Some(now);
            }
            {
                let c = &mut self.clients[i];
                let hello = Packet::Hello {
                    version: WIRE_VERSION,
                    nodes: vec![c.node],
                };
                let frame = codec::encode_frame(c.node, CONTROL_NODE, &codec::encode(&hello));
                c.wbuf.extend_from_slice(&frame);
                for _ in 0..WINDOW.min(self.msgs_per_client) {
                    c.queue_msg(now);
                }
                c.want_write = true;
            }
            let fd = sock.as_raw_fd();
            let r = if registered {
                self.poller.modify(fd, i, Interest::BOTH)
            } else {
                self.poller.register(fd, i, Interest::BOTH)
            };
            if let Err(e) = r {
                self.failed = Some(format!("register client {i}: {e}"));
                return;
            }
            self.clients[i].state = ClientState::Up(sock);
            self.connected += 1;
            if self.connected == self.clients.len() {
                self.threads_at_peak = process_threads();
            }
            self.flush(i);
        }

        fn event(&mut self, i: usize, readable: bool, writable: bool, closed: bool) {
            if i >= self.clients.len() || self.failed.is_some() {
                return;
            }
            match std::mem::replace(&mut self.clients[i].state, ClientState::Idle) {
                ClientState::Idle => {}
                ClientState::Dialing(p) => {
                    let fd = p.raw_fd();
                    match p.finish() {
                        Ok(s) => self.install(i, s, true),
                        Err(e) => {
                            let _ = self.poller.deregister(fd);
                            self.dial_failed(i, e.to_string());
                        }
                    }
                }
                ClientState::Up(sock) => {
                    self.clients[i].state = ClientState::Up(sock);
                    if closed && !self.clients[i].done {
                        self.failed = Some(format!("client {i}: connection closed by hub"));
                        return;
                    }
                    if readable {
                        self.read(i);
                    }
                    if writable && self.failed.is_none() {
                        self.flush(i);
                    }
                }
            }
        }

        fn read(&mut self, i: usize) {
            let mut chunk = vec![0u8; READ_CHUNK];
            // Bounded per event; level-triggered polling re-fires for the rest.
            for _ in 0..4 {
                let ClientState::Up(sock) = &mut self.clients[i].state else {
                    return;
                };
                match sock.read(&mut chunk) {
                    Ok(0) => {
                        if !self.clients[i].done {
                            self.failed = Some(format!("client {i}: EOF from hub"));
                        }
                        return;
                    }
                    Ok(n) => self.clients[i].rbuf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        self.failed = Some(format!("client {i}: read: {e}"));
                        return;
                    }
                }
            }
            self.parse(i);
        }

        fn parse(&mut self, i: usize) {
            let now = Instant::now();
            let mut new_msgs = 0u64;
            {
                let c = &mut self.clients[i];
                loop {
                    let rest = &c.rbuf[c.rpos..];
                    match codec::decode_frame(rest) {
                        Ok(Some((frame, used))) => {
                            c.rpos += used;
                            if frame.to == CONTROL_NODE {
                                // First control frame on a connection is
                                // the hub's Hello: its acceptance ack,
                                // and our cue to start more dials.
                                if !c.saw_hello {
                                    c.saw_hello = true;
                                    self.hellos_seen += 1;
                                }
                                continue;
                            }
                            // An echo of one of our pipelined messages.
                            c.recvd += 1;
                            if let Some(t) = c.inflight.pop_front() {
                                self.rtts_us.push(now.duration_since(t).as_micros() as u64);
                            }
                            self.last_echo = Some(now);
                            if c.sent < self.msgs_per_client {
                                c.queue_msg(now);
                                new_msgs += 1;
                            } else if c.recvd == self.msgs_per_client && !c.done {
                                c.done = true;
                                self.done_count += 1;
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            self.failed = Some(format!("client {i}: corrupt frame: {e}"));
                            return;
                        }
                    }
                }
                if c.rpos > READ_CHUNK {
                    c.rbuf.drain(..c.rpos);
                    c.rpos = 0;
                }
            }
            if new_msgs > 0 {
                self.flush(i);
            }
            self.fill_dials();
        }

        fn flush(&mut self, i: usize) {
            let mut stalled = false;
            let mut dead: Option<String> = None;
            {
                let c = &mut self.clients[i];
                let ClientState::Up(sock) = &mut c.state else {
                    return;
                };
                while c.woff < c.wbuf.len() {
                    match sock.write(&c.wbuf[c.woff..]) {
                        Ok(n) => c.woff += n,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            stalled = true;
                            break;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => {
                            dead = Some(format!("client {i}: write: {e}"));
                            break;
                        }
                    }
                }
                if c.woff == c.wbuf.len() {
                    c.wbuf.clear();
                    c.woff = 0;
                }
            }
            if let Some(why) = dead {
                self.failed = Some(why);
                return;
            }
            // Toggle write interest only on stall edges.
            let want = stalled;
            if want != self.clients[i].want_write {
                self.clients[i].want_write = want;
                let interest = if want { Interest::BOTH } else { Interest::READ };
                if let ClientState::Up(sock) = &self.clients[i].state {
                    let fd = sock.as_raw_fd();
                    if let Err(e) = self.poller.modify(fd, i, interest) {
                        self.failed = Some(format!("client {i}: modify: {e}"));
                    }
                }
            }
        }
    }

    /// One measured point: a hub with `backend`, `peers` echo clients,
    /// `msgs` round-trips each, abandoned at `deadline`.
    pub fn run_point(
        backend: IoBackend,
        peers: usize,
        msgs: u64,
        deadline: Duration,
    ) -> PointResult {
        let fabric = Fabric::new(FabricMode::Ideal, LinkProfile::ideal());
        let inbox = fabric.register_node(NodeId(0));
        let mut hub = Transport::start(
            TransportConfig {
                local_nodes: vec![NodeId(0)],
                listen: Some("127.0.0.1:0".parse().unwrap()),
                hb_period: Duration::from_secs(1),
                // Clients send Heartbeat packets as *data*, so the
                // failure monitor never observes them; park suspicion
                // far beyond any point deadline.
                stale_periods: 10_000,
                backend,
                ..TransportConfig::default()
            },
            fabric.handle(),
        )
        .expect("hub transport");
        let addr = hub.local_addr().expect("hub addr");

        let net = hub.handle();
        let echo = std::thread::Builder::new()
            .name("bench-echo".into())
            .spawn(move || {
                while let Ok((from, payload)) = inbox.recv() {
                    if from == NodeId(0) {
                        return; // shutdown sentinel (hub echoes never originate locally)
                    }
                    net.send(NodeId(0), from, payload);
                }
            })
            .expect("spawn echo");

        let mut swarm = Swarm {
            poller: Poller::new().expect("poller"),
            clients: (0..peers).map(Client::new).collect(),
            addr,
            next_dial: 0,
            hellos_seen: 0,
            connected: 0,
            done_count: 0,
            msgs_per_client: msgs,
            rtts_us: Vec::with_capacity(peers * msgs as usize),
            first_send: None,
            last_echo: None,
            threads_at_peak: 0,
            failed: None,
        };
        swarm.fill_dials();

        let t_end = Instant::now() + deadline;
        let mut events = Vec::new();
        let mut completed = true;
        while swarm.done_count < peers && swarm.failed.is_none() {
            if Instant::now() >= t_end {
                completed = false;
                break;
            }
            swarm
                .poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .expect("poller wait");
            for ev in &events {
                swarm.event(ev.token, ev.readable, ev.writable, ev.closed);
            }
        }
        if let Some(why) = &swarm.failed {
            eprintln!("    point failed: {why}");
            completed = false;
        }

        let echoes: u64 = swarm.clients.iter().map(|c| c.recvd).sum();
        let elapsed = match (swarm.first_send, swarm.last_echo) {
            (Some(a), Some(b)) if b > a => b.duration_since(a).as_secs_f64(),
            _ => f64::NAN,
        };
        let msgs_per_sec = if elapsed.is_finite() && elapsed > 0.0 {
            echoes as f64 / elapsed
        } else {
            0.0
        };
        // Sample thread count again at point end: the baseline hub
        // spawns its 2-per-connection threads *after* the kernel
        // completes our handshakes, so the connected-peak sample alone
        // races ahead of the spawn storm it is meant to measure.
        swarm.threads_at_peak = swarm.threads_at_peak.max(process_threads());
        let p99_us = if swarm.rtts_us.is_empty() {
            f64::NAN
        } else {
            let mut r = std::mem::take(&mut swarm.rtts_us);
            r.sort_unstable();
            r[(r.len() - 1).min(r.len() * 99 / 100)] as f64
        };
        let threads = swarm.threads_at_peak;

        // Teardown: sockets first, then the hub, then unblock the echo
        // thread with a local sentinel (its fabric sender outlives the
        // transport, so a plain drop would leave it parked forever).
        drop(swarm);
        hub.shutdown();
        fabric
            .handle()
            .send(NodeId(0), NodeId(0), bytes::Bytes::from_static(b"bye"));
        echo.join().expect("echo thread");

        PointResult {
            completed: completed && echoes == msgs * peers as u64,
            echoes,
            elapsed_s: if elapsed.is_finite() { elapsed } else { 0.0 },
            msgs_per_sec,
            p99_us: if p99_us.is_finite() { p99_us } else { 0.0 },
            threads,
        }
    }
}

#[cfg(target_os = "linux")]
fn point_json(p: &unix_bench::PointResult) -> String {
    format!(
        "{{ \"completed\": {}, \"echoes\": {}, \"elapsed_s\": {:.3}, \
         \"msgs_per_sec\": {:.1}, \"p99_us\": {:.1}, \"threads\": {} }}",
        p.completed, p.echoes, p.elapsed_s, p.msgs_per_sec, p.p99_us, p.threads
    )
}

/// Minimal well-formedness check for the emitted JSON (no parser dep):
/// balanced braces/brackets outside strings, terminated strings.
fn assert_json_wellformed(s: &str) {
    let mut stack = Vec::new();
    let mut in_str = false;
    let mut esc = false;
    for ch in s.chars() {
        if in_str {
            if esc {
                esc = false;
            } else if ch == '\\' {
                esc = true;
            } else if ch == '"' {
                in_str = false;
            }
            continue;
        }
        match ch {
            '"' => in_str = true,
            '{' | '[' => stack.push(ch),
            '}' => assert_eq!(stack.pop(), Some('{'), "unbalanced brace"),
            ']' => assert_eq!(stack.pop(), Some('['), "unbalanced bracket"),
            _ => {}
        }
    }
    assert!(!in_str, "unterminated string");
    assert!(stack.is_empty(), "unclosed {stack:?}");
}

#[cfg(target_os = "linux")]
fn main() {
    use ditico_rt::IoBackend;
    use std::time::Duration;
    use unix_bench::{run_point, PointResult};

    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let ab = args.iter().any(|a| a == "--ab");
    let arg_after = |flag: &str| -> Option<u64> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
    };

    // Single-point probe: `--peers N [--msgs M] [--baseline]`, no JSON.
    if let Some(peers) = arg_after("--peers") {
        let msgs = arg_after("--msgs").unwrap_or(100);
        let backend = if args.iter().any(|a| a == "--baseline") {
            IoBackend::Threads
        } else {
            IoBackend::Event
        };
        let p = run_point(backend, peers as usize, msgs, Duration::from_secs(60));
        println!(
            "peers={} completed={} {:.0} msg/s p99 {:.0}us elapsed {:.3}s threads {}",
            peers, p.completed, p.msgs_per_sec, p.p99_us, p.elapsed_s, p.threads
        );
        return;
    }

    if smoke {
        // CI gate: the event backend must complete 4- and 64-peer echo
        // rounds, and the JSON we emit must be well-formed.
        let mut rows = Vec::new();
        for peers in [4usize, 64] {
            let p = run_point(IoBackend::Event, peers, 50, Duration::from_secs(30));
            eprintln!(
                "  smoke {} peers: completed={} {:.0} msg/s p99 {:.0}us",
                peers, p.completed, p.msgs_per_sec, p.p99_us
            );
            assert!(
                p.completed,
                "smoke: {peers}-peer point did not complete ({} of {} echoes)",
                p.echoes,
                peers as u64 * 50
            );
            rows.push(format!(
                "    {{ \"peers\": {}, \"event\": {} }}",
                peers,
                point_json(&p)
            ));
        }
        let json = format!(
            "{{\n  \"bench\": \"transport_scaling_smoke\",\n  \"points\": [\n{}\n  ]\n}}\n",
            rows.join(",\n")
        );
        assert_json_wellformed(&json);
        std::fs::write("BENCH_transport_smoke.json", &json).expect("write smoke json");
        println!("smoke ok: 4- and 64-peer event-loop echo rounds completed, JSON well-formed");
        return;
    }

    const PEERS: [usize; 5] = [4, 16, 64, 256, 1024];
    const MSGS: u64 = 100;
    let deadline = Duration::from_secs(60);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows = Vec::new();
    let mut max_event = 0usize;
    let mut baseline_competitive = 0usize;
    let mut baseline_dead = false;

    for peers in PEERS {
        eprintln!("peers={peers} event backend...");
        let ev = run_point(IoBackend::Event, peers, MSGS, deadline);
        eprintln!(
            "  event:    completed={} {:>9.0} msg/s  p99 {:>7.0}us  {} threads",
            ev.completed, ev.msgs_per_sec, ev.p99_us, ev.threads
        );
        if ev.completed {
            max_event = peers;
        }

        let base: Option<PointResult> = if ab && !baseline_dead {
            eprintln!("peers={peers} thread-per-peer baseline...");
            let b = run_point(IoBackend::Threads, peers, MSGS, deadline);
            eprintln!(
                "  baseline: completed={} {:>9.0} msg/s  p99 {:>7.0}us  {} threads",
                b.completed, b.msgs_per_sec, b.p99_us, b.threads
            );
            if !b.completed {
                baseline_dead = true; // fell over; larger points are pointless
            } else if b.msgs_per_sec >= 0.95 * ev.msgs_per_sec {
                baseline_competitive = peers;
            }
            Some(b)
        } else {
            None
        };

        let base_json = match &base {
            Some(b) => point_json(b),
            None => "null".to_string(),
        };
        rows.push(format!(
            "    {{ \"peers\": {}, \"event\": {}, \"baseline\": {} }}",
            peers,
            point_json(&ev),
            base_json
        ));
    }

    let advantage = if ab && baseline_competitive > 0 {
        format!("{:.1}", max_event as f64 / baseline_competitive as f64)
    } else if ab {
        format!("{:.1}", max_event as f64 / PEERS[0] as f64)
    } else {
        "null".to_string()
    };
    let json = format!(
        "{{\n  \"bench\": \"transport_scaling\",\n  \
         \"workload\": \"hub echo over loopback: N raw-wire clients, {MSGS} pipelined round-trips each (window 8), Heartbeat-packet payloads\",\n  \
         \"machine\": {{ \"cores\": {cores} }},\n  \
         \"deadline_s\": {},\n  \
         \"points\": [\n{}\n  ],\n  \
         \"max_peers_event\": {max_event},\n  \
         \"baseline_competitive_peers\": {},\n  \
         \"peer_advantage\": {advantage}\n}}\n",
        deadline.as_secs(),
        rows.join(",\n"),
        if ab {
            baseline_competitive.to_string()
        } else {
            "null".to_string()
        },
    );
    assert_json_wellformed(&json);
    std::fs::write("BENCH_transport.json", &json).expect("write json");
    println!(
        "wrote BENCH_transport.json: event backend completed {max_event} peers{}",
        if ab {
            format!(", baseline competitive up to {baseline_competitive} peers")
        } else {
            String::new()
        }
    );
}

#[cfg(not(target_os = "linux"))]
fn main() {
    println!("transport bench requires the Linux poller; skipping");
}
