//! Production-shaped chaos scenarios (the macro family riding on the
//! seeded fault-injection harness in `ditico_rt::chaos`):
//!
//!   pubsub   — fan-out: one hub site answers `sub` requests from 100k+
//!              subscriber sites spread over 8 nodes of the virtual
//!              fabric, under packet drop/dup/delay chaos. The run must
//!              stay deterministic, terminate, and deliver to the
//!              overwhelming majority despite the injected loss.
//!   herd     — RPC thundering herd: K sites on one node import the same
//!              remote def at once, hammering the per-node single-flight
//!              fetch path (quiet plan: exactly one FetchReq on the wire,
//!              K−1 coalesced), then again under drop chaos where the
//!              bounded NeedCode refill retries must reconverge.
//!   restart  — rolling restart of a serving peer over real loopback TCP:
//!              the peer bounces (down window ≫ the stale threshold,
//!              heartbeat sequence restarting from 1 like a restarted
//!              daemon's); every bounce must be survived, reconnected,
//!              and healed — the final report carries no suspects.
//!   soak     — partition/heal + daemon-restart churn across ≥100 seeds
//!              on the virtual fabric, every seed replayed: byte-identical
//!              reports per seed, zero panics, zero site errors, and the
//!              deterministic failure monitor driven through the
//!              partition windows.
//!
//! ```sh
//! cargo run --release -p ditico-bench --bin chaos               # full, BENCH_chaos.json
//! cargo run --release -p ditico-bench --bin chaos -- --smoke    # CI size, BENCH_chaos_smoke.json
//! cargo run --release -p ditico-bench --bin chaos -- --soak     # soak only, no file (CI gate)
//! ```

use std::io::{Read as _, Write as _};
use std::net::TcpListener;
use std::time::{Duration, Instant};

use ditico_rt::{
    ChaosEvent, ChaosPlan, ChaosSpec, Cluster, FabricMode, LinkProfile, RunLimits, RunReport,
    TransportConfig,
};
use tyco_vm::codec::{self, Packet, CONTROL_NODE, WIRE_VERSION};
use tyco_vm::word::NodeId;

fn faulty_spec(seed: u64) -> ChaosSpec {
    let mut spec = ChaosSpec::quiet(seed);
    spec.drop_per_mille = 20;
    spec.dup_per_mille = 10;
    spec.delay_per_mille = 10;
    spec.delay_ns = 1_000_000;
    spec
}

fn no_errors(report: &RunReport, scenario: &str) {
    assert!(
        report.errors.is_empty(),
        "{scenario}: chaos must degrade, never crash a site: {:?}",
        report.errors
    );
}

// -- pubsub ------------------------------------------------------------------

const HUB: &str = "def Hub(t) = t?{ sub(r) = r![7] | Hub[t] } in export new t in Hub[t]";
const SUB: &str = r#"import t from hub in new me (t!sub[me] | me?(v) = println("got", v))"#;

struct PubsubResult {
    subs: usize,
    delivered: usize,
    wall_s: f64,
    packets: u64,
    dropped: u64,
    duplicated: u64,
    delayed: u64,
}

fn scenario_pubsub(smoke: bool) -> PubsubResult {
    let subs: usize = if smoke { 2_000 } else { 100_000 };
    let sub_nodes = 8usize;
    let mut c = Cluster::new(FabricMode::Virtual, LinkProfile::fast_ethernet(), 1);
    let hub_node = c.add_node();
    let nodes: Vec<NodeId> = (0..sub_nodes).map(|_| c.add_node()).collect();
    c.add_site_src(hub_node, "hub", HUB).expect("hub compiles");
    // Every subscriber runs the same program; compile once, clone cheaply.
    let sub_prog =
        tyco_vm::compile(&tyco_syntax::parse_core(SUB).expect("parse")).expect("compile");
    for i in 0..subs {
        c.add_site(nodes[i % sub_nodes], &format!("sub{i}"), sub_prog.clone());
    }
    c.set_chaos(ChaosPlan::new(faulty_spec(9))).expect("plan");
    let start = Instant::now();
    let report = c.run_deterministic(RunLimits {
        max_instrs: 4_000_000_000,
        // Batch delivery waves: without overshoot the idle advance wakes
        // the O(subs) site scan once per packet deadline.
        idle_advance_ns: 1_000_000,
        ..RunLimits::default()
    });
    let wall_s = start.elapsed().as_secs_f64();
    no_errors(&report, "pubsub");
    let delivered = (0..subs)
        .filter(|i| {
            report
                .output(&format!("sub{i}"))
                .iter()
                .any(|l| l == "got 7")
        })
        .count();
    let chaos = report.chaos.expect("chaos report");
    assert!(
        delivered * 2 > subs,
        "pubsub: fan-out mostly survives 2% drop: {delivered}/{subs}"
    );
    PubsubResult {
        subs,
        delivered,
        wall_s,
        packets: report.fabric_packets,
        dropped: chaos.dropped,
        duplicated: chaos.duplicated,
        delayed: chaos.delayed,
    }
}

// -- thundering herd ---------------------------------------------------------

const HERD_SRV: &str = r#"export def Applet(r) = r![1] in 0"#;
const HERD_CLIENT: &str =
    r#"import Applet from server in new a (Applet[a] | a?(x) = println("ran"))"#;

struct HerdResult {
    k: usize,
    coalesced: u64,
    fetches_served: u64,
    wall_s: f64,
    chaotic_delivered: usize,
    chaotic_dropped: u64,
}

fn herd_cluster(k: usize) -> Cluster {
    let mut c = Cluster::new(FabricMode::Virtual, LinkProfile::fast_ethernet(), 1);
    let srv = c.add_node();
    let cli = c.add_node();
    c.add_site_src(srv, "server", HERD_SRV).expect("server");
    let prog =
        tyco_vm::compile(&tyco_syntax::parse_core(HERD_CLIENT).expect("parse")).expect("compile");
    for i in 0..k {
        c.add_site(cli, &format!("c{i}"), prog.clone());
    }
    c
}

fn scenario_herd(smoke: bool) -> HerdResult {
    let k: usize = if smoke { 256 } else { 8192 };
    // Quiet plan first: the herd must collapse onto one wire fetch.
    let mut c = herd_cluster(k);
    let start = Instant::now();
    let report = c.run_deterministic(RunLimits {
        max_instrs: 2_000_000_000,
        ..RunLimits::default()
    });
    let wall_s = start.elapsed().as_secs_f64();
    no_errors(&report, "herd");
    let cache = report.cache_totals();
    assert_eq!(
        report.stats["server"].fetches_served, 1,
        "herd: single-flight puts exactly one FetchReq on the wire"
    );
    assert_eq!(
        cache.coalesced,
        (k as u64) - 1,
        "herd: every other fetch coalesces onto the leader"
    );

    // Same herd under drop chaos: the refill retries must still converge
    // for most of the herd, and nothing may panic or hang.
    let mut c = herd_cluster(k);
    c.set_chaos(ChaosPlan::new(faulty_spec(17))).expect("plan");
    let chaotic = c.run_deterministic(RunLimits {
        max_instrs: 2_000_000_000,
        idle_advance_ns: 1_000_000,
        ..RunLimits::default()
    });
    no_errors(&chaotic, "herd(chaotic)");
    let chaotic_delivered = (0..k)
        .filter(|i| chaotic.output(&format!("c{i}")).iter().any(|l| l == "ran"))
        .count();
    let chaos = chaotic.chaos.expect("chaos report");
    HerdResult {
        k,
        coalesced: cache.coalesced,
        fetches_served: report.stats["server"].fetches_served,
        wall_s,
        chaotic_delivered,
        chaotic_dropped: chaos.dropped,
    }
}

// -- rolling restart over real TCP -------------------------------------------

fn heartbeat_frame(node: NodeId, seq: u64) -> bytes::Bytes {
    codec::encode_frame(
        node,
        CONTROL_NODE,
        &codec::encode(&Packet::Heartbeat { node, seq }),
    )
}

fn hello_frame(node: NodeId) -> bytes::Bytes {
    codec::encode_frame(
        node,
        CONTROL_NODE,
        &codec::encode(&Packet::Hello {
            version: WIRE_VERSION,
            nodes: vec![node],
        }),
    )
}

/// Keep the socket drained while emitting `n` heartbeats at `every`;
/// returns false if the remote hung up.
fn beat(
    sock: &mut std::net::TcpStream,
    node: NodeId,
    from_seq: u64,
    n: u64,
    every: Duration,
) -> bool {
    sock.set_nonblocking(true).expect("nonblocking");
    let mut sink = [0u8; 4096];
    for seq in from_seq..from_seq + n {
        if sock.write_all(&heartbeat_frame(node, seq)).is_err() {
            return false;
        }
        let deadline = Instant::now() + every;
        while Instant::now() < deadline {
            match sock.read(&mut sink) {
                Ok(0) => return false,
                _ => std::thread::sleep(Duration::from_millis(2)),
            }
        }
    }
    true
}

struct RestartResult {
    cycles: u32,
    reconnects: u64,
    suspects_final: usize,
    heartbeats_in: u64,
    wall_s: f64,
}

fn scenario_restart(smoke: bool) -> RestartResult {
    let cycles: u32 = if smoke { 1 } else { 3 };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    // A steady second peer keeps the run from terminating via
    // all-remotes-down while the serving peer is inside a down window.
    let steady_l = TcpListener::bind("127.0.0.1:0").expect("bind");
    let steady_addr = steady_l.local_addr().expect("addr");
    let steady = std::thread::spawn(move || {
        let (mut sock, _) = steady_l.accept().expect("accept");
        sock.write_all(&hello_frame(NodeId(2))).expect("hello");
        beat(&mut sock, NodeId(2), 1, 3_000, Duration::from_millis(20));
    });

    // The "serve process": accepts, heartbeats, dies, comes back on the
    // same port with its beacon sequence restarted — `cycles` times, then
    // stays up until the client disconnects.
    let server = std::thread::spawn(move || {
        let mut listener = listener;
        for _ in 0..cycles {
            let (mut sock, _) = listener.accept().expect("accept");
            drop(listener);
            sock.write_all(&hello_frame(NodeId(0))).expect("hello");
            // Alive past the stale threshold, then gone past the
            // immediate-redial window so the comeback is a true
            // reconnect.
            beat(&mut sock, NodeId(0), 1, 20, Duration::from_millis(20));
            drop(sock);
            std::thread::sleep(Duration::from_millis(150));
            listener = TcpListener::bind(addr).expect("rebind");
        }
        let (mut sock, _) = listener.accept().expect("final accept");
        sock.write_all(&hello_frame(NodeId(0))).expect("hello");
        beat(&mut sock, NodeId(0), 1, 600, Duration::from_millis(20));
    });

    let mut c = Cluster::new(FabricMode::Ideal, LinkProfile::ideal(), 1);
    c.add_node();
    c.add_node();
    c.add_node();
    c.add_remote_site("server", NodeId(0));
    c.add_remote_site("bystander", NodeId(2));
    c.add_site_src(NodeId(1), "client", "print(1)")
        .expect("client");
    let start = Instant::now();
    let grace = Duration::from_millis(800 * u64::from(cycles) + 1_200);
    let report = c
        .run_distributed(
            TransportConfig {
                local_nodes: vec![NodeId(1)],
                peers: vec![addr, steady_addr],
                hb_period: Duration::from_millis(20),
                stale_periods: 3,
                max_retries: 100,
                backoff_base: Duration::from_millis(10),
                backoff_cap: Duration::from_millis(50),
                idle_grace: grace,
                ..TransportConfig::default()
            },
            Duration::from_secs(60),
        )
        .expect("client run");
    let wall_s = start.elapsed().as_secs_f64();
    no_errors(&report, "restart");
    let wire = report.transport.expect("wire counters");
    assert!(
        wire.reconnects >= u64::from(cycles),
        "restart: every bounce reconnects: {} < {cycles} ({wire:?})",
        wire.reconnects
    );
    assert!(
        report.suspects.is_empty(),
        "restart: the healed peer must shed suspicion: {:?}",
        report.suspects
    );
    server.join().expect("server thread");
    steady.join().expect("steady thread");
    RestartResult {
        cycles,
        reconnects: wire.reconnects,
        suspects_final: report.suspects.len(),
        heartbeats_in: wire.heartbeats_in,
        wall_s,
    }
}

// -- partition/heal soak -----------------------------------------------------

const SOAK_SRV: &str = "def Srv(p) = p?{ val(x, a) = a![x] | Srv[p] } in export new p in Srv[p]";
const SOAK_CLIENT: &str = r#"
    import p from server in
    def Loop(n) =
        if n > 0 then new a (p!val[n, a] | a?(v) = Loop[n - 1]) else println("done")
    in Loop[12]
"#;

fn soak_cluster() -> Cluster {
    let mut c = Cluster::new(FabricMode::Virtual, LinkProfile::fast_ethernet(), 1);
    let n0 = c.add_node();
    let n1 = c.add_node();
    // Deterministic heartbeats so the partition windows drive the
    // failure monitor, not just the packet counters.
    c.heartbeat_every = Some(64);
    c.stale_periods = 2;
    c.add_site_src(n0, "server", SOAK_SRV).expect("server");
    c.add_site_src(n1, "client", SOAK_CLIENT).expect("client");
    c
}

fn soak_fingerprint(report: &RunReport) -> String {
    let c = report.chaos.as_ref().expect("chaos report");
    format!(
        "out={:?} suspects={:?} instrs={} pkts={} vns={} q={} d={} u={} l={} p={} P={} H={} K={} R={}",
        report.output("client"),
        report.suspects,
        report.total_instrs,
        report.fabric_packets,
        report.virtual_ns,
        report.quiescent,
        c.dropped,
        c.duplicated,
        c.delayed,
        c.partition_drops,
        c.partitions,
        c.heals,
        c.kills,
        c.restarts
    )
}

struct SoakResult {
    iterations: u64,
    replay_mismatches: u64,
    suspect_runs: u64,
    total_faults: u64,
    wall_s: f64,
}

fn scenario_soak(iterations: u64) -> SoakResult {
    // One quiet run fixes the virtual-time scale the events hang off.
    let baseline = soak_cluster().run_deterministic(RunLimits::default());
    let v = baseline.virtual_ns.max(1);

    let run = |seed: u64| -> RunReport {
        let mut c = soak_cluster();
        let mut spec = faulty_spec(seed);
        spec.drop_per_mille = 40;
        let mut plan = ChaosPlan::new(spec)
            .at(
                v / 3,
                ChaosEvent::Partition {
                    a: vec![NodeId(0)],
                    b: vec![NodeId(1)],
                },
            )
            .at(v / 2, ChaosEvent::Heal)
            .at(2 * v / 3, ChaosEvent::RestartNode(NodeId(1)));
        if seed.is_multiple_of(3) {
            // Every third seed also loses the server node for good near
            // the end, so the failure monitor's terminal verdict (a
            // suspect in the final report) is exercised, not only the
            // heal path.
            plan = plan.at(5 * v / 6, ChaosEvent::KillNode(NodeId(0)));
        }
        c.set_chaos(plan).expect("plan");
        c.run_deterministic(RunLimits::default())
    };

    let start = Instant::now();
    let mut replay_mismatches = 0u64;
    let mut suspect_runs = 0u64;
    let mut total_faults = 0u64;
    for seed in 0..iterations {
        let first = run(seed);
        no_errors(&first, "soak");
        let second = run(seed);
        if soak_fingerprint(&first) != soak_fingerprint(&second) {
            eprintln!(
                "soak: seed {seed} replay diverged:\n  {}\n  {}",
                soak_fingerprint(&first),
                soak_fingerprint(&second)
            );
            replay_mismatches += 1;
        }
        if !first.suspects.is_empty() {
            suspect_runs += 1;
        }
        let c = first.chaos.expect("chaos report");
        total_faults += c.total_faults();
    }
    let wall_s = start.elapsed().as_secs_f64();
    assert_eq!(replay_mismatches, 0, "soak: every seed must replay exactly");
    assert!(total_faults > 0, "soak: the plans injected real faults");
    assert!(
        suspect_runs > 0,
        "soak: the kill seeds must drive the failure monitor to suspicion"
    );
    SoakResult {
        iterations,
        replay_mismatches,
        suspect_runs,
        total_faults,
        wall_s,
    }
}

// -- main --------------------------------------------------------------------

/// Minimal well-formedness check for the emitted JSON (no parser dep):
/// balanced braces/brackets outside strings, terminated strings.
fn assert_json_wellformed(s: &str) {
    let mut stack = Vec::new();
    let mut in_str = false;
    let mut esc = false;
    for ch in s.chars() {
        if in_str {
            if esc {
                esc = false;
            } else if ch == '\\' {
                esc = true;
            } else if ch == '"' {
                in_str = false;
            }
            continue;
        }
        match ch {
            '"' => in_str = true,
            '{' | '[' => stack.push(ch),
            '}' => assert_eq!(stack.pop(), Some('{'), "unbalanced brace"),
            ']' => assert_eq!(stack.pop(), Some('['), "unbalanced bracket"),
            _ => {}
        }
    }
    assert!(!in_str, "unterminated string");
    assert!(stack.is_empty(), "unclosed {stack:?}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let soak_only = args.iter().any(|a| a == "--soak");

    if soak_only {
        let s = scenario_soak(150);
        println!(
            "soak ok: {} iterations replayed byte-identically, {} faults injected, \
             {} runs drove the failure monitor to suspicion, {:.1}s",
            s.iterations, s.total_faults, s.suspect_runs, s.wall_s
        );
        return;
    }

    eprintln!("pubsub fan-out...");
    let p = scenario_pubsub(smoke);
    eprintln!(
        "  {}/{} delivered in {:.2}s ({} packets; {} dropped / {} dup / {} delayed)",
        p.delivered, p.subs, p.wall_s, p.packets, p.dropped, p.duplicated, p.delayed
    );
    eprintln!("rpc thundering herd...");
    let h = scenario_herd(smoke);
    eprintln!(
        "  k={}: {} coalesced onto {} wire fetch(es) in {:.2}s; chaotic rerun delivered {}",
        h.k, h.coalesced, h.fetches_served, h.wall_s, h.chaotic_delivered
    );
    eprintln!("rolling restart...");
    let r = scenario_restart(smoke);
    eprintln!(
        "  {} cycle(s), {} reconnects, {} final suspects, {} heartbeats in, {:.2}s",
        r.cycles, r.reconnects, r.suspects_final, r.heartbeats_in, r.wall_s
    );
    eprintln!("partition/heal soak...");
    let s = scenario_soak(if smoke { 100 } else { 250 });
    eprintln!(
        "  {} iterations, {} mismatches, {} suspect runs, {} faults, {:.2}s",
        s.iterations, s.replay_mismatches, s.suspect_runs, s.total_faults, s.wall_s
    );

    let json = format!(
        "{{\n  \"bench\": \"chaos{}\",\n  \"scenarios\": {{\n    \
         \"pubsub\": {{ \"subs\": {}, \"delivered\": {}, \"wall_s\": {:.3}, \"packets\": {}, \
         \"dropped\": {}, \"duplicated\": {}, \"delayed\": {} }},\n    \
         \"herd\": {{ \"k\": {}, \"coalesced\": {}, \"fetches_served\": {}, \"wall_s\": {:.3}, \
         \"chaotic_delivered\": {}, \"chaotic_dropped\": {} }},\n    \
         \"restart\": {{ \"cycles\": {}, \"reconnects\": {}, \"suspects_final\": {}, \
         \"heartbeats_in\": {}, \"wall_s\": {:.3} }},\n    \
         \"soak\": {{ \"iterations\": {}, \"replay_mismatches\": {}, \"suspect_runs\": {}, \
         \"total_faults\": {}, \"wall_s\": {:.3} }}\n  }}\n}}\n",
        if smoke { "_smoke" } else { "" },
        p.subs,
        p.delivered,
        p.wall_s,
        p.packets,
        p.dropped,
        p.duplicated,
        p.delayed,
        h.k,
        h.coalesced,
        h.fetches_served,
        h.wall_s,
        h.chaotic_delivered,
        h.chaotic_dropped,
        r.cycles,
        r.reconnects,
        r.suspects_final,
        r.heartbeats_in,
        r.wall_s,
        s.iterations,
        s.replay_mismatches,
        s.suspect_runs,
        s.total_faults,
        s.wall_s
    );
    assert_json_wellformed(&json);
    let path = if smoke {
        "BENCH_chaos_smoke.json"
    } else {
        "BENCH_chaos.json"
    };
    std::fs::write(path, &json).expect("write json");
    println!("wrote {path}: all four chaos scenarios passed");
}
