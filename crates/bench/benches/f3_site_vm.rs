//! Experiment F3 (Fig. 3 — the site architecture: an extended TyCOVM).
//!
//! Microbenchmarks of the virtual machine's primitives: COMM reduction,
//! INST, context switching, the export-table translation (ablation A1) and
//! the byte codec that every remote interaction pays for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ditico_bench::cell_churn;
use tyco_vm::codec::{decode, encode, Packet};
use tyco_vm::wire::WireWord;
use tyco_vm::word::{NetRef, NodeId, SiteId, Word};
use tyco_vm::{compile, LoopbackPort, Machine};

fn machine_for(src: &str) -> Machine<LoopbackPort> {
    Machine::from_source(src, LoopbackPort::new("main")).expect("compiles")
}

/// A port that resolves every import to a channel on a fictitious remote
/// site and swallows all outbound traffic — isolates the sender-side cost
/// of the SHIPM path.
#[derive(Default)]
struct BlackholePort;

impl tyco_vm::NetPort for BlackholePort {
    fn identity(&self) -> tyco_vm::Identity {
        tyco_vm::Identity::default()
    }
    fn register(&mut self, _name: &str, _value: WireWord) {}
    fn import(
        &mut self,
        _site: &str,
        _name: &str,
        _kind: tyco_vm::ImportKind,
    ) -> tyco_vm::ImportReply {
        tyco_vm::ImportReply::Ready(WireWord::Chan(NetRef {
            heap_id: 0,
            site: SiteId(999),
            node: NodeId(999),
        }))
    }
    fn send_msg(&mut self, _dest: NetRef, _label: &str, _args: Vec<WireWord>) {}
    fn send_obj(&mut self, _dest: NetRef, _digest: tyco_vm::Digest, _obj: tyco_vm::WireObj) {}
    fn fetch(&mut self, class: NetRef) -> tyco_vm::FetchReplyNow {
        tyco_vm::FetchReplyNow::Failed(format!("blackhole cannot fetch {class}"))
    }
    fn fetch_reply(
        &mut self,
        _to: tyco_vm::Identity,
        _req: u64,
        _digest: tyco_vm::Digest,
        _group: tyco_vm::WireGroup,
        _index: u8,
    ) {
    }
    fn poll(&mut self) -> Option<tyco_vm::Incoming> {
        None
    }
}

fn bench_reductions(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_reductions");
    // COMM: the cell-churn program performs 2 comms + 2 insts per
    // iteration; normalize per transaction.
    for &iters in &[100u64, 1000] {
        group.throughput(Throughput::Elements(iters));
        group.bench_with_input(
            BenchmarkId::new("cell_transaction", iters),
            &iters,
            |b, &iters| {
                let src = cell_churn(iters);
                let prog = compile(&tyco_syntax::parse_core(&src).unwrap()).unwrap();
                b.iter(|| {
                    let mut m = Machine::new(prog.clone(), LoopbackPort::new("main"));
                    m.run_to_quiescence(u64::MAX).expect("runs");
                    assert_eq!(m.io.len(), 1);
                    m.stats.comm
                });
            },
        );
    }
    // INST: pure recursion, one instantiation per step.
    group.throughput(Throughput::Elements(1000));
    group.bench_function("instantiation_x1000", |b| {
        let src = "def L(n) = if n > 0 then L[n - 1] else println(\"x\") in L[1000]";
        let prog = compile(&tyco_syntax::parse_core(src).unwrap()).unwrap();
        b.iter(|| {
            let mut m = Machine::new(prog.clone(), LoopbackPort::new("main"));
            m.run_to_quiescence(u64::MAX).expect("runs");
            m.stats.inst
        });
    });
    // Context switch: many tiny forked threads.
    group.throughput(Throughput::Elements(512));
    group.bench_function("fork_and_switch_x512", |b| {
        let body = (0..512)
            .map(|i| format!("print({i})"))
            .collect::<Vec<_>>()
            .join(" | ");
        let prog = compile(&tyco_syntax::parse_core(&body).unwrap()).unwrap();
        b.iter(|| {
            let mut m = Machine::new(prog.clone(), LoopbackPort::new("main"));
            m.run_to_quiescence(u64::MAX).expect("runs");
            m.stats.threads
        });
    });
    group.finish();
}

fn bench_dispatch_and_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_network_paths");
    // Local vs network reference dispatch in trmsg: the same send, once on
    // a local channel, once on a NetChan (which is packaged and queued).
    group.bench_function("trmsg_local", |b| {
        let src = r#"
            def L(ch, n) = if n > 0 then (ch![n] | L[ch, n - 1]) else println("x")
            in new sink (sink?{ } | 0) | new c L[c, 500]
        "#;
        let prog = compile(&tyco_syntax::parse_core(src).unwrap()).unwrap();
        b.iter(|| {
            let mut m = Machine::new(prog.clone(), LoopbackPort::new("main"));
            m.run_to_quiescence(u64::MAX).expect("runs");
        });
    });
    group.bench_function("trmsg_network_packaged", |b| {
        // The channel resolves to a reference on a *different* site: every
        // send takes the SHIPM path (translate, package, enqueue).
        let src = r#"
            import c from elsewhere in
            def L(ch, n) = if n > 0 then (ch![n] | L[ch, n - 1]) else println("x")
            in L[c, 500]
        "#;
        let prog = compile(&tyco_syntax::parse_core(src).unwrap()).unwrap();
        b.iter(|| {
            let mut m = Machine::new(prog.clone(), BlackholePort);
            m.run_to_quiescence(u64::MAX).expect("runs");
            assert_eq!(m.stats.msgs_sent, 500);
        });
    });

    // A1 ablation: the export-table translation cost in isolation.
    group.throughput(Throughput::Elements(1));
    group.bench_function("a1_outgoing_translation_chan", |b| {
        let mut m = machine_for("new c (c![1] | c?(x) = 0)");
        m.run_to_quiescence(u64::MAX).unwrap();
        b.iter(|| m.outgoing(Word::Chan(0)));
    });
    group.bench_function("a1_outgoing_translation_int", |b| {
        let mut m = machine_for("0");
        b.iter(|| m.outgoing(Word::Int(42)));
    });
    group.finish();

    let mut group = c.benchmark_group("f3_codec");
    let msg = Packet::Msg {
        dest: NetRef {
            heap_id: 3,
            site: SiteId(1),
            node: NodeId(1),
        },
        label: "val".to_string(),
        args: vec![
            WireWord::Int(1),
            WireWord::Str("payload".to_string()),
            WireWord::Chan(NetRef {
                heap_id: 9,
                site: SiteId(0),
                node: NodeId(0),
            }),
        ],
    };
    let bytes = encode(&msg);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_msg", |b| b.iter(|| encode(&msg)));
    group.bench_function("decode_msg", |b| b.iter(|| decode(bytes.clone()).unwrap()));

    // Mobility packet: a real object with code.
    let prog = compile(
        &tyco_syntax::parse_core(
            "new x x?{ go(n) = if n > 0 then (print(n) | x!go[n - 1]) else println(\"d\") }",
        )
        .unwrap(),
    )
    .unwrap();
    let packed = tyco_vm::pack(&prog, &[0]);
    let obj = Packet::Obj {
        dest: NetRef {
            heap_id: 0,
            site: SiteId(1),
            node: NodeId(1),
        },
        digest: packed.digest,
        obj: tyco_vm::WireObj {
            code: packed.code.clone(),
            table: 0,
            captured: vec![],
        },
    };
    let obj_bytes = encode(&obj);
    group.throughput(Throughput::Bytes(obj_bytes.len() as u64));
    group.bench_function("encode_obj_with_code", |b| b.iter(|| encode(&obj)));
    group.bench_function("decode_obj_with_code", |b| {
        b.iter(|| decode(obj_bytes.clone()).unwrap())
    });
    group.bench_function("link_obj_code", |b| {
        b.iter(|| {
            let mut dest = tyco_vm::Program::default();
            tyco_vm::link(&mut dest, &packed.code).unwrap()
        });
    });
    // The static gate every fetched/shipped image pays once, before link
    // (EXPERIMENTS.md "verify overhead" recipe compares this against the
    // end-to-end FETCH round trip).
    group.bench_function("verify_obj_code", |b| {
        b.iter(|| tyco_vm::verify_wire(&packed.code).unwrap());
    });
    group.finish();
}

fn bench_gc(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_gc");
    group.sample_size(20);
    group.bench_function("mark_sweep_8k_live", |b| {
        // Build a machine with a few thousand live channels, then GC.
        let src = r#"
            def Mk(n) = if n > 0 then new c ((c?(x) = print(x)) | Mk[n - 1]) else println("x")
            in Mk[8000]
        "#;
        let prog = compile(&tyco_syntax::parse_core(src).unwrap()).unwrap();
        b.iter(|| {
            let mut m = Machine::new(prog.clone(), LoopbackPort::new("main"));
            m.run_to_quiescence(u64::MAX).expect("runs");
            m.gc();
            m.live_channels()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_reductions,
    bench_dispatch_and_translation,
    bench_gc
);
criterion_main!(benches);
