//! A fair small-step interpreter for DiTyCO networks — the executable form
//! of the reduction relation of §2–§3 of the paper.
//!
//! The interpreter operates on configurations that correspond to networks
//! normalized by structural congruence: every `new`-bound name has been
//! extruded to the network level as a global [`ChanId`] (rules NEW/EXN),
//! and every `def` has been hoisted to a network-level class-group arena
//! (rules DEF/EXD). The reduction axioms map onto interpreter actions:
//!
//! | Axiom  | Interpreter action                                          |
//! |--------|-------------------------------------------------------------|
//! | COMM   | message meets object in a channel, method body is spawned   |
//! | INST   | class body spawned with arguments                           |
//! | SHIPM  | message whose channel lives on another site is moved there  |
//! | SHIPO  | object whose channel lives on another site is moved there   |
//! | FETCH  | class group copied from its defining site, rebound locally  |
//!
//! Because values are *global* channel identities, the σ translation is
//! implicit (σ exists precisely to preserve global identity across
//! syntactic moves; see [`crate::sigma`] for the syntactic version).
//!
//! This is also the tree-walking **baseline** for experiment C7: it is the
//! semantics the byte-code VM must agree with (differential tests) and the
//! comparator the VM's speedup is measured against.

use crate::trace::{Counters, Rule};
use crate::value::{Binding, ChanId, Env, SiteId, Val};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;
use tyco_syntax::ast::*;

/// A runtime error (the dynamic half of the hybrid checking scheme; a
/// statically checked program only raises these across sites with
/// mismatched interfaces).
#[derive(Debug, Clone, PartialEq)]
pub enum RtError {
    UnboundName(String),
    UnboundClass(String),
    UnknownSite(String),
    NotAChannel(String),
    NotAClass(String),
    /// Protocol error: message label not offered by the receiving object.
    NoMethod {
        label: String,
    },
    /// Method/class arity mismatch discovered at reduction time.
    Arity {
        what: String,
        expected: usize,
        found: usize,
    },
    /// Builtin applied to operands of the wrong shape.
    BadOperands(String),
    /// An exported identifier was re-exported under the same key.
    DuplicateExport(String),
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::UnboundName(x) => write!(f, "unbound name `{x}`"),
            RtError::UnboundClass(x) => write!(f, "unbound class `{x}`"),
            RtError::UnknownSite(s) => write!(f, "unknown site `{s}`"),
            RtError::NotAChannel(x) => write!(f, "`{x}` is not a channel"),
            RtError::NotAClass(x) => write!(f, "`{x}` is not a class"),
            RtError::NoMethod { label } => write!(f, "protocol error: no method `{label}`"),
            RtError::Arity {
                what,
                expected,
                found,
            } => {
                write!(f, "{what} expects {expected} argument(s), got {found}")
            }
            RtError::BadOperands(op) => write!(f, "bad operands for `{op}`"),
            RtError::DuplicateExport(x) => write!(f, "duplicate export `{x}`"),
        }
    }
}

impl std::error::Error for RtError {}

/// Evaluation can also *stall* on an unresolved located identifier (the
/// exporting site has not registered it yet); stalled work is parked and
/// retried after the next export.
enum EvalErr {
    Stall,
    Rt(RtError),
}

/// An object closure parked in a channel or in flight between sites.
#[derive(Clone)]
struct ObjClosure {
    methods: Rc<Vec<Method>>,
    env: Env,
}

/// The state of a channel: a queue of pending messages *or* a queue of
/// pending objects, never both (reduction fires as soon as both ends meet).
enum ChanState {
    Empty,
    Msgs(VecDeque<(String, Vec<Val>)>),
    Objs(VecDeque<ObjClosure>),
}

/// A unit of schedulable work at a site.
enum Work {
    /// A process term under an environment.
    Proc(Rc<Proc>, Env),
    /// A message that arrived from another site (post-SHIPM).
    DeliverMsg {
        chan: ChanId,
        label: String,
        args: Vec<Val>,
    },
    /// An object that migrated from another site (post-SHIPO).
    DeliverObj { chan: ChanId, obj: ObjClosure },
    /// An instantiation whose arguments are already evaluated.
    Inst {
        group: usize,
        class: String,
        args: Vec<Val>,
    },
}

struct SiteState {
    name: String,
    queue: VecDeque<Work>,
    blocked: Vec<Work>,
    channels: HashMap<u64, ChanState>,
    output: Vec<String>,
}

struct ClassClause {
    params: Vec<String>,
    body: Rc<Proc>,
}

struct ClassGroup {
    site: SiteId,
    defs: Rc<HashMap<String, ClassClause>>,
    env: Env,
}

enum ExportEntry {
    Name(Val),
    Class { group: usize, name: String },
}

/// How the interpreter picks the next site/work item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// Deterministic round-robin over sites, FIFO within a site.
    RoundRobin,
    /// Uniformly random site and FIFO within it, from a seeded RNG.
    Random(u64),
}

/// The result of running a network to quiescence (or to the step limit).
#[derive(Debug)]
pub struct Outcome {
    /// Lines printed on each site's I/O port, in order.
    pub outputs: Vec<Vec<String>>,
    /// Reduction-rule counters.
    pub counters: Counters,
    /// True when every queue drained (no runnable work left).
    pub quiescent: bool,
    /// Number of work items permanently parked on unresolved imports.
    pub blocked: usize,
    /// Total scheduler steps taken.
    pub steps: u64,
}

impl Outcome {
    /// All output lines across sites, as (site, line) pairs.
    pub fn all_lines(&self) -> Vec<(usize, &str)> {
        self.outputs
            .iter()
            .enumerate()
            .flat_map(|(i, ls)| ls.iter().map(move |l| (i, l.as_str())))
            .collect()
    }

    /// Sorted multiset of all printed lines (site-insensitive observable
    /// used by the differential tests).
    pub fn line_multiset(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .outputs
            .iter()
            .flat_map(|ls| ls.iter().cloned())
            .collect();
        v.sort();
        v
    }
}

/// A network of named sites, each running a DiTyCO process.
pub struct Network {
    site_ids: HashMap<String, SiteId>,
    sites: Vec<SiteState>,
    groups: Vec<ClassGroup>,
    exports: HashMap<(SiteId, String), ExportEntry>,
    /// Cache of fetched class groups: (destination site, source group) →
    /// local group. Configurable for the C5 fetch-vs-ship experiment.
    fetch_cache: HashMap<(SiteId, usize), usize>,
    pub cache_fetched_classes: bool,
    next_chan: u64,
    counters: Counters,
    scheduler: Scheduler,
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    pub fn new() -> Network {
        Network {
            site_ids: HashMap::new(),
            sites: Vec::new(),
            groups: Vec::new(),
            exports: HashMap::new(),
            fetch_cache: HashMap::new(),
            cache_fetched_classes: true,
            next_chan: 0,
            counters: Counters::default(),
            scheduler: Scheduler::RoundRobin,
        }
    }

    pub fn with_scheduler(mut self, s: Scheduler) -> Network {
        self.scheduler = s;
        self
    }

    /// Register a site running the given (core, desugared) process.
    pub fn add_site(&mut self, name: &str, program: Proc) -> SiteId {
        let id = SiteId(self.sites.len() as u32);
        self.site_ids.insert(name.to_string(), id);
        let mut queue = VecDeque::new();
        queue.push_back(Work::Proc(Rc::new(program), Env::empty()));
        self.sites.push(SiteState {
            name: name.to_string(),
            queue,
            blocked: Vec::new(),
            channels: HashMap::new(),
            output: Vec::new(),
        });
        id
    }

    /// Parse, desugar and register a site program.
    pub fn add_site_src(
        &mut self,
        name: &str,
        src: &str,
    ) -> Result<SiteId, tyco_syntax::ParseError> {
        Ok(self.add_site(name, tyco_syntax::parse_core(src)?))
    }

    /// The printed output of a site.
    pub fn output(&self, site: SiteId) -> &[String] {
        &self.sites[site.0 as usize].output
    }

    pub fn site_id(&self, name: &str) -> Option<SiteId> {
        self.site_ids.get(name).copied()
    }

    /// The lexeme a site was registered under.
    pub fn site_name(&self, site: SiteId) -> &str {
        &self.sites[site.0 as usize].name
    }

    pub fn counters(&self) -> Counters {
        self.counters
    }

    fn alloc_chan(&mut self, site: SiteId) -> ChanId {
        let uid = self.next_chan;
        self.next_chan += 1;
        self.sites[site.0 as usize]
            .channels
            .insert(uid, ChanState::Empty);
        ChanId { site, uid }
    }

    /// Run until quiescence or `max_steps`, returning the outcome.
    pub fn run(&mut self, max_steps: u64) -> Result<Outcome, RtError> {
        let mut steps: u64 = 0;
        let mut rng = match self.scheduler {
            Scheduler::Random(seed) => Some(StdRng::seed_from_u64(seed)),
            Scheduler::RoundRobin => None,
        };
        let mut rr = 0usize;
        while steps < max_steps {
            // Pick a site with runnable work.
            let nsites = self.sites.len();
            let chosen = match &mut rng {
                Some(rng) => {
                    let runnable: Vec<usize> = (0..nsites)
                        .filter(|&i| !self.sites[i].queue.is_empty())
                        .collect();
                    if runnable.is_empty() {
                        None
                    } else {
                        Some(runnable[rng.gen_range(0..runnable.len())])
                    }
                }
                None => {
                    let mut found = None;
                    for k in 0..nsites {
                        let i = (rr + k) % nsites;
                        if !self.sites[i].queue.is_empty() {
                            found = Some(i);
                            break;
                        }
                    }
                    if let Some(i) = found {
                        rr = (i + 1) % nsites;
                    }
                    found
                }
            };
            let Some(i) = chosen else { break };
            steps += 1;
            self.step_site(SiteId(i as u32))?;
        }
        let quiescent = self.sites.iter().all(|s| s.queue.is_empty());
        Ok(Outcome {
            outputs: self.sites.iter().map(|s| s.output.clone()).collect(),
            counters: self.counters,
            quiescent,
            blocked: self.sites.iter().map(|s| s.blocked.len()).sum(),
            steps,
        })
    }

    fn step_site(&mut self, sid: SiteId) -> Result<(), RtError> {
        let work = self.sites[sid.0 as usize]
            .queue
            .pop_front()
            .expect("step_site called on empty queue");
        match work {
            Work::Proc(p, env) => self.exec(sid, p, env),
            Work::DeliverMsg { chan, label, args } => {
                debug_assert_eq!(chan.site, sid);
                self.comm_msg(sid, chan, label, args)
            }
            Work::DeliverObj { chan, obj } => {
                debug_assert_eq!(chan.site, sid);
                self.comm_obj(sid, chan, obj)
            }
            Work::Inst { group, class, args } => self.instantiate(sid, group, &class, args),
        }
    }

    fn push(&mut self, sid: SiteId, w: Work) {
        self.sites[sid.0 as usize].queue.push_back(w);
    }

    /// Park a work item on an unresolved import/located identifier.
    fn park(&mut self, sid: SiteId, w: Work) {
        self.sites[sid.0 as usize].blocked.push(w);
    }

    /// After a new export, every parked item may be runnable again.
    fn unpark_all(&mut self) {
        for s in &mut self.sites {
            while let Some(w) = s.blocked.pop() {
                s.queue.push_back(w);
            }
        }
    }

    fn exec(&mut self, sid: SiteId, p: Rc<Proc>, env: Env) -> Result<(), RtError> {
        match &*p {
            Proc::Nil => {
                self.counters.structural += 1;
                Ok(())
            }
            Proc::Par(ps) => {
                self.counters.structural += 1;
                for q in ps {
                    self.push(sid, Work::Proc(Rc::new(q.clone()), env.clone()));
                }
                Ok(())
            }
            Proc::New { binders, body, .. } => {
                self.counters.structural += 1;
                let mut env = env;
                for b in binders {
                    let c = self.alloc_chan(sid);
                    env = env.bind(b.clone(), Binding::Val(Val::Chan(c)));
                }
                self.push(sid, Work::Proc(Rc::new((**body).clone()), env));
                Ok(())
            }
            Proc::ExportNew { binders, body, .. } => {
                self.counters.structural += 1;
                let mut env = env;
                for b in binders {
                    let c = self.alloc_chan(sid);
                    env = env.bind(b.clone(), Binding::Val(Val::Chan(c)));
                    let key = (sid, b.clone());
                    if self.exports.contains_key(&key) {
                        return Err(RtError::DuplicateExport(b.clone()));
                    }
                    self.exports.insert(key, ExportEntry::Name(Val::Chan(c)));
                }
                self.unpark_all();
                self.push(sid, Work::Proc(Rc::new((**body).clone()), env));
                Ok(())
            }
            Proc::Def { defs, body, .. } | Proc::ExportDef { defs, body, .. } => {
                self.counters.structural += 1;
                let export = matches!(&*p, Proc::ExportDef { .. });
                let group_idx = self.groups.len();
                let mut genv = env.clone();
                for d in defs {
                    genv = genv.bind(
                        d.name.clone(),
                        Binding::Class {
                            group: group_idx,
                            name: d.name.clone(),
                        },
                    );
                }
                let defs_map: HashMap<String, ClassClause> = defs
                    .iter()
                    .map(|d| {
                        (
                            d.name.clone(),
                            ClassClause {
                                params: d.params.clone(),
                                body: Rc::new(d.body.clone()),
                            },
                        )
                    })
                    .collect();
                self.groups.push(ClassGroup {
                    site: sid,
                    defs: Rc::new(defs_map),
                    env: genv.clone(),
                });
                if export {
                    for d in defs {
                        let key = (sid, d.name.clone());
                        if self.exports.contains_key(&key) {
                            return Err(RtError::DuplicateExport(d.name.clone()));
                        }
                        self.exports.insert(
                            key,
                            ExportEntry::Class {
                                group: group_idx,
                                name: d.name.clone(),
                            },
                        );
                    }
                    self.unpark_all();
                }
                self.push(sid, Work::Proc(Rc::new((**body).clone()), genv));
                Ok(())
            }
            Proc::ImportName {
                name, site, body, ..
            } => {
                let remote = self.resolve_site(site)?;
                match self.exports.get(&(remote, name.clone())) {
                    Some(ExportEntry::Name(v)) => {
                        self.counters.structural += 1;
                        let env = env.bind(name.clone(), Binding::Val(v.clone()));
                        self.push(sid, Work::Proc(Rc::new((**body).clone()), env));
                        Ok(())
                    }
                    Some(ExportEntry::Class { .. }) => Err(RtError::NotAChannel(name.clone())),
                    None => {
                        self.park(sid, Work::Proc(p.clone(), env));
                        Ok(())
                    }
                }
            }
            Proc::ImportClass {
                class, site, body, ..
            } => {
                let remote = self.resolve_site(site)?;
                match self.exports.get(&(remote, class.clone())) {
                    Some(ExportEntry::Class { group, name }) => {
                        self.counters.structural += 1;
                        let env = env.bind(
                            class.clone(),
                            Binding::Class {
                                group: *group,
                                name: name.clone(),
                            },
                        );
                        self.push(sid, Work::Proc(Rc::new((**body).clone()), env));
                        Ok(())
                    }
                    Some(ExportEntry::Name(_)) => Err(RtError::NotAClass(class.clone())),
                    None => {
                        self.park(sid, Work::Proc(p.clone(), env));
                        Ok(())
                    }
                }
            }
            Proc::Msg {
                target,
                label,
                args,
                ..
            } => {
                let tv = match self.eval_name(target, &env) {
                    Ok(v) => v,
                    Err(EvalErr::Stall) => {
                        self.park(sid, Work::Proc(p.clone(), env));
                        return Ok(());
                    }
                    Err(EvalErr::Rt(e)) => return Err(e),
                };
                let chan = match tv {
                    Val::Chan(c) => c,
                    _ => return Err(RtError::NotAChannel(target.to_string())),
                };
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    match self.eval_expr(a, &env) {
                        Ok(v) => argv.push(v),
                        Err(EvalErr::Stall) => {
                            self.park(sid, Work::Proc(p.clone(), env));
                            return Ok(());
                        }
                        Err(EvalErr::Rt(e)) => return Err(e),
                    }
                }
                if chan.site == sid {
                    self.comm_msg(sid, chan, label.clone(), argv)
                } else {
                    // SHIPM: the message moves to the site its prefix is
                    // lexically bound to.
                    self.counters.record(Rule::ShipM);
                    self.push(
                        chan.site,
                        Work::DeliverMsg {
                            chan,
                            label: label.clone(),
                            args: argv,
                        },
                    );
                    Ok(())
                }
            }
            Proc::Obj {
                target, methods, ..
            } => {
                let tv = match self.eval_name(target, &env) {
                    Ok(v) => v,
                    Err(EvalErr::Stall) => {
                        self.park(sid, Work::Proc(p.clone(), env));
                        return Ok(());
                    }
                    Err(EvalErr::Rt(e)) => return Err(e),
                };
                let chan = match tv {
                    Val::Chan(c) => c,
                    _ => return Err(RtError::NotAChannel(target.to_string())),
                };
                let obj = ObjClosure {
                    methods: Rc::new(methods.clone()),
                    env,
                };
                if chan.site == sid {
                    self.comm_obj(sid, chan, obj)
                } else {
                    // SHIPO: the object migrates to the prefix's site.
                    self.counters.record(Rule::ShipO);
                    self.push(chan.site, Work::DeliverObj { chan, obj });
                    Ok(())
                }
            }
            Proc::Inst { class, args, .. } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    match self.eval_expr(a, &env) {
                        Ok(v) => argv.push(v),
                        Err(EvalErr::Stall) => {
                            self.park(sid, Work::Proc(p.clone(), env));
                            return Ok(());
                        }
                        Err(EvalErr::Rt(e)) => return Err(e),
                    }
                }
                let (group, cname) = match class {
                    ClassRef::Plain(x) => match env.lookup(x) {
                        Some(Binding::Class { group, name }) => (*group, name.clone()),
                        Some(Binding::Val(_)) => return Err(RtError::NotAClass(x.clone())),
                        None => return Err(RtError::UnboundClass(x.clone())),
                    },
                    ClassRef::Located(s, x) => {
                        let remote = self.resolve_site(s)?;
                        match self.exports.get(&(remote, x.clone())) {
                            Some(ExportEntry::Class { group, name }) => (*group, name.clone()),
                            Some(ExportEntry::Name(_)) => {
                                return Err(RtError::NotAClass(x.clone()))
                            }
                            None => {
                                self.park(sid, Work::Proc(p.clone(), env));
                                return Ok(());
                            }
                        }
                    }
                };
                if self.groups[group].site == sid {
                    self.instantiate(sid, group, &cname, argv)
                } else {
                    // FETCH: download the whole definition group (the paper
                    // downloads D, not just X, for mutual recursion), rebind
                    // its classes locally, then instantiate locally. A
                    // cached group was already downloaded: no FETCH step.
                    let (local, was_cached) = self.fetch_group(sid, group);
                    if !was_cached {
                        self.counters.record(Rule::Fetch);
                    }
                    self.push(
                        sid,
                        Work::Inst {
                            group: local,
                            class: cname,
                            args: argv,
                        },
                    );
                    Ok(())
                }
            }
            Proc::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let c = match self.eval_expr(cond, &env) {
                    Ok(v) => v,
                    Err(EvalErr::Stall) => {
                        self.park(sid, Work::Proc(p.clone(), env));
                        return Ok(());
                    }
                    Err(EvalErr::Rt(e)) => return Err(e),
                };
                self.counters.record(Rule::Builtin);
                match c {
                    Val::Bool(true) => {
                        self.push(sid, Work::Proc(Rc::new((**then_branch).clone()), env));
                        Ok(())
                    }
                    Val::Bool(false) => {
                        self.push(sid, Work::Proc(Rc::new((**else_branch).clone()), env));
                        Ok(())
                    }
                    _ => Err(RtError::BadOperands("if".to_string())),
                }
            }
            Proc::Print { args, newline, .. } => {
                let mut parts = Vec::with_capacity(args.len());
                for a in args {
                    match self.eval_expr(a, &env) {
                        Ok(v) => parts.push(v.display()),
                        Err(EvalErr::Stall) => {
                            self.park(sid, Work::Proc(p.clone(), env));
                            return Ok(());
                        }
                        Err(EvalErr::Rt(e)) => return Err(e),
                    }
                }
                self.counters.record(Rule::Builtin);
                let line = parts.join(" ");
                let _ = newline; // both forms record one output line
                self.sites[sid.0 as usize].output.push(line);
                Ok(())
            }
            Proc::Let { .. } => {
                // Defensive: accept sugared input by desugaring on the fly.
                let core = tyco_syntax::desugar::desugar((*p).clone());
                self.exec(sid, Rc::new(core), env)
            }
        }
    }

    /// Local rendez-vous for an arriving message (rule COMM, message side).
    fn comm_msg(
        &mut self,
        sid: SiteId,
        chan: ChanId,
        label: String,
        args: Vec<Val>,
    ) -> Result<(), RtError> {
        let state = self.sites[sid.0 as usize]
            .channels
            .entry(chan.uid)
            .or_insert(ChanState::Empty);
        match state {
            ChanState::Objs(q) => {
                let obj = q.pop_front().expect("Objs state is nonempty");
                if q.is_empty() {
                    *state = ChanState::Empty;
                }
                self.fire_method(sid, obj, &label, args)
            }
            ChanState::Msgs(q) => {
                q.push_back((label, args));
                Ok(())
            }
            ChanState::Empty => {
                let mut q = VecDeque::with_capacity(1);
                q.push_back((label, args));
                *state = ChanState::Msgs(q);
                Ok(())
            }
        }
    }

    /// Local rendez-vous for an arriving object (rule COMM, object side).
    fn comm_obj(&mut self, sid: SiteId, chan: ChanId, obj: ObjClosure) -> Result<(), RtError> {
        let state = self.sites[sid.0 as usize]
            .channels
            .entry(chan.uid)
            .or_insert(ChanState::Empty);
        match state {
            ChanState::Msgs(q) => {
                let (label, args) = q.pop_front().expect("Msgs state is nonempty");
                if q.is_empty() {
                    *state = ChanState::Empty;
                }
                self.fire_method(sid, obj, &label, args)
            }
            ChanState::Objs(q) => {
                q.push_back(obj);
                Ok(())
            }
            ChanState::Empty => {
                let mut q = VecDeque::with_capacity(1);
                q.push_back(obj);
                *state = ChanState::Objs(q);
                Ok(())
            }
        }
    }

    /// Select a method and spawn its body (the substitution Pi{ṽ/x̃}).
    fn fire_method(
        &mut self,
        sid: SiteId,
        obj: ObjClosure,
        label: &str,
        args: Vec<Val>,
    ) -> Result<(), RtError> {
        let m = obj
            .methods
            .iter()
            .find(|m| m.label == label)
            .ok_or_else(|| RtError::NoMethod {
                label: label.to_string(),
            })?;
        if m.params.len() != args.len() {
            return Err(RtError::Arity {
                what: format!("method `{label}`"),
                expected: m.params.len(),
                found: args.len(),
            });
        }
        self.counters.record(Rule::Comm);
        let mut env = obj.env.clone();
        for (x, v) in m.params.iter().zip(args) {
            env = env.bind(x.clone(), Binding::Val(v));
        }
        self.push(sid, Work::Proc(Rc::new(m.body.clone()), env));
        Ok(())
    }

    /// Spawn a class body (rule INST).
    fn instantiate(
        &mut self,
        sid: SiteId,
        group: usize,
        class: &str,
        args: Vec<Val>,
    ) -> Result<(), RtError> {
        let g = &self.groups[group];
        debug_assert_eq!(g.site, sid, "instantiate must run at the group's site");
        let clause = g
            .defs
            .get(class)
            .ok_or_else(|| RtError::UnboundClass(class.to_string()))?;
        if clause.params.len() != args.len() {
            return Err(RtError::Arity {
                what: format!("class `{class}`"),
                expected: clause.params.len(),
                found: args.len(),
            });
        }
        self.counters.record(Rule::Inst);
        let body = clause.body.clone();
        let mut env = g.env.clone();
        for (x, v) in clause.params.iter().zip(args) {
            env = env.bind(x.clone(), Binding::Val(v));
        }
        self.push(sid, Work::Proc(body, env));
        Ok(())
    }

    /// Copy a class group to `sid` (rule FETCH): the copy's classes are
    /// rebound to the copy so recursion inside downloaded code is local.
    /// Returns the local group and whether it came from the cache.
    fn fetch_group(&mut self, sid: SiteId, group: usize) -> (usize, bool) {
        if self.cache_fetched_classes {
            if let Some(&local) = self.fetch_cache.get(&(sid, group)) {
                return (local, true);
            }
        }
        let local_idx = self.groups.len();
        let src = &self.groups[group];
        let mut env = src.env.clone();
        for name in src.defs.keys() {
            env = env.bind(
                name.clone(),
                Binding::Class {
                    group: local_idx,
                    name: name.clone(),
                },
            );
        }
        let defs = src.defs.clone();
        self.groups.push(ClassGroup {
            site: sid,
            defs,
            env,
        });
        if self.cache_fetched_classes {
            self.fetch_cache.insert((sid, group), local_idx);
        }
        (local_idx, false)
    }

    fn resolve_site(&self, name: &str) -> Result<SiteId, RtError> {
        self.site_ids
            .get(name)
            .copied()
            .ok_or_else(|| RtError::UnknownSite(name.to_string()))
    }

    fn eval_name(&self, r: &NameRef, env: &Env) -> Result<Val, EvalErr> {
        match r {
            NameRef::Plain(x) => match env.lookup(x) {
                Some(Binding::Val(v)) => Ok(v.clone()),
                Some(Binding::Class { .. }) => Err(EvalErr::Rt(RtError::NotAChannel(x.clone()))),
                None => Err(EvalErr::Rt(RtError::UnboundName(x.clone()))),
            },
            NameRef::Located(s, x) => {
                let remote = self
                    .site_ids
                    .get(s)
                    .copied()
                    .ok_or(EvalErr::Rt(RtError::UnknownSite(s.clone())))?;
                match self.exports.get(&(remote, x.clone())) {
                    Some(ExportEntry::Name(v)) => Ok(v.clone()),
                    Some(ExportEntry::Class { .. }) => {
                        Err(EvalErr::Rt(RtError::NotAChannel(x.clone())))
                    }
                    None => Err(EvalErr::Stall),
                }
            }
        }
    }

    fn eval_expr(&self, e: &Expr, env: &Env) -> Result<Val, EvalErr> {
        match e {
            Expr::Name(r) => self.eval_name(r, env),
            Expr::Lit(Lit::Unit) => Ok(Val::Unit),
            Expr::Lit(Lit::Int(i)) => Ok(Val::Int(*i)),
            Expr::Lit(Lit::Bool(b)) => Ok(Val::Bool(*b)),
            Expr::Lit(Lit::Str(s)) => Ok(Val::Str(s.as_str().into())),
            Expr::Lit(Lit::Float(x)) => Ok(Val::Float(*x)),
            Expr::Bin(op, a, b) => {
                let va = self.eval_expr(a, env)?;
                let vb = self.eval_expr(b, env)?;
                eval_binop(*op, va, vb).map_err(EvalErr::Rt)
            }
            Expr::Un(op, a) => {
                let v = self.eval_expr(a, env)?;
                match (op, v) {
                    (UnOp::Neg, Val::Int(i)) => Ok(Val::Int(-i)),
                    (UnOp::Neg, Val::Float(x)) => Ok(Val::Float(-x)),
                    (UnOp::Not, Val::Bool(b)) => Ok(Val::Bool(!b)),
                    _ => Err(EvalErr::Rt(RtError::BadOperands(op.symbol().to_string()))),
                }
            }
        }
    }
}

/// Builtin binary operators over values (shared semantics with the VM).
pub fn eval_binop(op: BinOp, a: Val, b: Val) -> Result<Val, RtError> {
    use BinOp::*;
    use Val::*;
    let bad = || RtError::BadOperands(op.symbol().to_string());
    Ok(match (op, a, b) {
        (Add, Int(x), Int(y)) => Int(x.wrapping_add(y)),
        (Sub, Int(x), Int(y)) => Int(x.wrapping_sub(y)),
        (Mul, Int(x), Int(y)) => Int(x.wrapping_mul(y)),
        (Div, Int(x), Int(y)) => {
            if y == 0 {
                return Err(RtError::BadOperands("division by zero".to_string()));
            }
            Int(x.wrapping_div(y))
        }
        (Mod, Int(x), Int(y)) => {
            if y == 0 {
                return Err(RtError::BadOperands("modulo by zero".to_string()));
            }
            Int(x.wrapping_rem(y))
        }
        (Add, Float(x), Float(y)) => Float(x + y),
        (Sub, Float(x), Float(y)) => Float(x - y),
        (Mul, Float(x), Float(y)) => Float(x * y),
        (Div, Float(x), Float(y)) => Float(x / y),
        (Lt, Int(x), Int(y)) => Bool(x < y),
        (Le, Int(x), Int(y)) => Bool(x <= y),
        (Gt, Int(x), Int(y)) => Bool(x > y),
        (Ge, Int(x), Int(y)) => Bool(x >= y),
        (Lt, Float(x), Float(y)) => Bool(x < y),
        (Le, Float(x), Float(y)) => Bool(x <= y),
        (Gt, Float(x), Float(y)) => Bool(x > y),
        (Ge, Float(x), Float(y)) => Bool(x >= y),
        (Eq, x, y) => Bool(x == y),
        (Ne, x, y) => Bool(x != y),
        (And, Bool(x), Bool(y)) => Bool(x && y),
        (Or, Bool(x), Bool(y)) => Bool(x || y),
        (Concat, Str(x), Str(y)) => {
            let mut s = String::with_capacity(x.len() + y.len());
            s.push_str(&x);
            s.push_str(&y);
            Str(s.into())
        }
        _ => return Err(bad()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single(src: &str) -> (Network, Outcome) {
        let mut net = Network::new();
        net.add_site_src("main", src).expect("parse");
        let out = net.run(100_000).expect("run");
        (net, out)
    }

    #[test]
    fn nil_is_quiescent_immediately() {
        let (_, out) = single("0");
        assert!(out.quiescent);
        assert_eq!(out.counters.reductions(), 0);
        assert_eq!(out.counters.structural, 1);
    }

    #[test]
    fn channel_allocation_is_per_site() {
        let mut net = Network::new();
        net.add_site_src("a", "new x x![1]").unwrap();
        net.add_site_src("b", "new y y![2]").unwrap();
        net.run(10_000).unwrap();
        // Each site holds exactly its own parked message.
        assert_eq!(net.site_name(SiteId(0)), "a");
        assert_eq!(net.site_name(SiteId(1)), "b");
    }

    #[test]
    fn eval_binop_division_guards() {
        assert!(eval_binop(BinOp::Div, Val::Int(1), Val::Int(0)).is_err());
        assert!(eval_binop(BinOp::Mod, Val::Int(1), Val::Int(0)).is_err());
        assert_eq!(
            eval_binop(BinOp::Div, Val::Int(7), Val::Int(2)),
            Ok(Val::Int(3))
        );
    }

    #[test]
    fn eval_binop_equality_on_channels() {
        let c1 = Val::Chan(ChanId {
            site: SiteId(0),
            uid: 1,
        });
        let c2 = Val::Chan(ChanId {
            site: SiteId(0),
            uid: 2,
        });
        assert_eq!(
            eval_binop(BinOp::Eq, c1.clone(), c1.clone()),
            Ok(Val::Bool(true))
        );
        assert_eq!(eval_binop(BinOp::Eq, c1, c2), Ok(Val::Bool(false)));
    }

    #[test]
    fn fetch_cache_can_be_disabled() {
        // With caching off, every remote instantiation re-downloads.
        let run = |cache: bool| {
            let mut net = Network::new();
            net.cache_fetched_classes = cache;
            net.add_site_src("server", "export def K(v) = print(v) in 0")
                .unwrap();
            net.add_site_src("client", "import K from server in (K[1] | K[2] | K[3])")
                .unwrap();
            let out = net.run(100_000).unwrap();
            out.counters.fetch
        };
        assert_eq!(run(true), 1);
        assert_eq!(run(false), 3);
    }

    #[test]
    fn class_arity_checked_dynamically() {
        // Bypass static checking by driving the interpreter directly on a
        // program the type checker would reject.
        let mut net = Network::new();
        net.add_site_src("main", "def K(a, b) = 0 in K[1]").unwrap();
        let err = net.run(10_000).unwrap_err();
        assert!(matches!(err, RtError::Arity { .. }), "{err}");
    }

    #[test]
    fn duplicate_export_is_an_error() {
        let mut net = Network::new();
        net.add_site_src("main", "export new p in export new p in 0")
            .unwrap();
        let err = net.run(10_000).unwrap_err();
        assert!(matches!(err, RtError::DuplicateExport(_)), "{err}");
    }

    #[test]
    fn outputs_accessible_per_site_and_combined() {
        let mut net = Network::new();
        net.add_site_src("a", "print(1)").unwrap();
        net.add_site_src("b", "print(2)").unwrap();
        let out = net.run(10_000).unwrap();
        assert_eq!(out.outputs[0], vec!["1".to_string()]);
        assert_eq!(out.outputs[1], vec!["2".to_string()]);
        assert_eq!(out.line_multiset(), vec!["1".to_string(), "2".to_string()]);
        assert_eq!(out.all_lines(), vec![(0, "1"), (1, "2")]);
    }

    #[test]
    fn step_limit_is_respected() {
        let mut net = Network::new();
        net.add_site_src("main", "def Spin() = Spin[] in Spin[]")
            .unwrap();
        let out = net.run(500).unwrap();
        assert_eq!(out.steps, 500);
        assert!(!out.quiescent);
    }

    #[test]
    fn objects_queue_when_no_message() {
        let (_, out) = single("new x ((x?(a) = print(a)) | (x?(b) = print(b)) | x![1])");
        // Two objects queued; one message consumes the first (FIFO).
        assert_eq!(out.counters.comm, 1);
        assert_eq!(out.outputs[0], vec!["1".to_string()]);
    }
}
