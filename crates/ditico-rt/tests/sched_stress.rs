//! Stress tests for the M:N work-stealing scheduler: termination-detection
//! soundness under racing deliveries, slices and steals, and per-channel
//! FIFO ordering across worker migration.
//!
//! The soundness stress is the load-bearing test: a false termination
//! (detector fires while a token is still in flight) silently truncates a
//! run, and a missed termination hangs it. Both are timing bugs, so we run
//! many seeded iterations with deliberately small slice budgets to maximise
//! the number of RUNNING->IDLE retire edges racing against deliveries.

use std::collections::HashMap;
use std::time::Duration;

use ditico_rt::sched::SchedConfig;
use ditico_rt::{Cluster, FabricMode, LinkProfile};
use tyco_vm::word::NodeId;
use tyco_vm::Program;

/// Deterministic split-mix style generator so failures reproduce exactly.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn pick<T: Copy>(&mut self, choices: &[T]) -> T {
        choices[(self.next() % choices.len() as u64) as usize]
    }
}

/// Compile once per distinct source; the stress loop re-uses programs
/// across iterations so 1000 iterations don't pay 1000 compiles.
struct ProgramCache(HashMap<String, Program>);

impl ProgramCache {
    fn get(&mut self, src: &str) -> Program {
        self.0
            .entry(src.to_string())
            .or_insert_with(|| {
                let ast = tyco_syntax::parse_core(src).expect("stress program parses");
                tyco_vm::compile(&ast).expect("stress program compiles")
            })
            .clone()
    }
}

/// Ring-forwarding site `i` of `n`: exports its own slot, imports its
/// successor's, forwards decrementing tokens. Site 0 injects `tokens`
/// tokens of `hops` hops each; whichever site holds a dying token reports.
fn ring_site_src(i: usize, n: usize, tokens: u64, hops: u64) -> String {
    let next = (i + 1) % n;
    let inject = if i == 0 {
        (0..tokens)
            .map(|_| format!("| slot0!token[{hops}]"))
            .collect::<String>()
    } else {
        String::new()
    };
    format!(
        r#"
        export new slot{i} in
        import slot{next} from s{next} in (
            def Fwd(self) =
                self ? {{
                    token(n) =
                        (if n > 0 then slot{next}!token[n - 1]
                         else println("token-died"))
                        | Fwd[self]
                }}
            in Fwd[slot{i}]
            {inject}
        )
        "#
    )
}

/// 1000 seeded iterations of a bursty token ring over 2 nodes with the
/// scheduler squeezed hard: 1-3 workers, tiny slice budgets (16-128
/// instructions, so sites park and migrate mid-burst constantly). Every
/// iteration must terminate (quiescent, not wall-limited), with zero
/// errors and exactly `tokens` death reports — i.e. the detector never
/// fired early (missing reports) and never hung (wall limit).
#[test]
fn termination_detection_is_sound_under_stress() {
    let mut cache = ProgramCache(HashMap::new());
    let iters: u64 = std::env::var("DITICO_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    for iter in 0..iters {
        let mut rng = Rng(0xd17c0 + iter);
        let workers = rng.pick(&[1usize, 2, 3]);
        let slice_fuel = rng.pick(&[16u64, 32, 64, 128]);
        let n = rng.pick(&[4usize, 5, 6, 7]);
        let tokens = rng.pick(&[1u64, 2, 4, 8]);
        let hops = rng.pick(&[1u64, 2, 4, 8, 16]);

        let mut c = Cluster::new(FabricMode::Ideal, LinkProfile::ideal(), 1);
        let nodes: Vec<NodeId> = (0..2).map(|_| c.add_node()).collect();
        for i in 0..n {
            let prog = cache.get(&ring_site_src(i, n, tokens, hops));
            c.add_site(nodes[i % nodes.len()], &format!("s{i}"), prog);
        }
        c.sched = SchedConfig {
            workers,
            slice_fuel,
        };
        let report = c.run_threaded(Duration::from_secs(30));

        let ctx = format!(
            "iter {iter}: workers={workers} fuel={slice_fuel} sites={n} \
             tokens={tokens} hops={hops}"
        );
        assert!(report.errors.is_empty(), "{ctx}: {:?}", report.errors);
        assert!(
            report.quiescent,
            "{ctx}: missed termination (hit wall limit)"
        );
        let died: usize = report
            .outputs
            .values()
            .map(|lines| lines.iter().filter(|l| *l == "token-died").count())
            .sum();
        assert_eq!(
            died, tokens as usize,
            "{ctx}: false termination — {died} of {tokens} tokens reported"
        );
    }
}

/// Per-channel FIFO must survive worker migration: a producer streams
/// sequence-numbered messages cross-node to one consumer channel while a
/// tiny slice budget forces the consumer site to be suspended, requeued
/// and picked up by different workers mid-stream. The consumer echoes each
/// number; the echo order must be exactly the send order.
#[test]
fn channel_fifo_preserved_across_worker_migration() {
    const N: u64 = 400;
    let mut c = Cluster::new(FabricMode::Ideal, LinkProfile::ideal(), 1);
    let n0 = c.add_node();
    let n1 = c.add_node();
    c.add_site_src(
        n0,
        "consumer",
        "def Recv(self) = self?{ item(j) = println(j) | Recv[self] } \
         in export new sink in Recv[sink]",
    )
    .unwrap();
    c.add_site_src(
        n1,
        "producer",
        &format!(
            "import sink from consumer in \
             def Send(j) = if j < {N} then (sink!item[j] | Send[j + 1]) else 0 \
             in Send[0]"
        ),
    )
    .unwrap();
    c.sched = SchedConfig {
        workers: 3,
        slice_fuel: 32,
    };
    let report = c.run_threaded(Duration::from_secs(30));
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert!(report.quiescent, "stream did not drain");
    let expected: Vec<String> = (0..N).map(|j| j.to_string()).collect();
    assert_eq!(
        report.output("consumer"),
        expected,
        "per-channel FIFO violated across migration"
    );
    // The slice budget is far below the workload, so the consumer really
    // was suspended and resumed many times while the stream was in flight.
    assert!(
        report.sched.slices > 10,
        "workload ran in too few slices to exercise migration: {}",
        report.sched.slices
    );
}

/// Many more sites than workers: 64 sites ping-ponging on 2 workers must
/// drain and terminate. Guards the "sites idle at zero cost" property at a
/// size where any per-site busy-spin would starve the pool.
#[test]
fn many_sites_few_workers_smoke() {
    let sites = 64;
    let mut c = Cluster::new(FabricMode::Ideal, LinkProfile::ideal(), 1);
    let nodes: Vec<NodeId> = (0..4).map(|_| c.add_node()).collect();
    let mut cache = ProgramCache(HashMap::new());
    for i in 0..sites {
        let prog = cache.get(&ring_site_src(i, sites, 2, 8));
        c.add_site(nodes[i % nodes.len()], &format!("s{i}"), prog);
    }
    c.sched = SchedConfig {
        workers: 2,
        slice_fuel: 256,
    };
    let report = c.run_threaded(Duration::from_secs(60));
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert!(report.quiescent);
    let died: usize = report
        .outputs
        .values()
        .map(|lines| lines.iter().filter(|l| *l == "token-died").count())
        .sum();
    assert_eq!(died, 2);
    assert_eq!(report.sched.workers, 2);
}
