//! Experiment C6 — code mobility vs RMI-style remote references.
//!
//! §1 of the paper contrasts DiTyCO with DCOM/CORBA/Java-RMI, which "give
//! the illusion of locality" while every method call crosses the network.
//! Baseline: objects stay at the server and each `get` is a remote round
//! trip. Mobility: the class is fetched once and objects live at the
//! client, so calls are local.
//!
//! Expected crossover: RMI wins when an object is used once or twice
//! (no code to move); mobility wins as calls-per-object grow, by roughly
//! the round-trip-per-call factor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ditico::LinkProfile;
use ditico_bench::{
    assert_done, mobility_client, rmi_client, run_two_node, MOBILITY_SERVER, RMI_SERVER,
};

fn table() {
    println!("\n=== C6: mobility vs RMI — virtual time (µs), 4 objects x C calls each ===");
    println!(
        "{:>6} {:>12} {:>12} {:>10}",
        "C", "rmi µs", "mobility µs", "winner"
    );
    let objects = 4;
    let mut mobility_won_late = false;
    for calls in [1u64, 2, 4, 8, 16, 32] {
        let rmi = run_two_node(
            LinkProfile::fast_ethernet(),
            RMI_SERVER,
            &rmi_client(objects, calls),
            200_000_000,
        );
        assert_done(&rmi);
        let mobility = run_two_node(
            LinkProfile::fast_ethernet(),
            MOBILITY_SERVER,
            &mobility_client(objects, calls),
            200_000_000,
        );
        assert_done(&mobility);
        let winner = if rmi.virtual_ns < mobility.virtual_ns {
            "rmi"
        } else {
            "mobility"
        };
        println!(
            "{:>6} {:>12} {:>12} {:>10}",
            calls,
            rmi.virtual_ns / 1_000,
            mobility.virtual_ns / 1_000,
            winner
        );
        if calls >= 8 && mobility.virtual_ns < rmi.virtual_ns {
            mobility_won_late = true;
        }
    }
    assert!(
        mobility_won_late,
        "mobility must win once calls-per-object grow"
    );
    println!("(the paper's case for mobility: move the code once, make the calls local)");
}

fn bench_mobility_vs_rmi(c: &mut Criterion) {
    table();

    let mut group = c.benchmark_group("c6_strategies");
    group.sample_size(15);
    for &calls in &[2u64, 16] {
        group.throughput(Throughput::Elements(4 * calls));
        group.bench_with_input(BenchmarkId::new("rmi", calls), &calls, |b, &calls| {
            b.iter(|| {
                let r = run_two_node(
                    LinkProfile::ideal(),
                    RMI_SERVER,
                    &rmi_client(4, calls),
                    200_000_000,
                );
                assert_done(&r);
            });
        });
        group.bench_with_input(BenchmarkId::new("mobility", calls), &calls, |b, &calls| {
            b.iter(|| {
                let r = run_two_node(
                    LinkProfile::ideal(),
                    MOBILITY_SERVER,
                    &mobility_client(4, calls),
                    200_000_000,
                );
                assert_done(&r);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mobility_vs_rmi);
criterion_main!(benches);
