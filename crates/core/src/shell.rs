//! TyCOsh — the user-level shell of §5.
//!
//! *"Users submit new programs for execution in a node using a shell
//! program called TyCOsh. The user requests are handled by a node manager
//! daemon, the TyCOi."*
//!
//! The shell is a small line-oriented command interpreter over the
//! environment builder, suitable for driving from a REPL binary (see
//! `examples/tycosh.rs`) or from tests:
//!
//! ```text
//! topology nodes=2 fabric=virtual link=myrinet
//! site server export new p in p?{ val(x, r) = r![x + 1] }
//! site client import p from server in new a (p!val[41, a] | a?(y) = print(y))
//! run
//! output client
//! ```

use crate::env::{Env, Topology};
use ditico_rt::{FabricMode, LinkProfile, RunReport};
use std::fmt::Write as _;

/// The shell's mutable state.
pub struct Shell {
    topology: Topology,
    sites: Vec<(String, String)>,
    last_report: Option<RunReport>,
}

impl Default for Shell {
    fn default() -> Self {
        Shell::new()
    }
}

impl Shell {
    pub fn new() -> Shell {
        Shell {
            topology: Topology::default(),
            sites: Vec::new(),
            last_report: None,
        }
    }

    /// Execute one command line; returns the text to show the user.
    pub fn exec(&mut self, line: &str) -> String {
        let line = line.trim();
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match cmd {
            "" | "#" => String::new(),
            "help" => HELP.to_string(),
            "topology" => self.cmd_topology(rest),
            "site" => self.cmd_site(rest),
            "ps" => self.cmd_ps(),
            "run" => self.cmd_run(),
            "output" => self.cmd_output(rest),
            "stats" => self.cmd_stats(rest),
            "reset" => {
                *self = Shell::new();
                "environment cleared".to_string()
            }
            other => format!("unknown command `{other}` (try `help`)"),
        }
    }

    fn cmd_topology(&mut self, args: &str) -> String {
        for kv in args.split_whitespace() {
            let Some((k, v)) = kv.split_once('=') else {
                return format!("expected key=value, got `{kv}`");
            };
            match k {
                "nodes" => match v.parse() {
                    Ok(n) => self.topology.nodes = n,
                    Err(e) => return format!("bad nodes value: {e}"),
                },
                "fabric" => {
                    self.topology.mode = match v {
                        "ideal" => FabricMode::Ideal,
                        "virtual" => FabricMode::Virtual,
                        "realtime" => FabricMode::RealTime,
                        other => return format!("unknown fabric `{other}`"),
                    }
                }
                "link" => {
                    self.topology.link = match v {
                        "ideal" => LinkProfile::ideal(),
                        "myrinet" => LinkProfile::myrinet(),
                        "ethernet" => LinkProfile::fast_ethernet(),
                        "wan" => LinkProfile::wan(),
                        other => return format!("unknown link `{other}`"),
                    }
                }
                "replicas" => match v.parse() {
                    Ok(n) => self.topology.ns_replicas = n,
                    Err(e) => return format!("bad replicas value: {e}"),
                },
                other => return format!("unknown topology key `{other}`"),
            }
        }
        format!(
            "topology: {} node(s), fabric {:?}, {} ns replica(s)",
            self.topology.nodes, self.topology.mode, self.topology.ns_replicas
        )
    }

    fn cmd_site(&mut self, args: &str) -> String {
        let Some((lexeme, src)) = args.split_once(char::is_whitespace) else {
            return "usage: site <lexeme> <program…>".to_string();
        };
        // Validate eagerly so errors point at the submission.
        match crate::Program::compile(src.trim()) {
            Ok(p) => {
                self.sites
                    .push((lexeme.to_string(), src.trim().to_string()));
                format!(
                    "site `{lexeme}` submitted ({} byte-code instructions)",
                    p.instr_count()
                )
            }
            Err(e) => format!("site `{lexeme}` rejected: {e}"),
        }
    }

    fn cmd_ps(&self) -> String {
        if self.sites.is_empty() {
            return "no sites".to_string();
        }
        let mut out = String::new();
        for (i, (lexeme, _)) in self.sites.iter().enumerate() {
            let node = i % self.topology.nodes.max(1);
            let _ = writeln!(out, "site {lexeme} → node {node}");
        }
        out.trim_end().to_string()
    }

    fn cmd_run(&mut self) -> String {
        let mut env = Env::new(self.topology.clone());
        for (lexeme, src) in &self.sites {
            env = match env.site(lexeme, src) {
                Ok(e) => e,
                Err(e) => return format!("error: {e}"),
            };
        }
        match env.run() {
            Ok(report) => {
                let summary = format!(
                    "ran to {}: {} instrs, {} fabric packets ({} bytes), virtual time {} µs{}",
                    if report.quiescent {
                        "quiescence"
                    } else {
                        "limit"
                    },
                    report.total_instrs,
                    report.fabric_packets,
                    report.fabric_bytes,
                    report.virtual_ns / 1_000,
                    if report.errors.is_empty() {
                        String::new()
                    } else {
                        format!(", {} error(s)", report.errors.len())
                    }
                );
                self.last_report = Some(report);
                summary
            }
            Err(e) => format!("error: {e}"),
        }
    }

    fn cmd_output(&self, lexeme: &str) -> String {
        match &self.last_report {
            None => "nothing has run yet".to_string(),
            Some(r) => r.output(lexeme).join("\n"),
        }
    }

    fn cmd_stats(&self, lexeme: &str) -> String {
        match &self.last_report {
            None => "nothing has run yet".to_string(),
            Some(r) => match r.stats.get(lexeme) {
                Some(s) => s.to_string(),
                None => format!("unknown site `{lexeme}`"),
            },
        }
    }
}

const HELP: &str = "\
commands:
  topology nodes=N fabric=ideal|virtual|realtime link=ideal|myrinet|ethernet|wan replicas=K
  site <lexeme> <program…>   submit a DiTyCO program as a new site
  ps                         list submitted sites and their nodes
  run                        execute the network to quiescence
  output <lexeme>            show a site's I/O port
  stats <lexeme>             show a site's VM statistics
  reset                      clear everything
  help                       this text";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shell_session_end_to_end() {
        let mut sh = Shell::new();
        assert!(sh
            .exec("topology nodes=2 fabric=virtual link=myrinet")
            .contains("2 node"));
        assert!(sh
            .exec("site server def Srv(s) = s?{ val(x, r) = r![x + 1] | Srv[s] } in export new p in Srv[p]")
            .contains("submitted"));
        assert!(sh
            .exec("site client import p from server in new a (p!val[41, a] | a?(y) = print(y))")
            .contains("submitted"));
        assert!(sh.exec("ps").contains("client"));
        let run = sh.exec("run");
        assert!(run.contains("quiescence"), "{run}");
        assert_eq!(sh.exec("output client"), "42");
        assert!(sh.exec("stats client").contains("instrs"));
    }

    #[test]
    fn rejects_bad_programs_at_submit() {
        let mut sh = Shell::new();
        let reply = sh.exec("site broken new x (x![1] | x![true])");
        assert!(reply.contains("rejected"), "{reply}");
        assert!(sh.exec("ps").contains("no sites"));
    }

    #[test]
    fn unknown_command_help() {
        let mut sh = Shell::new();
        assert!(sh.exec("frobnicate").contains("unknown command"));
        assert!(sh.exec("help").contains("topology"));
        assert_eq!(sh.exec(""), "");
    }

    #[test]
    fn reset_clears_state() {
        let mut sh = Shell::new();
        sh.exec("site a println(\"x\")");
        sh.exec("reset");
        assert!(sh.exec("ps").contains("no sites"));
        assert!(sh.exec("output a").contains("nothing has run"));
    }
}
