//! Property tests: the canonical printer and the parser are mutually
//! inverse on desugared terms, and desugaring is idempotent.

use proptest::prelude::*;
use tyco_syntax::arbitrary::{arb_closed_program, arb_expr, arb_proc};
use tyco_syntax::desugar::{desugar, is_core};
use tyco_syntax::parser::{parse_expr, parse_program};
use tyco_syntax::pretty::{pretty, pretty_expr};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse ∘ pretty = id on generated (desugared) processes, up to spans —
    /// compared by printing both sides.
    #[test]
    fn proc_print_parse_roundtrip(p in arb_proc()) {
        let printed = pretty(&p);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed for {printed:?}: {e}"));
        prop_assert_eq!(pretty(&reparsed), printed);
    }

    #[test]
    fn expr_print_parse_roundtrip(e in arb_expr()) {
        let printed = pretty_expr(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse failed for {printed:?}: {err}"));
        prop_assert_eq!(pretty_expr(&reparsed), printed);
    }

    /// Desugaring always yields core syntax and is idempotent.
    #[test]
    fn desugar_idempotent(p in arb_proc()) {
        let d = desugar(p);
        prop_assert!(is_core(&d));
        prop_assert_eq!(desugar(d.clone()), d);
    }

    /// Generated closed programs really are closed.
    #[test]
    fn closed_programs_are_closed(p in arb_closed_program()) {
        prop_assert!(p.free_names().is_empty(), "free names: {:?}", p.free_names());
        prop_assert!(p.free_classes().is_empty(), "free classes: {:?}", p.free_classes());
        // And they print/parse stably too.
        let printed = pretty(&p);
        let reparsed = parse_program(&printed).unwrap();
        prop_assert_eq!(pretty(&reparsed), printed);
    }
}
