//! Cross-site type stamps: an `import` whose statically inferred
//! expectation disagrees with the exporter's interface is refused by the
//! name service *at bind time* — the importer gets a typed error instead
//! of a protocol failure mid-reduction, and the exporting site stays live.

use ditico_rt::{Cluster, FabricMode, LinkProfile, RunLimits, SiteInterface};
use tyco_vm::codec::TypeStamp;
use tyco_vm::VmError;

fn compile(src: &str) -> tyco_vm::Program {
    tyco_vm::compile(&tyco_syntax::parse_core(src).unwrap()).unwrap()
}

fn stamp(canonical: &str) -> TypeStamp {
    let t = tyco_types::parse_canonical(canonical).expect("canonical parses");
    TypeStamp {
        fingerprint: tyco_types::fingerprint(&t),
        canonical: tyco_types::canonical(&t),
    }
}

fn two_site_cluster(expect: TypeStamp, export: TypeStamp) -> Cluster {
    let mut cluster = Cluster::new(FabricMode::Virtual, LinkProfile::ideal(), 1);
    let n0 = cluster.add_node();
    let n1 = cluster.add_node();

    let mut server_iface = SiteInterface::default();
    server_iface.exports.insert("p".to_string(), export);
    cluster.add_site_with_interface(
        n0,
        "server",
        compile("export new p in p?{ go(n) = print(n), halt() = 0 }"),
        server_iface,
    );

    let mut client_iface = SiteInterface::default();
    client_iface
        .imports
        .insert(("server".to_string(), "p".to_string()), expect);
    cluster.add_site_with_interface(
        n1,
        "client",
        compile("import p from server in p!go[1]"),
        client_iface,
    );
    cluster
}

#[test]
fn mismatched_stamps_refused_at_bind_time_and_exporter_stays_live() {
    // The client claims `p` speaks `^{val(bool)}`; the server registered
    // it as a go/halt protocol. (The static env-level check would catch
    // this before deployment; driving the cluster directly simulates
    // independently deployed sites whose only meeting point is the NS.)
    let mut cluster = two_site_cluster(stamp("^{val(bool)}"), stamp("^{go(int),halt()}"));
    let report = cluster.run_deterministic(RunLimits::default());

    // The importer is refused with a typed bind-time error…
    let client_err = report
        .errors
        .iter()
        .find(|(s, _)| s == "client")
        .map(|(_, e)| e.clone())
        .expect("client import must be refused");
    match client_err {
        VmError::ImportFailed(reason) => {
            assert!(reason.contains("type mismatch at bind time"), "{reason}");
            assert!(reason.contains("^{go(int),halt()}"), "{reason}");
        }
        other => panic!("unexpected error {other:?}"),
    }
    // …the message was never delivered, and the server never faulted: the
    // exporting site stays live, parked on its receiver.
    assert!(
        !report.errors.iter().any(|(s, _)| s == "server"),
        "{:?}",
        report.errors
    );
    assert!(report.output("server").is_empty());
}

#[test]
fn matching_stamps_bind_and_deliver() {
    let protocol = stamp("^{go(int),halt()}");
    let mut cluster = two_site_cluster(protocol.clone(), protocol);
    let report = cluster.run_deterministic(RunLimits::default());
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(report.output("server"), ["1".to_string()]);
}
