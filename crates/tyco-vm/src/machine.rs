//! The extended TyCO virtual machine (§5, Fig. 3).
//!
//! Architecture, matching the paper's description of a site:
//!
//! * **program area** — [`Program`]: byte-code blocks and method tables;
//!   grows at run time when mobile code is dynamically linked;
//! * **heap** — channels (with message *or* object queues) and class-group
//!   objects, garbage-collected by a mark–sweep pass;
//! * **run-queue** — runnable threads `(block, pc, frame)`; threads are a
//!   few tens of instructions long, and a context switch is a queue pop;
//! * **export table** — maps `HeapId`s to local heap references for every
//!   identifier that left the site, and back;
//! * **incoming/outgoing queues + I/O port** — behind the [`NetPort`]
//!   trait, so the same machine runs standalone (loopback) or inside a
//!   `ditico-rt` node.
//!
//! The three communication instructions (`trmsg`, `trobj`, `instof`)
//! dispatch on local vs. network references exactly as §5 prescribes.

use crate::compile::compile;
use crate::port::{FetchReplyNow, ImportReply, Incoming, NetPort};
use crate::program::*;
use crate::stats::ExecStats;
use crate::wire::{self, LinkMap, WireGroup, WireObj, WireWord};
use crate::word::*;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use tyco_syntax::ast::{BinOp, UnOp};

/// A virtual-machine runtime error (the dynamic half of the hybrid type
/// check: statically checked single-site programs never raise these).
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    NotAChannel(String),
    NotAClass(String),
    NoMethod {
        label: String,
    },
    Arity {
        what: String,
        expected: usize,
        found: usize,
    },
    BadOperands(String),
    ImportFailed(String),
    /// A network reference's heap id is unknown to the export table.
    BadHeapId(u64),
    /// Frame slot 0 of a class body did not hold a class word.
    CorruptClassFrame,
    StackUnderflow,
    /// An incoming code image failed static verification and was refused
    /// before linking (SHIPO / FETCH receive path).
    CodeRejected(String),
    /// The hosting runtime lost the site's execution context (e.g. the
    /// worker thread pumping it panicked). Not a fault in the site's own
    /// program.
    Internal(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::NotAChannel(w) => write!(f, "not a channel: {w}"),
            VmError::NotAClass(w) => write!(f, "not a class: {w}"),
            VmError::NoMethod { label } => write!(f, "protocol error: no method `{label}`"),
            VmError::Arity {
                what,
                expected,
                found,
            } => {
                write!(f, "{what} expects {expected} argument(s), got {found}")
            }
            VmError::BadOperands(op) => write!(f, "bad operands for `{op}`"),
            VmError::ImportFailed(e) => write!(f, "import failed: {e}"),
            VmError::BadHeapId(id) => write!(f, "unknown heap id {id}"),
            VmError::CorruptClassFrame => write!(f, "corrupt class frame"),
            VmError::StackUnderflow => write!(f, "operand stack underflow"),
            VmError::CodeRejected(e) => write!(f, "mobile code rejected by verifier: {e}"),
            VmError::Internal(e) => write!(f, "runtime failure: {e}"),
        }
    }
}

impl std::error::Error for VmError {}

/// A message parked in a channel.
#[derive(Debug, Clone)]
pub struct MsgFrame {
    pub label: LabelId,
    pub args: Vec<Word>,
}

/// An object parked in a channel.
#[derive(Debug, Clone)]
pub struct ObjFrame {
    pub table: TableId,
    pub captured: Vec<Word>,
}

/// Channel state: a queue of pending messages *or* pending objects — the
/// reduction rules keep at most one of the two non-empty. Both queues stay
/// allocated for the life of the heap slot (and slots are recycled through
/// the free list), so parking on a busy channel costs no allocation in
/// steady state.
#[derive(Debug, Clone, Default)]
pub struct ChanState {
    msgs: VecDeque<MsgFrame>,
    objs: VecDeque<ObjFrame>,
}

#[derive(Debug, Clone, Default)]
struct ChanSlot {
    used: bool,
    state: ChanState,
}

/// A class group heap object: the shared captured environment of a `def`.
#[derive(Debug, Clone)]
pub struct GroupObj {
    pub table: TableId,
    pub captured: Vec<Word>,
}

/// A (possibly suspended) thread.
#[derive(Debug, Clone)]
pub struct Thread {
    pub block: BlockId,
    pub pc: u32,
    pub frame: Vec<Word>,
    pub stack: Vec<Word>,
    /// Instructions executed so far by this thread (granularity stat).
    pub ticks: u64,
}

/// What a thread did when the executor left it.
enum ThreadExit {
    Halted,
    Parked,
}

/// The export table: `HeapId ↔ local reference` for identifiers that left
/// the site.
#[derive(Debug, Default)]
pub struct ExportTable {
    next: u64,
    chans: HashMap<u64, ChanRef>,
    classes: HashMap<u64, ClassRefW>,
    chan_rev: HashMap<ChanRef, u64>,
    class_rev: HashMap<(u32, u8), u64>,
}

impl ExportTable {
    /// Heap id for a channel leaving the site (stable across calls).
    pub fn export_chan(&mut self, c: ChanRef) -> u64 {
        if let Some(&id) = self.chan_rev.get(&c) {
            return id;
        }
        let id = self.next;
        self.next += 1;
        self.chans.insert(id, c);
        self.chan_rev.insert(c, id);
        id
    }

    pub fn export_class(&mut self, c: ClassRefW) -> u64 {
        if let Some(&id) = self.class_rev.get(&(c.group, c.index)) {
            return id;
        }
        let id = self.next;
        self.next += 1;
        self.classes.insert(id, c);
        self.class_rev.insert((c.group, c.index), id);
        id
    }

    pub fn resolve_chan(&self, id: u64) -> Option<ChanRef> {
        self.chans.get(&id).copied()
    }

    pub fn resolve_class(&self, id: u64) -> Option<ClassRefW> {
        self.classes.get(&id).copied()
    }

    /// Channels pinned by remote references (GC roots).
    pub fn chan_roots(&self) -> impl Iterator<Item = ChanRef> + '_ {
        self.chans.values().copied()
    }

    pub fn len(&self) -> usize {
        self.chans.len() + self.classes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Run-queue scheduling policy (ablation A3: the paper's latency hiding
/// relies on switching to *other* ready threads; FIFO maximizes breadth,
/// LIFO depth-first-runs the most recent spawn).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    #[default]
    Fifo,
    Lifo,
}

/// Outcome of one execution slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceStatus {
    /// Instructions executed in this slice.
    pub instrs: u64,
    /// Threads still runnable after the slice.
    pub runnable: bool,
    /// Threads suspended on imports/fetches.
    pub parked: usize,
}

/// The extended TyCO virtual machine.
pub struct Machine<P: NetPort> {
    pub program: Program,
    channels: Vec<ChanSlot>,
    free_chans: Vec<u32>,
    live_chans: usize,
    gc_threshold: usize,
    groups: Vec<GroupObj>,
    run_queue: VecDeque<Thread>,
    parked: HashMap<u64, Thread>,
    pending_fetch: HashMap<u64, NetRef>,
    fetch_cache: HashMap<NetRef, ClassRefW>,
    pack_cache: HashMap<TableId, std::sync::Arc<wire::Packed>>,
    /// Method-lookup inline cache: 2-way set-associative `(table, label)` →
    /// `(block, nparams)`, fronting the linear [`MethodTable::lookup`] scan
    /// on the COMM path. Never invalidated: method tables are append-only
    /// (dynamic linking only adds tables) and label interning is stable for
    /// the life of the machine, so an entry can go cold but never wrong.
    ic: Box<[IcEntry]>,
    /// Whether dynamically linked blocks get the superinstruction pass —
    /// tracks how the machine was constructed ([`Machine::new`] vs
    /// [`Machine::new_unfused`]) so A/B comparisons stay honest for mobile
    /// code too.
    fuse_enabled: bool,
    /// Whether shipped code is tree-shaken ([`wire::pack_shaken`]) before
    /// packaging. Off by default: shaken packets have their own digests,
    /// so flipping this mid-flight would cold-start the receiving caches.
    shake_enabled: bool,
    pub exports: ExportTable,
    pub port: P,
    /// The site's I/O port: lines written by `print`/`println`.
    pub io: Vec<String>,
    pub stats: ExecStats,
    /// Run-queue discipline (FIFO default; LIFO for the A3 ablation).
    pub queue_policy: QueuePolicy,
    /// Instruction trace ring buffer capacity; 0 disables tracing.
    trace_cap: usize,
    trace: VecDeque<(BlockId, u32)>,
    /// Recycled `Vec<Word>` buffers (frames, stacks, argument vectors):
    /// spawning a thread in steady state reuses a retired allocation
    /// instead of hitting the allocator.
    vec_pool: Vec<Vec<Word>>,
}

/// Retired word-vector buffers kept for reuse beyond this count are freed.
const VEC_POOL_CAP: usize = 1024;

/// One way of the method-lookup inline cache.
#[derive(Clone, Copy)]
struct IcEntry {
    /// `(table << 32) | label`, or [`IC_EMPTY`].
    key: u64,
    block: BlockId,
    nparams: u16,
}

/// Sentinel key for an unfilled way. Collides with a real key only for
/// `table == u32::MAX && label == u32::MAX`, which would need 2³² method
/// tables — unreachable in practice (and a false miss would merely re-scan).
const IC_EMPTY: u64 = u64::MAX;

/// Sets in the inline cache (×2 ways). 256 sets cover every distinct
/// `(table, label)` pair of realistic programs with essentially no
/// conflict; the whole cache is 8 KiB.
const IC_SETS: usize = 256;

#[inline(always)]
fn ic_set(table: TableId, label: LabelId) -> usize {
    (table as usize)
        .wrapping_mul(31)
        .wrapping_add(label as usize)
        & (IC_SETS - 1)
}

/// Move `src[at..]` onto the end of `dst`, leaving `src` truncated to
/// `at`. Semantically identical to `dst.extend(src.drain(at..))` but a
/// single bulk copy, the same way `Vec::append` moves its elements — the
/// generic extend path costs a non-inlined call plus per-element writes,
/// which dominates the COMM hot path where 1–3 words move per reduction.
#[inline]
fn move_tail(src: &mut Vec<Word>, at: usize, dst: &mut Vec<Word>) {
    let n = src.len() - at;
    dst.reserve(n);
    // SAFETY: `src` and `dst` are distinct vectors (two `&mut`), `src[at..]`
    // holds `n` initialized words, and `dst` has capacity for them after the
    // reserve. Truncating `src` first means the words are owned by exactly
    // one vector at every observable point; the bit-copy is a move, and
    // moved-from storage in `src` is never dropped or read.
    unsafe {
        src.set_len(at);
        std::ptr::copy_nonoverlapping(src.as_ptr().add(at), dst.as_mut_ptr().add(dst.len()), n);
        dst.set_len(dst.len() + n);
    }
}

impl<P: NetPort> Machine<P> {
    /// Create a machine for a compiled program and start its entry thread.
    /// The byte-code is rewritten by superinstruction fusion on the way in
    /// ([`crate::fuse`]) — semantics and observable `ExecStats` are
    /// unchanged, dispatches per reduction drop.
    pub fn new(program: Program, port: P) -> Machine<P> {
        let mut program = program;
        crate::fuse::fuse_program(&mut program);
        Self::boot(program, port, true)
    }

    /// Create a machine that executes the byte-code exactly as given, with
    /// no fusion pass — the A/B baseline for the dispatch benchmarks and
    /// the mode `--no-fuse --opstats` telemetry runs use so digram counts
    /// reflect base opcodes.
    pub fn new_unfused(program: Program, port: P) -> Machine<P> {
        Self::boot(program, port, false)
    }

    fn boot(program: Program, port: P, fuse_enabled: bool) -> Machine<P> {
        let mut m = Machine {
            program,
            channels: Vec::new(),
            free_chans: Vec::new(),
            live_chans: 0,
            gc_threshold: 4096,
            groups: Vec::new(),
            run_queue: VecDeque::new(),
            parked: HashMap::new(),
            pending_fetch: HashMap::new(),
            fetch_cache: HashMap::new(),
            pack_cache: HashMap::new(),
            ic: vec![
                IcEntry {
                    key: IC_EMPTY,
                    block: 0,
                    nparams: 0,
                };
                IC_SETS * 2
            ]
            .into_boxed_slice(),
            fuse_enabled,
            shake_enabled: false,
            exports: ExportTable::default(),
            port,
            io: Vec::new(),
            stats: ExecStats::default(),
            queue_policy: QueuePolicy::Fifo,
            trace_cap: 0,
            trace: VecDeque::new(),
            vec_pool: Vec::new(),
        };
        let entry = m.program.entry;
        m.spawn(entry, Vec::new());
        m
    }

    /// Convenience: compile source (parse + desugar) and boot a machine.
    pub fn from_source(src: &str, port: P) -> Result<Machine<P>, String> {
        let ast = tyco_syntax::parse_core(src).map_err(|e| e.to_string())?;
        let prog = compile(&ast).map_err(|e| e.to_string())?;
        Ok(Machine::new(prog, port))
    }

    /// Enable an instruction trace ring buffer holding the last `cap`
    /// executed instructions (0 disables). Costs a few ns per instruction;
    /// meant for debugging, not benchmarking.
    pub fn set_trace(&mut self, cap: usize) {
        self.trace_cap = cap;
        self.trace.clear();
        if cap > 0 {
            self.trace.reserve(cap);
        }
    }

    /// Tree-shake shipped code: every SHIPO / served FETCH packages the
    /// pruned closure ([`wire::pack_shaken`]) instead of the full one, and
    /// `stats.shaken_packs` / `stats.shake_bytes_saved` record the win.
    /// Flushes the pack cache so already-packaged tables pick up the mode.
    pub fn set_shake(&mut self, enabled: bool) {
        if self.shake_enabled != enabled {
            self.shake_enabled = enabled;
            self.pack_cache.clear();
        }
    }

    /// Turn on per-opcode/digram telemetry (see [`crate::stats::OpStats`]).
    /// The counters land in `stats.ops` and ride along wherever the
    /// `ExecStats` go (CLI reports, `RunReport`).
    pub fn enable_opstats(&mut self) {
        if self.stats.ops.is_none() {
            self.stats.ops = Some(Box::default());
        }
    }

    /// Render the trace buffer, oldest first, one line per instruction.
    pub fn render_trace(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (block, pc) in &self.trace {
            let b = &self.program.blocks[*block as usize];
            let ins = b
                .code
                .get(*pc as usize)
                .map(|i| format!("{i:?}"))
                .unwrap_or_else(|| "<end>".to_string());
            let _ = writeln!(out, "{}[{block}]+{pc}: {ins}", b.name);
        }
        out
    }

    /// Does the machine have runnable threads?
    pub fn runnable(&self) -> bool {
        !self.run_queue.is_empty()
    }

    /// Number of threads suspended on network operations.
    pub fn parked_count(&self) -> usize {
        self.parked.len()
    }

    /// Live channels in the heap (diagnostics).
    pub fn live_channels(&self) -> usize {
        self.live_chans
    }

    /// Drain the incoming queue, then execute up to `fuel` instructions.
    pub fn run_slice(&mut self, fuel: u64) -> Result<SliceStatus, VmError> {
        self.drain_incoming()?;
        let mut used: u64 = 0;
        while used < fuel {
            let thread = match self.queue_policy {
                QueuePolicy::Fifo => self.run_queue.pop_front(),
                QueuePolicy::Lifo => self.run_queue.pop_back(),
            };
            let Some(thread) = thread else { break };
            self.stats.threads += 1;
            let before = self.stats.instrs;
            let exit = self.exec_thread(thread)?;
            used += self.stats.instrs - before;
            if matches!(exit, ThreadExit::Halted) && self.live_chans > self.gc_threshold {
                self.gc();
            }
        }
        Ok(SliceStatus {
            instrs: used,
            runnable: !self.run_queue.is_empty(),
            parked: self.parked.len(),
        })
    }

    /// Run until there is nothing runnable and the incoming queue is dry.
    /// Returns the total number of instructions executed.
    pub fn run_to_quiescence(&mut self, max_instrs: u64) -> Result<u64, VmError> {
        let mut total = 0;
        while total < max_instrs {
            let st = self.run_slice(max_instrs - total)?;
            total += st.instrs;
            if !st.runnable {
                // One more poll: the port may have buffered items.
                self.drain_incoming()?;
                if self.run_queue.is_empty() {
                    break;
                }
            }
        }
        Ok(total)
    }

    // -- threads -------------------------------------------------------------

    /// An empty word buffer, reusing a retired frame/stack when available.
    fn take_vec(&mut self) -> Vec<Word> {
        self.vec_pool.pop().unwrap_or_default()
    }

    /// Retire a word buffer into the pool (its contents are dropped).
    fn recycle(&mut self, mut v: Vec<Word>) {
        if v.capacity() > 0 && self.vec_pool.len() < VEC_POOL_CAP {
            v.clear();
            self.vec_pool.push(v);
        }
    }

    fn spawn(&mut self, block: BlockId, prefix: Vec<Word>) {
        let size = self.program.blocks[block as usize].frame_size();
        let mut frame = prefix;
        debug_assert!(frame.len() <= size, "frame prefix exceeds block frame");
        if frame.len() < size {
            frame.resize(size, Word::Unit);
        }
        let stack = self.take_vec();
        self.run_queue.push_back(Thread {
            block,
            pc: 0,
            frame,
            stack,
            ticks: 0,
        });
    }

    fn exec_thread(&mut self, t: Thread) -> Result<ThreadExit, VmError> {
        // Monomorphize the dispatch loop: the common path carries no
        // tracing or telemetry code at all — not even the disabled-flag
        // branches — while `--trace` / `--opstats` runs take the
        // instrumented copy of the same source.
        if self.trace_cap > 0 || self.stats.ops.is_some() {
            self.exec_thread_inner::<true>(t)
        } else {
            self.exec_thread_inner::<false>(t)
        }
    }

    fn exec_thread_inner<const INSTRUMENT: bool>(
        &mut self,
        mut t: Thread,
    ) -> Result<ThreadExit, VmError> {
        // A thread never leaves its block (jumps are intra-block), so pin
        // the code slice once instead of a bounds-checked block lookup per
        // instruction. The raw-slice borrow skips even the `Arc` refcount
        // round-trip the previous version paid per thread.
        //
        // SAFETY: the slice stays valid for the whole loop because nothing
        // can free its allocation while this thread runs:
        // * blocks are never removed, and `program.blocks` growing (dynamic
        //   linking inside this very loop) moves the `Block` structs, not
        //   the heap data their `Arc<[Instr]>`s point to;
        // * the only in-place rewrite of a block's code is
        //   `fuse_blocks_from`, which exclusively touches blocks appended
        //   by the `link_trusted` call immediately preceding it — and a
        //   thread can only be executing a block that existed before it was
        //   spawned, hence before that link.
        let code: &[Instr] = {
            let c = &self.program.blocks[t.block as usize].code;
            unsafe { std::slice::from_raw_parts(c.as_ptr(), c.len()) }
        };
        // `stats.instrs` is settled from the tick delta at the exits below
        // rather than bumped per instruction, keeping the counter out of
        // the dispatch loop. (A thread that errors loses its last slice's
        // ticks — the machine is dead at that point.)
        let ticks_in = t.ticks;
        // Digram telemetry: the previous opcode index, seeded with the
        // thread-entry pseudo-row. Pairs never span threads.
        let mut prev_op = NUM_OPS;
        loop {
            // Single bounds check per dispatch: `get` both fetches and
            // detects falling off the end of the block.
            let Some(&ins) = code.get(t.pc as usize) else {
                self.stats.instrs += t.ticks - ticks_in;
                self.stats.thread_len.record(t.ticks);
                self.recycle(t.frame);
                self.recycle(t.stack);
                return Ok(ThreadExit::Halted);
            };
            if INSTRUMENT {
                if self.trace_cap > 0 {
                    if self.trace.len() == self.trace_cap {
                        self.trace.pop_front();
                    }
                    self.trace.push_back((t.block, t.pc));
                }
                if let Some(ops) = self.stats.ops.as_deref_mut() {
                    let i = ins.op_index();
                    ops.counts[i] += 1;
                    ops.digrams[prev_op][i] += 1;
                    prev_op = i;
                }
            }
            t.ticks += 1;
            t.pc += 1;
            match ins {
                Instr::PushLocal(s) => t.stack.push(t.frame[s as usize].clone()),
                Instr::PushInt(i) => t.stack.push(Word::Int(i)),
                Instr::PushBool(b) => t.stack.push(Word::Bool(b)),
                Instr::PushFloat(x) => t.stack.push(Word::Float(x)),
                Instr::PushUnit => t.stack.push(Word::Unit),
                Instr::PushStr(s) => {
                    t.stack.push(Word::Str(self.program.strings.get_arc(s)));
                }
                Instr::PushSibling(i) => match t.frame.first() {
                    Some(Word::Class(cr)) => {
                        t.stack.push(Word::Class(ClassRefW {
                            group: cr.group,
                            index: i,
                        }));
                    }
                    _ => return Err(VmError::CorruptClassFrame),
                },
                Instr::Store(s) => {
                    let w = t.stack.pop().ok_or(VmError::StackUnderflow)?;
                    t.frame[s as usize] = w;
                }
                Instr::Bin(op) => {
                    let b = t.stack.pop().ok_or(VmError::StackUnderflow)?;
                    let a = t.stack.pop().ok_or(VmError::StackUnderflow)?;
                    t.stack.push(binop(op, a, b)?);
                }
                Instr::Un(op) => {
                    let a = t.stack.pop().ok_or(VmError::StackUnderflow)?;
                    t.stack.push(unop(op, a)?);
                }
                Instr::Jump(target) => t.pc = target,
                Instr::JumpIfFalse(target) => {
                    match t.stack.pop().ok_or(VmError::StackUnderflow)? {
                        Word::Bool(true) => {}
                        Word::Bool(false) => t.pc = target,
                        other => return Err(VmError::BadOperands(other.type_name().into())),
                    }
                }
                Instr::Halt => {
                    self.stats.instrs += t.ticks - ticks_in;
                    self.stats.thread_len.record(t.ticks);
                    self.recycle(t.frame);
                    self.recycle(t.stack);
                    return Ok(ThreadExit::Halted);
                }
                Instr::NewChan(s) => {
                    let c = self.alloc_chan();
                    t.frame[s as usize] = Word::Chan(c);
                }
                Instr::Fork { block, nfree } => {
                    let at = t.stack.len() - nfree as usize;
                    let mut captured = self.take_vec();
                    move_tail(&mut t.stack, at, &mut captured);
                    self.spawn(block, captured);
                }
                Instr::TrMsg { label, argc } => {
                    let chan = t.stack.pop().ok_or(VmError::StackUnderflow)?;
                    self.do_trmsg(&mut t.stack, chan, label, argc)?;
                }
                Instr::TrObj { table, nfree } => {
                    let chan = t.stack.pop().ok_or(VmError::StackUnderflow)?;
                    self.do_trobj(&mut t.stack, chan, table, nfree)?;
                }
                Instr::InstOf { argc } => {
                    let class = t.stack.pop().ok_or(VmError::StackUnderflow)?;
                    match class {
                        Word::Class(cr) => {
                            let at = t.stack.len() - argc as usize;
                            self.instantiate_stack(cr, &mut t.stack, at)?;
                        }
                        Word::NetClass(r) if r.site == self.port.identity().site => {
                            let cr = self
                                .exports
                                .resolve_class(r.heap_id)
                                .ok_or(VmError::BadHeapId(r.heap_id))?;
                            let at = t.stack.len() - argc as usize;
                            self.instantiate_stack(cr, &mut t.stack, at)?;
                        }
                        Word::NetClass(r) => {
                            if let Some(&cr) = self.fetch_cache.get(&r) {
                                // Previously downloaded and linked.
                                self.stats.fetch_cache_hits += 1;
                                let at = t.stack.len() - argc as usize;
                                self.instantiate_stack(cr, &mut t.stack, at)?;
                            } else {
                                match self.port.fetch(r) {
                                    FetchReplyNow::Ready(group, index) => {
                                        self.stats.fetches += 1;
                                        let cr = self.link_group(&group, index)?;
                                        self.fetch_cache.insert(r, cr);
                                        let at = t.stack.len() - argc as usize;
                                        self.instantiate_stack(cr, &mut t.stack, at)?;
                                    }
                                    FetchReplyNow::Pending(req) => {
                                        // Suspend: restore the stack and
                                        // re-execute this instruction when
                                        // the byte-code arrives. The
                                        // overlap with other threads is the
                                        // latency-hiding of §5.
                                        self.stats.fetches += 1;
                                        t.stack.push(Word::NetClass(r));
                                        t.pc -= 1;
                                        self.stats.instrs += t.ticks - ticks_in;
                                        self.pending_fetch.insert(req, r);
                                        self.parked.insert(req, t);
                                        return Ok(ThreadExit::Parked);
                                    }
                                    FetchReplyNow::Failed(e) => {
                                        return Err(VmError::ImportFailed(e));
                                    }
                                }
                            }
                        }
                        other => return Err(VmError::NotAClass(other.display())),
                    }
                }
                Instr::MkGroup {
                    table,
                    dst,
                    count,
                    nfree,
                } => {
                    let at = t.stack.len() - nfree as usize;
                    let captured: Vec<Word> = t.stack.drain(at..).collect();
                    let group = self.groups.len() as u32;
                    self.groups.push(GroupObj { table, captured });
                    for i in 0..count {
                        t.frame[(dst + i as u16) as usize] =
                            Word::Class(ClassRefW { group, index: i });
                    }
                }
                Instr::ExportName { slot, name } => {
                    let Word::Chan(c) = t.frame[slot as usize] else {
                        return Err(VmError::NotAChannel(t.frame[slot as usize].display()));
                    };
                    let heap_id = self.exports.export_chan(c);
                    let ident = self.port.identity();
                    let name_str = self.program.strings.get(name).to_string();
                    self.port.register(
                        &name_str,
                        WireWord::Chan(NetRef {
                            heap_id,
                            site: ident.site,
                            node: ident.node,
                        }),
                    );
                }
                Instr::ExportClass { slot, name } => {
                    let Word::Class(cr) = t.frame[slot as usize] else {
                        return Err(VmError::NotAClass(t.frame[slot as usize].display()));
                    };
                    let heap_id = self.exports.export_class(cr);
                    let ident = self.port.identity();
                    let name_str = self.program.strings.get(name).to_string();
                    self.port.register(
                        &name_str,
                        WireWord::Class(NetRef {
                            heap_id,
                            site: ident.site,
                            node: ident.node,
                        }),
                    );
                }
                Instr::Import {
                    dst,
                    site,
                    name,
                    kind,
                } => {
                    self.stats.imports += 1;
                    let site_str = self.program.strings.get(site).to_string();
                    let name_str = self.program.strings.get(name).to_string();
                    match self.port.import(&site_str, &name_str, kind) {
                        ImportReply::Ready(w) => {
                            t.frame[dst as usize] = self.incoming_word(w)?;
                        }
                        ImportReply::Pending(req) => {
                            t.pc -= 1;
                            self.stats.instrs += t.ticks - ticks_in;
                            self.parked.insert(req, t);
                            return Ok(ThreadExit::Parked);
                        }
                        ImportReply::Failed(e) => return Err(VmError::ImportFailed(e)),
                    }
                }
                Instr::Print { argc, newline: _ } => {
                    let at = t.stack.len() - argc as usize;
                    let parts: Vec<String> = t.stack.drain(at..).map(|w| w.display()).collect();
                    self.io.push(parts.join(" "));
                }

                // -- fused superinstructions (see `crate::fuse`) -------------
                // Each arm charges one extra tick so `stats.instrs` keeps
                // counting *original* instructions: fused and unfused runs of
                // the same program report identical ExecStats.
                Instr::PushLocal2 { a, b } => {
                    t.ticks += 1;
                    t.stack.push(t.frame[a as usize].clone());
                    t.stack.push(t.frame[b as usize].clone());
                }
                Instr::PushLocalInt { slot, imm } => {
                    t.ticks += 1;
                    t.stack.push(t.frame[slot as usize].clone());
                    t.stack.push(Word::Int(imm as i64));
                }
                Instr::PushIntBin { imm, op } => {
                    // The immediate skips the stack entirely: pop the left
                    // operand, apply, push the result.
                    t.ticks += 1;
                    let a = t.stack.pop().ok_or(VmError::StackUnderflow)?;
                    t.stack.push(binop(op, a, Word::Int(imm as i64))?);
                }
                Instr::BinJumpIfFalse { op, target } => {
                    t.ticks += 1;
                    let b = t.stack.pop().ok_or(VmError::StackUnderflow)?;
                    let a = t.stack.pop().ok_or(VmError::StackUnderflow)?;
                    match binop(op, a, b)? {
                        Word::Bool(true) => {}
                        Word::Bool(false) => t.pc = target,
                        other => return Err(VmError::BadOperands(other.type_name().into())),
                    }
                }
                Instr::PushLocalTrMsg { slot, label, argc } => {
                    // The channel is read straight from the frame — it never
                    // visits the operand stack.
                    t.ticks += 1;
                    let chan = t.frame[slot as usize].clone();
                    self.do_trmsg(&mut t.stack, chan, label, argc)?;
                }
                Instr::PushLocalTrObj { slot, table, nfree } => {
                    t.ticks += 1;
                    let chan = t.frame[slot as usize].clone();
                    self.do_trobj(&mut t.stack, chan, table, nfree)?;
                }
                Instr::PushLocalInstOf { slot, argc } => {
                    t.ticks += 1;
                    match t.frame[slot as usize].clone() {
                        Word::Class(cr) => {
                            let at = t.stack.len() - argc as usize;
                            self.instantiate_stack(cr, &mut t.stack, at)?;
                        }
                        Word::NetClass(r) if r.site == self.port.identity().site => {
                            let cr = self
                                .exports
                                .resolve_class(r.heap_id)
                                .ok_or(VmError::BadHeapId(r.heap_id))?;
                            let at = t.stack.len() - argc as usize;
                            self.instantiate_stack(cr, &mut t.stack, at)?;
                        }
                        Word::NetClass(r) => {
                            if let Some(&cr) = self.fetch_cache.get(&r) {
                                self.stats.fetch_cache_hits += 1;
                                let at = t.stack.len() - argc as usize;
                                self.instantiate_stack(cr, &mut t.stack, at)?;
                            } else {
                                match self.port.fetch(r) {
                                    FetchReplyNow::Ready(group, index) => {
                                        self.stats.fetches += 1;
                                        let cr = self.link_group(&group, index)?;
                                        self.fetch_cache.insert(r, cr);
                                        let at = t.stack.len() - argc as usize;
                                        self.instantiate_stack(cr, &mut t.stack, at)?;
                                    }
                                    FetchReplyNow::Pending(req) => {
                                        // Suspend and re-execute the whole
                                        // fused form on resume: the class
                                        // word is still in the frame (nothing
                                        // to restore to the stack, unlike the
                                        // base `InstOf`), and the resume run
                                        // will hit `fetch_cache`. Give back
                                        // this arm's extra tick so the
                                        // re-execution charges the pair
                                        // exactly like the unfused machine
                                        // (PushLocal once + InstOf twice).
                                        self.stats.fetches += 1;
                                        t.ticks -= 1;
                                        t.pc -= 1;
                                        self.stats.instrs += t.ticks - ticks_in;
                                        self.pending_fetch.insert(req, r);
                                        self.parked.insert(req, t);
                                        return Ok(ThreadExit::Parked);
                                    }
                                    FetchReplyNow::Failed(e) => {
                                        return Err(VmError::ImportFailed(e));
                                    }
                                }
                            }
                        }
                        other => return Err(VmError::NotAClass(other.display())),
                    }
                }
                Instr::PushSiblingLocal { sib, slot } => {
                    t.ticks += 1;
                    match t.frame.first() {
                        Some(Word::Class(cr)) => {
                            let group = cr.group;
                            t.stack.push(Word::Class(ClassRefW { group, index: sib }));
                        }
                        _ => return Err(VmError::CorruptClassFrame),
                    }
                    t.stack.push(t.frame[slot as usize].clone());
                }
                Instr::PushSiblingInstOf { sib, argc } => {
                    // Sibling class words are always local (`Word::Class`),
                    // so this form can never suspend.
                    t.ticks += 1;
                    let cr = match t.frame.first() {
                        Some(Word::Class(cr)) => ClassRefW {
                            group: cr.group,
                            index: sib,
                        },
                        _ => return Err(VmError::CorruptClassFrame),
                    };
                    let at = t.stack.len() - argc as usize;
                    self.instantiate_stack(cr, &mut t.stack, at)?;
                }
            }
        }
    }

    /// The `trmsg` dispatch on local vs. network references (§5), shared by
    /// the base arm (channel popped from the stack) and the fused
    /// `PushLocalTrMsg` arm (channel read from the frame).
    #[inline(always)]
    fn do_trmsg(
        &mut self,
        stack: &mut Vec<Word>,
        chan: Word,
        label: LabelId,
        argc: u8,
    ) -> Result<(), VmError> {
        let at = stack.len() - argc as usize;
        match chan {
            Word::Chan(c) => self.local_msg_stack(c, label, stack, at),
            Word::NetChan(r) if r.site == self.port.identity().site => {
                let c = self
                    .exports
                    .resolve_chan(r.heap_id)
                    .ok_or(VmError::BadHeapId(r.heap_id))?;
                self.local_msg_stack(c, label, stack, at)
            }
            Word::NetChan(r) => {
                // SHIPM: package and place on the outgoing queue.
                self.stats.msgs_sent += 1;
                let label_str = self.program.labels.get(label).to_string();
                let wire_args: Vec<WireWord> =
                    stack.drain(at..).map(|w| self.outgoing(w)).collect();
                self.port.send_msg(r, &label_str, wire_args);
                Ok(())
            }
            other => Err(VmError::NotAChannel(other.display())),
        }
    }

    /// The `trobj` dispatch on local vs. network references (§5), shared by
    /// the base arm and the fused `PushLocalTrObj` arm.
    #[inline(always)]
    fn do_trobj(
        &mut self,
        stack: &mut Vec<Word>,
        chan: Word,
        table: TableId,
        nfree: u16,
    ) -> Result<(), VmError> {
        let at = stack.len() - nfree as usize;
        match chan {
            Word::Chan(c) => self.local_obj_stack(c, table, stack, at),
            Word::NetChan(r) if r.site == self.port.identity().site => {
                let c = self
                    .exports
                    .resolve_chan(r.heap_id)
                    .ok_or(VmError::BadHeapId(r.heap_id))?;
                self.local_obj_stack(c, table, stack, at)
            }
            Word::NetChan(r) => {
                // SHIPO: the object (code + translated free variables)
                // migrates to the prefix's site.
                self.stats.objs_sent += 1;
                let packed = self.pack_table(table);
                let wire_captured: Vec<WireWord> =
                    stack.drain(at..).map(|w| self.outgoing(w)).collect();
                let obj = WireObj {
                    code: packed.code.clone(),
                    table: packed.table_map[&table],
                    captured: wire_captured,
                };
                self.port.send_obj(r, packed.digest, obj);
                Ok(())
            }
            other => Err(VmError::NotAChannel(other.display())),
        }
    }

    // -- heap -----------------------------------------------------------------

    fn alloc_chan(&mut self) -> ChanRef {
        self.stats.chans_allocated += 1;
        self.live_chans += 1;
        if let Some(c) = self.free_chans.pop() {
            // The previous tenant's queues are empty but still allocated.
            let slot = &mut self.channels[c as usize];
            debug_assert!(!slot.used, "free list entry in use");
            slot.used = true;
            c
        } else {
            self.channels.push(ChanSlot {
                used: true,
                state: ChanState::default(),
            });
            (self.channels.len() - 1) as u32
        }
    }

    fn chan_mut(&mut self, c: ChanRef) -> &mut ChanState {
        let slot = &mut self.channels[c as usize];
        debug_assert!(slot.used, "dangling channel reference {c}");
        &mut slot.state
    }

    /// Local `trmsg` from the operand stack: on COMM the method fires with
    /// its arguments moved straight from the stack into the new frame — no
    /// intermediate argument buffer. Only a message that has to wait is
    /// copied out into a (pooled) vector.
    fn local_msg_stack(
        &mut self,
        c: ChanRef,
        label: LabelId,
        stack: &mut Vec<Word>,
        at: usize,
    ) -> Result<(), VmError> {
        if let Some(obj) = self.chan_mut(c).objs.pop_front() {
            return self.fire_method_stack(obj, label, stack, at);
        }
        let mut args = self.take_vec();
        move_tail(stack, at, &mut args);
        self.chan_mut(c).msgs.push_back(MsgFrame { label, args });
        Ok(())
    }

    /// Local `trobj` from the operand stack: on COMM the frame is built
    /// directly from the stacked captures plus the waiting message's
    /// arguments; otherwise the captures move into a (pooled) vector.
    fn local_obj_stack(
        &mut self,
        c: ChanRef,
        table: TableId,
        stack: &mut Vec<Word>,
        at: usize,
    ) -> Result<(), VmError> {
        if let Some(msg) = self.chan_mut(c).msgs.pop_front() {
            let mut frame = self.take_vec();
            move_tail(stack, at, &mut frame);
            return self.fire_method_frame(table, msg.label, frame, msg.args);
        }
        let mut captured = self.take_vec();
        move_tail(stack, at, &mut captured);
        self.chan_mut(c)
            .objs
            .push_back(ObjFrame { table, captured });
        Ok(())
    }

    /// Local `trmsg` with an owned argument buffer (COMM or enqueue).
    fn local_msg(&mut self, c: ChanRef, label: LabelId, args: Vec<Word>) -> Result<(), VmError> {
        match self.chan_mut(c).objs.pop_front() {
            Some(obj) => self.fire_method(obj, label, args),
            None => {
                self.chan_mut(c).msgs.push_back(MsgFrame { label, args });
                Ok(())
            }
        }
    }

    /// Local `trobj` with an owned capture buffer (COMM or enqueue).
    fn local_obj(
        &mut self,
        c: ChanRef,
        table: TableId,
        captured: Vec<Word>,
    ) -> Result<(), VmError> {
        match self.chan_mut(c).msgs.pop_front() {
            Some(msg) => self.fire_method_frame(table, msg.label, captured, msg.args),
            None => {
                self.chan_mut(c)
                    .objs
                    .push_back(ObjFrame { table, captured });
                Ok(())
            }
        }
    }

    /// Fire a method whose arguments are the top `len - at` stack words:
    /// they move straight into the new thread's frame.
    fn fire_method_stack(
        &mut self,
        obj: ObjFrame,
        label: LabelId,
        stack: &mut Vec<Word>,
        at: usize,
    ) -> Result<(), VmError> {
        let block = self.method_block(obj.table, label, stack.len() - at)?;
        self.stats.comm += 1;
        let mut frame = obj.captured;
        move_tail(stack, at, &mut frame);
        self.spawn(block, frame);
        Ok(())
    }

    /// Fire a method: `frame` already holds the captured environment; the
    /// (pooled) argument buffer is appended wholesale and recycled.
    fn fire_method_frame(
        &mut self,
        table: TableId,
        label: LabelId,
        mut frame: Vec<Word>,
        mut args: Vec<Word>,
    ) -> Result<(), VmError> {
        let block = self.method_block(table, label, args.len())?;
        self.stats.comm += 1;
        frame.append(&mut args);
        self.recycle(args);
        self.spawn(block, frame);
        Ok(())
    }

    /// Resolve `label` in `table` and check the argument count, through the
    /// method-lookup inline cache. A hit answers from 16 bytes of hot cache
    /// state (block id *and* arity — no table scan, no block deref); a miss
    /// falls back to the linear [`MethodTable::lookup`] and fills the MRU
    /// way. Monomorphic sends pin way 0; a second label hashing to the same
    /// set (polymorphic send site or set collision) survives in way 1.
    #[inline(always)]
    fn method_block(
        &mut self,
        table: TableId,
        label: LabelId,
        found: usize,
    ) -> Result<BlockId, VmError> {
        let key = ((table as u64) << 32) | label as u64;
        let base = ic_set(table, label) * 2;
        let e0 = self.ic[base];
        if e0.key == key {
            self.stats.ic_hits += 1;
            return self.check_arity(e0.block, e0.nparams, label, found);
        }
        let e1 = self.ic[base + 1];
        if e1.key == key {
            // Promote the hit to the MRU way.
            self.ic[base] = e1;
            self.ic[base + 1] = e0;
            self.stats.ic_hits += 1;
            return self.check_arity(e1.block, e1.nparams, label, found);
        }
        self.stats.ic_misses += 1;
        let block = self.program.tables[table as usize]
            .lookup(label)
            .ok_or_else(|| VmError::NoMethod {
                label: self.program.labels.get(label).to_string(),
            })?;
        let nparams = self.program.blocks[block as usize].nparams;
        self.ic[base + 1] = e0;
        self.ic[base] = IcEntry {
            key,
            block,
            nparams,
        };
        self.check_arity(block, nparams, label, found)
    }

    #[inline(always)]
    fn check_arity(
        &self,
        block: BlockId,
        nparams: u16,
        label: LabelId,
        found: usize,
    ) -> Result<BlockId, VmError> {
        if nparams as usize != found {
            return Err(VmError::Arity {
                what: format!("method `{}`", self.program.labels.get(label)),
                expected: nparams as usize,
                found,
            });
        }
        Ok(block)
    }

    fn fire_method(
        &mut self,
        obj: ObjFrame,
        label: LabelId,
        args: Vec<Word>,
    ) -> Result<(), VmError> {
        self.fire_method_frame(obj.table, label, obj.captured, args)
    }

    /// Local `instof` (INST) with the arguments taken from the top
    /// `len - at` words of the operand stack.
    fn instantiate_stack(
        &mut self,
        cr: ClassRefW,
        stack: &mut Vec<Word>,
        at: usize,
    ) -> Result<(), VmError> {
        let mut frame = self.take_vec();
        let g = &self.groups[cr.group as usize];
        let entries = &self.program.tables[g.table as usize].entries;
        let Some(&(label, block)) = entries.get(cr.index as usize) else {
            return Err(VmError::NotAClass(format!(
                "group {} index {}",
                cr.group, cr.index
            )));
        };
        let b = &self.program.blocks[block as usize];
        let found = stack.len() - at;
        if b.nparams as usize != found {
            return Err(VmError::Arity {
                what: format!("class `{}`", self.program.labels.get(label)),
                expected: b.nparams as usize,
                found,
            });
        }
        self.stats.inst += 1;
        frame.reserve(b.frame_size());
        frame.push(Word::Class(cr));
        frame.extend(g.captured.iter().cloned());
        move_tail(stack, at, &mut frame);
        self.spawn(block, frame);
        Ok(())
    }

    // -- mobility ----------------------------------------------------------------

    fn pack_table(&mut self, table: TableId) -> std::sync::Arc<wire::Packed> {
        if let Some(p) = self.pack_cache.get(&table) {
            return p.clone();
        }
        let packed = if self.shake_enabled {
            let full = wire::pack(&self.program, &[table]);
            let shaken = wire::pack_shaken(&self.program, &[table]);
            let full_len = crate::codec::code_bytes(&full.code).len() as u64;
            let shaken_len = crate::codec::code_bytes(&shaken.code).len() as u64;
            self.stats.shaken_packs += 1;
            self.stats.shake_bytes_saved += full_len.saturating_sub(shaken_len);
            std::sync::Arc::new(shaken)
        } else {
            std::sync::Arc::new(wire::pack(&self.program, &[table]))
        };
        self.pack_cache.insert(table, packed.clone());
        packed
    }

    /// Link a fetched class group into the program area. Verify-once: the
    /// image was screened where it entered the node (daemon ingest /
    /// transport reader), or never crossed a trust boundary (same-process
    /// delivery), so linking skips the verifier pass.
    fn link_group(&mut self, group: &WireGroup, index: u8) -> Result<ClassRefW, VmError> {
        let nb = self.program.blocks.len();
        let lm: LinkMap = wire::link_trusted(&mut self.program, &group.code);
        if self.fuse_enabled {
            // Mobile code gets the same superinstruction pass as boot code.
            crate::fuse::fuse_blocks_from(&mut self.program, nb);
        }
        let table = *lm
            .tables
            .get(group.table as usize)
            .ok_or_else(|| VmError::CodeRejected(format!("group table {} dangles", group.table)))?;
        let captured: Vec<Word> = group
            .captured
            .iter()
            .map(|w| self.incoming_word(w.clone()))
            .collect::<Result<_, _>>()?;
        let gid = self.groups.len() as u32;
        self.groups.push(GroupObj { table, captured });
        Ok(ClassRefW { group: gid, index })
    }

    /// Translate a word leaving the site (local references become network
    /// references through the export table — §5's first translation step).
    pub fn outgoing(&mut self, w: Word) -> WireWord {
        let ident = self.port.identity();
        match w {
            Word::Unit => WireWord::Unit,
            Word::Int(i) => WireWord::Int(i),
            Word::Bool(b) => WireWord::Bool(b),
            Word::Float(x) => WireWord::Float(x),
            Word::Str(s) => WireWord::Str(s.to_string()),
            Word::Chan(c) => WireWord::Chan(NetRef {
                heap_id: self.exports.export_chan(c),
                site: ident.site,
                node: ident.node,
            }),
            Word::NetChan(r) => WireWord::Chan(r),
            Word::Class(cr) => WireWord::Class(NetRef {
                heap_id: self.exports.export_class(cr),
                site: ident.site,
                node: ident.node,
            }),
            Word::NetClass(r) => WireWord::Class(r),
        }
    }

    /// Translate an arriving wire word (references bound to this site
    /// become local pointers — §5's second translation step).
    pub fn incoming_word(&mut self, w: WireWord) -> Result<Word, VmError> {
        let me = self.port.identity().site;
        Ok(match w {
            WireWord::Unit => Word::Unit,
            WireWord::Int(i) => Word::Int(i),
            WireWord::Bool(b) => Word::Bool(b),
            WireWord::Float(x) => Word::Float(x),
            WireWord::Str(s) => Word::Str(s.into()),
            WireWord::Chan(r) if r.site == me => Word::Chan(
                self.exports
                    .resolve_chan(r.heap_id)
                    .ok_or(VmError::BadHeapId(r.heap_id))?,
            ),
            WireWord::Chan(r) => Word::NetChan(r),
            WireWord::Class(r) if r.site == me => Word::Class(
                self.exports
                    .resolve_class(r.heap_id)
                    .ok_or(VmError::BadHeapId(r.heap_id))?,
            ),
            WireWord::Class(r) => Word::NetClass(r),
        })
    }

    // -- incoming queue ------------------------------------------------------------

    fn drain_incoming(&mut self) -> Result<(), VmError> {
        while let Some(item) = self.port.poll() {
            match item {
                Incoming::Msg { dest, label, args } => {
                    self.stats.msgs_recv += 1;
                    let c = self
                        .exports
                        .resolve_chan(dest)
                        .ok_or(VmError::BadHeapId(dest))?;
                    let label = self.program.labels.intern(&label);
                    let words: Vec<Word> = args
                        .into_iter()
                        .map(|w| self.incoming_word(w))
                        .collect::<Result<_, _>>()?;
                    self.local_msg(c, label, words)?;
                }
                Incoming::Obj { dest, obj } => {
                    self.stats.objs_recv += 1;
                    let c = self
                        .exports
                        .resolve_chan(dest)
                        .ok_or(VmError::BadHeapId(dest))?;
                    // Verify-once: screened at the node boundary (see
                    // `link_group`).
                    let nb = self.program.blocks.len();
                    let lm = wire::link_trusted(&mut self.program, &obj.code);
                    if self.fuse_enabled {
                        crate::fuse::fuse_blocks_from(&mut self.program, nb);
                    }
                    let table = *lm.tables.get(obj.table as usize).ok_or_else(|| {
                        VmError::CodeRejected(format!("object table {} dangles", obj.table))
                    })?;
                    let captured: Vec<Word> = obj
                        .captured
                        .into_iter()
                        .map(|w| self.incoming_word(w))
                        .collect::<Result<_, _>>()?;
                    self.local_obj(c, table, captured)?;
                }
                Incoming::FetchReq {
                    dest,
                    req,
                    reply_to,
                } => {
                    self.stats.fetches_served += 1;
                    let cr = self
                        .exports
                        .resolve_class(dest)
                        .ok_or(VmError::BadHeapId(dest))?;
                    let g = &self.groups[cr.group as usize];
                    let table = g.table;
                    let captured = g.captured.clone();
                    let packed = self.pack_table(table);
                    let wire_captured: Vec<WireWord> =
                        captured.into_iter().map(|w| self.outgoing(w)).collect();
                    let group = WireGroup {
                        code: packed.code.clone(),
                        table: packed.table_map[&table],
                        captured: wire_captured,
                    };
                    self.port
                        .fetch_reply(reply_to, req, packed.digest, group, cr.index);
                }
                Incoming::FetchReply { req, group, index } => {
                    // Idempotence: a reply for a request this machine is
                    // not waiting on (duplicate delivery, or a late reply
                    // after the first already resolved) must not link and
                    // instantiate a second copy of the class.
                    let Some(netref) = self.pending_fetch.remove(&req) else {
                        self.stats.dup_fetch_replies += 1;
                        continue;
                    };
                    let cr = self.link_group(&group, index)?;
                    self.fetch_cache.insert(netref, cr);
                    if let Some(t) = self.parked.remove(&req) {
                        self.run_queue.push_back(t);
                    }
                }
                Incoming::ImportReady { req } => {
                    if let Some(t) = self.parked.remove(&req) {
                        self.run_queue.push_back(t);
                    }
                }
                Incoming::ImportFailed { req, reason } => {
                    self.parked.remove(&req);
                    return Err(VmError::ImportFailed(reason));
                }
            }
        }
        Ok(())
    }

    // -- garbage collection -------------------------------------------------------

    /// Mark–sweep over the channel heap. Roots: run-queue and parked
    /// thread frames/stacks, class-group captured environments, and the
    /// export table (remotely referenced channels are always live).
    pub fn gc(&mut self) {
        self.stats.gcs += 1;
        let mut marked = vec![false; self.channels.len()];
        let mut work: Vec<ChanRef> = Vec::new();

        let scan_word = |w: &Word, work: &mut Vec<ChanRef>| {
            if let Word::Chan(c) = w {
                work.push(*c);
            }
        };
        for t in self.run_queue.iter().chain(self.parked.values()) {
            for w in t.frame.iter().chain(t.stack.iter()) {
                scan_word(w, &mut work);
            }
        }
        for g in &self.groups {
            for w in &g.captured {
                scan_word(w, &mut work);
            }
        }
        for c in self.exports.chan_roots() {
            work.push(c);
        }

        while let Some(c) = work.pop() {
            let i = c as usize;
            if marked[i] {
                continue;
            }
            marked[i] = true;
            let slot = &self.channels[i];
            if slot.used {
                for m in &slot.state.msgs {
                    for w in &m.args {
                        if let Word::Chan(c2) = w {
                            work.push(*c2);
                        }
                    }
                }
                for o in &slot.state.objs {
                    for w in &o.captured {
                        if let Word::Chan(c2) = w {
                            work.push(*c2);
                        }
                    }
                }
            }
        }

        for (i, slot) in self.channels.iter_mut().enumerate() {
            if !marked[i] && slot.used {
                // Drop unreachable queue contents but keep the queue
                // allocations for the slot's next tenant.
                slot.used = false;
                slot.state.msgs.clear();
                slot.state.objs.clear();
                self.free_chans.push(i as u32);
                self.live_chans -= 1;
                self.stats.chans_collected += 1;
            }
        }
        // Adaptive threshold: at least 4096, else twice the surviving set.
        self.gc_threshold = (self.live_chans * 2).max(4096);
    }
}

/// Builtin binary operators over machine words.
pub fn binop(op: BinOp, a: Word, b: Word) -> Result<Word, VmError> {
    use BinOp::*;
    use Word::*;
    Ok(match (op, a, b) {
        (Add, Int(x), Int(y)) => Int(x.wrapping_add(y)),
        (Sub, Int(x), Int(y)) => Int(x.wrapping_sub(y)),
        (Mul, Int(x), Int(y)) => Int(x.wrapping_mul(y)),
        (Div, Int(x), Int(y)) => {
            if y == 0 {
                return Err(VmError::BadOperands("division by zero".into()));
            }
            Int(x.wrapping_div(y))
        }
        (Mod, Int(x), Int(y)) => {
            if y == 0 {
                return Err(VmError::BadOperands("modulo by zero".into()));
            }
            Int(x.wrapping_rem(y))
        }
        (Add, Float(x), Float(y)) => Float(x + y),
        (Sub, Float(x), Float(y)) => Float(x - y),
        (Mul, Float(x), Float(y)) => Float(x * y),
        (Div, Float(x), Float(y)) => Float(x / y),
        (Lt, Int(x), Int(y)) => Bool(x < y),
        (Le, Int(x), Int(y)) => Bool(x <= y),
        (Gt, Int(x), Int(y)) => Bool(x > y),
        (Ge, Int(x), Int(y)) => Bool(x >= y),
        (Lt, Float(x), Float(y)) => Bool(x < y),
        (Le, Float(x), Float(y)) => Bool(x <= y),
        (Gt, Float(x), Float(y)) => Bool(x > y),
        (Ge, Float(x), Float(y)) => Bool(x >= y),
        (Eq, x, y) => Bool(x == y),
        (Ne, x, y) => Bool(x != y),
        (And, Bool(x), Bool(y)) => Bool(x && y),
        (Or, Bool(x), Bool(y)) => Bool(x || y),
        (Concat, Str(x), Str(y)) => {
            let mut s = String::with_capacity(x.len() + y.len());
            s.push_str(&x);
            s.push_str(&y);
            Str(s.into())
        }
        (op, _, _) => return Err(VmError::BadOperands(op.symbol().to_string())),
    })
}

/// Builtin unary operators over machine words.
pub fn unop(op: UnOp, a: Word) -> Result<Word, VmError> {
    match (op, a) {
        (UnOp::Neg, Word::Int(i)) => Ok(Word::Int(i.wrapping_neg())),
        (UnOp::Neg, Word::Float(x)) => Ok(Word::Float(-x)),
        (UnOp::Not, Word::Bool(b)) => Ok(Word::Bool(!b)),
        (op, _) => Err(VmError::BadOperands(op.symbol().to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::LoopbackPort;

    fn machine(src: &str) -> Machine<LoopbackPort> {
        Machine::from_source(src, LoopbackPort::new("main")).expect("compiles")
    }

    #[test]
    fn export_table_is_stable_and_bijective() {
        let mut t = ExportTable::default();
        let a = t.export_chan(3);
        let b = t.export_chan(9);
        assert_ne!(a, b);
        assert_eq!(t.export_chan(3), a, "re-export returns the same heap id");
        assert_eq!(t.resolve_chan(a), Some(3));
        assert_eq!(t.resolve_chan(b), Some(9));
        assert_eq!(t.resolve_chan(999), None);
        let c = t.export_class(ClassRefW { group: 1, index: 0 });
        assert_eq!(t.resolve_class(c), Some(ClassRefW { group: 1, index: 0 }));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn stale_export_id_in_delivered_msg_is_bad_heap_id() {
        // A message addressed to a heap id this site never exported (e.g.
        // a peer holding a reference from a previous incarnation) must
        // surface as a protocol error, not a silent drop or a panic.
        let mut m = machine("new x (x![1] | x?(v) = 0)");
        m.run_to_quiescence(10_000).unwrap();
        m.port.inject(Incoming::Msg {
            dest: 777,
            label: "ping".into(),
            args: vec![WireWord::Int(1)],
        });
        assert!(matches!(
            m.run_to_quiescence(10_000),
            Err(VmError::BadHeapId(777))
        ));
    }

    #[test]
    fn outgoing_incoming_translation_roundtrip() {
        let mut m = machine("new x (x![1] | x?(v) = 0)");
        m.run_to_quiescence(10_000).unwrap();
        // A local channel leaves as a NetChan with our identity and comes
        // back as the same local channel.
        let w = m.outgoing(Word::Chan(0));
        match &w {
            WireWord::Chan(r) => assert_eq!(r.site, m.port.identity().site),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(m.incoming_word(w).unwrap(), Word::Chan(0));
        // Foreign references pass through untranslated.
        let foreign = NetRef {
            heap_id: 7,
            site: SiteId(42),
            node: NodeId(42),
        };
        assert_eq!(
            m.incoming_word(WireWord::Chan(foreign)).unwrap(),
            Word::NetChan(foreign)
        );
        // Unknown heap ids are protocol errors.
        let bogus = NetRef {
            heap_id: 1234,
            site: m.port.identity().site,
            node: NodeId(0),
        };
        assert!(matches!(
            m.incoming_word(WireWord::Chan(bogus)),
            Err(VmError::BadHeapId(1234))
        ));
    }

    #[test]
    fn gc_keeps_exported_channels_alive() {
        let mut m = machine("export new p in 0");
        m.run_to_quiescence(10_000).unwrap();
        let live_before = m.live_channels();
        m.gc();
        assert_eq!(
            m.live_channels(),
            live_before,
            "exported channel is a GC root even with no local references"
        );
    }

    #[test]
    fn gc_scans_channel_queues_transitively() {
        // An EXPORTED holder channel parks a message whose argument is the
        // only reference to another channel: reachability flows export →
        // holder → queued message → keep, so both survive.
        let mut m = machine("new keep (export new holder in (holder![keep] | keep?(v) = 0))");
        m.run_to_quiescence(10_000).unwrap();
        assert_eq!(m.live_channels(), 2);
        m.gc();
        assert_eq!(m.live_channels(), 2);

        // Without any root, the same configuration is unreachable: the
        // parked message can never be consumed, so both channels are
        // garbage.
        let mut m = machine("new keep new holder (holder![keep] | keep?(v) = 0)");
        m.run_to_quiescence(10_000).unwrap();
        assert_eq!(m.live_channels(), 2);
        m.gc();
        assert_eq!(m.live_channels(), 0);
    }

    #[test]
    fn remote_message_with_wrong_arity_is_dynamic_error() {
        // Deliver a malformed incoming message directly (as a buggy or
        // malicious peer would): the dynamic check fires at rendez-vous.
        let mut m = machine("export new p in p?{ go(a, b) = 0 }");
        m.run_to_quiescence(10_000).unwrap();
        m.port.inject(crate::port::Incoming::Msg {
            dest: 0,
            label: "go".to_string(),
            args: vec![WireWord::Int(1)], // expects two
        });
        let err = m.run_to_quiescence(10_000).unwrap_err();
        assert!(matches!(err, VmError::Arity { .. }), "{err}");
    }

    #[test]
    fn binop_string_and_mixed_errors() {
        assert!(binop(BinOp::Add, Word::Int(1), Word::Bool(true)).is_err());
        assert!(binop(BinOp::Concat, Word::Int(1), Word::Str("x".into())).is_err());
        assert!(binop(BinOp::Lt, Word::Str("a".into()), Word::Str("b".into())).is_err());
        assert_eq!(
            binop(
                BinOp::Concat,
                Word::Str("ab".into()),
                Word::Str("cd".into())
            )
            .unwrap(),
            Word::Str("abcd".into())
        );
        assert_eq!(
            binop(BinOp::Eq, Word::Unit, Word::Unit).unwrap(),
            Word::Bool(true)
        );
    }

    #[test]
    fn lifo_policy_changes_execution_order_not_result() {
        let run = |policy: QueuePolicy| {
            let mut m = machine("print(1) | print(2) | print(3)");
            m.queue_policy = policy;
            m.run_to_quiescence(10_000).unwrap();
            m.io
        };
        let mut fifo = run(QueuePolicy::Fifo);
        let mut lifo = run(QueuePolicy::Lifo);
        assert_ne!(fifo, lifo, "order differs under LIFO");
        fifo.sort();
        lifo.sort();
        assert_eq!(fifo, lifo, "multiset identical");
    }

    #[test]
    fn frame_slot_zero_holds_class_word_in_class_bodies() {
        let mut m = machine("def K(n) = if n > 0 then K[n - 1] else print(n) in K[2]");
        m.run_to_quiescence(10_000).unwrap();
        assert_eq!(m.io, vec!["0".to_string()]);
        assert_eq!(m.stats.inst, 3);
    }
}
