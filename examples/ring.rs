//! A token ring across the sites of a multi-node cluster: classic stress
//! of point-to-point switching (§5: "switches are quite efficient at
//! point-to-point communication").
//!
//! Each site exports a channel, imports its successor's channel, and
//! forwards a decrementing token; the site holding the token when it hits
//! zero reports.
//!
//! ```sh
//! cargo run --example ring             # 4 sites, 100 hops
//! cargo run --example ring -- 8 1000  # 8 sites, 1000 hops
//! ```

use ditico::{Env, FabricMode, LinkProfile, Topology};

fn main() {
    let sites: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let hops: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100);

    let mut env = Env::new(Topology {
        nodes: sites,
        mode: FabricMode::Virtual,
        link: LinkProfile::myrinet(),
        ns_replicas: 1,
    });

    for i in 0..sites {
        let me = format!("s{i}");
        let next = format!("s{}", (i + 1) % sites);
        // DiTyCO imports are by the exporter's name (no renaming), so each
        // site exports a uniquely named slot and imports its successor's.
        let my_slot = format!("slot{i}");
        let next_slot = format!("slot{}", (i + 1) % sites);
        // Site 0 additionally injects the initial token.
        let inject = if i == 0 {
            format!("| {my_slot}!token[{hops}]")
        } else {
            String::new()
        };
        let src = format!(
            r#"
            export new {my_slot} in
            import {next_slot} from {next} in (
                def Fwd(self) =
                    self ? {{
                        token(n) =
                            (if n > 0 then {next_slot}!token[n - 1]
                             else println("token died here after {hops} hops"))
                            | Fwd[self]
                    }}
                in Fwd[{my_slot}]
                {inject}
            )
            "#
        );
        env = env.site_on(i, &me, &src).expect("site compiles");
    }

    let report = env.run().expect("ring runs");
    for i in 0..sites {
        let lines = report.output(&format!("s{i}"));
        if !lines.is_empty() {
            println!("site s{i}: {}", lines.join("; "));
        }
    }
    let shipped: u64 = report.stats.values().map(|s| s.msgs_sent).sum();
    println!();
    println!("hops shipped over the fabric: {shipped}");
    println!(
        "virtual time: {} µs  (≈ {} µs/hop on a 9 µs-latency switch)",
        report.virtual_ns / 1_000,
        report.virtual_ns / 1_000 / hops.max(1)
    );
}
