//! Determinism and soak coverage for the chaos harness: the same seed and
//! plan must replay the same fault schedule bit for bit on the virtual
//! fabric, and seeded partition/heal/kill/restart churn must never panic,
//! hang, or crash a site.

use ditico::tyco_vm::word::NodeId;
use ditico::{ChaosEvent, ChaosPlan, ChaosSpec, Env, FabricMode, LinkProfile, Topology};

const SRV: &str = "def Srv(p) = p?{ val(x, a) = a![x] | Srv[p] } in export new p in Srv[p]";
const CLIENT: &str = r#"
    import p from server in
    def Loop(n) =
        if n > 0 then new a (p!val[n, a] | a?(v) = Loop[n - 1]) else println("done")
    in Loop[40]
"#;

/// One chaotic client/server run, collapsed to a canonical fingerprint:
/// every observable the report carries, in a fixed order. Two runs with
/// the same plan must produce the same string, byte for byte.
fn fingerprint(plan: ChaosPlan) -> String {
    let report = Env::new(Topology {
        nodes: 2,
        mode: FabricMode::Virtual,
        link: LinkProfile::fast_ethernet(),
        ns_replicas: 1,
    })
    .site("server", SRV)
    .expect("server compiles")
    .site("client", CLIENT)
    .expect("client compiles")
    .chaos(plan)
    .run()
    .expect("run starts");
    if let Some((site, err)) = report.errors.first() {
        panic!("chaos must degrade, not crash: [{site}] {err}");
    }
    let c = report.chaos.expect("chaos report recorded");
    format!(
        "out={:?} instrs={} pkts={} bytes={} vns={} quiescent={} \
         dropped={} dup={} delayed={} pdrops={} parts={} heals={} kills={} restarts={}",
        report.output("client"),
        report.total_instrs,
        report.fabric_packets,
        report.fabric_bytes,
        report.virtual_ns,
        report.quiescent,
        c.dropped,
        c.duplicated,
        c.delayed,
        c.partition_drops,
        c.partitions,
        c.heals,
        c.kills,
        c.restarts
    )
}

fn faulty_spec(seed: u64) -> ChaosSpec {
    let mut spec = ChaosSpec::quiet(seed);
    spec.drop_per_mille = 60;
    spec.dup_per_mille = 40;
    spec.delay_per_mille = 40;
    spec.delay_ns = 500_000;
    spec
}

/// The undisturbed run's length, used to place structural events at
/// meaningful fractions of the run instead of guessed absolute times.
fn baseline_ns() -> u64 {
    let quiet = fingerprint(ChaosPlan::new(ChaosSpec::quiet(0)));
    let vns: u64 = quiet
        .split(" vns=")
        .nth(1)
        .and_then(|s| s.split(' ').next())
        .and_then(|s| s.parse().ok())
        .expect("fingerprint carries vns");
    assert!(vns > 0, "remote traffic takes virtual time");
    vns
}

#[test]
fn same_seed_and_plan_replay_identically() {
    let v = baseline_ns();
    let plan = || {
        ChaosPlan::new(faulty_spec(42))
            .at(
                v / 4,
                ChaosEvent::Partition {
                    a: vec![NodeId(0)],
                    b: vec![NodeId(1)],
                },
            )
            .at(v / 2, ChaosEvent::Heal)
    };
    let first = fingerprint(plan());
    for i in 0..11 {
        assert_eq!(fingerprint(plan()), first, "iteration {i} diverged");
    }
    assert!(
        first.contains("parts=1") && first.contains("heals=1"),
        "the structural events fired: {first}"
    );
}

#[test]
fn different_seeds_draw_different_schedules() {
    let a = fingerprint(ChaosPlan::new(faulty_spec(1)));
    let b = fingerprint(ChaosPlan::new(faulty_spec(2)));
    assert_ne!(a, b, "independent seeds hit the same fault schedule");
}

#[test]
fn quiet_plan_is_a_no_op() {
    let quiet = fingerprint(ChaosPlan::new(ChaosSpec::quiet(7)));
    assert!(
        quiet.contains("out=[\"done\"]"),
        "no faults, full run: {quiet}"
    );
    assert!(
        quiet.ends_with("dropped=0 dup=0 delayed=0 pdrops=0 parts=0 heals=0 kills=0 restarts=0")
    );
}

/// Sharded-name-service programs for the drop regression below: the
/// server re-exports `p` after the client's kick, so a single run
/// exercises every name-service control packet — registers, imports,
/// lease grants, the epoch-bump invalidation, and follower replication.
const NS_SRV: &str = r#"
    import ack from nsclient in
    export new kick in
    export new q in (
        (q?(r) = r![1])
        | (kick?() = export new q in (ack![] | (q?(r2) = r2![2])))
    )
"#;
const NS_CLIENT: &str = r#"
    export new ack in
    import q from nsserver in
    import kick from nsserver in
    new a (q![a] | a?(x) = (
        print(x)
        | kick![]
        | ack?() = import q from nsserver in new b (q![b] | b?(y) = print(y))
    ))
"#;

/// Satellite regression: lease grants, invalidations, and replication
/// records ride the same chaotic fabric as application packets, so each
/// chaos-dropped (or duplicated) control packet must be
/// Mattern-compensated at the injection point — otherwise the
/// termination wave never balances and a run under drop rates hangs
/// instead of winding down. Every seed is also replayed once, keeping
/// the sharded path inside the determinism gate.
#[test]
fn sharded_name_service_drops_are_termination_compensated() {
    let run = |seed: u64| {
        let report = Env::new(Topology {
            nodes: 4,
            mode: FabricMode::Virtual,
            link: LinkProfile::fast_ethernet(),
            ns_replicas: 1,
        })
        .ns_shards(4, 50)
        .site_on(0, "nsserver", NS_SRV)
        .expect("server compiles")
        .site_on(3, "nsclient", NS_CLIENT)
        .expect("client compiles")
        .chaos(ChaosPlan::new(faulty_spec(seed)))
        .run()
        .expect("run starts");
        if let Some((site, err)) = report.errors.first() {
            panic!("seed {seed}: chaos must degrade, not crash: [{site}] {err}");
        }
        let ns = report.ns_totals();
        let c = report.chaos.expect("chaos report recorded");
        let faults = c.dropped + c.duplicated;
        let fp = format!(
            "out={:?} pkts={} vns={} dropped={} dup={} delayed={} ns={ns:?}",
            report.output("nsclient"),
            report.fabric_packets,
            report.virtual_ns,
            c.dropped,
            c.duplicated,
            c.delayed,
        );
        (fp, faults, ns)
    };
    let (mut faults, mut registers, mut misses) = (0, 0, 0);
    for seed in 0..10u64 {
        let (first, f, ns) = run(seed);
        let (second, _, _) = run(seed);
        assert_eq!(first, second, "seed {seed} did not replay");
        faults += f;
        registers += ns.registers;
        misses += ns.lease_misses;
    }
    assert!(faults > 0, "the fault die never fired across ten seeds");
    assert!(registers >= 30, "the sharded path was engaged: {registers}");
    assert!(misses > 0, "imports crossed the wire under chaos");
}

/// Seeded churn soak: partition, heal, and a daemon restart in every run,
/// across many seeds, each replayed once. No panics, no hangs, no site
/// crashes, and every replay is byte-identical. (The larger 100+ round
/// soak runs in `bench chaos --soak`; this keeps the same machinery
/// honest under plain `cargo test`.)
#[test]
fn seeded_churn_soak_replays_cleanly() {
    let v = baseline_ns();
    for seed in 0..20u64 {
        let plan = || {
            ChaosPlan::new(faulty_spec(seed))
                .at(
                    v / 3,
                    ChaosEvent::Partition {
                        a: vec![NodeId(0)],
                        b: vec![NodeId(1)],
                    },
                )
                .at(v / 2, ChaosEvent::Heal)
                .at(2 * v / 3, ChaosEvent::RestartNode(NodeId(1)))
        };
        let first = fingerprint(plan());
        let second = fingerprint(plan());
        assert_eq!(first, second, "seed {seed} did not replay");
        assert!(first.contains("restarts=1"), "seed {seed}: {first}");
    }
}
