//! Cross-shard name resolution on the sharded, lease-cached name service.
//!
//! Four nodes, the name space consistent-hashed over four shard owners:
//! two servers export channels from different nodes, three clients spread
//! over the cluster import and call them. The two clients that share a
//! node demonstrate the lease cache — the second resolve of `clock` never
//! leaves the node.
//!
//! ```sh
//! cargo run --example name_service
//! ```

use ditico::{Env, FabricMode, LinkProfile, Topology};

fn main() {
    let report = Env::new(Topology {
        nodes: 4,
        mode: FabricMode::Virtual,
        link: LinkProfile::myrinet(),
        ns_replicas: 1,
    })
    // Shard the name service across all four nodes; importers hold
    // resolved bindings under a 50 ms lease.
    .ns_shards(4, 50)
    .site_on(
        0,
        "registry",
        r#"
        def Reg(s) = s?{ get(k, r) = r![k * 10] | Reg[s] }
        in export new lookup in Reg[lookup]
        "#,
    )
    .expect("registry compiles")
    .site_on(
        1,
        "timesvc",
        r#"
        def Clk(s, t) = s?{ now(r) = (r![t] | Clk[s, t + 1]) }
        in export new clock in Clk[clock, 100]
        "#,
    )
    .expect("timesvc compiles")
    .site_on(
        2,
        "alpha",
        r#"
        import lookup from registry in
        new r (lookup!get[4, r] | r?(v) = println("alpha got", v))
        "#,
    )
    .expect("alpha compiles")
    .site_on(
        3,
        "beta",
        r#"
        import clock from timesvc in
        new r (clock!now[r] | r?(t) = (println("beta t =", t) | import go from gamma in go![]))
        "#,
    )
    .expect("beta compiles")
    // Gamma shares beta's node and resolves the same binding after beta
    // (beta rings gamma's trigger when done): a node-cache lease hit.
    .site_on(
        3,
        "gamma",
        r#"
        export new go in
        go?() = import clock from timesvc in
                new r (clock!now[r] | r?(t) = println("gamma t =", t))
        "#,
    )
    .expect("gamma compiles")
    .run()
    .expect("runs");

    for site in ["alpha", "beta", "gamma"] {
        for line in report.output(site) {
            println!("[{site}] {line}");
        }
    }
    let ns = report.ns_totals();
    println!(
        "\nname service: {} registers, {} resolved, {} lease hits / {} misses, \
         repl {} shipped / {} applied",
        ns.registers, ns.resolved, ns.lease_hits, ns.lease_misses, ns.repl_shipped, ns.repl_applied
    );
    assert!(ns.lease_hits >= 1, "gamma's repeat resolve stays on-node");
    assert!(ns.repl_shipped >= 1, "every bind replicates to a follower");
    println!("gamma's repeat import of `clock` was served from its node's lease cache.");
}
