//! The SETI@home-style example of §4: a client downloads the `Install`
//! class from the SETI site once; thereafter the `Go` loop runs *at the
//! client*, pulling data chunks from the server's database and crunching
//! them locally.
//!
//! ```sh
//! cargo run --example seti            # 1 worker
//! cargo run --example seti -- 4      # 4 workers
//! ```

use ditico::{Env, FabricMode, LinkProfile, RunLimits, Topology};

fn main() {
    let workers: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1);

    let mut env = Env::new(Topology {
        nodes: workers + 1,
        mode: FabricMode::Virtual,
        link: LinkProfile::fast_ethernet(),
        ns_replicas: 1,
    })
    .site_on(
        0,
        "seti",
        r#"
        new database (
            export def Install() = println("worker installed") | Go[]
            and Go() =
                let data = database!newChunk[] in
                // (process) — the number crunching happens at the worker.
                (println("processed chunk", data) | Go[])
            in
            def Database(self, next) =
                self ? { newChunk(replyTo) = replyTo![next] | Database[self, next + 1] }
            in Database[database, 0]
        )
        "#,
    )
    .expect("seti site compiles");

    for w in 0..workers {
        env = env
            .site_on(
                w + 1,
                &format!("worker{w}"),
                "import Install from seti in Install[]",
            )
            .expect("worker compiles");
    }

    // The Go loop runs forever; bound the run.
    let mut built = env.build().expect("links check");
    let report = built.run_deterministic(RunLimits {
        max_instrs: 400_000,
        fuel_per_slice: 512,
        ..RunLimits::default()
    });

    for w in 0..workers {
        let lexeme = format!("worker{w}");
        let lines = report.output(&lexeme);
        println!(
            "{lexeme}: {} lines (first: {:?}, last: {:?})",
            lines.len(),
            lines.first(),
            lines.last()
        );
    }
    let seti = &report.stats["seti"];
    println!();
    println!(
        "SETI site served {} class download(s) — one per worker",
        seti.fetches_served
    );
    println!(
        "chunks served: {} (each one SHIPM request + SHIPM reply over the fabric)",
        seti.comm
    );
    println!(
        "fabric: {} packets, {} bytes, virtual time {} ms",
        report.fabric_packets,
        report.fabric_bytes,
        report.virtual_ns / 1_000_000
    );
}
