//! Experiment C2 — latency hiding through fast context switches.
//!
//! §1/§5/§7: *"the fine-grained, pervasive concurrency in our model allows
//! us to effectively hide the existing communication latency by performing
//! fast context switches to other, non-blocked, threads."*
//!
//! Workload: a fixed total of 96 RPCs from client to server, split into
//! `width` independent chains. With width=1 every RPC waits a full round
//! trip; with more chains the VM switches to another runnable thread while
//! a reply is in flight, so the virtual completion time falls towards the
//! bandwidth/server-bound floor. The effect grows with link latency.
//!
//! Ablation A3 (queue policy): FIFO vs LIFO run-queue under width=8.

use criterion::{criterion_group, criterion_main, Criterion};
use ditico::{Env, FabricMode, LinkProfile, RunLimits, Topology};
use ditico_bench::{pipelined_client, ECHO_SERVER};
use tyco_vm::QueuePolicy;

const TOTAL_RPCS: u64 = 96;

fn run_width(link: LinkProfile, width: u64, policy: QueuePolicy) -> u64 {
    let mut built = Env::new(Topology {
        nodes: 2,
        mode: FabricMode::Virtual,
        link,
        ns_replicas: 1,
    })
    .site_on(0, "server", ECHO_SERVER)
    .unwrap()
    .site_on(1, "client", &pipelined_client(TOTAL_RPCS, width))
    .unwrap()
    .build()
    .unwrap();
    built.cluster.set_queue_policy(policy);
    let report = built.run_deterministic(RunLimits::default());
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    let chains = report
        .output("client")
        .iter()
        .filter(|l| l.starts_with("chain"))
        .count();
    assert_eq!(chains as u64, width, "all chains completed");
    report.virtual_ns
}

fn latency_hiding_table() {
    println!("\n=== C2: virtual completion time (µs) of {TOTAL_RPCS} RPCs vs concurrency ===");
    println!(
        "{:>18} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "link \\ width", 1, 2, 4, 8, 16
    );
    for (name, link) in [
        ("myrinet (9µs)", LinkProfile::myrinet()),
        ("ethernet (70µs)", LinkProfile::fast_ethernet()),
        ("wan (20ms)", LinkProfile::wan()),
    ] {
        let mut row = format!("{name:>18}");
        for width in [1u64, 2, 4, 8, 16] {
            let t = run_width(link, width, QueuePolicy::Fifo);
            row.push_str(&format!(" {:>9}", t / 1_000));
        }
        println!("{row}");
    }
    println!("(claim: more runnable threads ⇒ latency overlapped ⇒ near-linear drop,");
    println!(" and the benefit grows with link latency)");

    println!("\n--- A3 ablation: run-queue policy at width=8, ethernet ---");
    let fifo = run_width(LinkProfile::fast_ethernet(), 8, QueuePolicy::Fifo);
    let lifo = run_width(LinkProfile::fast_ethernet(), 8, QueuePolicy::Lifo);
    println!("fifo: {} µs   lifo: {} µs", fifo / 1_000, lifo / 1_000);
}

fn sanity_assertions() {
    // The headline shape: on a high-latency link, width=8 must beat
    // width=1 by a wide margin.
    let seq = run_width(LinkProfile::wan(), 1, QueuePolicy::Fifo);
    let wide = run_width(LinkProfile::wan(), 8, QueuePolicy::Fifo);
    assert!(
        wide * 4 < seq,
        "latency hiding must give ≥4x at width 8 on WAN: seq={seq} wide={wide}"
    );
}

fn bench_latency_hiding(c: &mut Criterion) {
    latency_hiding_table();
    sanity_assertions();

    // Criterion: real scheduler cost of the width-8 run (virtual fabric).
    let mut group = c.benchmark_group("c2_scheduler_cost");
    group.sample_size(10);
    for width in [1u64, 8] {
        group.bench_function(format!("width_{width}"), |b| {
            b.iter(|| run_width(LinkProfile::myrinet(), width, QueuePolicy::Fifo));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_latency_hiding);
criterion_main!(benches);
