//! Token set of the DiTyCO concrete syntax.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Identifiers and literals.
    /// Lower-case-initial identifier: names, labels, sites.
    LowerId(String),
    /// Upper-case-initial identifier: class variables.
    UpperId(String),
    Int(i64),
    Float(f64),
    Str(String),

    // Keywords.
    KwNew,
    KwDef,
    KwAnd,
    KwIn,
    KwExport,
    KwImport,
    KwFrom,
    KwIf,
    KwThen,
    KwElse,
    KwLet,
    KwTrue,
    KwFalse,
    KwPrint,
    KwPrintln,
    KwUnit,
    KwNot,

    // Punctuation.
    Bang,     // !
    Query,    // ?
    LBracket, // [
    RBracket, // ]
    LParen,   // (
    RParen,   // )
    LBrace,   // {
    RBrace,   // }
    Assign,   // =
    Comma,    // ,
    Bar,      // |
    Dot,      // .

    // Operators (expressions).
    Plus,
    Minus,
    StarOp,
    Slash,
    Percent,
    Caret, // string concatenation
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,

    /// End of input.
    Eof,
}

impl Tok {
    /// Keyword lookup for an identifier lexeme; `None` when it is a plain
    /// identifier.
    pub fn keyword(s: &str) -> Option<Tok> {
        Some(match s {
            "new" => Tok::KwNew,
            "def" => Tok::KwDef,
            "and" => Tok::KwAnd,
            "in" => Tok::KwIn,
            "export" => Tok::KwExport,
            "import" => Tok::KwImport,
            "from" => Tok::KwFrom,
            "if" => Tok::KwIf,
            "then" => Tok::KwThen,
            "else" => Tok::KwElse,
            "let" => Tok::KwLet,
            "true" => Tok::KwTrue,
            "false" => Tok::KwFalse,
            "print" => Tok::KwPrint,
            "println" => Tok::KwPrintln,
            "unit" => Tok::KwUnit,
            "not" => Tok::KwNot,
            _ => return None,
        })
    }

    /// A short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            Tok::LowerId(s) => format!("identifier `{s}`"),
            Tok::UpperId(s) => format!("class variable `{s}`"),
            Tok::Int(i) => format!("integer `{i}`"),
            Tok::Float(x) => format!("float `{x}`"),
            Tok::Str(s) => format!("string {s:?}"),
            Tok::Eof => "end of input".to_string(),
            other => format!("`{}`", other.lexeme()),
        }
    }

    /// The concrete lexeme for fixed tokens (empty for variable ones).
    pub fn lexeme(&self) -> &'static str {
        match self {
            Tok::KwNew => "new",
            Tok::KwDef => "def",
            Tok::KwAnd => "and",
            Tok::KwIn => "in",
            Tok::KwExport => "export",
            Tok::KwImport => "import",
            Tok::KwFrom => "from",
            Tok::KwIf => "if",
            Tok::KwThen => "then",
            Tok::KwElse => "else",
            Tok::KwLet => "let",
            Tok::KwTrue => "true",
            Tok::KwFalse => "false",
            Tok::KwPrint => "print",
            Tok::KwPrintln => "println",
            Tok::KwUnit => "unit",
            Tok::KwNot => "not",
            Tok::Bang => "!",
            Tok::Query => "?",
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::Assign => "=",
            Tok::Comma => ",",
            Tok::Bar => "|",
            Tok::Dot => ".",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::StarOp => "*",
            Tok::Slash => "/",
            Tok::Percent => "%",
            Tok::Caret => "^",
            Tok::EqEq => "==",
            Tok::NotEq => "!=",
            Tok::Lt => "<",
            Tok::Le => "<=",
            Tok::Gt => ">",
            Tok::Ge => ">=",
            Tok::AndAnd => "&&",
            Tok::OrOr => "||",
            _ => "",
        }
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}
