//! Offline stand-in for the `rand` crate.
//!
//! Provides a deterministic, seedable `StdRng` (splitmix64 core) and the
//! `Rng::gen_range` / `SeedableRng::seed_from_u64` entry points the
//! workspace uses. Not cryptographic; stream differs from upstream rand,
//! which is fine — all users seed explicitly and only need reproducible
//! uniform choices.

pub mod rngs {
    /// Deterministic 64-bit generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> rngs::StdRng {
        rngs::StdRng { state: seed }
    }
}

mod private {
    pub trait RngCore {
        fn next_u64(&mut self) -> u64;
    }
}

impl private::RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        rngs::StdRng::next_u64(self)
    }
}

/// Uniform sampling over half-open / inclusive integer ranges and f64.
pub trait SampleRange<T> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((next)() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((next)() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> f64 {
        let unit = ((next)() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

pub trait Rng: private::RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut next = || self.next_u64();
        range.sample(&mut next)
    }

    #[allow(clippy::wrong_self_convention)]
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: private::RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_bounds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.gen_range(0..17usize);
            let y = b.gen_range(0..17usize);
            assert_eq!(x, y);
            assert!(x < 17);
        }
        let f = a.gen_range(1.0e6f64..1.0e9);
        assert!((1.0e6..1.0e9).contains(&f));
        let s = a.gen_range(-5i64..=5);
        assert!((-5..=5).contains(&s));
    }
}
