//! Desugaring pass.
//!
//! The parser already normalizes `x![ẽ]` and `x?(ỹ)=P` to the explicit
//! `val`-labelled forms; the only remaining sugar is the synchronous-call
//! form from §4 of the paper:
//!
//! ```text
//! let z = a!l[ẽ] in P   ⇒   new r in (a!l[ẽ, r] | r?{ val(z) = P })
//! ```
//!
//! where `r` is fresh: it must not occur free in `P`, in the arguments, or
//! equal the subject of the call.

use crate::ast::*;
use crate::pos::Span;
use std::collections::BTreeSet;

/// Eliminate all `let` sugar from a process, recursively.
pub fn desugar(p: Proc) -> Proc {
    match p {
        Proc::Nil => Proc::Nil,
        Proc::Par(ps) => Proc::par(ps.into_iter().map(desugar)),
        Proc::New {
            binders,
            body,
            span,
        } => Proc::New {
            binders,
            body: Box::new(desugar(*body)),
            span,
        },
        Proc::ExportNew {
            binders,
            body,
            span,
        } => Proc::ExportNew {
            binders,
            body: Box::new(desugar(*body)),
            span,
        },
        Proc::Msg { .. } | Proc::Print { .. } => p,
        Proc::Obj {
            target,
            methods,
            span,
        } => Proc::Obj {
            target,
            methods: methods
                .into_iter()
                .map(|m| Method {
                    body: desugar(m.body),
                    ..m
                })
                .collect(),
            span,
        },
        Proc::Inst { .. } => p,
        Proc::Def { defs, body, span } => Proc::Def {
            defs: defs
                .into_iter()
                .map(|d| ClassDef {
                    body: desugar(d.body),
                    ..d
                })
                .collect(),
            body: Box::new(desugar(*body)),
            span,
        },
        Proc::ExportDef { defs, body, span } => Proc::ExportDef {
            defs: defs
                .into_iter()
                .map(|d| ClassDef {
                    body: desugar(d.body),
                    ..d
                })
                .collect(),
            body: Box::new(desugar(*body)),
            span,
        },
        Proc::ImportName {
            name,
            site,
            body,
            span,
        } => Proc::ImportName {
            name,
            site,
            body: Box::new(desugar(*body)),
            span,
        },
        Proc::ImportClass {
            class,
            site,
            body,
            span,
        } => Proc::ImportClass {
            class,
            site,
            body: Box::new(desugar(*body)),
            span,
        },
        Proc::If {
            cond,
            then_branch,
            else_branch,
            span,
        } => Proc::If {
            cond,
            then_branch: Box::new(desugar(*then_branch)),
            else_branch: Box::new(desugar(*else_branch)),
            span,
        },
        Proc::Let {
            binder,
            target,
            label,
            mut args,
            body,
            span,
        } => {
            let body = desugar(*body);
            // Compute the set of names the fresh reply channel must avoid.
            let mut avoid: BTreeSet<Ident> = body.free_names();
            avoid.insert(binder.clone());
            for a in &args {
                a.free_names_into(&mut avoid);
            }
            if let NameRef::Plain(x) = &target {
                avoid.insert(x.clone());
            }
            let reply = fresh_name("reply", &avoid);
            args.push(Expr::Name(NameRef::Plain(reply.clone())));
            let call = Proc::Msg {
                target,
                label,
                args,
                span,
            };
            let receiver = Proc::Obj {
                target: NameRef::Plain(reply.clone()),
                methods: vec![Method {
                    label: VAL_LABEL.to_string(),
                    params: vec![binder],
                    body,
                    span: Span::synthetic(),
                }],
                span: Span::synthetic(),
            };
            Proc::New {
                binders: vec![reply],
                body: Box::new(Proc::par([call, receiver])),
                span,
            }
        }
    }
}

/// Produce an identifier based on `base` that is not in `avoid`.
pub fn fresh_name(base: &str, avoid: &BTreeSet<Ident>) -> Ident {
    if !avoid.contains(base) {
        return base.to_string();
    }
    for n in 0u64.. {
        let candidate = format!("{base}'{n}");
        if !avoid.contains(&candidate) {
            return candidate;
        }
    }
    unreachable!("u64 exhausted while generating fresh names")
}

/// True when the process contains no remaining sugar.
pub fn is_core(p: &Proc) -> bool {
    match p {
        Proc::Nil | Proc::Msg { .. } | Proc::Inst { .. } | Proc::Print { .. } => true,
        Proc::Par(ps) => ps.iter().all(is_core),
        Proc::New { body, .. }
        | Proc::ExportNew { body, .. }
        | Proc::ImportName { body, .. }
        | Proc::ImportClass { body, .. } => is_core(body),
        Proc::Obj { methods, .. } => methods.iter().all(|m| is_core(&m.body)),
        Proc::Def { defs, body, .. } | Proc::ExportDef { defs, body, .. } => {
            defs.iter().all(|d| is_core(&d.body)) && is_core(body)
        }
        Proc::If {
            then_branch,
            else_branch,
            ..
        } => is_core(then_branch) && is_core(else_branch),
        Proc::Let { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::pretty::pretty;

    #[test]
    fn let_becomes_new_par() {
        let p = parse_program("let data = db!chunk[1] in print(data)").unwrap();
        let d = desugar(p);
        assert!(is_core(&d));
        match &d {
            Proc::New { binders, body, .. } => {
                assert_eq!(binders.len(), 1);
                match &**body {
                    Proc::Par(ps) => {
                        assert_eq!(ps.len(), 2);
                        match &ps[0] {
                            Proc::Msg { label, args, .. } => {
                                assert_eq!(label, "chunk");
                                // Original arg plus the appended reply name.
                                assert_eq!(args.len(), 2);
                                assert_eq!(args[1], Expr::Name(NameRef::Plain(binders[0].clone())));
                            }
                            other => panic!("unexpected: {other:?}"),
                        }
                        assert!(matches!(&ps[1], Proc::Obj { .. }));
                    }
                    other => panic!("unexpected: {other:?}"),
                }
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn fresh_name_avoids_collisions() {
        let p = parse_program("let v = reply!get[] in print(v, reply)").unwrap();
        let d = desugar(p);
        match &d {
            Proc::New { binders, .. } => {
                assert_ne!(binders[0], "reply");
            }
            other => panic!("unexpected: {other:?}"),
        }
        // The desugared form still re-parses.
        let printed = pretty(&d);
        assert_eq!(pretty(&parse_program(&printed).unwrap()), printed);
    }

    #[test]
    fn nested_lets() {
        let p = parse_program("let a = x!f[] in let b = y!g[a] in print(a + b)").unwrap();
        let d = desugar(p);
        assert!(is_core(&d));
    }

    #[test]
    fn desugar_is_identity_on_core() {
        let src = "def C(s) = s?{ m(r) = r![1] } in new x C[x] | x!m[x]";
        let p = parse_program(src).unwrap();
        assert!(is_core(&p));
        assert_eq!(desugar(p.clone()), p);
    }

    #[test]
    fn fresh_name_generator() {
        let mut avoid = BTreeSet::new();
        assert_eq!(fresh_name("r", &avoid), "r");
        avoid.insert("r".to_string());
        assert_eq!(fresh_name("r", &avoid), "r'0");
        avoid.insert("r'0".to_string());
        assert_eq!(fresh_name("r", &avoid), "r'1");
    }
}
