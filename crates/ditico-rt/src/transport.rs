//! Real TCP transport between TyCOd processes.
//!
//! §5 of the paper describes a *network* of per-node daemons exchanging
//! byte-coded messages, objects and class code. The in-process
//! [`fabric`](crate::fabric) models that network's latency; this module
//! is the part that actually crosses a machine boundary: it carries the
//! same encoded [`Packet`](tyco_vm::codec::Packet) stream over TCP with
//! length-prefixed frames (see [`tyco_vm::codec::decode_frame`] for the
//! layout).
//!
//! ## One event loop, not two threads per peer
//!
//! The default backend ([`IoBackend::Event`], implemented in
//! `netloop.rs`) runs **every** listener, peer socket, in-flight dial
//! and timer on a single `tyco-net` thread parked in
//! [`crate::poller::Poller::wait`]: sockets are nonblocking, frame
//! decode is incremental and zero-copy (reads accumulate in a
//! `BytesMut`; payloads reach the daemon as `Bytes` views of the read
//! buffer), writes are vectored and gated on `writable` readiness with
//! explicit backpressure, and heartbeats / reconnect backoff / connect
//! timeouts are deadlines on a timer wheel instead of sleeping threads.
//! Inbound traffic is injected into the in-process fabric, whose
//! delivery path wakes the owning daemon's [`crate::wake::Notify`] and,
//! through it, the M:N scheduler's ready-marking — socket readiness and
//! site readiness share one worker pool and one parking story.
//!
//! The pre-event-loop architecture — a blocking reader thread plus a
//! writer actor per peer — is kept behind [`IoBackend::Threads`] as the
//! measured baseline for `BENCH_transport.json`, exactly like the
//! thread-per-site scheduler baseline it rhymes with. It is fine for the
//! paper's 4-node cluster and falls over at thousands of peers.
//!
//! ## Handshake, liveness, reconnect
//!
//! The first frame on every connection is a [`Packet::Hello`] carrying
//! [`WIRE_VERSION`] and the node ids the sending process hosts; a
//! version mismatch closes the connection. After the handshake the
//! transport beacons every `hb_period` on each live connection, and a
//! [`FailureMonitor`] keyed to *wall-clock* rounds
//! (`elapsed / hb_period`) turns silence into suspicion. Outbound
//! connections reconnect with exponential backoff up to a retry cap;
//! exhausting the cap marks the peer's nodes permanently down. Inbound
//! code images are screened by the byte-code verifier *before* they can
//! be linked — the process boundary is the least trustworthy boundary
//! the runtime has.

use crate::chaos::{ChaosState, Fault};
use crate::daemon::Daemon;
use crate::fabric::{FabricHandle, PacketFabric};
use crate::failure::FailureMonitor;
use crate::wake::{Notify, Wake};
use bytes::{Bytes, BytesMut};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tyco_vm::codec::{self, Packet, CONTROL_NODE, WIRE_VERSION};
use tyco_vm::word::NodeId;

#[cfg(target_os = "linux")]
#[path = "netloop.rs"]
mod netloop;

/// Which I/O architecture carries the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoBackend {
    /// One readiness-driven event loop thread owning every socket and
    /// timer (epoll/poll via `crate::poller`). The default — Linux-only,
    /// because the poller's hand-declared syscall constants are Linux's;
    /// `Transport::start` silently falls back to `Threads` elsewhere.
    #[default]
    Event,
    /// The original thread-per-peer architecture (blocking reader +
    /// writer actor per connection). Kept as the A/B baseline; expect it
    /// to fall over at high peer counts.
    Threads,
}

/// Everything `Transport::start` needs to know about this process's place
/// in the topology and how patient to be with its peers.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Nodes hosted by this process (announced in the handshake).
    pub local_nodes: Vec<NodeId>,
    /// Address to accept peer connections on, if any.
    pub listen: Option<SocketAddr>,
    /// Addresses this process dials out to.
    pub peers: Vec<SocketAddr>,
    /// Serve role: linger until every peer that ever connected is gone
    /// instead of exiting when locally idle.
    pub serve: bool,
    /// Heartbeat emission period; also the failure monitor's round width.
    pub hb_period: Duration,
    /// Heartbeat rounds without progress before a peer node is suspected.
    pub stale_periods: u64,
    /// Consecutive failed connect attempts before an outbound peer is
    /// declared permanently down (a successful connection resets it).
    pub max_retries: u32,
    /// First reconnect delay; doubles per attempt up to `backoff_cap`.
    pub backoff_base: Duration,
    /// Ceiling on the reconnect delay.
    pub backoff_cap: Duration,
    /// How long one connect attempt may stay in flight. Attempts to
    /// different peers are concurrent — a dead peer consuming its full
    /// timeout must never delay a live peer's handshake.
    pub connect_timeout: Duration,
    /// How long a non-serve process must be idle (no runnable sites, no
    /// wire traffic) before it concludes the distributed computation is
    /// over. Must comfortably exceed `hb_period` plus one network RTT.
    pub idle_grace: Duration,
    /// Bounded outbound queue depth per connection (frames beyond it are
    /// dropped and counted, like an overflowing NIC ring).
    pub outbound_cap: usize,
    /// I/O architecture; see [`IoBackend`].
    pub backend: IoBackend,
}

impl Default for TransportConfig {
    fn default() -> TransportConfig {
        TransportConfig {
            local_nodes: Vec::new(),
            listen: None,
            peers: Vec::new(),
            serve: false,
            hb_period: Duration::from_millis(100),
            stale_periods: 5,
            max_retries: 5,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            connect_timeout: Duration::from_millis(500),
            idle_grace: Duration::from_millis(600),
            outbound_cap: 4096,
            backend: IoBackend::Event,
        }
    }
}

/// Parse a `--peers` list: comma-separated socket addresses, each
/// resolved via DNS if needed. Every entry must resolve; the error names
/// the offending entry so a typo fails with a diagnostic, not a panic.
pub fn parse_peer_list(s: &str) -> Result<Vec<SocketAddr>, String> {
    let mut out = Vec::new();
    for part in s.split(',') {
        let part = part.trim();
        if part.is_empty() {
            return Err(format!("empty peer address in list `{s}`"));
        }
        let mut addrs = part
            .to_socket_addrs()
            .map_err(|e| format!("bad peer address `{part}`: {e}"))?;
        match addrs.next() {
            Some(a) => out.push(a),
            None => return Err(format!("peer address `{part}` resolved to nothing")),
        }
    }
    Ok(out)
}

/// Reconnect delay before attempt `attempt` (0-based): exponential from
/// `base`, capped at `cap`.
pub fn backoff_delay(base: Duration, cap: Duration, attempt: u32) -> Duration {
    let mult = 1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX);
    base.checked_mul(mult).unwrap_or(cap).min(cap)
}

/// Wire-level counters, snapshotted into the final `RunReport`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TransportReport {
    /// Frames queued for the wire (data + control).
    pub frames_out: u64,
    /// Frames parsed off the wire (data + control).
    pub frames_in: u64,
    pub bytes_out: u64,
    pub bytes_in: u64,
    /// Data packets routed onto sockets / injected from sockets.
    pub data_out: u64,
    pub data_in: u64,
    pub heartbeats_in: u64,
    /// Inbound packets dropped at the trust boundary (undecodable bytes
    /// or code images that failed static verification).
    pub rejected: u64,
    /// Outbound frames dropped on a full or dead queue, plus inbound
    /// frames addressed to nodes this process does not host.
    pub dropped: u64,
    /// Successful re-establishments of an outbound connection.
    pub reconnects: u64,
    /// Outbound peers declared permanently down (retry cap exhausted).
    pub peers_failed: u64,
    /// Connections dropped during handshake over a wire-version mismatch.
    pub version_mismatches: u64,
    /// High-water mark of any per-connection outbound queue — how deep
    /// backpressure ever got.
    pub outq_hwm: u64,
    /// Flushes parked on `writable` readiness (the socket buffer was
    /// full and the event loop had to wait to finish writing).
    pub flush_stalls: u64,
    /// Outbound packets dropped because every route to the destination
    /// was declared permanently down or departed (subset of `dropped`).
    pub dropped_perma: u64,
}

#[derive(Debug, Default)]
pub(crate) struct Stats {
    pub(crate) frames_out: AtomicU64,
    pub(crate) frames_in: AtomicU64,
    pub(crate) bytes_out: AtomicU64,
    pub(crate) bytes_in: AtomicU64,
    pub(crate) data_out: AtomicU64,
    pub(crate) data_in: AtomicU64,
    pub(crate) heartbeats_in: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) dropped: AtomicU64,
    pub(crate) reconnects: AtomicU64,
    pub(crate) peers_failed: AtomicU64,
    pub(crate) version_mismatches: AtomicU64,
    pub(crate) outq_hwm: AtomicU64,
    pub(crate) flush_stalls: AtomicU64,
    pub(crate) dropped_perma: AtomicU64,
}

/// Bounded MPSC of ready-to-write frame buffers. The threaded backend's
/// writer blocks on the condvar; the event loop never waits — it drains
/// opportunistically ([`OutQueue::try_drain`]) when woken.
struct OutQueue {
    state: Mutex<OutState>,
    cond: Condvar,
    cap: usize,
}

struct OutState {
    items: VecDeque<Bytes>,
    closed: bool,
}

impl OutQueue {
    fn new(cap: usize) -> OutQueue {
        OutQueue {
            state: Mutex::new(OutState {
                items: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
            cap,
        }
    }

    /// Enqueue a buffer; `Some(depth)` is the queue length after the
    /// push (the caller records the high-water mark), `None` (caller
    /// counts a drop) means the queue is full or the connection died.
    fn push(&self, b: Bytes) -> Option<usize> {
        let mut s = self.state.lock();
        if s.closed || s.items.len() >= self.cap {
            return None;
        }
        s.items.push_back(b);
        let depth = s.items.len();
        drop(s);
        self.cond.notify_one();
        Some(depth)
    }

    /// Move the whole backlog into `out`, waiting up to `timeout` for the
    /// first item. Returns `false` once the queue is closed and drained.
    fn drain_wait(&self, out: &mut Vec<Bytes>, timeout: Duration) -> bool {
        let mut s = self.state.lock();
        if s.items.is_empty() && !s.closed {
            self.cond.wait_for(&mut s, timeout);
        }
        out.extend(s.items.drain(..));
        !(s.closed && out.is_empty())
    }

    /// Nonblocking drain for the event loop.
    fn try_drain(&self, out: &mut Vec<Bytes>) {
        let mut s = self.state.lock();
        out.extend(s.items.drain(..));
    }

    fn close(&self) {
        self.state.lock().closed = true;
        self.cond.notify_one();
    }
}

/// One live connection to a peer process.
struct PeerConn {
    out: OutQueue,
    alive: AtomicBool,
    /// Accepted (inbound) connections; their death means the peer left.
    accepted: bool,
    /// Node ids the peer announced in its handshake.
    nodes: Mutex<Vec<NodeId>>,
    /// Event-loop slot token (+2 offset; 0 = not owned by the loop).
    token: AtomicUsize,
    /// Dedup flag for the event loop's dirty list: raised by the first
    /// producer to queue onto an idle connection, cleared by the loop
    /// before it drains.
    dirty: AtomicBool,
}

impl PeerConn {
    fn new(cap: usize, accepted: bool) -> Arc<PeerConn> {
        Arc::new(PeerConn {
            out: OutQueue::new(cap),
            alive: AtomicBool::new(true),
            accepted,
            nodes: Mutex::new(Vec::new()),
            token: AtomicUsize::new(0),
            dirty: AtomicBool::new(false),
        })
    }
}

struct Inner {
    cfg: TransportConfig,
    local: HashSet<NodeId>,
    /// Injection path for admitted inbound traffic: the node-local
    /// in-process fabric (Ideal mode), so daemons receive remote packets
    /// exactly like local ones.
    local_fabric: FabricHandle,
    /// Remote node → the connection that currently reaches it.
    routes: RwLock<HashMap<NodeId, Arc<PeerConn>>>,
    /// Every connection ever established (accepted and outbound).
    conns: Mutex<Vec<Arc<PeerConn>>>,
    /// Frames addressed to remote nodes we have no route to yet, flushed
    /// when a handshake maps them. Bounded; overflow counts as dropped.
    unrouted: Mutex<Vec<(NodeId, Bytes)>>,
    monitor: Mutex<FailureMonitor>,
    /// Remote nodes learned from handshakes.
    known_remote: Mutex<HashSet<NodeId>>,
    /// Remote nodes declared permanently unreachable (retry cap).
    perma_down: Mutex<HashSet<NodeId>>,
    /// Remote nodes whose accepted connection closed (peer departed).
    departed: Mutex<HashSet<NodeId>>,
    /// Outbound dialers that have given up for good.
    connectors_done: AtomicUsize,
    ever_connected: AtomicBool,
    hb_seq: AtomicU64,
    epoch: Instant,
    stop: AtomicBool,
    stats: Stats,
    /// Wakes the event loop when a producer queues outbound work
    /// (`None` under the threaded backend, whose writers park on the
    /// queue condvar instead — two parking stories, one [`Wake`] trait).
    net_wake: Option<Arc<dyn Wake>>,
    /// Connections with freshly queued outbound frames, drained by the
    /// event loop on its next wakeup.
    dirty: Mutex<Vec<Arc<PeerConn>>>,
    /// Topology-edge observer: notified when routes appear, connections
    /// die or dialers give up, so the environment loop re-evaluates its
    /// exit conditions event-driven instead of on a fixed poll. Shared
    /// with the scheduler's pool-idle `Notify` in distributed runs.
    activity: Mutex<Option<Arc<Notify>>>,
    /// Fault-injection hook for outbound traffic (the chaos harness).
    /// Distributed runs install chaos here, at the wire, and leave the
    /// node-local fabric clean — one jeopardy per packet.
    chaos: RwLock<Option<Arc<ChaosState>>>,
    /// Chaos-delayed frames waiting out their extra latency; flushed by
    /// the heartbeat paths, so delay resolution is one `hb_period`.
    delayed: Mutex<Vec<(Instant, NodeId, Bytes, u64)>>,
}

impl Inner {
    fn round(&self) -> u64 {
        let period = self.cfg.hb_period.as_nanos().max(1);
        (self.epoch.elapsed().as_nanos() / period) as u64
    }

    fn hello_frame(&self) -> Bytes {
        let from = self
            .cfg
            .local_nodes
            .first()
            .copied()
            .unwrap_or(CONTROL_NODE);
        let p = Packet::Hello {
            version: WIRE_VERSION,
            nodes: self.cfg.local_nodes.clone(),
        };
        self.stats.frames_out.fetch_add(1, Ordering::Relaxed);
        codec::encode_frame(from, CONTROL_NODE, &codec::encode(&p))
    }

    /// Tell whoever watches topology edges (the distributed env loop)
    /// that an exit condition may have changed.
    fn notify_activity(&self) {
        if let Some(n) = self.activity.lock().as_ref() {
            n.notify();
        }
    }

    /// Record a successful push onto `conn`'s queue: track the deepest
    /// backlog ever and hand the connection to the event loop.
    fn note_queued(&self, conn: &Arc<PeerConn>, depth: usize) {
        self.stats
            .outq_hwm
            .fetch_max(depth as u64, Ordering::Relaxed);
        if let Some(wake) = &self.net_wake {
            if !conn.dirty.swap(true, Ordering::AcqRel) {
                self.dirty.lock().push(conn.clone());
            }
            wake.wake();
        }
    }

    /// Queue one already-framed buffer for `to`, running it through the
    /// chaos hook first (when installed). `nframes` is the packet count
    /// the buffer coalesces — fault bookkeeping and termination-counter
    /// compensation must scale by it, or a dropped batch of k packets
    /// would unbalance Mattern's counters by k−1.
    fn queue_frame(&self, from: NodeId, to: NodeId, frame: Bytes, nframes: u64) {
        let chaos = self.chaos.read().clone();
        match chaos {
            None => self.queue_frame_raw(to, frame, nframes),
            Some(ch) => match ch.packet_fate(from, to, nframes, true) {
                Fault::Drop => {}
                Fault::Deliver => self.queue_frame_raw(to, frame, nframes),
                Fault::Duplicate => {
                    self.queue_frame_raw(to, frame.clone(), nframes);
                    self.queue_frame_raw(to, frame, nframes);
                }
                Fault::Delay(extra_ns) => {
                    let due = Instant::now() + Duration::from_nanos(extra_ns);
                    self.delayed.lock().push((due, to, frame, nframes));
                }
            },
        }
    }

    /// Flush chaos-delayed frames whose extra latency has elapsed.
    /// Driven from both backends' heartbeat paths.
    fn flush_due_delayed(&self) {
        let now = Instant::now();
        let due: Vec<(Instant, NodeId, Bytes, u64)> = {
            let mut d = self.delayed.lock();
            if d.is_empty() {
                return;
            }
            let (due, keep) = d.drain(..).partition(|(at, ..)| *at <= now);
            *d = keep;
            due
        };
        for (_, to, frame, nframes) in due {
            self.queue_frame_raw(to, frame, nframes);
        }
    }

    /// Queue one already-framed buffer for `to`, stashing it when no
    /// route exists yet.
    fn queue_frame_raw(&self, to: NodeId, frame: Bytes, nframes: u64) {
        let conn = self.routes.read().get(&to).cloned();
        match conn {
            Some(c) if c.alive.load(Ordering::Acquire) => match c.out.push(frame) {
                Some(depth) => {
                    self.stats.frames_out.fetch_add(nframes, Ordering::Relaxed);
                    self.note_queued(&c, depth);
                }
                None => {
                    self.stats.dropped.fetch_add(nframes, Ordering::Relaxed);
                }
            },
            _ => {
                // No live route (yet): park until a handshake provides
                // one, unless the node is known to be gone for good.
                if self.perma_down.lock().contains(&to) || self.departed.lock().contains(&to) {
                    self.stats.dropped.fetch_add(nframes, Ordering::Relaxed);
                    self.stats
                        .dropped_perma
                        .fetch_add(nframes, Ordering::Relaxed);
                    return;
                }
                let mut stash = self.unrouted.lock();
                if stash.len() >= 10_000 {
                    self.stats.dropped.fetch_add(nframes, Ordering::Relaxed);
                } else {
                    stash.push((to, frame));
                }
            }
        }
    }

    /// Install the routes a handshake announced and flush any frames that
    /// were parked waiting for them.
    fn install_routes(&self, conn: &Arc<PeerConn>, nodes: &[NodeId]) {
        let round = self.round();
        {
            let mut routes = self.routes.write();
            let mut known = self.known_remote.lock();
            let mut monitor = self.monitor.lock();
            let mut perma = self.perma_down.lock();
            let mut departed = self.departed.lock();
            for &n in nodes {
                if self.local.contains(&n) {
                    continue;
                }
                routes.insert(n, conn.clone());
                known.insert(n);
                // A handshake is proof of life: restart the grace window
                // *now* and forget any recorded heartbeat history. This
                // covers both the late joiner (first-known tracking) and
                // the suspected peer that reconnects — whose restarted
                // beacon sequence would otherwise never shed suspicion,
                // leaving the all-remotes-down termination cut
                // satisfiable under a live peer.
                monitor.reconnected(n, round);
                perma.remove(&n);
                departed.remove(&n);
            }
        }
        let mut stash = self.unrouted.lock();
        let mut keep = Vec::new();
        let mut queued = false;
        for (to, frame) in stash.drain(..) {
            if nodes.contains(&to) {
                match conn.out.push(frame) {
                    Some(depth) => {
                        self.stats.frames_out.fetch_add(1, Ordering::Relaxed);
                        self.stats
                            .outq_hwm
                            .fetch_max(depth as u64, Ordering::Relaxed);
                        queued = true;
                    }
                    None => {
                        self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
            } else {
                keep.push((to, frame));
            }
        }
        *stash = keep;
        drop(stash);
        if queued {
            self.note_queued(conn, 0);
        }
        self.notify_activity();
    }

    /// Tear down a dead connection's routes; `terminal` marks its nodes
    /// as gone for good (accepted peer departed / retries exhausted).
    fn drop_routes(&self, conn: &Arc<PeerConn>, terminal: bool) {
        let nodes = conn.nodes.lock().clone();
        let mut routes = self.routes.write();
        for n in &nodes {
            if let Some(cur) = routes.get(n) {
                if Arc::ptr_eq(cur, conn) {
                    routes.remove(n);
                }
            }
        }
        drop(routes);
        if terminal {
            let mut set = if conn.accepted {
                self.departed.lock()
            } else {
                self.perma_down.lock()
            };
            set.extend(nodes);
        }
        self.notify_activity();
    }

    /// An outbound dialer exhausted its retry budget: its peer's nodes
    /// are permanently down. Shared by both backends.
    fn peer_exhausted(&self, last_nodes: &[NodeId]) {
        self.stats.peers_failed.fetch_add(1, Ordering::Relaxed);
        self.perma_down.lock().extend(last_nodes.iter().copied());
        self.connectors_done.fetch_add(1, Ordering::Release);
        self.notify_activity();
    }

    // Lock-ordering discipline for the node-status mutexes (deadlock
    // freedom): known_remote → monitor → perma_down → departed, with the
    // routes RwLock taken before any of them.
    fn suspects(&self) -> Vec<NodeId> {
        let round = self.round();
        let known = self.known_remote.lock();
        let monitor = self.monitor.lock();
        let perma = self.perma_down.lock();
        let mut out: Vec<NodeId> = known
            .iter()
            .copied()
            .filter(|n| perma.contains(n) || monitor.suspected(*n, round))
            .collect();
        out.sort_by_key(|n| n.0);
        out
    }

    /// Every remote node we ever learned about is suspected, permanently
    /// unreachable or departed — or we never learned about any and every
    /// connector has given up.
    fn all_remotes_down(&self) -> bool {
        let known = self.known_remote.lock();
        if known.is_empty() {
            return !self.cfg.peers.is_empty()
                && self.connectors_done.load(Ordering::Acquire) >= self.cfg.peers.len();
        }
        let round = self.round();
        let monitor = self.monitor.lock();
        let perma = self.perma_down.lock();
        let departed = self.departed.lock();
        known
            .iter()
            .all(|n| perma.contains(n) || departed.contains(n) || monitor.suspected(*n, round))
    }

    /// Serve-role exit test: at least one peer connected at some point
    /// and none of the ever-established connections is still alive.
    fn peers_all_gone(&self) -> bool {
        if !self.ever_connected.load(Ordering::Acquire) {
            return false;
        }
        self.conns
            .lock()
            .iter()
            .all(|c| !c.alive.load(Ordering::Acquire))
    }

    fn report(&self) -> TransportReport {
        let s = &self.stats;
        TransportReport {
            frames_out: s.frames_out.load(Ordering::Relaxed),
            frames_in: s.frames_in.load(Ordering::Relaxed),
            bytes_out: s.bytes_out.load(Ordering::Relaxed),
            bytes_in: s.bytes_in.load(Ordering::Relaxed),
            data_out: s.data_out.load(Ordering::Relaxed),
            data_in: s.data_in.load(Ordering::Relaxed),
            heartbeats_in: s.heartbeats_in.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            dropped: s.dropped.load(Ordering::Relaxed),
            reconnects: s.reconnects.load(Ordering::Relaxed),
            peers_failed: s.peers_failed.load(Ordering::Relaxed),
            version_mismatches: s.version_mismatches.load(Ordering::Relaxed),
            outq_hwm: s.outq_hwm.load(Ordering::Relaxed),
            flush_stalls: s.flush_stalls.load(Ordering::Relaxed),
            dropped_perma: s.dropped_perma.load(Ordering::Relaxed),
        }
    }
}

/// The daemon-facing side of the transport: implements [`PacketFabric`]
/// by keeping node-local traffic on the in-process fabric and framing
/// everything else onto the right peer's socket queue.
#[derive(Clone)]
pub struct NetHandle {
    inner: Arc<Inner>,
}

impl PacketFabric for NetHandle {
    fn send(&self, from: NodeId, to: NodeId, payload: Bytes) {
        if self.inner.local.contains(&to) {
            self.inner.local_fabric.send(from, to, payload);
            return;
        }
        self.inner.stats.data_out.fetch_add(1, Ordering::Relaxed);
        let frame = codec::encode_frame(from, to, &payload);
        self.inner.queue_frame(from, to, frame, 1);
    }

    fn send_batch(&self, from: NodeId, to: NodeId, batch: &mut Vec<Bytes>) {
        if batch.is_empty() {
            return;
        }
        if self.inner.local.contains(&to) {
            self.inner.local_fabric.send_batch(from, to, batch);
            return;
        }
        // Keep the fabric's batching discipline on the wire: the whole
        // per-link backlog becomes one coalesced buffer, one queue slot,
        // one write — FIFO order preserved.
        let n = batch.len() as u64;
        self.inner.stats.data_out.fetch_add(n, Ordering::Relaxed);
        let total: usize = batch.iter().map(|b| b.len() + 12).sum();
        let mut buf = BytesMut::with_capacity(total);
        for p in batch.drain(..) {
            codec::encode_frame_into(from, to, &p, &mut buf);
        }
        self.inner.queue_frame(from, to, buf.freeze(), n);
    }
}

/// The I/O a backend choice resolved to, built before any thread is
/// spawned. Holding the prepared state in one value means the spawn step
/// can only consume what preparation produced — the historical
/// prepare/spawn mismatch (an `Event` spawn reaching for I/O that was
/// never prepared) is unrepresentable rather than a runtime abort.
enum Prepared {
    #[cfg(target_os = "linux")]
    Event {
        io: netloop::NetIo,
        wake: Arc<dyn Wake>,
    },
    Threads(Option<TcpListener>),
}

/// Spawn the thread-per-peer baseline's service threads: the accept
/// loop, one connector per peer address, and the heartbeat beacon.
fn spawn_thread_backend(
    inner: &Arc<Inner>,
    listener: Option<TcpListener>,
    threads: &mut Vec<std::thread::JoinHandle<()>>,
) -> Result<(), String> {
    if let Some(l) = listener {
        let inner2 = inner.clone();
        threads.push(
            std::thread::Builder::new()
                .name("tyco-accept".into())
                .spawn(move || accept_loop(inner2, l))
                .map_err(|e| format!("spawn accept thread: {e}"))?,
        );
    }
    for (i, addr) in inner.cfg.peers.clone().into_iter().enumerate() {
        let inner2 = inner.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("tyco-dial-{i}"))
                .spawn(move || connector_loop(inner2, addr))
                .map_err(|e| format!("spawn connector thread: {e}"))?,
        );
    }
    let inner2 = inner.clone();
    threads.push(
        std::thread::Builder::new()
            .name("tyco-heartbeat".into())
            .spawn(move || heartbeat_loop(inner2))
            .map_err(|e| format!("spawn heartbeat thread: {e}"))?,
    );
    Ok(())
}

/// A running TCP transport: one `tyco-net` event-loop thread (default),
/// or listener/connector/heartbeat threads plus a reader/writer pair per
/// connection (baseline).
pub struct Transport {
    inner: Arc<Inner>,
    threads: Vec<std::thread::JoinHandle<()>>,
    local_addr: Option<SocketAddr>,
}

impl Transport {
    /// Bind, dial and start beaconing. `local_fabric` is the in-process
    /// fabric admitted inbound traffic is injected into.
    pub fn start(cfg: TransportConfig, local_fabric: FabricHandle) -> Result<Transport, String> {
        let listener = match cfg.listen {
            Some(addr) => {
                let l = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
                l.set_nonblocking(true)
                    .map_err(|e| format!("set_nonblocking: {e}"))?;
                Some(l)
            }
            None => None,
        };
        let local_addr = listener.as_ref().and_then(|l| l.local_addr().ok());

        // Resolve the backend choice into prepared I/O *before* spawning
        // anything, so that (a) a poller or wake-pipe failure surfaces as
        // a start error — never a net thread that exits at birth while
        // the transport reports success — and (b) the spawn step below
        // consumes exactly what was prepared: there is no second
        // backend-match whose arms could disagree with this one.
        //
        // The event backend's poller hand-declares Linux syscall
        // constants (see `crate::poller`); everywhere else the
        // thread-per-peer architecture carries the wire.
        #[cfg(target_os = "linux")]
        let prepared = match cfg.backend {
            IoBackend::Event => {
                let (wake_rx, wake_tx) =
                    crate::poller::wake_pipe().map_err(|e| format!("wake pipe: {e}"))?;
                let io = netloop::prepare(listener, wake_rx)
                    .map_err(|e| format!("net event loop: {e}"))?;
                Prepared::Event {
                    io,
                    wake: Arc::new(wake_tx) as Arc<dyn Wake>,
                }
            }
            IoBackend::Threads => Prepared::Threads(listener),
        };
        #[cfg(not(target_os = "linux"))]
        let prepared = Prepared::Threads(listener);

        let net_wake: Option<Arc<dyn Wake>> = match &prepared {
            #[cfg(target_os = "linux")]
            Prepared::Event { wake, .. } => Some(wake.clone()),
            Prepared::Threads(_) => None,
        };

        let stale = cfg.stale_periods;
        let inner = Arc::new(Inner {
            local: cfg.local_nodes.iter().copied().collect(),
            local_fabric,
            routes: RwLock::new(HashMap::new()),
            conns: Mutex::new(Vec::new()),
            unrouted: Mutex::new(Vec::new()),
            monitor: Mutex::new(FailureMonitor::new(stale)),
            known_remote: Mutex::new(HashSet::new()),
            perma_down: Mutex::new(HashSet::new()),
            departed: Mutex::new(HashSet::new()),
            connectors_done: AtomicUsize::new(0),
            ever_connected: AtomicBool::new(false),
            hb_seq: AtomicU64::new(0),
            epoch: Instant::now(),
            stop: AtomicBool::new(false),
            stats: Stats::default(),
            net_wake,
            dirty: Mutex::new(Vec::new()),
            activity: Mutex::new(None),
            chaos: RwLock::new(None),
            delayed: Mutex::new(Vec::new()),
            cfg,
        });
        let mut threads = Vec::new();
        match prepared {
            #[cfg(target_os = "linux")]
            Prepared::Event { io, .. } => {
                let inner2 = inner.clone();
                threads.push(
                    std::thread::Builder::new()
                        .name("tyco-net".into())
                        .spawn(move || netloop::run(inner2, io))
                        .map_err(|e| format!("spawn net thread: {e}"))?,
                );
            }
            Prepared::Threads(listener) => spawn_thread_backend(&inner, listener, &mut threads)?,
        }
        Ok(Transport {
            inner,
            threads,
            local_addr,
        })
    }

    /// The bound listen address (useful when configured with port 0).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// A [`PacketFabric`] handle for daemons.
    pub fn handle(&self) -> NetHandle {
        NetHandle {
            inner: self.inner.clone(),
        }
    }

    pub fn is_local(&self, node: NodeId) -> bool {
        self.inner.local.contains(&node)
    }

    /// (data frames out, data frames in) — the env loop watches these for
    /// wire stability before declaring the computation idle.
    pub fn data_counters(&self) -> (u64, u64) {
        (
            self.inner.stats.data_out.load(Ordering::Relaxed),
            self.inner.stats.data_in.load(Ordering::Relaxed),
        )
    }

    pub fn ever_connected(&self) -> bool {
        self.inner.ever_connected.load(Ordering::Acquire)
    }

    pub fn peers_all_gone(&self) -> bool {
        self.inner.peers_all_gone()
    }

    pub fn all_remotes_down(&self) -> bool {
        self.inner.all_remotes_down()
    }

    /// Register the `Notify` to ping when a topology edge lands (route
    /// installed, connection died, dialer gave up). `run_distributed`
    /// passes the scheduler pool's idle `Notify` here, so the
    /// environment loop has exactly one thing to park on for both "the
    /// sites went idle" and "the wire changed shape".
    pub fn set_activity_notify(&self, n: Arc<Notify>) {
        *self.inner.activity.lock() = Some(n);
    }

    /// Remote nodes currently considered dead (heartbeat silence or
    /// exhausted reconnects).
    pub fn suspects(&self) -> Vec<NodeId> {
        self.inner.suspects()
    }

    /// Install (or clear) the chaos fault-injection hook on outbound
    /// traffic. In distributed runs chaos lives here, at the wire, and
    /// the node-local fabric stays clean — a packet faces one roll of
    /// the dice, not one per hop.
    pub fn set_chaos(&self, chaos: Option<Arc<ChaosState>>) {
        *self.inner.chaos.write() = chaos;
    }

    pub fn report(&self) -> TransportReport {
        self.inner.report()
    }

    /// Stop all transport threads and close every connection.
    pub fn shutdown(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        for c in self.inner.conns.lock().iter() {
            c.out.close();
        }
        if let Some(w) = &self.inner.net_wake {
            w.wake();
        }
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Transport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Sleep in short slices so shutdown is never blocked on a long backoff.
fn sleep_stoppable(inner: &Inner, dur: Duration) {
    let deadline = Instant::now() + dur;
    while !inner.stop.load(Ordering::Acquire) {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return;
        }
        std::thread::sleep(left.min(Duration::from_millis(25)));
    }
}

// ---------------------------------------------------------------------
// Thread-per-peer baseline ([`IoBackend::Threads`]). This is the PR 4
// architecture, kept verbatim as the measured A/B for
// `BENCH_transport.json`: a 20ms-sleep accept loop, one blocking
// connector thread per peer address, a heartbeat thread, and a blocking
// reader + condvar-parked writer per live connection.
// ---------------------------------------------------------------------

fn accept_loop(inner: Arc<Inner>, listener: TcpListener) {
    while !inner.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((sock, _addr)) => {
                let _ = sock.set_nonblocking(false);
                let inner2 = inner.clone();
                // Detached: the handler exits within one read timeout of
                // `stop` being raised.
                let _ = std::thread::Builder::new()
                    .name("tyco-conn".into())
                    .spawn(move || {
                        let _ = run_connection(&inner2, sock, true);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn connector_loop(inner: Arc<Inner>, addr: SocketAddr) {
    let mut attempts: u32 = 0;
    // Nodes the most recent successful connection to this address
    // announced; they are declared permanently down when the retry
    // budget runs out.
    let mut last_nodes: Vec<NodeId> = Vec::new();
    while !inner.stop.load(Ordering::Acquire) {
        match TcpStream::connect_timeout(&addr, inner.cfg.connect_timeout) {
            Ok(sock) => {
                if attempts > 0 {
                    inner.stats.reconnects.fetch_add(1, Ordering::Relaxed);
                }
                attempts = 0;
                let (conn, _res) = run_connection(&inner, sock, false);
                last_nodes = conn.nodes.lock().clone();
                if inner.stop.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(_) => {
                if attempts >= inner.cfg.max_retries {
                    inner.peer_exhausted(&last_nodes);
                    return;
                }
                let delay = backoff_delay(inner.cfg.backoff_base, inner.cfg.backoff_cap, attempts);
                attempts += 1;
                sleep_stoppable(&inner, delay);
            }
        }
    }
    inner.connectors_done.fetch_add(1, Ordering::Release);
}

/// Drive one established socket until it dies or the transport stops:
/// spawn the writer, run the reader inline, tear down routes at the end.
/// Returns the connection record (for the peer's announced nodes) plus
/// the reader's verdict.
fn run_connection(
    inner: &Arc<Inner>,
    sock: TcpStream,
    accepted: bool,
) -> (Arc<PeerConn>, std::io::Result<()>) {
    let conn = PeerConn::new(inner.cfg.outbound_cap, accepted);
    let _ = sock.set_nodelay(true);
    if let Err(e) = sock.set_read_timeout(Some(Duration::from_millis(50))) {
        return (conn, Err(e));
    }
    conn.out.push(inner.hello_frame());
    inner.conns.lock().push(conn.clone());
    inner.ever_connected.store(true, Ordering::Release);

    let write_sock = match sock.try_clone() {
        Ok(s) => s,
        Err(e) => {
            conn.alive.store(false, Ordering::Release);
            conn.out.close();
            return (conn, Err(e));
        }
    };
    let writer = {
        let inner2 = inner.clone();
        let conn2 = conn.clone();
        std::thread::Builder::new()
            .name("tyco-write".into())
            .spawn(move || writer_loop(inner2, conn2, write_sock))
    };

    let res = read_loop(inner, &conn, sock);

    conn.alive.store(false, Ordering::Release);
    conn.out.close();
    // A dead accepted connection means the peer departed (it may dial
    // back in, which re-installs routes); a dead outbound one is retried
    // by our connector, so its nodes are only *suspect*, not gone.
    inner.drop_routes(&conn, accepted);
    if let Ok(w) = writer {
        let _ = w.join();
    }
    (conn, res)
}

fn writer_loop(inner: Arc<Inner>, conn: Arc<PeerConn>, mut sock: TcpStream) {
    let mut batch: Vec<Bytes> = Vec::new();
    loop {
        let open = conn.out.drain_wait(&mut batch, Duration::from_millis(50));
        if inner.stop.load(Ordering::Acquire) && batch.is_empty() {
            return;
        }
        for buf in batch.drain(..) {
            if sock.write_all(&buf).is_err() {
                conn.alive.store(false, Ordering::Release);
                conn.out.close();
                return;
            }
            inner
                .stats
                .bytes_out
                .fetch_add(buf.len() as u64, Ordering::Relaxed);
        }
        if !open {
            return;
        }
    }
}

fn io_err(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

fn read_loop(inner: &Arc<Inner>, conn: &Arc<PeerConn>, mut sock: TcpStream) -> std::io::Result<()> {
    let mut pending: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut scratch = vec![0u8; 64 * 1024];
    let mut got_hello = false;
    loop {
        if inner.stop.load(Ordering::Acquire) || !conn.alive.load(Ordering::Acquire) {
            return Ok(());
        }
        match sock.read(&mut scratch) {
            Ok(0) => return Ok(()), // peer closed
            Ok(n) => {
                pending.extend_from_slice(&scratch[..n]);
                let mut consumed = 0;
                loop {
                    match codec::decode_frame(&pending[consumed..]) {
                        Ok(None) => break,
                        Ok(Some((frame, used))) => {
                            consumed += used;
                            handle_frame(inner, conn, frame, &mut got_hello)?;
                        }
                        Err(e) => return Err(io_err(format!("corrupt stream: {e}"))),
                    }
                }
                pending.drain(..consumed);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Consume one inbound frame: control frames (Hello, Heartbeat) update
/// routing and liveness here; data frames are verifier-screened and
/// injected into the local fabric. Shared by both backends — under the
/// event loop the `payload` is a zero-copy view of the read buffer.
fn handle_frame(
    inner: &Arc<Inner>,
    conn: &Arc<PeerConn>,
    frame: codec::Frame,
    got_hello: &mut bool,
) -> std::io::Result<()> {
    inner.stats.frames_in.fetch_add(1, Ordering::Relaxed);
    inner
        .stats
        .bytes_in
        .fetch_add(frame.payload.len() as u64 + 12, Ordering::Relaxed);

    if frame.to == CONTROL_NODE {
        // Control frames are consumed here, never routed.
        let p = codec::decode(frame.payload)
            .map_err(|e| io_err(format!("corrupt control frame: {e}")))?;
        match p {
            Packet::Hello { version, nodes } => {
                if version != WIRE_VERSION {
                    inner
                        .stats
                        .version_mismatches
                        .fetch_add(1, Ordering::Relaxed);
                    return Err(io_err(format!(
                        "wire version mismatch: peer speaks v{version}, we speak v{WIRE_VERSION}"
                    )));
                }
                *got_hello = true;
                *conn.nodes.lock() = nodes.clone();
                inner.install_routes(conn, &nodes);
            }
            Packet::Heartbeat { node, seq } => {
                if !*got_hello {
                    return Err(io_err("control frame before handshake".into()));
                }
                inner.stats.heartbeats_in.fetch_add(1, Ordering::Relaxed);
                let round = inner.round();
                inner.monitor.lock().observe(node, seq, round);
            }
            other => {
                return Err(io_err(format!("unexpected control packet: {other:?}")));
            }
        }
        return Ok(());
    }

    if !*got_hello {
        return Err(io_err("data frame before handshake".into()));
    }
    if !inner.local.contains(&frame.to) {
        // Misrouted: this process does not host the destination node.
        inner.stats.dropped.fetch_add(1, Ordering::Relaxed);
        return Ok(());
    }
    // Trust boundary: decode and screen BEFORE anything reaches a daemon.
    // The admitted original bytes are injected (the daemon re-decodes);
    // rejected ones vanish here, counted.
    match codec::decode(frame.payload.clone()) {
        Ok(p) => {
            if Daemon::screen(&p).is_some() {
                inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
            } else {
                inner.stats.data_in.fetch_add(1, Ordering::Relaxed);
                inner.local_fabric.send(frame.from, frame.to, frame.payload);
            }
        }
        Err(_) => {
            inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
        }
    }
    Ok(())
}

fn heartbeat_loop(inner: Arc<Inner>) {
    while !inner.stop.load(Ordering::Acquire) {
        sleep_stoppable(&inner, inner.cfg.hb_period);
        if inner.stop.load(Ordering::Acquire) {
            return;
        }
        inner.flush_due_delayed();
        let chaos = inner.chaos.read().clone();
        let seq = inner.hb_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut frames = Vec::with_capacity(inner.cfg.local_nodes.len());
        for &n in &inner.cfg.local_nodes {
            let p = Packet::Heartbeat { node: n, seq };
            frames.push((n, codec::encode_frame(n, CONTROL_NODE, &codec::encode(&p))));
        }
        for conn in inner.conns.lock().iter() {
            if !conn.alive.load(Ordering::Acquire) {
                continue;
            }
            let peer_nodes = match &chaos {
                Some(_) => conn.nodes.lock().clone(),
                None => Vec::new(),
            };
            for (n, f) in &frames {
                if let Some(ch) = &chaos {
                    // A partition that cuts every announced peer node
                    // silences the beacon too — that is what drives the
                    // failure monitor during a partition soak.
                    if ch.hb_blocked(*n, &peer_nodes) {
                        continue;
                    }
                }
                if conn.out.push(f.clone()).is_some() {
                    inner.stats.frames_out.fetch_add(1, Ordering::Relaxed);
                } else {
                    inner.stats.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_list_parses_good_addresses() {
        let got = parse_peer_list("127.0.0.1:9000, 127.0.0.1:9001").unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].port(), 9000);
        assert_eq!(got[1].port(), 9001);
    }

    #[test]
    fn peer_list_rejects_bad_addresses_with_diagnostics() {
        let e = parse_peer_list("127.0.0.1:9000,,127.0.0.1:9001").unwrap_err();
        assert!(e.contains("empty peer address"), "{e}");
        let e = parse_peer_list("not an address").unwrap_err();
        assert!(e.contains("not an address"), "{e}");
        let e = parse_peer_list("127.0.0.1:notaport").unwrap_err();
        assert!(e.contains("notaport"), "{e}");
        assert!(parse_peer_list("").is_err());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(2);
        let delays: Vec<u64> = (0..8)
            .map(|a| backoff_delay(base, cap, a).as_millis() as u64)
            .collect();
        assert_eq!(delays, vec![50, 100, 200, 400, 800, 1600, 2000, 2000]);
        // No overflow at absurd attempt counts.
        assert_eq!(backoff_delay(base, cap, u32::MAX), cap);
    }

    #[test]
    fn out_queue_bounds_reports_depth_and_closes() {
        let q = OutQueue::new(2);
        assert_eq!(q.push(Bytes::from_static(b"a")), Some(1));
        assert_eq!(
            q.push(Bytes::from_static(b"b")),
            Some(2),
            "depth is hwm food"
        );
        assert_eq!(
            q.push(Bytes::from_static(b"c")),
            None,
            "over cap is dropped"
        );
        let mut out = Vec::new();
        assert!(q.drain_wait(&mut out, Duration::from_millis(1)));
        assert_eq!(out.len(), 2);
        q.close();
        assert!(q.push(Bytes::from_static(b"d")).is_none(), "closed refuses");
        let mut out2 = Vec::new();
        assert!(
            !q.drain_wait(&mut out2, Duration::from_millis(1)),
            "closed and drained"
        );
    }

    #[test]
    fn out_queue_try_drain_never_blocks() {
        let q = OutQueue::new(4);
        let mut out = Vec::new();
        q.try_drain(&mut out);
        assert!(out.is_empty());
        q.push(Bytes::from_static(b"x"));
        q.try_drain(&mut out);
        assert_eq!(out.len(), 1);
    }
}
