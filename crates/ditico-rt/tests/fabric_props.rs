//! Property tests of the fabric: exactly-once, in-order-per-link delivery
//! under random topologies, sizes and link profiles, in virtual time.

use bytes::Bytes;
use ditico_rt::fabric::{Fabric, FabricMode, LinkProfile};
use proptest::prelude::*;
use tyco_vm::word::NodeId;

fn arb_profile() -> impl Strategy<Value = LinkProfile> {
    prop_oneof![
        Just(LinkProfile::ideal()),
        Just(LinkProfile::myrinet()),
        Just(LinkProfile::fast_ethernet()),
        Just(LinkProfile::wan()),
        (0u64..1_000_000, 1.0e6f64..1.0e9).prop_map(|(latency_ns, bandwidth_bps)| LinkProfile {
            latency_ns,
            bandwidth_bps,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every packet sent is delivered exactly once, to the right node,
    /// with the right payload — regardless of profile or send order.
    #[test]
    fn exactly_once_delivery(
        nodes in 2u32..6,
        profile in arb_profile(),
        sends in proptest::collection::vec((0u32..6, 0u32..6, 1usize..2048), 1..64),
    ) {
        let fabric = Fabric::new(FabricMode::Virtual, profile);
        let rxs: Vec<_> = (0..nodes).map(|i| fabric.register_node(NodeId(i))).collect();
        let h = fabric.handle();
        let mut expected: Vec<Vec<(u32, usize)>> = vec![Vec::new(); nodes as usize];
        for (i, (from, to, size)) in sends.iter().enumerate() {
            let from = from % nodes;
            let to = to % nodes;
            if from == to {
                continue;
            }
            // Tag each payload with its sequence number.
            let mut payload = vec![0u8; *size];
            payload[0] = i as u8;
            h.send(NodeId(from), NodeId(to), Bytes::from(payload));
            expected[to as usize].push((from, *size));
        }
        // Drain the event queue completely.
        while let Some(t) = fabric.next_event_ns() {
            fabric.advance_to(t);
        }
        for (node, rx) in rxs.iter().enumerate() {
            let got: Vec<(u32, usize)> =
                rx.try_iter().map(|(from, bytes)| (from.0, bytes.len())).collect();
            // Multiset equality: deliveries may legally interleave across
            // *different* links by modelled time.
            let mut got_sorted = got.clone();
            got_sorted.sort_unstable();
            let mut want = expected[node].clone();
            want.sort_unstable();
            prop_assert_eq!(got_sorted, want, "node {}", node);
        }
    }

    /// Per-link FIFO: packets on the SAME directed link arrive in send
    /// order even when a small packet follows a large one (links are
    /// non-overtaking, like the paper's switch links).
    #[test]
    fn per_link_fifo(
        profile in arb_profile(),
        sizes in proptest::collection::vec(1usize..4096, 2..32),
    ) {
        let fabric = Fabric::new(FabricMode::Virtual, profile);
        let rx = fabric.register_node(NodeId(1));
        let h = fabric.handle();
        for (i, size) in sizes.iter().enumerate() {
            let mut payload = vec![0u8; *size];
            payload[0] = i as u8;
            h.send(NodeId(0), NodeId(1), Bytes::from(payload));
        }
        while let Some(t) = fabric.next_event_ns() {
            fabric.advance_to(t);
        }
        let received: Vec<u8> = rx.try_iter().map(|(_, b)| b[0]).collect();
        prop_assert_eq!(received, (0..sizes.len() as u8).collect::<Vec<_>>());
    }

    /// Per-link FIFO survives batched flushing: interleaving single
    /// `send`s with `send_batch` flushes of arbitrary sizes on the same
    /// directed link must preserve the overall send order. This is the
    /// ordering contract the daemon's per-destination outgoing buffers
    /// rely on — a whole pump's worth of packets goes out as one batch,
    /// racing with nothing on that link.
    #[test]
    fn fifo_across_batched_flushes(
        profile in arb_profile(),
        // Each entry is one flush: 0 = single send, n>0 = batch of n.
        flushes in proptest::collection::vec(0usize..8, 2..24),
    ) {
        let fabric = Fabric::new(FabricMode::Virtual, profile);
        let rx = fabric.register_node(NodeId(1));
        let h = fabric.handle();
        let mut seq: u8 = 0;
        for batch_len in &flushes {
            if *batch_len == 0 {
                h.send(NodeId(0), NodeId(1), Bytes::from(vec![seq]));
                seq += 1;
            } else {
                let mut batch: Vec<Bytes> = (0..*batch_len)
                    .map(|i| Bytes::from(vec![seq + i as u8]))
                    .collect();
                seq += *batch_len as u8;
                h.send_batch(NodeId(0), NodeId(1), &mut batch);
                prop_assert!(batch.is_empty(), "send_batch drains its input");
            }
        }
        while let Some(t) = fabric.next_event_ns() {
            fabric.advance_to(t);
        }
        let received: Vec<u8> = rx.try_iter().map(|(_, b)| b[0]).collect();
        prop_assert_eq!(received, (0..seq).collect::<Vec<_>>());
    }
}
