//! Program representation: byte-code blocks, method tables and interned
//! symbol pools.
//!
//! §5 of the paper: *"Programs are compiled into an intermediate virtual
//! machine assembly. This in turn is compiled into hardware independent
//! byte-code. … The nested structure of the source program is preserved in
//! the final byte-code. This allows the efficient dynamic selection of
//! byte-code blocks that have to be moved between sites."*
//!
//! A **block** is the unit of code selection and mobility: each method
//! body, class body and forked parallel component compiles to its own
//! block. Shipping an object or fetching a class serializes the transitive
//! closure of the blocks it references (see [`crate::wire`]).

use std::collections::HashMap;
use std::sync::Arc;
use tyco_syntax::ast::{BinOp, UnOp};

/// Index of a block in [`Program::blocks`].
pub type BlockId = u32;
/// Index of a method table in [`Program::tables`].
pub type TableId = u32;
/// Interned method label.
pub type LabelId = u32;
/// Interned string literal.
pub type StrId = u32;

/// Import kind operand for the `Import` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImportKind {
    Name,
    Class,
}

/// The TyCO virtual machine instruction set.
///
/// All value traffic goes through the per-thread operand stack; frames are
/// addressed by slot. `TrMsg` / `TrObj` / `InstOf` are the three
/// communication instructions of the original TyCOVM, re-implemented per
/// §5 to dispatch on local vs. network references.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    // -- operand stack -----------------------------------------------------
    /// Push frame slot.
    PushLocal(u16),
    PushInt(i64),
    PushBool(bool),
    PushFloat(f64),
    PushStr(StrId),
    PushUnit,
    /// Push the class word for sibling `index` of the current class frame
    /// (frame slot 0 holds the executing class's own class word).
    PushSibling(u8),
    /// Pop into frame slot.
    Store(u16),
    /// Binary builtin: pops rhs then lhs, pushes result.
    Bin(BinOp),
    /// Unary builtin.
    Un(UnOp),

    // -- control -----------------------------------------------------------
    /// Unconditional jump to absolute instruction index within the block.
    Jump(u32),
    /// Pop a bool; jump when false.
    JumpIfFalse(u32),
    /// Finish the thread.
    Halt,

    // -- processes ---------------------------------------------------------
    /// Allocate a fresh channel into a frame slot (`new`).
    NewChan(u16),
    /// Spawn a parallel component: pops `nfree` captured words (last pushed
    /// = slot 0 of the new frame... see compiler), enqueues a thread for
    /// `block`.
    Fork {
        block: BlockId,
        nfree: u16,
    },
    /// Try-reduce a message: pops the channel word, then `argc` argument
    /// words. Local channel ⇒ COMM-or-enqueue; network reference ⇒ package
    /// and ship (SHIPM).
    TrMsg {
        label: LabelId,
        argc: u8,
    },
    /// Try-reduce an object: pops the channel word, then `nfree` captured
    /// words. Local ⇒ COMM-or-enqueue; network ⇒ migrate (SHIPO).
    TrObj {
        table: TableId,
        nfree: u16,
    },
    /// Instantiate: pops the class word, then `argc` arguments. Local class
    /// ⇒ INST; network class ⇒ FETCH then INST.
    InstOf {
        argc: u8,
    },
    /// Create a (possibly mutually recursive) class group: pops `nfree`
    /// captured words; stores the `count` class words into consecutive
    /// frame slots starting at `dst`.
    MkGroup {
        table: TableId,
        dst: u16,
        count: u8,
        nfree: u16,
    },

    // -- network (the two new instructions of §5) ---------------------------
    /// Register the channel in frame slot `slot` with the network name
    /// service under `name`.
    ExportName {
        slot: u16,
        name: StrId,
    },
    /// Register the class in frame slot `slot` under `name`.
    ExportClass {
        slot: u16,
        name: StrId,
    },
    /// Resolve `name` at `site` through the name service into slot `dst`.
    /// May suspend the thread until the reply arrives.
    Import {
        dst: u16,
        site: StrId,
        name: StrId,
        kind: ImportKind,
    },

    // -- I/O port ------------------------------------------------------------
    /// Pop `argc` words, write them (space-joined) to the site's I/O port.
    Print {
        argc: u8,
        newline: bool,
    },

    // -- fused superinstructions ---------------------------------------------
    // Machine-internal rewrites of hot opcode digrams (see [`crate::fuse`]
    // for the pass and the telemetry that chose them). They never appear in
    // compiler output, on the wire, in images, or in assembly — every
    // serialization and verification path sees the normalized (de-sugared)
    // form, so the wire format and content digests are fusion-independent.
    /// `PushLocal(a); PushLocal(b)`.
    PushLocal2 {
        a: u16,
        b: u16,
    },
    /// `PushLocal(slot); PushInt(imm)` (immediate narrowed to `i32`; wider
    /// literals stay unfused).
    PushLocalInt {
        slot: u16,
        imm: i32,
    },
    /// `PushInt(imm); Bin(op)`: apply `op` with an immediate right operand
    /// to the top of the stack.
    PushIntBin {
        imm: i32,
        op: BinOp,
    },
    /// `Bin(op); JumpIfFalse(target)`: compare-and-branch.
    BinJumpIfFalse {
        op: BinOp,
        target: u32,
    },
    /// `PushLocal(slot); TrMsg { label, argc }`: send on a channel read
    /// straight from the frame, skipping the push/pop round trip.
    PushLocalTrMsg {
        slot: u16,
        label: LabelId,
        argc: u8,
    },
    /// `PushLocal(slot); TrObj { table, nfree }`.
    PushLocalTrObj {
        slot: u16,
        table: TableId,
        nfree: u16,
    },
    /// `PushLocal(slot); InstOf { argc }`: instantiate a class read from
    /// the frame. A FETCH suspension re-executes the whole fused form (the
    /// class word is still in the frame, unlike the stack-discipline of the
    /// base `InstOf`).
    PushLocalInstOf {
        slot: u16,
        argc: u8,
    },
    /// `PushSibling(index); InstOf { argc }`: sibling recursion — the class
    /// word is always local, so this form can never suspend.
    PushSiblingInstOf {
        sib: u8,
        argc: u8,
    },
    /// `PushSibling(index); PushLocal(slot)`: a sibling class word followed
    /// by its first argument — every class-recursion site starts this way
    /// (telemetry ranks it ~4.5% of executed instructions).
    PushSiblingLocal {
        sib: u8,
        slot: u16,
    },
}

/// Number of distinct opcodes (base instruction set plus fused
/// superinstructions) — the dimension of [`crate::stats::OpStats`].
pub const NUM_OPS: usize = 32;

/// Opcode names, indexed by [`Instr::op_index`].
pub const OP_NAMES: [&str; NUM_OPS] = [
    "pushlocal",
    "pushint",
    "pushbool",
    "pushfloat",
    "pushstr",
    "pushunit",
    "pushsibling",
    "store",
    "bin",
    "un",
    "jump",
    "jumpiffalse",
    "halt",
    "newchan",
    "fork",
    "trmsg",
    "trobj",
    "instof",
    "mkgroup",
    "exportname",
    "exportclass",
    "import",
    "print",
    "pushlocal2",
    "pushlocalint",
    "pushintbin",
    "binjumpiffalse",
    "pushlocaltrmsg",
    "pushlocaltrobj",
    "pushlocalinstof",
    "pushsiblinginstof",
    "pushsiblinglocal",
];

impl Instr {
    /// Dense opcode index for telemetry tables (stable across runs; *not*
    /// the wire opcode — see [`crate::codec`] for that).
    pub fn op_index(&self) -> usize {
        match self {
            Instr::PushLocal(_) => 0,
            Instr::PushInt(_) => 1,
            Instr::PushBool(_) => 2,
            Instr::PushFloat(_) => 3,
            Instr::PushStr(_) => 4,
            Instr::PushUnit => 5,
            Instr::PushSibling(_) => 6,
            Instr::Store(_) => 7,
            Instr::Bin(_) => 8,
            Instr::Un(_) => 9,
            Instr::Jump(_) => 10,
            Instr::JumpIfFalse(_) => 11,
            Instr::Halt => 12,
            Instr::NewChan(_) => 13,
            Instr::Fork { .. } => 14,
            Instr::TrMsg { .. } => 15,
            Instr::TrObj { .. } => 16,
            Instr::InstOf { .. } => 17,
            Instr::MkGroup { .. } => 18,
            Instr::ExportName { .. } => 19,
            Instr::ExportClass { .. } => 20,
            Instr::Import { .. } => 21,
            Instr::Print { .. } => 22,
            Instr::PushLocal2 { .. } => 23,
            Instr::PushLocalInt { .. } => 24,
            Instr::PushIntBin { .. } => 25,
            Instr::BinJumpIfFalse { .. } => 26,
            Instr::PushLocalTrMsg { .. } => 27,
            Instr::PushLocalTrObj { .. } => 28,
            Instr::PushLocalInstOf { .. } => 29,
            Instr::PushSiblingInstOf { .. } => 30,
            Instr::PushSiblingLocal { .. } => 31,
        }
    }

    /// Human-readable opcode name for a telemetry index.
    pub fn op_name(i: usize) -> &'static str {
        OP_NAMES.get(i).copied().unwrap_or("?")
    }
}

/// A compiled code block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Diagnostic name (`"Cell.read"`, `"fork@3"`, …).
    pub name: String,
    /// Captured environment size (filled by Fork/TrObj/InstOf spawn).
    pub nfree: u16,
    /// Parameter count (method or class arguments).
    pub nparams: u16,
    /// Additional local slots.
    pub nlocals: u16,
    /// True for class bodies: frame slot 0 holds the class's own class
    /// word (captured/params shift up by one).
    pub is_class_body: bool,
    /// Shared so the interpreter can pin the executing block's code for a
    /// whole thread slice with one refcount bump (blocks are immutable
    /// once built), and so cloning a `Program` never copies byte-code.
    pub code: Arc<[Instr]>,
}

impl Block {
    /// Total frame size in words.
    pub fn frame_size(&self) -> usize {
        (self.is_class_body as usize)
            + self.nfree as usize
            + self.nparams as usize
            + self.nlocals as usize
    }
}

/// A method table: association of label → block. Object tables are looked
/// up by label; class-group tables are indexed positionally (def order).
/// Tables are a handful of entries, so lookup is a linear scan — no
/// ordering invariant to maintain across re-interning (linking, assembly).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MethodTable {
    pub entries: Vec<(LabelId, BlockId)>,
}

impl MethodTable {
    pub fn lookup(&self, label: LabelId) -> Option<BlockId> {
        self.entries.iter().find(|e| e.0 == label).map(|e| e.1)
    }
}

/// An interned symbol pool (labels, strings). Entries are refcounted so
/// the hot path (`PushStr`) can hand out a [`Word::Str`] with a refcount
/// bump instead of allocating a fresh string per execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Pool {
    items: Vec<Arc<str>>,
    index: HashMap<Arc<str>, u32>,
}

impl Pool {
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.index.get(s) {
            return i;
        }
        let i = self.items.len() as u32;
        let entry: Arc<str> = Arc::from(s);
        self.items.push(entry.clone());
        self.index.insert(entry, i);
        i
    }

    pub fn get(&self, i: u32) -> &str {
        &self.items[i as usize]
    }

    /// The interned entry itself — cloning is a refcount bump.
    pub fn get_arc(&self, i: u32) -> Arc<str> {
        self.items[i as usize].clone()
    }

    pub fn find(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A complete compiled program (a site's program area).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    pub blocks: Vec<Block>,
    pub tables: Vec<MethodTable>,
    pub labels: Pool,
    pub strings: Pool,
    /// The block where execution starts (nfree = nparams = 0).
    pub entry: BlockId,
}

impl Program {
    /// Number of instructions across all blocks (code-size metric for
    /// experiment C7's compactness comparison).
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.code.len()).sum()
    }

    /// The block ids directly referenced by a block's code.
    pub fn direct_refs(&self, block: BlockId) -> (Vec<BlockId>, Vec<TableId>) {
        let mut blocks = Vec::new();
        let mut tables = Vec::new();
        for ins in self.blocks[block as usize].code.iter() {
            match ins {
                Instr::Fork { block, .. } => blocks.push(*block),
                Instr::TrObj { table, .. }
                | Instr::MkGroup { table, .. }
                | Instr::PushLocalTrObj { table, .. } => tables.push(*table),
                _ => {}
            }
        }
        (blocks, tables)
    }

    /// Transitive closure of blocks and tables reachable from `roots`
    /// (the unit shipped by SHIPO/FETCH).
    pub fn closure(&self, root_blocks: &[BlockId], root_tables: &[TableId]) -> Closure {
        let mut blocks: Vec<BlockId> = Vec::new();
        let mut tables: Vec<TableId> = Vec::new();
        let mut stack_b: Vec<BlockId> = root_blocks.to_vec();
        let mut stack_t: Vec<TableId> = root_tables.to_vec();
        while !stack_b.is_empty() || !stack_t.is_empty() {
            while let Some(b) = stack_b.pop() {
                if blocks.contains(&b) {
                    continue;
                }
                blocks.push(b);
                let (bs, ts) = self.direct_refs(b);
                stack_b.extend(bs);
                stack_t.extend(ts);
            }
            while let Some(t) = stack_t.pop() {
                if tables.contains(&t) {
                    continue;
                }
                tables.push(t);
                for (_, b) in &self.tables[t as usize].entries {
                    stack_b.push(*b);
                }
            }
        }
        blocks.sort_unstable();
        tables.sort_unstable();
        Closure { blocks, tables }
    }
}

/// The reachable code of a mobility unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Closure {
    pub blocks: Vec<BlockId>,
    pub tables: Vec<TableId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(name: &str, code: Vec<Instr>) -> Block {
        Block {
            name: name.into(),
            nfree: 0,
            nparams: 0,
            nlocals: 0,
            is_class_body: false,
            code: code.into(),
        }
    }

    #[test]
    fn instr_stays_two_words() {
        // The dispatch loop streams instructions from an `Arc<[Instr]>`;
        // fused variants must not widen the enum past tag + 8-byte payload
        // (`PushInt`/`PushFloat` set the floor).
        assert_eq!(std::mem::size_of::<Instr>(), 16);
    }

    #[test]
    fn op_index_is_dense_and_named() {
        let samples = [
            Instr::PushLocal(0),
            Instr::Print {
                argc: 0,
                newline: false,
            },
            Instr::PushLocal2 { a: 0, b: 1 },
            Instr::PushSiblingLocal { sib: 0, slot: 0 },
        ];
        for s in samples {
            assert!(s.op_index() < NUM_OPS);
            assert_ne!(Instr::op_name(s.op_index()), "?");
        }
        assert_eq!(Instr::op_name(NUM_OPS), "?");
        assert_eq!(
            Instr::PushSiblingLocal { sib: 0, slot: 0 }.op_index(),
            NUM_OPS - 1
        );
    }

    #[test]
    fn pool_interning_is_idempotent() {
        let mut p = Pool::default();
        let a = p.intern("read");
        let b = p.intern("write");
        assert_ne!(a, b);
        assert_eq!(p.intern("read"), a);
        assert_eq!(p.get(a), "read");
        assert_eq!(p.find("write"), Some(b));
        assert_eq!(p.find("absent"), None);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn method_table_lookup() {
        let t = MethodTable {
            entries: vec![(0, 10), (2, 11), (5, 12)],
        };
        assert_eq!(t.lookup(2), Some(11));
        assert_eq!(t.lookup(3), None);
    }

    #[test]
    fn closure_follows_forks_and_tables() {
        let mut prog = Program::default();
        // b0 forks b1; b1 uses table t0 which points at b2; b2 is a leaf.
        prog.blocks.push(block(
            "b0",
            vec![Instr::Fork { block: 1, nfree: 0 }, Instr::Halt],
        ));
        prog.blocks.push(block(
            "b1",
            vec![Instr::TrObj { table: 0, nfree: 0 }, Instr::Halt],
        ));
        prog.blocks.push(block("b2", vec![Instr::Halt]));
        prog.blocks.push(block("b3", vec![Instr::Halt])); // unreachable
        prog.tables.push(MethodTable {
            entries: vec![(0, 2)],
        });
        let c = prog.closure(&[0], &[]);
        assert_eq!(c.blocks, vec![0, 1, 2]);
        assert_eq!(c.tables, vec![0]);
    }

    #[test]
    fn frame_size_accounts_for_class_slot() {
        let mut b = block("k", vec![]);
        b.nfree = 2;
        b.nparams = 1;
        b.nlocals = 3;
        assert_eq!(b.frame_size(), 6);
        b.is_class_body = true;
        assert_eq!(b.frame_size(), 7);
    }
}
