//! Property tests for the formal layer: structural-congruence laws of the
//! network syntax and the σ-translation laws of §3.

use proptest::prelude::*;
use tyco_calculus::network_syntax::{normalize, Net};
use tyco_calculus::sigma::sigma_proc;
use tyco_syntax::arbitrary::{arb_closed_program, arb_proc};
use tyco_syntax::pretty::pretty;

fn arb_site_name() -> impl Strategy<Value = String> {
    proptest::sample::select(vec!["s", "t", "u"]).prop_map(str::to_string)
}

fn arb_net() -> impl Strategy<Value = Net> {
    let leaf = prop_oneof![
        Just(Net::Nil),
        (arb_site_name(), arb_closed_program()).prop_map(|(s, p)| Net::Site(s, p)),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Net::par(a, b)),
            (
                arb_site_name(),
                proptest::sample::select(vec!["x", "y"]),
                inner.clone()
            )
                .prop_map(|(site, name, body)| Net::New {
                    site,
                    name: name.to_string(),
                    body: Box::new(body)
                }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// ‖ is a commutative monoid with unit 0 under ≡ (Nil + monoid laws).
    #[test]
    fn par_monoid_laws(a in arb_net(), b in arb_net(), c in arb_net()) {
        let ab_c = Net::par(Net::par(a.clone(), b.clone()), c.clone());
        let a_bc = Net::par(a.clone(), Net::par(b.clone(), c.clone()));
        prop_assert_eq!(normalize(&ab_c), normalize(&a_bc), "associativity");
        let ab = Net::par(a.clone(), b.clone());
        let ba = Net::par(b, a.clone());
        prop_assert_eq!(normalize(&ab), normalize(&ba), "commutativity");
        let a0 = Net::par(a.clone(), Net::Nil);
        prop_assert_eq!(normalize(&a0), normalize(&a), "unit");
    }

    /// Normalization is idempotent on the site decomposition: gathering a
    /// site's components back into one located process re-normalizes to
    /// the same canonical form (rule Split used in both directions).
    #[test]
    fn split_round_trip(n in arb_net()) {
        let canon = normalize(&n);
        // Rebuild `s[P1 | … | Pk]` per site from the canonical components.
        let mut rebuilt = Net::Nil;
        for (site, comps) in &canon.sites {
            let procs: Vec<_> = comps
                .iter()
                .map(|src| tyco_syntax::parse_core(src).expect("canonical form re-parses"))
                .collect();
            rebuilt = Net::par(
                rebuilt,
                Net::Site(site.clone(), tyco_syntax::ast::Proc::par(procs)),
            );
        }
        // Restrictions must be re-attached for names to stay alive.
        for (site, name) in canon.restrictions.iter().rev() {
            rebuilt = Net::New { site: site.clone(), name: name.clone(), body: Box::new(rebuilt) };
        }
        let again = normalize(&rebuilt);
        prop_assert_eq!(canon.sites, again.sites);
    }

    /// σ_{s→r} ∘ σ_{r→s} = id on processes whose free located names are at
    /// r or s only (the generator produces plain names, so this holds).
    #[test]
    fn sigma_involution(p in arb_proc()) {
        let there = sigma_proc(&p, "r", "s");
        let back = sigma_proc(&there, "s", "r");
        prop_assert_eq!(pretty(&back), pretty(&p));
    }

    /// σ preserves the program's binding structure: bound names are
    /// untouched, so free-name *count* at plain position maps exactly to
    /// located occurrences.
    #[test]
    fn sigma_translates_exactly_free_names(p in arb_proc()) {
        let free_before = p.free_names();
        let there = sigma_proc(&p, "r", "s");
        // After translating away, no plain free names may remain.
        prop_assert!(there.free_names().is_empty(),
            "plain frees remain: {:?} of {}", there.free_names(), pretty(&p));
        // And translating back restores them.
        let back = sigma_proc(&there, "s", "r");
        prop_assert_eq!(back.free_names(), free_before);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structural congruence is observationally sound: composing a site's
    /// components in any order (Split both ways + monoid laws) yields the
    /// same printed multiset under the reduction semantics.
    #[test]
    fn congruent_nets_have_equal_observables(
        parts in proptest::collection::vec(arb_closed_program(), 1..4)
    ) {
        use tyco_calculus::Network;
        use tyco_syntax::ast::Proc;

        let forward = Proc::par(parts.clone());
        let mut reversed_parts = parts.clone();
        reversed_parts.reverse();
        let reversed = Proc::par(reversed_parts);

        let run = |p: Proc| {
            let mut net = Network::new();
            net.add_site("main", p);
            let out = net.run(10_000_000).expect("reduces");
            prop_assert!(out.quiescent);
            Ok(out.line_multiset())
        };
        prop_assert_eq!(run(forward)?, run(reversed)?);
    }
}
