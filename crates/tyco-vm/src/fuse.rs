//! Superinstruction fusion: a post-compile peephole pass that rewrites the
//! dominant opcode *digrams* (measured with `ditico run --no-fuse --opstats`,
//! see `stats::OpStats`) into single fused [`Instr`] variants executed by one
//! match arm in the dispatch loop.
//!
//! Invariants (load-bearing — the wire format and content digests depend on
//! them):
//!
//! * Fused forms are **machine-internal**. [`fuse_program`] runs inside
//!   `Machine::new` (and on dynamically linked blocks), *after* any
//!   compilation, verification, packing, imaging or digesting. Every
//!   serialization path ([`crate::wire::pack`], [`crate::image::to_bytes`],
//!   [`crate::asm::emit`]) and the verifier ([`crate::verify`]) normalize
//!   with [`unfuse_code`] first, and the codec has no encoding for fused
//!   opcodes, so a fused instruction can never escape a machine.
//! * `unfuse(fuse(code))` is observationally identity: the normalized form
//!   is instruction-for-instruction the original program (jump targets are
//!   remapped back), so digests computed from normalized code are
//!   fusion-independent.
//! * Fusion never changes observable behaviour *or* [`crate::ExecStats`]:
//!   the interpreter charges fused arms one tick per *original* instruction,
//!   so `stats.instrs` is a workload metric, not a dispatch metric.
//!
//! Safety rules of the greedy left-to-right pairing:
//!
//! * A pair is only fused when its *second* instruction is not a jump
//!   target — otherwise an incoming edge would land mid-superinstruction.
//!   (Targets equal to `code.len()` — the "fall off the end" halt — don't
//!   constrain anything.)
//! * Jump targets are remapped through the old→new index map; targets that
//!   point past the end (legal: the machine halts the thread) are clamped
//!   to the new length. Wild targets in *unverified* code are also clamped
//!   rather than panicking — the machine bounds-checks anyway.
//! * The pass is idempotent: fused opcodes never start or end a new pair.

use crate::program::{Block, Instr, Program};
use std::sync::Arc;

/// True for the machine-internal fused variants.
pub fn is_fused(ins: &Instr) -> bool {
    matches!(
        ins,
        Instr::PushLocal2 { .. }
            | Instr::PushLocalInt { .. }
            | Instr::PushIntBin { .. }
            | Instr::BinJumpIfFalse { .. }
            | Instr::PushLocalTrMsg { .. }
            | Instr::PushLocalTrObj { .. }
            | Instr::PushLocalInstOf { .. }
            | Instr::PushSiblingInstOf { .. }
            | Instr::PushSiblingLocal { .. }
    )
}

/// The two base instructions a fused variant stands for, or `None` for base
/// instructions. Jump targets inside the expansion are the *fused-space*
/// target; [`unfuse_code`] remaps them.
pub fn expand(ins: &Instr) -> Option<[Instr; 2]> {
    Some(match *ins {
        Instr::PushLocal2 { a, b } => [Instr::PushLocal(a), Instr::PushLocal(b)],
        Instr::PushLocalInt { slot, imm } => [Instr::PushLocal(slot), Instr::PushInt(imm as i64)],
        Instr::PushIntBin { imm, op } => [Instr::PushInt(imm as i64), Instr::Bin(op)],
        Instr::BinJumpIfFalse { op, target } => [Instr::Bin(op), Instr::JumpIfFalse(target)],
        Instr::PushLocalTrMsg { slot, label, argc } => {
            [Instr::PushLocal(slot), Instr::TrMsg { label, argc }]
        }
        Instr::PushLocalTrObj { slot, table, nfree } => {
            [Instr::PushLocal(slot), Instr::TrObj { table, nfree }]
        }
        Instr::PushLocalInstOf { slot, argc } => [Instr::PushLocal(slot), Instr::InstOf { argc }],
        Instr::PushSiblingInstOf { sib, argc } => [Instr::PushSibling(sib), Instr::InstOf { argc }],
        Instr::PushSiblingLocal { sib, slot } => [Instr::PushSibling(sib), Instr::PushLocal(slot)],
        _ => return None,
    })
}

/// Fuse one adjacent pair, if it matches a profitable digram.
fn try_fuse(a: &Instr, b: &Instr) -> Option<Instr> {
    Some(match (a, b) {
        (Instr::PushLocal(a), Instr::PushLocal(b)) => Instr::PushLocal2 { a: *a, b: *b },
        (Instr::PushLocal(slot), Instr::PushInt(i)) => {
            let imm = i32::try_from(*i).ok()?;
            Instr::PushLocalInt { slot: *slot, imm }
        }
        (Instr::PushInt(i), Instr::Bin(op)) => {
            let imm = i32::try_from(*i).ok()?;
            Instr::PushIntBin { imm, op: *op }
        }
        (Instr::Bin(op), Instr::JumpIfFalse(target)) => Instr::BinJumpIfFalse {
            op: *op,
            target: *target,
        },
        (Instr::PushLocal(slot), Instr::TrMsg { label, argc }) => Instr::PushLocalTrMsg {
            slot: *slot,
            label: *label,
            argc: *argc,
        },
        (Instr::PushLocal(slot), Instr::TrObj { table, nfree }) => Instr::PushLocalTrObj {
            slot: *slot,
            table: *table,
            nfree: *nfree,
        },
        (Instr::PushLocal(slot), Instr::InstOf { argc }) => Instr::PushLocalInstOf {
            slot: *slot,
            argc: *argc,
        },
        (Instr::PushSibling(sib), Instr::InstOf { argc }) => Instr::PushSiblingInstOf {
            sib: *sib,
            argc: *argc,
        },
        (Instr::PushSibling(sib), Instr::PushLocal(slot)) => Instr::PushSiblingLocal {
            sib: *sib,
            slot: *slot,
        },
        _ => return None,
    })
}

/// Fuse a block's code. Returns `None` when nothing fused (keep the
/// original `Arc` — no copy).
pub fn fuse_code(code: &[Instr]) -> Option<Arc<[Instr]>> {
    let len = code.len();
    // Incoming-edge map: an instruction that is a jump target must start an
    // instruction (can't be swallowed as the second half of a pair).
    let mut is_target = vec![false; len];
    for ins in code {
        let t = match ins {
            Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::BinJumpIfFalse { target: t, .. } => {
                *t as usize
            }
            _ => continue,
        };
        if t < len {
            is_target[t] = true;
        }
    }

    // Greedy left-to-right pairing. old_to_new[i] = index in the fused
    // stream of the instruction that *starts at* old pc i (second halves
    // map to the fused instruction containing them, which is fine: nothing
    // may jump there).
    let mut out: Vec<Instr> = Vec::with_capacity(len);
    let mut old_to_new = vec![0u32; len + 1];
    let mut i = 0usize;
    let mut fused_any = false;
    while i < len {
        old_to_new[i] = out.len() as u32;
        if i + 1 < len && !is_target[i + 1] && !is_fused(&code[i]) && !is_fused(&code[i + 1]) {
            if let Some(f) = try_fuse(&code[i], &code[i + 1]) {
                old_to_new[i + 1] = out.len() as u32;
                out.push(f);
                fused_any = true;
                i += 2;
                continue;
            }
        }
        out.push(code[i]);
        i += 1;
    }
    if !fused_any {
        return None;
    }
    old_to_new[len] = out.len() as u32;

    // Remap jump targets into the fused index space. Out-of-range targets
    // (≥ len: legal halt-by-falling-off, or garbage in unverified code)
    // clamp to the new end — same halt behaviour, no panic.
    let new_len = out.len() as u32;
    for ins in &mut out {
        match ins {
            Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::BinJumpIfFalse { target: t, .. } => {
                *t = if (*t as usize) < len {
                    old_to_new[*t as usize]
                } else {
                    new_len
                };
            }
            _ => {}
        }
    }
    Some(out.into())
}

/// Normalize: expand every fused instruction back to its base pair and
/// remap jump targets into the expanded index space. Returns `None` when
/// the code contains no fused forms (already normal).
pub fn unfuse_code(code: &[Instr]) -> Option<Vec<Instr>> {
    if !code.iter().any(is_fused) {
        return None;
    }
    let len = code.len();
    let mut out: Vec<Instr> = Vec::with_capacity(len + len / 2);
    let mut old_to_new = vec![0u32; len + 1];
    for (i, ins) in code.iter().enumerate() {
        old_to_new[i] = out.len() as u32;
        match expand(ins) {
            Some([a, b]) => {
                out.push(a);
                out.push(b);
            }
            None => out.push(*ins),
        }
    }
    old_to_new[len] = out.len() as u32;
    let new_len = out.len() as u32;
    for ins in &mut out {
        match ins {
            Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::BinJumpIfFalse { target: t, .. } => {
                *t = if (*t as usize) < len {
                    old_to_new[*t as usize]
                } else {
                    new_len
                };
            }
            _ => {}
        }
    }
    Some(out)
}

fn fuse_block(b: &mut Block) {
    if let Some(fused) = fuse_code(&b.code) {
        b.code = fused;
    }
}

/// Fuse every block of a program in place (idempotent).
pub fn fuse_program(p: &mut Program) {
    for b in &mut p.blocks {
        fuse_block(b);
    }
}

/// Fuse only blocks appended at or after index `from` — used after dynamic
/// linking so mobile code gets the same treatment as boot code.
pub fn fuse_blocks_from(p: &mut Program, from: usize) {
    for b in p.blocks.iter_mut().skip(from) {
        fuse_block(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyco_syntax::ast::BinOp;

    fn roundtrip(code: Vec<Instr>) {
        let fused = fuse_code(&code);
        let back = match &fused {
            Some(f) => unfuse_code(f).expect("fused code must normalize"),
            None => {
                assert!(unfuse_code(&code).is_none(), "unfused code is normal");
                return;
            }
        };
        assert_eq!(back, code, "unfuse(fuse(code)) must be identity");
    }

    #[test]
    fn fuses_push_pairs_and_roundtrips() {
        let code = vec![
            Instr::PushLocal(1),
            Instr::PushLocal(2),
            Instr::PushLocal(3),
            Instr::TrMsg { label: 0, argc: 1 },
            Instr::Halt,
        ];
        let fused = fuse_code(&code).unwrap();
        assert_eq!(
            &fused[..],
            &[
                Instr::PushLocal2 { a: 1, b: 2 },
                Instr::PushLocalTrMsg {
                    slot: 3,
                    label: 0,
                    argc: 1
                },
                Instr::Halt,
            ]
        );
        roundtrip(code);
    }

    #[test]
    fn respects_jump_targets() {
        // Jump lands on the PushLocal(2): it must not be swallowed as the
        // second half of a PushLocal2.
        let code = vec![
            Instr::PushLocal(1),
            Instr::PushLocal(2),
            Instr::PushInt(1),
            Instr::Bin(BinOp::Sub),
            Instr::JumpIfFalse(6),
            Instr::Jump(1),
            Instr::Halt,
        ];
        let fused = fuse_code(&code).unwrap();
        // PushLocal(1) stands alone; PushLocal(2)+PushInt(1) fuse;
        // Bin+JumpIfFalse fuse; Jump target remaps 1 → 1, JumpIfFalse 6 → 4.
        assert_eq!(
            &fused[..],
            &[
                Instr::PushLocal(1),
                Instr::PushLocalInt { slot: 2, imm: 1 },
                Instr::BinJumpIfFalse {
                    op: BinOp::Sub,
                    target: 4
                },
                Instr::Jump(1),
                Instr::Halt,
            ]
        );
        roundtrip(code);
    }

    #[test]
    fn clamps_past_end_targets() {
        // Target == len is the legal fall-off-the-end halt; wild targets in
        // unverified code clamp the same way.
        let code = vec![
            Instr::PushLocal(0),
            Instr::PushLocal(1),
            Instr::Jump(2),
            Instr::Jump(900),
        ];
        let fused = fuse_code(&code).unwrap();
        assert_eq!(
            &fused[..],
            &[
                Instr::PushLocal2 { a: 0, b: 1 },
                // In-range target (the self-jump) remaps through the index
                // map; the wild 900 clamps to the new end.
                Instr::Jump(1),
                Instr::Jump(3),
            ]
        );
    }

    #[test]
    fn wide_int_literals_stay_unfused() {
        let code = vec![
            Instr::PushLocal(0),
            Instr::PushInt(i64::MAX),
            Instr::PushInt(7),
            Instr::Bin(BinOp::Add),
        ];
        let fused = fuse_code(&code).unwrap();
        assert_eq!(
            &fused[..],
            &[
                Instr::PushLocal(0),
                Instr::PushInt(i64::MAX),
                Instr::PushIntBin {
                    imm: 7,
                    op: BinOp::Add
                },
            ]
        );
        roundtrip(code);
    }

    #[test]
    fn fusion_is_idempotent() {
        let code = vec![
            Instr::PushLocal(0),
            Instr::PushLocal(1),
            Instr::InstOf { argc: 2 },
            Instr::Halt,
        ];
        let once = fuse_code(&code).unwrap();
        assert!(fuse_code(&once).is_none(), "second pass must be a no-op");
    }

    #[test]
    fn sibling_instof_fuses() {
        let code = vec![
            Instr::PushLocal(1),
            Instr::PushSibling(0),
            Instr::InstOf { argc: 1 },
        ];
        let fused = fuse_code(&code).unwrap();
        assert_eq!(
            &fused[..],
            &[
                Instr::PushLocal(1),
                Instr::PushSiblingInstOf { sib: 0, argc: 1 },
            ]
        );
        roundtrip(code);
    }
}
