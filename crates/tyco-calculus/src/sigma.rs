//! The identifier-translation function σ and syntactic helpers for the
//! structural congruence of networks (§3 of the paper).
//!
//! When a prefixed process moves from site `r` to site `s` (rules SHIPM,
//! SHIPO, FETCH), its free identifiers are translated by the total function
//! σᵣˢ ("sigma from r, arriving at s"):
//!
//! ```text
//! σ(x)    = r.x      a plain name was implicitly located at the origin
//! σ(s.x)  = x        a name located at the destination becomes plain
//! σ(s'.x) = s'.x     other located names are untouched
//! ```
//!
//! and identically for class variables.

use tyco_syntax::ast::*;

/// Translate a name reference moving from site `from` to site `to`.
pub fn sigma_name(r: &NameRef, from: &str, to: &str) -> NameRef {
    match r {
        NameRef::Plain(x) => NameRef::Located(from.to_string(), x.clone()),
        NameRef::Located(s, x) if s == to => NameRef::Plain(x.clone()),
        NameRef::Located(s, x) => NameRef::Located(s.clone(), x.clone()),
    }
}

/// Translate a class reference moving from site `from` to site `to`.
pub fn sigma_class(r: &ClassRef, from: &str, to: &str) -> ClassRef {
    match r {
        ClassRef::Plain(x) => ClassRef::Located(from.to_string(), x.clone()),
        ClassRef::Located(s, x) if s == to => ClassRef::Plain(x.clone()),
        ClassRef::Located(s, x) => ClassRef::Located(s.clone(), x.clone()),
    }
}

/// Apply σ to every *free* identifier of a process moving from `from` to
/// `to`. Bound occurrences (under `new`, method/class parameters, `def`
/// class names, `import` binders) are untouched, exactly as in the paper's
/// `Mσr` / `Dσr`.
pub fn sigma_proc(p: &Proc, from: &str, to: &str) -> Proc {
    let mut bound_names: Vec<String> = Vec::new();
    let mut bound_classes: Vec<String> = Vec::new();
    sigma_rec(p, from, to, &mut bound_names, &mut bound_classes)
}

fn name_is_bound(bound: &[String], r: &NameRef) -> bool {
    matches!(r, NameRef::Plain(x) if bound.iter().any(|b| b == x))
}

fn sigma_name_in(r: &NameRef, from: &str, to: &str, bound: &[String]) -> NameRef {
    if name_is_bound(bound, r) {
        r.clone()
    } else {
        sigma_name(r, from, to)
    }
}

fn sigma_expr(e: &Expr, from: &str, to: &str, bound: &[String]) -> Expr {
    match e {
        Expr::Name(r) => Expr::Name(sigma_name_in(r, from, to, bound)),
        Expr::Lit(_) => e.clone(),
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(sigma_expr(a, from, to, bound)),
            Box::new(sigma_expr(b, from, to, bound)),
        ),
        Expr::Un(op, a) => Expr::Un(*op, Box::new(sigma_expr(a, from, to, bound))),
    }
}

fn sigma_rec(p: &Proc, from: &str, to: &str, bn: &mut Vec<String>, bc: &mut Vec<String>) -> Proc {
    match p {
        Proc::Nil => Proc::Nil,
        Proc::Par(ps) => Proc::Par(ps.iter().map(|q| sigma_rec(q, from, to, bn, bc)).collect()),
        Proc::New {
            binders,
            body,
            span,
        } => {
            let n = bn.len();
            bn.extend(binders.iter().cloned());
            let body = Box::new(sigma_rec(body, from, to, bn, bc));
            bn.truncate(n);
            Proc::New {
                binders: binders.clone(),
                body,
                span: *span,
            }
        }
        Proc::ExportNew {
            binders,
            body,
            span,
        } => {
            let n = bn.len();
            bn.extend(binders.iter().cloned());
            let body = Box::new(sigma_rec(body, from, to, bn, bc));
            bn.truncate(n);
            Proc::ExportNew {
                binders: binders.clone(),
                body,
                span: *span,
            }
        }
        Proc::Msg {
            target,
            label,
            args,
            span,
        } => Proc::Msg {
            target: sigma_name_in(target, from, to, bn),
            label: label.clone(),
            args: args.iter().map(|a| sigma_expr(a, from, to, bn)).collect(),
            span: *span,
        },
        Proc::Obj {
            target,
            methods,
            span,
        } => Proc::Obj {
            target: sigma_name_in(target, from, to, bn),
            methods: methods
                .iter()
                .map(|m| {
                    let n = bn.len();
                    bn.extend(m.params.iter().cloned());
                    let body = sigma_rec(&m.body, from, to, bn, bc);
                    bn.truncate(n);
                    Method {
                        label: m.label.clone(),
                        params: m.params.clone(),
                        body,
                        span: m.span,
                    }
                })
                .collect(),
            span: *span,
        },
        Proc::Inst { class, args, span } => {
            let class = match class {
                ClassRef::Plain(x) if bc.iter().any(|b| b == x) => class.clone(),
                other => sigma_class(other, from, to),
            };
            Proc::Inst {
                class,
                args: args.iter().map(|a| sigma_expr(a, from, to, bn)).collect(),
                span: *span,
            }
        }
        Proc::Def { defs, body, span } | Proc::ExportDef { defs, body, span } => {
            let c = bc.len();
            bc.extend(defs.iter().map(|d| d.name.clone()));
            let defs2: Vec<ClassDef> = defs
                .iter()
                .map(|d| {
                    let n = bn.len();
                    bn.extend(d.params.iter().cloned());
                    let body = sigma_rec(&d.body, from, to, bn, bc);
                    bn.truncate(n);
                    ClassDef {
                        name: d.name.clone(),
                        params: d.params.clone(),
                        body,
                        span: d.span,
                    }
                })
                .collect();
            let body2 = Box::new(sigma_rec(body, from, to, bn, bc));
            bc.truncate(c);
            if matches!(p, Proc::ExportDef { .. }) {
                Proc::ExportDef {
                    defs: defs2,
                    body: body2,
                    span: *span,
                }
            } else {
                Proc::Def {
                    defs: defs2,
                    body: body2,
                    span: *span,
                }
            }
        }
        Proc::ImportName {
            name,
            site,
            body,
            span,
        } => {
            let n = bn.len();
            bn.push(name.clone());
            let body = Box::new(sigma_rec(body, from, to, bn, bc));
            bn.truncate(n);
            Proc::ImportName {
                name: name.clone(),
                site: site.clone(),
                body,
                span: *span,
            }
        }
        Proc::ImportClass {
            class,
            site,
            body,
            span,
        } => {
            let c = bc.len();
            bc.push(class.clone());
            let body = Box::new(sigma_rec(body, from, to, bn, bc));
            bc.truncate(c);
            Proc::ImportClass {
                class: class.clone(),
                site: site.clone(),
                body,
                span: *span,
            }
        }
        Proc::If {
            cond,
            then_branch,
            else_branch,
            span,
        } => Proc::If {
            cond: sigma_expr(cond, from, to, bn),
            then_branch: Box::new(sigma_rec(then_branch, from, to, bn, bc)),
            else_branch: Box::new(sigma_rec(else_branch, from, to, bn, bc)),
            span: *span,
        },
        Proc::Print {
            args,
            newline,
            span,
        } => Proc::Print {
            args: args.iter().map(|a| sigma_expr(a, from, to, bn)).collect(),
            newline: *newline,
            span: *span,
        },
        Proc::Let {
            binder,
            target,
            label,
            args,
            body,
            span,
        } => {
            let target = sigma_name_in(target, from, to, bn);
            let args = args.iter().map(|a| sigma_expr(a, from, to, bn)).collect();
            let n = bn.len();
            bn.push(binder.clone());
            let body = Box::new(sigma_rec(body, from, to, bn, bc));
            bn.truncate(n);
            Proc::Let {
                binder: binder.clone(),
                target,
                label: label.clone(),
                args,
                body,
                span: *span,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyco_syntax::parse_program;
    use tyco_syntax::pretty::pretty;

    fn sig(src: &str, from: &str, to: &str) -> String {
        pretty(&sigma_proc(&parse_program(src).unwrap(), from, to))
    }

    #[test]
    fn plain_free_names_get_origin_prefix() {
        assert_eq!(sig("x!go[v]", "r", "s"), "r.x!go[r.v]");
    }

    #[test]
    fn destination_located_names_become_plain() {
        assert_eq!(sig("s.x!go[s.v]", "r", "s"), "x!go[v]");
    }

    #[test]
    fn third_party_names_untouched() {
        assert_eq!(sig("t.x!go[t.v]", "r", "s"), "t.x!go[t.v]");
    }

    #[test]
    fn bound_names_untouched() {
        assert_eq!(sig("new x in x![y]", "r", "s"), "new x in x!val[r.y]");
        assert_eq!(
            sig("a?{ m(p) = p![q] }", "r", "s"),
            "r.a?{m(p) = p!val[r.q]}"
        );
    }

    #[test]
    fn classes_translate_like_names() {
        assert_eq!(sig("X[v]", "r", "s"), "r.X[r.v]");
        assert_eq!(sig("s.X[1]", "r", "s"), "X[1]");
        assert_eq!(
            sig("def X(a) = X[a] in X[b]", "r", "s"),
            "def X(a) = X[a] in X[r.b]"
        );
    }

    #[test]
    fn paper_rpc_message_translation() {
        // Shipping `p!val[v, a]` from s to r where p is r-located at the
        // sender: r[p!l[s.v s.a]] — the argument names pick up `s.`.
        assert_eq!(sig("r.p!val[v, a]", "s", "r"), "p!val[s.v, s.a]");
    }

    #[test]
    fn sigma_round_trip_is_identity() {
        // σ_{s→r} ∘ σ_{r→s} = id on processes free over plain/r/s names.
        for src in [
            "x!go[v]",
            "s.x!go[w]",
            "new a (x![a] | a?(y) = print(y))",
            "def X(a) = Y[a] and Y(b) = 0 in X[u] | s.Z[2]",
            "import q from t in q![x]",
        ] {
            let p = parse_program(src).unwrap();
            let there = sigma_proc(&p, "r", "s");
            let back = sigma_proc(&there, "s", "r");
            assert_eq!(pretty(&back), pretty(&p), "failed for {src}");
        }
    }
}
