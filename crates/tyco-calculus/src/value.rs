//! Runtime values and environments of the calculus interpreter.

use std::fmt;
use std::rc::Rc;

/// A site identifier (dense index into the network's site table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u32);

/// A channel: globally identified by the site that allocated it plus a
/// per-network unique id. This is the semantic counterpart of the located
/// name `s.x` after scope extrusion to the network level (rules NEW/EXN).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChanId {
    pub site: SiteId,
    pub uid: u64,
}

/// A first-class runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    Unit,
    Int(i64),
    Bool(bool),
    Str(Rc<str>),
    Float(f64),
    Chan(ChanId),
}

impl Val {
    /// Render as the I/O port does (used by `print`).
    pub fn display(&self) -> String {
        match self {
            Val::Unit => "unit".to_string(),
            Val::Int(i) => i.to_string(),
            Val::Bool(b) => b.to_string(),
            Val::Str(s) => s.to_string(),
            Val::Float(x) => format!("{x:?}"),
            Val::Chan(c) => format!("#{}:{}", c.site.0, c.uid),
        }
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display())
    }
}

/// A binding: a value or a class (index into the network's class-group
/// arena plus the class name within the group).
#[derive(Debug, Clone)]
pub enum Binding {
    Val(Val),
    Class { group: usize, name: String },
}

/// A persistent environment (linked list of frames; cloning is O(1)).
#[derive(Debug, Clone, Default)]
pub struct Env(Option<Rc<Frame>>);

#[derive(Debug)]
struct Frame {
    name: String,
    binding: Binding,
    parent: Env,
}

impl Env {
    pub fn empty() -> Env {
        Env(None)
    }

    /// Extend with one binding (returns a new environment).
    pub fn bind(&self, name: impl Into<String>, binding: Binding) -> Env {
        Env(Some(Rc::new(Frame {
            name: name.into(),
            binding,
            parent: self.clone(),
        })))
    }

    /// Look up the innermost binding for `name`.
    pub fn lookup(&self, name: &str) -> Option<&Binding> {
        let mut cur = self;
        while let Some(frame) = &cur.0 {
            if frame.name == name {
                return Some(&frame.binding);
            }
            cur = &frame.parent;
        }
        None
    }

    /// Depth of the environment chain (diagnostics).
    pub fn depth(&self) -> usize {
        let mut n = 0;
        let mut cur = self;
        while let Some(frame) = &cur.0 {
            n += 1;
            cur = &frame.parent;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_shadowing() {
        let e = Env::empty()
            .bind("x", Binding::Val(Val::Int(1)))
            .bind("y", Binding::Val(Val::Int(2)))
            .bind("x", Binding::Val(Val::Int(3)));
        match e.lookup("x") {
            Some(Binding::Val(Val::Int(3))) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(e.lookup("z").is_none());
        assert_eq!(e.depth(), 3);
    }

    #[test]
    fn env_clone_shares_tail() {
        let base = Env::empty().bind("x", Binding::Val(Val::Int(1)));
        let a = base.bind("y", Binding::Val(Val::Int(2)));
        let b = base.bind("y", Binding::Val(Val::Int(3)));
        match (a.lookup("y"), b.lookup("y")) {
            (Some(Binding::Val(Val::Int(2))), Some(Binding::Val(Val::Int(3)))) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn val_display() {
        assert_eq!(Val::Int(-3).display(), "-3");
        assert_eq!(Val::Str("hi".into()).display(), "hi");
        assert_eq!(
            Val::Chan(ChanId {
                site: SiteId(1),
                uid: 4
            })
            .display(),
            "#1:4"
        );
        assert_eq!(Val::Float(2.5).display(), "2.5");
    }
}
