//! Edge-triggered thread wakeups for the threaded runtime.
//!
//! [`Notify`] replaces the `sleep(100µs)` lull polling the site and daemon
//! threads used to do in `cluster::run_threaded`: a thread with no work
//! parks on its `Notify` and is woken exactly when a producer hands it
//! something (a packet in its inbox, bytes from the fabric). The flag
//! makes the primitive race-free: a notification that arrives between the
//! "no work" check and the park is consumed immediately instead of lost.

use parking_lot::{Condvar, Mutex};
use std::time::Duration;

/// Anything a producer can kick awake. Two parking stories exist in the
/// runtime — threads blocked on a [`Notify`] condvar (daemons, workers,
/// the environment loop) and the transport's event loop blocked in
/// `Poller::wait` (woken through its self-pipe
/// [`crate::poller::PollWaker`]) — and this trait is what lets a
/// producer hand work to either without knowing which it is waking.
pub trait Wake: Send + Sync {
    fn wake(&self);
}

impl Wake for Notify {
    fn wake(&self) {
        self.notify();
    }
}

/// A one-shot, self-resetting wakeup flag (a minimal eventcount).
#[derive(Default)]
pub struct Notify {
    flagged: Mutex<bool>,
    cond: Condvar,
}

impl Notify {
    pub fn new() -> Notify {
        Notify::default()
    }

    /// Signal the parked (or about-to-park) waiter. Idempotent and cheap
    /// when the flag is already raised — a hot producer pays one
    /// uncontended lock, no syscall.
    pub fn notify(&self) {
        let mut f = self.flagged.lock();
        if !*f {
            *f = true;
            self.cond.notify_one();
        }
    }

    /// Park until notified or `timeout` elapses, then clear the flag.
    /// Returns immediately when a notification is already pending.
    pub fn wait_timeout(&self, timeout: Duration) {
        let mut f = self.flagged.lock();
        if !*f {
            self.cond.wait_for(&mut f, timeout);
        }
        *f = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn pending_notification_skips_the_park() {
        let n = Notify::new();
        n.notify();
        let t0 = Instant::now();
        n.wait_timeout(Duration::from_secs(5));
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "flag was pending; no wait"
        );
        // The flag is consumed: the next wait times out.
        let t0 = Instant::now();
        n.wait_timeout(Duration::from_millis(10));
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn cross_thread_wakeup() {
        let n = Arc::new(Notify::new());
        let n2 = n.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            n2.notify();
        });
        let t0 = Instant::now();
        n.wait_timeout(Duration::from_secs(10));
        assert!(t0.elapsed() < Duration::from_secs(5));
        h.join().unwrap();
    }
}
