//! Machine words: the tagged values held in VM registers, frames, channel
//! queues and the operand stack.
//!
//! §5 of the paper: *"Variables may now hold, besides local references,
//! network references. A local reference is a pointer to the heap of the
//! local site. A network reference … has a hardware independent
//! representation that keeps information on the remote variable, its site,
//! and IP address: `(HeapId, SiteId, IpAddress)`."*

use std::fmt;
use std::sync::Arc;

/// A node address — the implementation's stand-in for the paper's
/// `IpAddress` (nodes are simulated in-process; see `ditico-rt::fabric`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

/// A site identifier, unique network-wide (assigned by the name service).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SiteId(pub u32);

/// The network identity of a site: which node it runs on and its id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Identity {
    pub site: SiteId,
    pub node: NodeId,
}

/// A hardware-independent network reference: `(HeapId, SiteId, IpAddress)`.
///
/// `heap_id` indexes the *export table* of the owning site, never its raw
/// heap (raw pointers/indices stay private to a site).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NetRef {
    pub heap_id: u64,
    pub site: SiteId,
    pub node: NodeId,
}

impl fmt::Display for NetRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}:{}:{}", self.node.0, self.site.0, self.heap_id)
    }
}

/// A local heap reference to a channel.
pub type ChanRef = u32;

/// A reference to a class: a class-group heap object plus the index of the
/// class within the group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassRefW {
    pub group: u32,
    pub index: u8,
}

/// A tagged machine word.
#[derive(Debug, Clone, PartialEq)]
pub enum Word {
    Unit,
    Int(i64),
    Bool(bool),
    Float(f64),
    Str(Arc<str>),
    /// Local channel reference (pointer into this site's heap).
    Chan(ChanRef),
    /// Network reference to a channel on another site.
    NetChan(NetRef),
    /// Local class value.
    Class(ClassRefW),
    /// Network reference to a class defined at another site.
    NetClass(NetRef),
}

impl Word {
    /// Render as the I/O port does (matches
    /// `tyco_calculus::Val::display` for base values, so differential
    /// tests can compare outputs verbatim).
    pub fn display(&self) -> String {
        match self {
            Word::Unit => "unit".to_string(),
            Word::Int(i) => i.to_string(),
            Word::Bool(b) => b.to_string(),
            Word::Float(x) => format!("{x:?}"),
            Word::Str(s) => s.to_string(),
            Word::Chan(c) => format!("#chan{c}"),
            Word::NetChan(r) => format!("#chan{r}"),
            Word::Class(c) => format!("#class{}:{}", c.group, c.index),
            Word::NetClass(r) => format!("#class{r}"),
        }
    }

    pub fn type_name(&self) -> &'static str {
        match self {
            Word::Unit => "unit",
            Word::Int(_) => "int",
            Word::Bool(_) => "bool",
            Word::Float(_) => "float",
            Word::Str(_) => "string",
            Word::Chan(_) | Word::NetChan(_) => "channel",
            Word::Class(_) | Word::NetClass(_) => "class",
        }
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_is_small() {
        // Words sit in frames, queues and stacks by the million; keep them
        // at most 3 machine words (tag + payload).
        assert!(
            std::mem::size_of::<Word>() <= 24,
            "{}",
            std::mem::size_of::<Word>()
        );
    }

    #[test]
    fn netref_display() {
        let r = NetRef {
            heap_id: 7,
            site: SiteId(2),
            node: NodeId(1),
        };
        assert_eq!(r.to_string(), "@1:2:7");
    }

    #[test]
    fn display_matches_calculus_for_base_values() {
        assert_eq!(Word::Int(-3).display(), "-3");
        assert_eq!(Word::Bool(true).display(), "true");
        assert_eq!(Word::Float(2.5).display(), "2.5");
        assert_eq!(Word::Str("hi".into()).display(), "hi");
        assert_eq!(Word::Unit.display(), "unit");
    }
}
