//! Unit tests of the site-side network port (RtPort): packet shapes,
//! import caching and re-issue, and conservation accounting.

use crossbeam::channel::unbounded;
use ditico_rt::daemon::TermCounters;
use ditico_rt::site::{RtIncoming, RtPort};
use ditico_rt::wake::Notify;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use tyco_vm::codec::Packet;
use tyco_vm::port::{ImportReply, Incoming, NetPort};
use tyco_vm::wire::WireWord;
use tyco_vm::word::{Identity, NetRef, NodeId, SiteId};
use tyco_vm::ImportKind;

struct Rig {
    port: RtPort,
    out_rx: crossbeam::channel::Receiver<(SiteId, Packet)>,
    in_tx: crossbeam::channel::Sender<RtIncoming>,
    term: Arc<TermCounters>,
}

fn rig() -> Rig {
    let (out_tx, out_rx) = unbounded();
    let (in_tx, in_rx) = unbounded();
    let term = Arc::new(TermCounters::default());
    let port = RtPort::new(
        Identity {
            site: SiteId(3),
            node: NodeId(1),
        },
        "me".to_string(),
        out_tx,
        in_rx,
        Arc::new(Notify::new()),
        term.clone(),
    );
    Rig {
        port,
        out_rx,
        in_tx,
        term,
    }
}

fn some_ref() -> NetRef {
    NetRef {
        heap_id: 4,
        site: SiteId(0),
        node: NodeId(0),
    }
}

#[test]
fn register_emits_ns_packet_with_lexeme() {
    let mut r = rig();
    r.port.register("p", WireWord::Chan(some_ref()));
    r.port.flush();
    match r.out_rx.try_recv().unwrap() {
        (
            SiteId(3),
            Packet::NsRegister {
                from_site,
                site_lexeme,
                name,
                ..
            },
        ) => {
            assert_eq!(from_site, SiteId(3));
            assert_eq!(site_lexeme, "me");
            assert_eq!(name, "p");
        }
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(r.term.injected.load(Ordering::SeqCst), 1);
}

#[test]
fn import_pends_then_caches_then_ready() {
    let mut r = rig();
    // First import: pending, emits a lookup.
    let reply = r.port.import("srv", "p", ImportKind::Name);
    let req = match reply {
        ImportReply::Pending(req) => req,
        other => panic!("unexpected {other:?}"),
    };
    r.port.flush();
    assert!(matches!(
        r.out_rx.try_recv().unwrap().1,
        Packet::NsImport { .. }
    ));
    assert_eq!(r.port.pending_imports(), 1);

    // The resolution arrives; poll surfaces ImportReady and fills the cache.
    let value = WireWord::Chan(some_ref());
    r.in_tx
        .send(RtIncoming::ImportResolved {
            req,
            result: Ok(value.clone()),
        })
        .unwrap();
    assert_eq!(r.port.inbox_len(), 1);
    match r.port.poll() {
        Some(Incoming::ImportReady { req: got }) => assert_eq!(got, req),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(r.port.pending_imports(), 0);

    // Re-executed import answers Ready from the cache; no new packet.
    match r.port.import("srv", "p", ImportKind::Name) {
        ImportReply::Ready(w) => assert_eq!(w, value),
        other => panic!("unexpected {other:?}"),
    }
    r.port.flush();
    assert!(r.out_rx.try_recv().is_err());
    // The cache is kind-sensitive: a CLASS import of the same name asks
    // the name service again.
    assert!(matches!(
        r.port.import("srv", "p", ImportKind::Class),
        ImportReply::Pending(_)
    ));
}

#[test]
fn failed_import_surfaces_reason() {
    let mut r = rig();
    let ImportReply::Pending(req) = r.port.import("srv", "ghost", ImportKind::Name) else {
        panic!("expected pending");
    };
    r.in_tx
        .send(RtIncoming::ImportResolved {
            req,
            result: Err("no such identifier".into()),
        })
        .unwrap();
    match r.port.poll() {
        Some(Incoming::ImportFailed { req: got, reason }) => {
            assert_eq!(got, req);
            assert!(reason.contains("no such"));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn resend_pending_reissues_lookups_after_failover() {
    let mut r = rig();
    let _ = r.port.import("srv", "a", ImportKind::Name);
    let _ = r.port.import("srv", "b", ImportKind::Class);
    r.port.flush();
    // Drain the two original lookups.
    assert_eq!(r.out_rx.try_iter().count(), 2);
    r.port.resend_pending_imports();
    let reissued: Vec<Packet> = r.out_rx.try_iter().map(|(_, p)| p).collect();
    assert_eq!(reissued.len(), 2);
    for p in reissued {
        assert!(matches!(p, Packet::NsImport { .. }));
    }
    assert_eq!(
        r.port.pending_imports(),
        2,
        "pending set unchanged by resend"
    );
}

#[test]
fn ship_operations_produce_correctly_addressed_packets() {
    let mut r = rig();
    let dest = NetRef {
        heap_id: 8,
        site: SiteId(5),
        node: NodeId(2),
    };
    r.port.send_msg(dest, "go", vec![WireWord::Int(1)]);
    r.port.flush();
    match r.out_rx.try_recv().unwrap().1 {
        Packet::Msg {
            dest: d,
            label,
            args,
        } => {
            assert_eq!(d, dest);
            assert_eq!(label, "go");
            assert_eq!(args, vec![WireWord::Int(1)]);
        }
        other => panic!("unexpected {other:?}"),
    }
    match r.port.fetch(dest) {
        tyco_vm::FetchReplyNow::Pending(_) => {}
        other => panic!("unexpected {other:?}"),
    }
    r.port.flush();
    match r.out_rx.try_recv().unwrap().1 {
        Packet::FetchReq {
            class, reply_to, ..
        } => {
            assert_eq!(class, dest);
            assert_eq!(reply_to, r.port.identity());
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn conservation_counts_poll_and_send() {
    let mut r = rig();
    r.port.send_msg(some_ref(), "x", vec![]);
    r.port.flush();
    assert_eq!(r.term.injected.load(Ordering::SeqCst), 1);
    r.in_tx
        .send(RtIncoming::Vm(Incoming::Msg {
            dest: 0,
            label: "x".into(),
            args: vec![],
        }))
        .unwrap();
    assert!(r.port.poll().is_some());
    assert_eq!(r.term.consumed.load(Ordering::SeqCst), 1);
    assert!(
        r.port.poll().is_none(),
        "empty inbox polls None without counting"
    );
    assert_eq!(r.term.consumed.load(Ordering::SeqCst), 1);
}
