//! Lease-based cache of resolved name bindings, one per node daemon.
//!
//! The sharded name service (see `crate::nameservice`) answers lookups
//! with [`tyco_vm::codec::Packet::NsLease`] grants: the binding plus its
//! re-export epoch, good for the configured TTL. The importing daemon
//! stores the grant here, and any later import of the same `(site, name)`
//! from any site on the node is answered locally — zero wire round-trips
//! — until the lease expires or the owning shard broadcasts an epoch-bump
//! invalidation. This is the naming analogue of the content-addressed
//! `CodeCache`: together they make a warm repeat import fully local.
//!
//! A TTL of zero disables the cache the same way a `CodeCache` capacity
//! of zero does: inserts are dropped and every lookup misses, so call
//! sites never special-case "caching off".

use std::collections::HashMap;
use tyco_vm::codec::TypeStamp;
use tyco_vm::wire::WireWord;

/// A cached binding with its lease deadline.
#[derive(Debug, Clone)]
struct Lease {
    value: WireWord,
    stamp: Option<TypeStamp>,
    epoch: u64,
    expires_ns: u64,
}

/// Counters mirrored into the daemon's [`crate::nameservice::NsStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NameCacheStats {
    /// Lookups answered from a live lease.
    pub hits: u64,
    /// Lookups with no cached entry.
    pub misses: u64,
    /// Lookups that found an entry whose lease had run out.
    pub expired: u64,
    /// Entries dropped by an owner's epoch-bump invalidation.
    pub invalidations: u64,
}

/// Per-node cache of leased name bindings.
#[derive(Debug, Default)]
pub struct NameCache {
    entries: HashMap<(String, String), Lease>,
    /// Lease TTL; 0 disables the cache entirely.
    lease_ns: u64,
    pub stats: NameCacheStats,
}

impl NameCache {
    pub fn new(lease_ns: u64) -> NameCache {
        NameCache {
            lease_ns,
            ..NameCache::default()
        }
    }

    /// Is caching enabled at all?
    pub fn enabled(&self) -> bool {
        self.lease_ns > 0
    }

    /// Live entries (diagnostics; expired entries linger until probed).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Store a lease granted at `now_ns`. A grant from an older epoch
    /// never replaces a newer one (replies can race an invalidation).
    pub fn insert(
        &mut self,
        site: &str,
        name: &str,
        value: WireWord,
        stamp: Option<TypeStamp>,
        epoch: u64,
        now_ns: u64,
    ) {
        if !self.enabled() {
            return;
        }
        let key = (site.to_string(), name.to_string());
        if let Some(old) = self.entries.get(&key) {
            if old.epoch > epoch {
                return;
            }
        }
        self.entries.insert(
            key,
            Lease {
                value,
                stamp,
                epoch,
                expires_ns: now_ns.saturating_add(self.lease_ns),
            },
        );
    }

    /// Look up a binding at `now_ns`. A hit returns the value, its stamp
    /// and epoch; an expired entry is dropped and counted separately from
    /// a plain miss (the run report surfaces the distinction).
    pub fn get(
        &mut self,
        site: &str,
        name: &str,
        now_ns: u64,
    ) -> Option<(WireWord, Option<TypeStamp>, u64)> {
        let key = (site.to_string(), name.to_string());
        match self.entries.get(&key) {
            None => {
                self.stats.misses += 1;
                None
            }
            Some(l) if now_ns >= l.expires_ns => {
                self.entries.remove(&key);
                self.stats.expired += 1;
                None
            }
            Some(l) => {
                self.stats.hits += 1;
                Some((l.value.clone(), l.stamp.clone(), l.epoch))
            }
        }
    }

    /// Owner bumped the binding's epoch: drop the entry unless we already
    /// hold a lease from that epoch or newer (packets can reorder across
    /// different senders). Returns whether an entry was dropped.
    pub fn invalidate(&mut self, site: &str, name: &str, epoch: u64) -> bool {
        let key = (site.to_string(), name.to_string());
        if let Some(l) = self.entries.get(&key) {
            if l.epoch < epoch {
                self.entries.remove(&key);
                self.stats.invalidations += 1;
                return true;
            }
        }
        false
    }

    /// Drop everything (node restart: leases do not survive a crash).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyco_vm::word::{NetRef, NodeId, SiteId};

    fn chan(h: u64) -> WireWord {
        WireWord::Chan(NetRef {
            heap_id: h,
            site: SiteId(0),
            node: NodeId(0),
        })
    }

    #[test]
    fn hit_until_ttl_then_expired_then_miss() {
        let mut c = NameCache::new(100);
        c.insert("s", "p", chan(1), None, 1, 1_000);
        assert!(c.get("s", "p", 1_050).is_some());
        assert!(c.get("s", "p", 1_099).is_some());
        // Deadline reached: the entry is dropped and counted as expired…
        assert!(c.get("s", "p", 1_100).is_none());
        // …and the next probe is a plain miss (entry gone).
        assert!(c.get("s", "p", 1_100).is_none());
        assert_eq!(c.stats.hits, 2);
        assert_eq!(c.stats.expired, 1);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn invalidation_respects_epochs() {
        let mut c = NameCache::new(1_000);
        c.insert("s", "p", chan(1), None, 2, 0);
        // A stale invalidation (epoch ≤ held) is a no-op.
        assert!(!c.invalidate("s", "p", 2));
        assert!(c.get("s", "p", 1).is_some());
        // A newer epoch drops the lease.
        assert!(c.invalidate("s", "p", 3));
        assert!(c.get("s", "p", 1).is_none());
        assert_eq!(c.stats.invalidations, 1);
    }

    #[test]
    fn older_epoch_never_replaces_newer() {
        let mut c = NameCache::new(1_000);
        c.insert("s", "p", chan(2), None, 5, 0);
        c.insert("s", "p", chan(1), None, 4, 0);
        match c.get("s", "p", 1) {
            Some((WireWord::Chan(r), _, 5)) => assert_eq!(r.heap_id, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn zero_ttl_disables_everything() {
        let mut c = NameCache::new(0);
        assert!(!c.enabled());
        c.insert("s", "p", chan(1), None, 1, 0);
        assert!(c.is_empty());
        assert!(c.get("s", "p", 0).is_none());
        assert_eq!(c.stats.misses, 1);
    }
}
