//! Experiment C7 — byte-code compactness and efficiency.
//!
//! §5 of the paper: the TyCOVM "design has proved to be quite compact and
//! efficient when compared with related languages such as Pict, Oz and
//! Join/JoCaml". We cannot re-run 2000-era Pict, so the comparator is this
//! repository's own tree-walking interpreter of the calculus (the
//! reference semantics): same programs, same observables, measured
//! wall-clock — the VM's speedup quantifies what compiling to byte-code
//! buys. Code sizes (instructions per program) are printed as the
//! compactness metric.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ditico_bench::cell_churn;
use tyco_calculus::Network;
use tyco_syntax::parse_core;
use tyco_vm::{compile, LoopbackPort, Machine};

fn programs() -> Vec<(&'static str, String, u64)> {
    vec![
        ("cell_churn", cell_churn(300), 300),
        (
            "counter",
            "def L(n) = if n > 0 then L[n - 1] else println(\"x\") in L[2000]".to_string(),
            2000,
        ),
        (
            "rpc_chain",
            r#"
            def Srv(s) = s?{ v(x, r) = r![x + 1] | Srv[s] }
            and Loop(s, n) =
                if n > 0 then new a (s!v[n, a] | a?(x) = Loop[s, n - 1]) else println("x")
            in new s (Srv[s] | Loop[s, 300])
            "#
            .to_string(),
            300,
        ),
        (
            "fib_processes",
            r#"
            def Fib(n, r) =
                if n < 2 then r![n]
                else new a new b (Fib[n - 1, a] | Fib[n - 2, b]
                                  | a?(x) = b?(y) = r![x + y])
            in new out (Fib[15, out] | out?(v) = print(v))
            "#
            .to_string(),
            1,
        ),
    ]
}

fn size_table() {
    println!("\n=== C7: code-size (compactness) per program ===");
    println!(
        "{:<16} {:>12} {:>10} {:>10}",
        "program", "ast nodes", "blocks", "instrs"
    );
    for (name, src, _) in programs() {
        let ast = parse_core(&src).unwrap();
        let prog = compile(&ast).unwrap();
        println!(
            "{:<16} {:>12} {:>10} {:>10}",
            name,
            ast.size(),
            prog.blocks.len(),
            prog.instr_count()
        );
    }
}

fn bench_vm_vs_interp(c: &mut Criterion) {
    size_table();

    let mut group = c.benchmark_group("c7_vm_vs_interpreter");
    group.sample_size(15);
    for (name, src, elems) in programs() {
        let ast = parse_core(&src).unwrap();
        let prog = compile(&ast).unwrap();
        group.throughput(Throughput::Elements(elems));
        group.bench_with_input(BenchmarkId::new("vm", name), &prog, |b, prog| {
            b.iter(|| {
                let mut m = Machine::new(prog.clone(), LoopbackPort::new("main"));
                m.run_to_quiescence(u64::MAX).expect("vm runs");
                m.io.len()
            });
        });
        group.bench_with_input(BenchmarkId::new("interpreter", name), &ast, |b, ast| {
            b.iter(|| {
                let mut net = Network::new();
                net.add_site("main", ast.clone());
                let out = net.run(u64::MAX).expect("interp runs");
                assert!(out.quiescent);
                out.outputs[0].len()
            });
        });
    }
    group.finish();

    // Differential sanity inside the bench: identical observables.
    for (name, src, _) in programs() {
        let ast = parse_core(&src).unwrap();
        let prog = compile(&ast).unwrap();
        let mut m = Machine::new(prog, LoopbackPort::new("main"));
        m.run_to_quiescence(u64::MAX).unwrap();
        let mut vm_out = m.io.clone();
        vm_out.sort();
        let mut net = Network::new();
        net.add_site("main", ast);
        let out = net.run(u64::MAX).unwrap();
        assert_eq!(vm_out, out.line_multiset(), "observable mismatch in {name}");
    }
}

criterion_group!(benches, bench_vm_vs_interp);
criterion_main!(benches);
