//! Every worked example in the paper, end-to-end on the public API,
//! with the structural claims of §3–§5 asserted.

use ditico::{Env, FabricMode, LinkProfile, RunLimits, Topology};

fn paper_topology() -> Topology {
    Topology::paper_cluster()
}

/// §2 — the polymorphic cell (one class at `int` and at `bool`).
#[test]
fn section2_polymorphic_cell() {
    let report = Env::local()
        .site(
            "main",
            r#"
            def Cell(self, v) =
                self ? {
                    read(r)  = r![v] | Cell[self, v],
                    write(u) = Cell[self, u]
                }
            in
            new x (Cell[x, 9]    | new z (x!read[z] | z?(w) = print(w)))
          | new y (Cell[y, true] | y!write[false] | new z (y!read[z] | z?(w) = print(w)))
            "#,
        )
        .unwrap()
        .run()
        .unwrap();
    let mut out = report.output("main").to_vec();
    out.sort();
    assert_eq!(
        out,
        ["9", "false"].map(String::from),
        "int cell read 9, bool cell read false"
    );
}

/// §3 — the remote procedure call, with the two-reduction-steps claim.
#[test]
fn section3_rpc_two_steps() {
    let env = Env::new(paper_topology())
        .site(
            "r",
            "def P(p) = p?{ val(x, a) = a![x + 100] | P[p] } in export new p in P[p]",
        )
        .unwrap()
        .site("s", "import p from r in let y = p!val[1] in print(y)")
        .unwrap();
    let report = env.run().unwrap();
    assert_eq!(report.output("s"), ["101".to_string()]);
    // Two SHIPM steps total (request, reply), each followed by exactly one
    // local rendez-vous at the receiving site.
    let s = &report.stats["s"];
    let r = &report.stats["r"];
    assert_eq!(
        s.msgs_sent + r.msgs_sent,
        2,
        "invocation + reply each ship once"
    );
    assert_eq!(s.msgs_recv + r.msgs_recv, 2);
    assert_eq!(s.comm + r.comm, 2, "one rendez-vous per shipped message");
}

/// §4 — applet server, code-fetching variant: the byte-code moves to the
/// client, all instantiation is local afterwards.
#[test]
fn section4_applet_fetch() {
    let report = Env::new(paper_topology())
        .site(
            "server",
            r#"
            export def Applet1(v) = println("a1", v)
            and Applet2(v) = println("a2", v)
            in 0
            "#,
        )
        .unwrap()
        .site(
            "client",
            "import Applet1 from server in (Applet1[1] | Applet1[2] | Applet1[3])",
        )
        .unwrap()
        .run()
        .unwrap();
    let mut lines = report.output("client").to_vec();
    lines.sort();
    assert_eq!(lines, ["a1 1", "a1 2", "a1 3"].map(String::from));
    let client = &report.stats["client"];
    assert_eq!(client.inst, 3, "all instantiations local");
    assert_eq!(report.stats["server"].inst, 0);
    // The three concurrent instantiations may race to fetch before the
    // code is linked, but at least one download and at most three happen,
    // and later instantiation would hit the cache.
    assert!(
        client.fetches >= 1 && client.fetches <= 3,
        "{}",
        client.fetches
    );
}

/// §4 — applet server, code-shipping variant: the object migrates to the
/// client-allocated name and runs there.
#[test]
fn section4_applet_ship() {
    let report = Env::new(paper_topology())
        .site(
            "server",
            r#"
            def AppletServer(self) =
                self ? { applet(p) = (p?(x) = println("ran at client", x)) | AppletServer[self] }
            in export new appletserver in AppletServer[appletserver]
            "#,
        )
        .unwrap()
        .site(
            "client",
            "import appletserver from server in new p (appletserver!applet[p] | p![9])",
        )
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(report.output("client"), ["ran at client 9".to_string()]);
    assert_eq!(report.stats["server"].objs_sent, 1, "SHIPO happened once");
    assert_eq!(report.stats["client"].objs_recv, 1);
}

/// §4 — the SETI example: install once, crunch forever at the client.
#[test]
fn section4_seti() {
    let mut built = Env::new(paper_topology())
        .site(
            "seti",
            r#"
            new database (
                export def Install() = println("installed") | Go[]
                and Go() = let data = database!newChunk[] in (println(data) | Go[])
                in
                def Database(self, n) =
                    self ? { newChunk(r) = r![n] | Database[self, n + 1] }
                in Database[database, 0]
            )
            "#,
        )
        .unwrap()
        .site("client", "import Install from seti in Install[]")
        .unwrap()
        .build()
        .unwrap();
    let report = built.run_deterministic(RunLimits {
        max_instrs: 100_000,
        fuel_per_slice: 512,
        ..RunLimits::default()
    });
    let out = report.output("client");
    assert_eq!(out.first().map(String::as_str), Some("installed"));
    // Chunks arrive in order at the single client.
    assert!(out.len() > 3, "{out:?}");
    assert_eq!(out[1], "0");
    assert_eq!(out[2], "1");
    assert_eq!(
        report.stats["seti"].fetches_served, 1,
        "Install+Go downloaded once"
    );
}

/// §5 — local (same node) interactions avoid the network entirely, remote
/// ones pay for it: the shared-memory optimization claim.
#[test]
fn section5_local_vs_remote_paths() {
    let server = "def Srv(p) = p?{ val(x, a) = a![x] | Srv[p] } in export new p in Srv[p]";
    let client = r#"
        import p from server in
        def Loop(n) =
            if n > 0 then new a (p!val[n, a] | a?(v) = Loop[n - 1]) else println("done")
        in Loop[10]
    "#;
    // Same node.
    let local = Env::new(Topology {
        nodes: 1,
        mode: FabricMode::Virtual,
        link: LinkProfile::myrinet(),
        ns_replicas: 1,
    })
    .site("server", server)
    .unwrap()
    .site("client", client)
    .unwrap()
    .run()
    .unwrap();
    // Different nodes.
    let remote = Env::new(Topology {
        nodes: 2,
        mode: FabricMode::Virtual,
        link: LinkProfile::myrinet(),
        ns_replicas: 1,
    })
    .site("server", server)
    .unwrap()
    .site("client", client)
    .unwrap()
    .run()
    .unwrap();
    assert_eq!(local.output("client"), ["done".to_string()]);
    assert_eq!(remote.output("client"), ["done".to_string()]);
    assert_eq!(
        local.fabric_packets, 0,
        "same-node traffic is shared-memory only"
    );
    assert!(remote.fabric_packets >= 20, "{}", remote.fabric_packets);
    assert_eq!(local.virtual_ns, 0);
    assert!(remote.virtual_ns > 0);
}

/// §5 — fine granularity: across the paper's programs, threads average a
/// few tens of byte-code instructions.
#[test]
fn section5_thread_granularity() {
    let report = Env::local()
        .site(
            "main",
            r#"
            def Cell(self, v) =
                self ? { read(r) = r![v] | Cell[self, v], write(u) = Cell[self, u] }
            and Driver(cell, n) =
                if n > 0 then
                    (cell!write[n] | new z (cell!read[z] | z?(w) = Driver[cell, n - 1]))
                else println("finished")
            in new x (Cell[x, 0] | Driver[x, 50])
            "#,
        )
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(report.output("main"), ["finished".to_string()]);
    let g = &report.stats["main"].thread_len;
    assert!(g.count > 100, "many threads: {}", g.count);
    assert!(
        g.mean() < 48.0,
        "a few tens of instructions per thread, got {}",
        g.mean()
    );
}

/// The translation of export/import given in §4 (lexical scoping through
/// located identifiers): a pretty-printed, σ-translated program still runs
/// and produces the same result as the import-based original.
#[test]
fn section4_translation_semantics() {
    // Direct located identifiers instead of import.
    let report = Env::new(paper_topology())
        .site(
            "server",
            "def S(p) = p?{ go(n, a) = a![n * 7] | S[p] } in export new p in S[p]",
        )
        .unwrap()
        .site("client", "new a (server.p!go[6, a] | a?(v) = print(v))")
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(report.output("client"), ["42".to_string()]);
}
