//! Figure 1 of the paper as a running configuration: four dual-processor
//! nodes (two sites each) behind a switch. The same workload is run on
//! three link profiles — the 1 Gb/s Myrinet the paper bought, the
//! 100 Mb/s Fast Ethernet it compares against, and an ideal fabric — to
//! show why the paper insists on a low-latency switch for fine-grained
//! traffic.
//!
//! ```sh
//! cargo run --example cluster_sim
//! ```

use ditico::{Env, FabricMode, LinkProfile, Topology};

/// One coordinator + seven workers hammering it with small requests: the
/// grain of traffic the paper's model generates.
fn build(link: LinkProfile) -> Env {
    let mut env = Env::new(Topology {
        nodes: 4, // four PCs
        mode: FabricMode::Virtual,
        link,
        ns_replicas: 1,
    })
    .site_on(
        0,
        "coord",
        r#"
        def Coord(self, n) =
            self ? { work(x, r) = r![x + n] | Coord[self, n + 1] }
        in export new coord in Coord[coord, 0]
        "#,
    )
    .expect("coordinator compiles");

    // Two sites per node (dual processors), minus the coordinator slot.
    let mut w = 0;
    for node in 0..4usize {
        for _cpu in 0..2 {
            if node == 0 && w == 0 {
                w += 1;
                continue;
            }
            env = env
                .site_on(
                    node,
                    &format!("w{w}"),
                    r#"
                    import coord from coord in
                    def Loop(n) =
                        if n > 0 then new a (coord!work[n, a] | a?(v) = Loop[n - 1])
                        else println("done")
                    in Loop[25]
                    "#,
                )
                .expect("worker compiles");
            w += 1;
        }
    }
    env
}

fn main() {
    println!("Fig. 1 platform: 4 nodes x 2 sites, 7 workers x 25 RPCs to one coordinator\n");
    println!(
        "{:<16} {:>14} {:>12} {:>12}",
        "link", "virtual time", "packets", "bytes"
    );
    for (name, link) in [
        ("ideal", LinkProfile::ideal()),
        ("myrinet 1Gb/s", LinkProfile::myrinet()),
        ("ethernet 100Mb/s", LinkProfile::fast_ethernet()),
        ("wan 10Mb/s", LinkProfile::wan()),
    ] {
        let report = build(link).run().expect("runs");
        let done = report
            .outputs
            .iter()
            .filter(|(k, v)| k.starts_with('w') && v.iter().any(|l| l == "done"))
            .count();
        assert_eq!(done, 7, "all workers must finish");
        println!(
            "{:<16} {:>11} µs {:>12} {:>12}",
            name,
            report.virtual_ns / 1_000,
            report.fabric_packets,
            report.fabric_bytes
        );
    }
    println!("\nLatency dominates this fine-grained workload: the Myrinet-class");
    println!("switch tracks the ideal fabric far more closely than Ethernet/WAN,");
    println!("which is exactly the paper's rationale for the hardware platform.");
}
