//! The transport's readiness-driven event loop ([`IoBackend::Event`]).
//!
//! One `tyco-net` thread owns the listener, every peer socket, every
//! in-flight dial and every deadline. It parks in [`Poller::wait`] with
//! the timer wheel's next deadline as its timeout and is interrupted by
//! exactly three things: socket readiness, a timer firing, or a producer
//! thread ringing the wake pipe after queuing outbound frames. Where the
//! thread-per-peer baseline spends `2·peers + 3` threads and a tangle of
//! sleep loops, this file spends one thread and zero sleeps.
//!
//! Design points, argued in DESIGN.md §15:
//!
//! * **Zero-copy inbound.** Reads land directly in a per-connection
//!   `BytesMut` tail; once at least one complete frame is buffered the
//!   accumulator is frozen and frames are carved off as [`Bytes`] views
//!   (`codec::decode_frame_view`), so a payload crosses from kernel to
//!   daemon with a single copy at the `read` call. The partial tail, if
//!   any, is copied into the next accumulator — bounded by one frame,
//!   amortized O(1) per byte. Payloads tiny relative to the accumulator
//!   are copied out rather than handed over as views, so a retained
//!   small payload never pins the whole read buffer ([`PIN_DENOM`]).
//! * **Writable-gated vectored output.** Each connection keeps a deque
//!   of ready frame buffers; flushes gather up to [`MAX_IOV`] of them
//!   into one `write_vectored`. `EWOULDBLOCK` registers writable
//!   interest and parks the backlog (counted in `flush_stalls`) instead
//!   of parking a writer thread.
//! * **Concurrent dials.** Every peer address holds a nonblocking
//!   connect in flight simultaneously ([`poller::connect_start`]); the
//!   connect timeout and reconnect backoff are wheel deadlines. One dead
//!   peer costs one quiet socket, never a blocked thread.

use super::{backoff_delay, handle_frame, io_err, Inner, PeerConn};
use crate::poller::{
    connect_start, ConnectStart, Event, Interest, PendingConnect, Poller, TimerId, TimerWheel,
    WakeReader,
};
use bytes::{Buf, Bytes, BytesMut};
use std::collections::VecDeque;
use std::io::{IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tyco_vm::codec::{self, Packet, CONTROL_NODE, MAX_FRAME_LEN};
use tyco_vm::word::NodeId;

const TOKEN_WAKE: usize = 0;
const TOKEN_LISTENER: usize = 1;
/// Connection/dial slots start here; `token - SLOT_BASE` indexes `slots`.
const SLOT_BASE: usize = 2;

/// Bytes appended to the read accumulator per `read` call.
const READ_CHUNK: usize = 64 * 1024;
/// Reads per readiness event before yielding to other connections —
/// level-triggered polling re-reports leftover data, so fairness costs
/// nothing.
const READ_BUDGET: usize = 4;
/// Buffers gathered into one `write_vectored` (well under IOV_MAX).
const MAX_IOV: usize = 64;
/// Pin-amplification bound for zero-copy payload views: a decoded
/// payload smaller than `1/PIN_DENOM` of its backing read accumulator is
/// copied out instead of handed over as a view. A retained `Bytes` then
/// pins at most `PIN_DENOM`× its own size — never the whole multi-frame
/// accumulator (up to `READ_BUDGET × READ_CHUNK`) on behalf of one small
/// long-lived payload. Large payloads, where the copy would actually
/// cost something, stay zero-copy: they already *are* most of the buffer
/// they pin.
const PIN_DENOM: usize = 8;
/// Park ceiling: bounds stop-flag latency even if the wheel is empty.
const MAX_PARK: Duration = Duration::from_millis(500);

/// A connection being served: socket, owner record, decode accumulator
/// and outbound backlog.
struct ConnSlot {
    sock: TcpStream,
    peer: Arc<PeerConn>,
    /// Inbound accumulator; frozen into `Bytes` when a frame completes.
    rbuf: BytesMut,
    got_hello: bool,
    /// Outbound frames not yet on the wire; front buffer is `woff` in.
    wbufs: VecDeque<Bytes>,
    woff: usize,
    /// Whether writable interest is currently registered.
    want_write: bool,
    /// Index of the dialer that owns this connection (outbound only).
    dialer: Option<usize>,
}

/// A nonblocking connect in flight, waiting for writability or timeout.
struct DialSlot {
    pending: PendingConnect,
    dialer: usize,
    timer: Option<TimerId>,
}

enum Slot {
    Conn(ConnSlot),
    Dial(DialSlot),
}

/// Per-peer-address dial state: the event-loop re-encoding of what the
/// baseline's `connector_loop` kept on its thread's stack.
struct Dialer {
    addr: SocketAddr,
    attempts: u32,
    /// Nodes the last successful connection announced — declared
    /// permanently down if the retry budget runs out.
    last_nodes: Vec<NodeId>,
    done: bool,
}

#[derive(Clone, Copy)]
enum Timer {
    /// Periodic beacon on every live connection.
    Heartbeat,
    /// Reconnect backoff elapsed for dialer `.0`.
    Redial(usize),
    /// In-flight connect in slot `.0` ran out of patience.
    ConnectTimeout(usize),
}

struct NetLoop {
    inner: Arc<Inner>,
    poller: Poller,
    listener: Option<TcpListener>,
    wake_rx: WakeReader,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    dialers: Vec<Dialer>,
    wheel: TimerWheel<Timer>,
}

/// The poller with the wake pipe and listener already registered. Built
/// by [`prepare`] on `Transport::start`'s own thread so that a poller or
/// registration failure becomes a start error the caller sees — never a
/// silently dead `tyco-net` thread behind a transport that reported
/// success and then neither accepts, dials, nor beacons.
pub(super) struct NetIo {
    poller: Poller,
    listener: Option<TcpListener>,
    wake_rx: WakeReader,
}

pub(super) fn prepare(
    listener: Option<TcpListener>,
    wake_rx: WakeReader,
) -> std::io::Result<NetIo> {
    let mut poller = Poller::new()?;
    poller.register(wake_rx.raw_fd(), TOKEN_WAKE, Interest::READ)?;
    if let Some(l) = &listener {
        poller.register(l.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
    }
    Ok(NetIo {
        poller,
        listener,
        wake_rx,
    })
}

/// Entry point for the `tyco-net` thread.
pub(super) fn run(inner: Arc<Inner>, io: NetIo) {
    let NetIo {
        poller,
        listener,
        wake_rx,
    } = io;
    let dialers = inner
        .cfg
        .peers
        .iter()
        .map(|&addr| Dialer {
            addr,
            attempts: 0,
            last_nodes: Vec::new(),
            done: false,
        })
        .collect::<Vec<_>>();
    let hb_period = inner.cfg.hb_period;
    let mut nl = NetLoop {
        inner,
        poller,
        listener,
        wake_rx,
        slots: Vec::new(),
        free: Vec::new(),
        dialers,
        wheel: TimerWheel::new(Duration::from_millis(5), 256),
    };
    // Every dial starts NOW, concurrently — nothing serializes one
    // peer's connect behind another's.
    for i in 0..nl.dialers.len() {
        nl.start_dial(i);
    }
    nl.wheel.schedule_after(hb_period, Timer::Heartbeat);
    nl.run_loop();
    nl.shutdown_flush();
}

impl NetLoop {
    fn run_loop(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut due: Vec<Timer> = Vec::new();
        while !self.inner.stop.load(Ordering::Acquire) {
            let timeout = self
                .wheel
                .next_deadline()
                .map(|d| d.saturating_duration_since(Instant::now()))
                .unwrap_or(MAX_PARK)
                .min(MAX_PARK);
            events.clear();
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                return;
            }
            if self.inner.stop.load(Ordering::Acquire) {
                return;
            }
            for ev in &events {
                match ev.token {
                    TOKEN_WAKE => self.wake_rx.drain(),
                    TOKEN_LISTENER => self.accept_ready(),
                    t => self.slot_ready(t - SLOT_BASE, *ev),
                }
            }
            // Producers queued frames since the last pass: flush exactly
            // the connections they touched, O(marked) not O(conns).
            self.drain_dirty();
            due.clear();
            self.wheel.expire(Instant::now(), &mut due);
            for t in &due {
                match *t {
                    Timer::Heartbeat => {
                        self.emit_heartbeats();
                        self.wheel
                            .schedule_after(self.inner.cfg.hb_period, Timer::Heartbeat);
                    }
                    Timer::Redial(didx) => self.start_dial(didx),
                    Timer::ConnectTimeout(idx) => self.connect_timed_out(idx),
                }
            }
        }
    }

    fn alloc_slot(&mut self, slot: Slot) -> usize {
        match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        }
    }

    fn take_slot(&mut self, idx: usize) -> Option<Slot> {
        let s = self.slots.get_mut(idx)?.take();
        if s.is_some() {
            self.free.push(idx);
        }
        s
    }

    fn slot_ready(&mut self, idx: usize, ev: Event) {
        match self.slots.get(idx) {
            Some(Some(Slot::Dial(_))) if ev.writable || ev.closed => self.resolve_dial(idx),
            Some(Some(Slot::Dial(_))) => {}
            Some(Some(Slot::Conn(_))) => {
                if ev.readable || ev.closed {
                    self.conn_read(idx);
                }
                // Flush regardless: a handshake handled during the read
                // may have queued stashed frames, and a writable event
                // means the parked backlog can move.
                if matches!(self.slots.get(idx), Some(Some(Slot::Conn(_)))) {
                    self.conn_flush(idx);
                }
            }
            _ => {} // stale event for a slot already torn down
        }
    }

    // --- accepting ----------------------------------------------------

    fn accept_ready(&mut self) {
        let mut incoming = Vec::new();
        if let Some(l) = &self.listener {
            while let Ok((sock, _addr)) = l.accept() {
                incoming.push(sock);
            }
        }
        for sock in incoming {
            let _ = self.install_conn(sock, true, None);
        }
    }

    /// Wrap an established socket into a connection slot: nonblocking,
    /// registered for reads, hello queued and flushed.
    fn install_conn(
        &mut self,
        sock: TcpStream,
        accepted: bool,
        dialer: Option<usize>,
    ) -> std::io::Result<()> {
        sock.set_nonblocking(true)?;
        let _ = sock.set_nodelay(true);
        let fd = sock.as_raw_fd();
        let peer = PeerConn::new(self.inner.cfg.outbound_cap, accepted);
        let mut wbufs = VecDeque::new();
        wbufs.push_back(self.inner.hello_frame());
        let idx = self.alloc_slot(Slot::Conn(ConnSlot {
            sock,
            peer: peer.clone(),
            rbuf: BytesMut::new(),
            got_hello: false,
            wbufs,
            woff: 0,
            want_write: false,
            dialer,
        }));
        if let Err(e) = self.poller.register(fd, idx + SLOT_BASE, Interest::READ) {
            self.take_slot(idx);
            return Err(e);
        }
        // Only a registered connection is published: `peers_all_gone`
        // and the dirty path must never see a socket the loop cannot
        // service.
        peer.token.store(idx + SLOT_BASE, Ordering::Release);
        self.inner.conns.lock().push(peer);
        self.inner.ever_connected.store(true, Ordering::Release);
        self.conn_flush(idx);
        Ok(())
    }

    // --- dialing ------------------------------------------------------

    fn start_dial(&mut self, didx: usize) {
        if self.inner.stop.load(Ordering::Acquire) || self.dialers[didx].done {
            return;
        }
        let addr = self.dialers[didx].addr;
        match connect_start(&addr) {
            Ok(ConnectStart::Connected(sock)) => self.dial_connected(didx, sock),
            Ok(ConnectStart::Pending(p)) => {
                let fd = p.raw_fd();
                let idx = self.alloc_slot(Slot::Dial(DialSlot {
                    pending: p,
                    dialer: didx,
                    timer: None,
                }));
                if self
                    .poller
                    .register(fd, idx + SLOT_BASE, Interest::WRITE)
                    .is_err()
                {
                    self.take_slot(idx);
                    self.dial_failed(didx);
                    return;
                }
                let tid = self
                    .wheel
                    .schedule_after(self.inner.cfg.connect_timeout, Timer::ConnectTimeout(idx));
                if let Some(Some(Slot::Dial(d))) = self.slots.get_mut(idx) {
                    d.timer = Some(tid);
                }
            }
            Err(_) => self.dial_failed(didx),
        }
    }

    /// The socket reported writable (or errored): the connect resolved.
    fn resolve_dial(&mut self, idx: usize) {
        let Some(Slot::Dial(d)) = self.take_slot(idx) else {
            return;
        };
        if let Some(t) = d.timer {
            self.wheel.cancel(t);
        }
        let _ = self.poller.deregister(d.pending.raw_fd());
        match d.pending.finish() {
            Ok(sock) => self.dial_connected(d.dialer, sock),
            Err(_) => self.dial_failed(d.dialer),
        }
    }

    fn connect_timed_out(&mut self, idx: usize) {
        // Only meaningful if the slot still holds the dial this timer was
        // armed for (resolution cancels its timer, so a reused slot index
        // can never be hit by a stale timeout).
        if matches!(self.slots.get(idx), Some(Some(Slot::Dial(_)))) {
            let Some(Slot::Dial(d)) = self.take_slot(idx) else {
                return;
            };
            let _ = self.poller.deregister(d.pending.raw_fd());
            self.dial_failed(d.dialer);
        }
    }

    fn dial_connected(&mut self, didx: usize, sock: TcpStream) {
        if self.dialers[didx].attempts > 0 {
            self.inner.stats.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        self.dialers[didx].attempts = 0;
        if self.install_conn(sock, false, Some(didx)).is_err() {
            self.dial_failed(didx);
        }
    }

    fn dial_failed(&mut self, didx: usize) {
        let d = &mut self.dialers[didx];
        if d.attempts >= self.inner.cfg.max_retries {
            d.done = true;
            let nodes = std::mem::take(&mut d.last_nodes);
            self.inner.peer_exhausted(&nodes);
            return;
        }
        let delay = backoff_delay(
            self.inner.cfg.backoff_base,
            self.inner.cfg.backoff_cap,
            d.attempts,
        );
        d.attempts += 1;
        self.wheel.schedule_after(delay, Timer::Redial(didx));
    }

    // --- reading ------------------------------------------------------

    fn conn_read(&mut self, idx: usize) {
        let mut dead = false;
        {
            let Some(Some(Slot::Conn(c))) = self.slots.get_mut(idx) else {
                return;
            };
            for _ in 0..READ_BUDGET {
                // Read straight into the accumulator's tail — no scratch
                // buffer, no second copy.
                let len = c.rbuf.len();
                c.rbuf.resize(len + READ_CHUNK, 0);
                match c.sock.read(&mut c.rbuf[len..]) {
                    Ok(0) => {
                        c.rbuf.truncate(len);
                        dead = true; // peer closed
                        break;
                    }
                    Ok(n) => {
                        c.rbuf.truncate(len + n);
                        if n < READ_CHUNK {
                            break; // drained for now
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        c.rbuf.truncate(len);
                        break;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                        c.rbuf.truncate(len);
                    }
                    Err(_) => {
                        c.rbuf.truncate(len);
                        dead = true;
                        break;
                    }
                }
            }
        }
        // Parse even when the peer closed: its final frames still count.
        if self.parse_frames(idx).is_err() {
            dead = true;
        }
        if dead {
            self.kill_conn(idx);
        }
    }

    /// True when the accumulator holds either one complete frame or a
    /// length prefix the decoder will reject — both worth freezing for.
    fn has_actionable_frame(buf: &[u8]) -> bool {
        if buf.len() < 4 {
            return false;
        }
        let body = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if !(8..=MAX_FRAME_LEN).contains(&body) {
            return true; // decode_frame_view turns this into the error
        }
        buf.len() >= 4 + body
    }

    fn parse_frames(&mut self, idx: usize) -> std::io::Result<()> {
        let (buf, peer, mut got_hello) = {
            let Some(Some(Slot::Conn(c))) = self.slots.get_mut(idx) else {
                return Ok(());
            };
            if !Self::has_actionable_frame(&c.rbuf) {
                return Ok(()); // keep accumulating in place
            }
            (
                std::mem::take(&mut c.rbuf).freeze(),
                c.peer.clone(),
                c.got_hello,
            )
        };
        let acc_len = buf.len();
        let mut cur = buf;
        let mut res = Ok(());
        loop {
            match codec::decode_frame_view(&cur) {
                Ok(None) => break,
                Ok(Some((mut frame, used))) => {
                    cur.advance(used);
                    // `frame.payload` is a view into `cur`'s allocation —
                    // the zero-copy handoff to the daemon — unless it is
                    // small relative to that allocation, in which case a
                    // daemon retaining it would pin the whole accumulator:
                    // bound the amplification by copying it out (see
                    // `PIN_DENOM`).
                    if frame.payload.len() * PIN_DENOM < acc_len {
                        frame.payload = Bytes::copy_from_slice(&frame.payload);
                    }
                    if let Err(e) = handle_frame(&self.inner, &peer, frame, &mut got_hello) {
                        res = Err(e);
                        break;
                    }
                }
                Err(e) => {
                    res = Err(io_err(format!("corrupt stream: {e}")));
                    break;
                }
            }
        }
        if let Some(Some(Slot::Conn(c))) = self.slots.get_mut(idx) {
            c.got_hello = got_hello;
            if res.is_ok() && !cur.is_empty() {
                // Partial tail: at most one frame's worth re-buffered.
                c.rbuf.extend_from_slice(&cur);
            }
        }
        res
    }

    // --- writing ------------------------------------------------------

    fn conn_flush(&mut self, idx: usize) {
        let mut dead = false;
        {
            let Some(Some(Slot::Conn(c))) = self.slots.get_mut(idx) else {
                return;
            };
            let mut fresh = Vec::new();
            c.peer.out.try_drain(&mut fresh);
            c.wbufs.extend(fresh);

            let mut stalled = false;
            while !c.wbufs.is_empty() {
                let wrote = {
                    let mut iovs: Vec<IoSlice<'_>> = Vec::with_capacity(c.wbufs.len().min(MAX_IOV));
                    for (i, b) in c.wbufs.iter().take(MAX_IOV).enumerate() {
                        let s = if i == 0 { &b[c.woff..] } else { &b[..] };
                        iovs.push(IoSlice::new(s));
                    }
                    c.sock.write_vectored(&iovs)
                };
                match wrote {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(mut n) => {
                        self.inner
                            .stats
                            .bytes_out
                            .fetch_add(n as u64, Ordering::Relaxed);
                        while n > 0 {
                            let front_left = c.wbufs[0].len() - c.woff;
                            if n >= front_left {
                                n -= front_left;
                                c.wbufs.pop_front();
                                c.woff = 0;
                            } else {
                                c.woff += n;
                                n = 0;
                            }
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        stalled = true;
                        break;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            // Writable interest tracks "backlog parked on a full socket
            // buffer" — registered on the stall edge, dropped once the
            // backlog drains, so an idle connection costs zero spurious
            // writable events.
            if !dead && stalled != c.want_write {
                let interest = if stalled {
                    Interest::BOTH
                } else {
                    Interest::READ
                };
                let fd = c.sock.as_raw_fd();
                if self.poller.modify(fd, idx + SLOT_BASE, interest).is_ok() {
                    c.want_write = stalled;
                    if stalled {
                        self.inner
                            .stats
                            .flush_stalls
                            .fetch_add(1, Ordering::Relaxed);
                    }
                } else {
                    dead = true;
                }
            }
        }
        if dead {
            self.kill_conn(idx);
        }
    }

    /// Flush the connections producer threads marked since the last pass.
    fn drain_dirty(&mut self) {
        let marked: Vec<Arc<PeerConn>> = std::mem::take(&mut *self.inner.dirty.lock());
        for peer in marked {
            // Clear before draining: a racing producer re-marks and the
            // frame it queued is picked up next pass at the latest.
            peer.dirty.store(false, Ordering::Release);
            let token = peer.token.load(Ordering::Acquire);
            if token < SLOT_BASE {
                continue; // never owned, or already torn down (queue closed)
            }
            let idx = token - SLOT_BASE;
            let same = matches!(
                self.slots.get(idx),
                Some(Some(Slot::Conn(c))) if Arc::ptr_eq(&c.peer, &peer)
            );
            if same {
                self.conn_flush(idx);
            }
        }
    }

    // --- heartbeats ---------------------------------------------------

    fn emit_heartbeats(&mut self) {
        // The beacon tick doubles as the clock for chaos-delayed frames.
        self.inner.flush_due_delayed();
        let chaos = self.inner.chaos.read().clone();
        let seq = self.inner.hb_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let frames: Vec<(NodeId, Bytes)> = self
            .inner
            .cfg
            .local_nodes
            .iter()
            .map(|&n| {
                let p = Packet::Heartbeat { node: n, seq };
                (n, codec::encode_frame(n, CONTROL_NODE, &codec::encode(&p)))
            })
            .collect();
        for idx in 0..self.slots.len() {
            if !matches!(self.slots.get(idx), Some(Some(Slot::Conn(_)))) {
                continue;
            }
            {
                let Some(Some(Slot::Conn(c))) = self.slots.get_mut(idx) else {
                    continue;
                };
                let peer_nodes = match &chaos {
                    Some(_) => c.peer.nodes.lock().clone(),
                    None => Vec::new(),
                };
                for (n, f) in &frames {
                    // A partition that cuts every announced peer node
                    // silences the beacon too — that is what drives the
                    // failure monitor during a partition soak.
                    if let Some(ch) = &chaos {
                        if ch.hb_blocked(*n, &peer_nodes) {
                            continue;
                        }
                    }
                    // Same cap as the queue: a wedged connection drops
                    // beacons rather than growing without bound.
                    if c.wbufs.len() >= self.inner.cfg.outbound_cap {
                        self.inner.stats.dropped.fetch_add(1, Ordering::Relaxed);
                    } else {
                        c.wbufs.push_back(f.clone());
                        self.inner.stats.frames_out.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            self.conn_flush(idx);
        }
    }

    // --- teardown -----------------------------------------------------

    fn kill_conn(&mut self, idx: usize) {
        if !matches!(self.slots.get(idx), Some(Some(Slot::Conn(_)))) {
            return;
        }
        let Some(Slot::Conn(c)) = self.take_slot(idx) else {
            return;
        };
        let _ = self.poller.deregister(c.sock.as_raw_fd());
        c.peer.token.store(0, Ordering::Release);
        c.peer.alive.store(false, Ordering::Release);
        c.peer.out.close();
        // Same verdict as the baseline's reader exit: a dead accepted
        // connection means the peer departed; a dead outbound one gets
        // redialed, so its nodes are merely suspect.
        self.inner.drop_routes(&c.peer, c.peer.accepted);
        if let Some(didx) = c.dialer {
            if !self.inner.stop.load(Ordering::Acquire) {
                self.dialers[didx].last_nodes = c.peer.nodes.lock().clone();
                // Immediate retry, exactly like the baseline connector;
                // failures fall into exponential backoff from there.
                self.start_dial(didx);
            }
        }
    }

    /// Best-effort final drain on shutdown so frames queued just before
    /// `stop` (goodbye traffic, last data) still reach the wire. Sockets
    /// go blocking with a short write timeout: a stuck peer cannot hang
    /// process exit.
    fn shutdown_flush(&mut self) {
        for slot in std::mem::take(&mut self.slots) {
            match slot {
                None => {}
                Some(Slot::Dial(d)) => {
                    let _ = self.poller.deregister(d.pending.raw_fd());
                }
                Some(Slot::Conn(mut c)) => {
                    let _ = self.poller.deregister(c.sock.as_raw_fd());
                    c.peer.token.store(0, Ordering::Release);
                    c.peer.alive.store(false, Ordering::Release);
                    c.peer.out.close();
                    let mut rest = Vec::new();
                    c.peer.out.try_drain(&mut rest);
                    c.wbufs.extend(rest);
                    let _ = c.sock.set_nonblocking(false);
                    let _ = c.sock.set_write_timeout(Some(Duration::from_millis(100)));
                    for (i, b) in c.wbufs.iter().enumerate() {
                        let s = if i == 0 { &b[c.woff..] } else { &b[..] };
                        if c.sock.write_all(s).is_err() {
                            break;
                        }
                        self.inner
                            .stats
                            .bytes_out
                            .fetch_add(s.len() as u64, Ordering::Relaxed);
                    }
                    self.inner.drop_routes(&c.peer, c.peer.accepted);
                }
            }
        }
    }
}
