//! Whole-program byte-code analysis: interprocedural reachability over the
//! call/instantiation graph, per-block constant dataflow, and the
//! tree-shake transform built on top of both.
//!
//! The verifier ([`crate::verify`]) answers *"is this image well-formed?"*;
//! this module answers *"which parts of it can ever run?"*. It walks the
//! same worklist shape as the verifier's abstract interpreter, but instead
//! of word *kinds* it tracks word *values* over a three-point lattice
//! (unknown ⊤, an exact constant, or a statically-identified class), which
//! buys three things the kind lattice cannot:
//!
//! * **Constant branch folding** — a `jmpf` whose condition is a provable
//!   constant has exactly one successor, so the untaken arm (and everything
//!   reachable only through it) is dead.
//! * **Class provenance** — `mkgroup` and `pushsib` produce values tagged
//!   with their (table, index) origin, so the analysis knows *which* class
//!   an `instof` instantiates, and which classes are never instantiated and
//!   never escape (sent, captured, exported) — their bodies cannot run.
//! * **Method-label liveness** — in a closed world (no reachable `import`/
//!   `export*`), a method whose label is never the subject of a reachable
//!   `trmsg` can never be selected, so its body is dead weight.
//!
//! The interprocedural part is a fixpoint over blocks: a block's facts are
//! computed once when it first becomes reachable, and the labels/classes it
//! uses may retroactively enliven method bodies parked on a not-yet-sent
//! label. Openness is monotone too: the first reachable network instruction
//! permanently promotes every object method to live (a remote peer may send
//! any label to an escaped channel).
//!
//! Soundness of the escape rule: a class value can only reach `instof` as
//! an unknown word by first flowing through a point the analysis marks —
//! a capture (`fork`/`trobj`/`mkgroup`), a message argument (`trmsg`),
//! an export, or a lattice join that widened it away. Each of those points
//! marks the class *used*, so "never used" really means "no execution can
//! instantiate it", locally or at any receiving site.
//!
//! Consumers:
//! * [`shake`] — prune a whole program down to what can run from its entry
//!   (see also [`crate::wire::pack_shaken`] for the shipped-closure form);
//! * [`crate::opt`] — constant folding and dead-instruction elimination
//!   driven by the per-block facts;
//! * [`Analysis::findings`] — `ditico check --analyze` diagnostics.

use crate::machine::binop;
use crate::program::{Block, BlockId, Instr, LabelId, MethodTable, Pool, Program, StrId, TableId};
use crate::word::Word;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Where reachability starts.
#[derive(Debug, Clone, Copy)]
pub enum Roots<'a> {
    /// The program's entry block: whole-image analysis (`ditico check`,
    /// [`shake`]). The world is closed unless a reachable instruction
    /// touches the network.
    Entry,
    /// Shipped method tables ([`crate::wire::pack_shaken`]). The receiving
    /// site is unknown code, so the world is open: every method of every
    /// root table is live and every root class is instantiable.
    Tables(&'a [TableId]),
}

/// Abstract value: the analysis lattice ⊥ < {Const, Class} < ⊤, with ⊥
/// represented by the absence of a state (unreached program point).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum AVal {
    /// Any word.
    Any,
    /// An exact base value (`Unit`/`Int`/`Bool`/`Float`/`Str` only —
    /// channel and class references never use this arm).
    Const(Word),
    /// A class word of known origin: entry `index` of `table`.
    Class { table: TableId, index: u8 },
}

/// Abstract machine state at one program point.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct AState {
    pub stack: Vec<AVal>,
    pub frame: Vec<AVal>,
}

/// What one block's reachable code touches (the analysis' call-graph
/// edges), accumulated while interpreting it.
#[derive(Debug, Default)]
pub(crate) struct Effects {
    pub blocks: Vec<BlockId>,
    pub obj_tables: Vec<TableId>,
    pub class_tables: Vec<TableId>,
    pub sent: Vec<LabelId>,
    /// Classes instantiated or escaped (captured, sent, exported, joined
    /// away) — each may run.
    pub used_classes: Vec<(TableId, u8)>,
    /// A reachable `import`/`export*`: the program talks to the network.
    pub open: bool,
    /// Precision lost (a `pushsib` whose owning table is ambiguous):
    /// every class of every reachable table must be considered used.
    pub all_classes_used: bool,
}

/// Per-block dataflow facts, over the block's *normalized* (unfused) code.
#[derive(Debug)]
pub struct BlockFacts {
    /// Per-pc reachability under constant branch folding.
    pub live: Vec<bool>,
    /// In-state per pc (`None` = unreached). Internal to the crate: the
    /// optimizer reads constants out of these.
    pub(crate) states: Vec<Option<AState>>,
}

impl BlockFacts {
    pub fn live_count(&self) -> usize {
        self.live.iter().filter(|l| **l).count()
    }
}

/// The result of a whole-program analysis.
#[derive(Debug)]
pub struct Analysis {
    /// True when a reachable instruction imports or exports through the
    /// name service (or the roots were shipped tables): unknown peer code
    /// may interact with every escaped channel and class.
    pub open: bool,
    /// Per block: is its code reachable (as executable code, not merely
    /// referenced by a table entry)?
    pub block_live: Vec<bool>,
    /// Per table: referenced by reachable code (or a root)?
    pub table_live: Vec<bool>,
    /// Per table: reached through `trobj` (object dispatch)?
    pub table_is_object: Vec<bool>,
    /// Per table: reached through `mkgroup` (class group)?
    pub table_is_class: Vec<bool>,
    /// Per class table: which entries are instantiated or escape. Empty
    /// vec until the table is reached as a class table.
    pub class_used: Vec<Vec<bool>>,
    /// Labels selected by reachable `trmsg` instructions.
    pub sent_labels: HashSet<LabelId>,
    /// Per-block facts for live blocks.
    pub facts: Vec<Option<BlockFacts>>,
}

impl Analysis {
    /// Reachable instructions (over normalized code), for shrink metrics.
    pub fn live_instr_count(&self) -> usize {
        self.facts.iter().flatten().map(|f| f.live_count()).sum()
    }
}

/// For each class-body block, the unique `(table, index)` that lists it —
/// the origin of the class word `pushsib` builds inside it. `None` when
/// ambiguous (listed by several tables: hand-written assembly only).
pub(crate) fn body_owners(prog: &Program) -> HashMap<BlockId, Option<(TableId, u8)>> {
    let mut owners: HashMap<BlockId, Option<(TableId, u8)>> = HashMap::new();
    for (ti, t) in prog.tables.iter().enumerate() {
        for (i, (_, b)) in t.entries.iter().enumerate() {
            if !prog
                .blocks
                .get(*b as usize)
                .is_some_and(|blk| blk.is_class_body)
            {
                continue;
            }
            let tag = (ti as TableId, i.min(u8::MAX as usize) as u8);
            owners
                .entry(*b)
                .and_modify(|o| {
                    if *o != Some(tag) {
                        *o = None;
                    }
                })
                .or_insert(Some(tag));
        }
    }
    owners
}

fn is_const_word(w: &Word) -> bool {
    matches!(
        w,
        Word::Unit | Word::Int(_) | Word::Bool(_) | Word::Float(_) | Word::Str(_)
    )
}

/// Join two abstract values. A class value widened away may later reach
/// `instof` as ⊤, so it must be marked used at the point of the join.
fn join(a: &AVal, b: &AVal, fx: &mut Effects) -> AVal {
    if a == b {
        return a.clone();
    }
    for v in [a, b] {
        if let AVal::Class { table, index } = v {
            fx.used_classes.push((*table, *index));
        }
    }
    AVal::Any
}

/// Pop `n` values, routing any class value to the escape set (`why` is
/// documentation only). Returns `false` on underflow (unverified input).
fn pop_escaping(st: &mut AState, n: usize, fx: &mut Effects) -> bool {
    if st.stack.len() < n {
        return false;
    }
    for v in st.stack.drain(st.stack.len() - n..) {
        if let AVal::Class { table, index } = v {
            fx.used_classes.push((table, index));
        }
    }
    true
}

enum Succ {
    Fall,
    Jump(u32),
    Branch(u32),
    Halt,
}

/// Abstractly interpret one block to a fixpoint: per-pc reachability and
/// in-states under constant branch folding, with side effects (graph
/// edges, sent labels, class uses) accumulated into `fx`.
///
/// The interpreter assumes verified code; on any structural anomaly it
/// degrades to the conservative answer (everything live, no constants,
/// every reference an edge) rather than erroring.
pub(crate) fn analyze_block(
    prog: &Program,
    owner: Option<(TableId, u8)>,
    block: &Block,
    code: &[Instr],
    fx: &mut Effects,
) -> BlockFacts {
    match try_analyze_block(prog, owner, block, code, fx) {
        Some(facts) => facts,
        None => conservative_facts(code, fx),
    }
}

/// Everything-is-live fallback for code the interpreter could not walk.
fn conservative_facts(code: &[Instr], fx: &mut Effects) -> BlockFacts {
    for ins in code {
        match ins {
            Instr::Fork { block, .. } => fx.blocks.push(*block),
            Instr::TrObj { table, .. } => fx.obj_tables.push(*table),
            Instr::MkGroup { table, .. } => fx.class_tables.push(*table),
            Instr::TrMsg { label, .. } => fx.sent.push(*label),
            Instr::InstOf { .. } | Instr::PushSibling(_) => fx.all_classes_used = true,
            Instr::Import { .. } | Instr::ExportName { .. } | Instr::ExportClass { .. } => {
                fx.open = true
            }
            _ => {}
        }
    }
    BlockFacts {
        live: vec![true; code.len()],
        states: vec![None; code.len()],
    }
}

fn try_analyze_block(
    prog: &Program,
    owner: Option<(TableId, u8)>,
    block: &Block,
    code: &[Instr],
    fx: &mut Effects,
) -> Option<BlockFacts> {
    let len = code.len() as u32;
    if len == 0 {
        return Some(BlockFacts {
            live: Vec::new(),
            states: Vec::new(),
        });
    }
    let frame_size = block.frame_size();
    // The frame a spawner builds: self-class word (class bodies), then
    // captures and parameters of unknown value, then unit-filled locals.
    let mut frame0: Vec<AVal> = Vec::with_capacity(frame_size);
    if block.is_class_body {
        frame0.push(match owner {
            Some((table, index)) => AVal::Class { table, index },
            None => AVal::Any,
        });
    }
    frame0.extend(
        std::iter::repeat_with(|| AVal::Any).take(block.nfree as usize + block.nparams as usize),
    );
    frame0.extend(std::iter::repeat_with(|| AVal::Const(Word::Unit)).take(block.nlocals as usize));

    let mut states: Vec<Option<AState>> = vec![None; code.len()];
    states[0] = Some(AState {
        stack: Vec::new(),
        frame: frame0,
    });
    let mut work: Vec<u32> = vec![0];
    // Fixpoint bound: each visit either widens a lattice point or stops.
    let mut fuel: u64 = (code.len() as u64 + 4) * (frame_size as u64 + 8) * 64;
    while let Some(pc) = work.pop() {
        fuel = fuel.checked_sub(1)?;
        let mut st = states[pc as usize].clone()?;
        let succ = step(prog, owner, block, code, pc, &mut st, fx)?;
        let mut flow = |target: u32, work: &mut Vec<u32>, fx: &mut Effects| -> Option<()> {
            if target == len {
                return Some(()); // falling off the end halts the thread
            }
            if target > len {
                return None;
            }
            if merge(&mut states[target as usize], &st, fx)? {
                work.push(target);
            }
            Some(())
        };
        match succ {
            Succ::Fall => flow(pc + 1, &mut work, fx)?,
            Succ::Jump(t) => flow(t, &mut work, fx)?,
            Succ::Branch(t) => {
                flow(pc + 1, &mut work, fx)?;
                flow(t, &mut work, fx)?;
            }
            Succ::Halt => {}
        }
    }
    let live: Vec<bool> = states.iter().map(|s| s.is_some()).collect();
    Some(BlockFacts { live, states })
}

/// Merge `src` into a program point. `Ok(true)` = changed (re-queue).
/// `None` = depth disagreement (unverified input).
fn merge(dst: &mut Option<AState>, src: &AState, fx: &mut Effects) -> Option<bool> {
    match dst {
        None => {
            *dst = Some(src.clone());
            Some(true)
        }
        Some(cur) => {
            if cur.stack.len() != src.stack.len() || cur.frame.len() != src.frame.len() {
                return None;
            }
            let mut changed = false;
            let pairs = cur
                .stack
                .iter_mut()
                .zip(&src.stack)
                .chain(cur.frame.iter_mut().zip(&src.frame));
            for (c, s) in pairs {
                let j = join(c, s, fx);
                if j != *c {
                    *c = j;
                    changed = true;
                }
            }
            Some(changed)
        }
    }
}

/// Transfer function: abstract execution of one instruction. `None` means
/// the code is not verifier-clean; the caller falls back to conservative.
fn step(
    prog: &Program,
    owner: Option<(TableId, u8)>,
    block: &Block,
    code: &[Instr],
    pc: u32,
    st: &mut AState,
    fx: &mut Effects,
) -> Option<Succ> {
    let frame = block.frame_size();
    let len = code.len() as u32;
    macro_rules! slot {
        ($s:expr) => {{
            let s = $s as usize;
            if s >= frame {
                return None;
            }
            s
        }};
    }
    match code[pc as usize] {
        Instr::PushLocal(s) => {
            let s = slot!(s);
            let v = st.frame[s].clone();
            st.stack.push(v);
        }
        Instr::PushInt(i) => st.stack.push(AVal::Const(Word::Int(i))),
        Instr::PushBool(b) => st.stack.push(AVal::Const(Word::Bool(b))),
        Instr::PushFloat(f) => st.stack.push(AVal::Const(Word::Float(f))),
        Instr::PushUnit => st.stack.push(AVal::Const(Word::Unit)),
        Instr::PushStr(s) => {
            // Out-of-pool ids appear transiently while the optimizer is
            // interning folded strings against a newer pool: treat as ⊤.
            if (s as usize) < prog.strings.len() {
                st.stack
                    .push(AVal::Const(Word::Str(prog.strings.get_arc(s))));
            } else {
                st.stack.push(AVal::Any);
            }
        }
        Instr::PushSibling(i) => {
            match owner {
                // A sibling of this body's group: same table, index `i`.
                Some((table, _)) => st.stack.push(AVal::Class { table, index: i }),
                None => {
                    // Ambiguous owner: any class anywhere might be meant.
                    fx.all_classes_used = true;
                    st.stack.push(AVal::Any);
                }
            }
        }
        Instr::Store(s) => {
            let s = slot!(s);
            let v = st.stack.pop()?;
            st.frame[s] = v;
        }
        Instr::Bin(op) => {
            let b = st.stack.pop()?;
            let a = st.stack.pop()?;
            let folded = match (&a, &b) {
                (AVal::Const(x), AVal::Const(y)) => binop(op, x.clone(), y.clone()).ok(),
                _ => None,
            };
            match folded {
                // Never fold an operation the machine would fault on
                // (division by zero, mixed operands): the fault is the
                // observable behaviour and must stay.
                Some(w) if is_const_word(&w) => st.stack.push(AVal::Const(w)),
                _ => {
                    // Comparing class words (`==`) consumes them without
                    // leaking instantiation capability: no escape.
                    st.stack.push(AVal::Any);
                }
            }
        }
        Instr::Un(op) => {
            let a = st.stack.pop()?;
            let folded = match &a {
                AVal::Const(x) => crate::machine::unop(op, x.clone()).ok(),
                _ => None,
            };
            match folded {
                Some(w) if is_const_word(&w) => st.stack.push(AVal::Const(w)),
                _ => st.stack.push(AVal::Any),
            }
        }
        Instr::Jump(t) => {
            if t > len {
                return None;
            }
            return Some(Succ::Jump(t));
        }
        Instr::JumpIfFalse(t) => {
            if t > len {
                return None;
            }
            let c = st.stack.pop()?;
            return Some(match c {
                // A constant condition has exactly one successor: the
                // untaken arm is unreachable from this point.
                AVal::Const(Word::Bool(true)) => Succ::Fall,
                AVal::Const(Word::Bool(false)) => Succ::Jump(t),
                _ => Succ::Branch(t),
            });
        }
        Instr::Halt => return Some(Succ::Halt),
        Instr::NewChan(s) => {
            let s = slot!(s);
            st.frame[s] = AVal::Any;
        }
        Instr::Fork { block, nfree } => {
            // Captures become the child's frame, where tracking ends.
            if !pop_escaping(st, nfree as usize, fx) {
                return None;
            }
            fx.blocks.push(block);
        }
        Instr::TrMsg { label, argc } => {
            let _chan = st.stack.pop()?;
            if !pop_escaping(st, argc as usize, fx) {
                return None;
            }
            fx.sent.push(label);
        }
        Instr::TrObj { table, nfree } => {
            let _chan = st.stack.pop()?;
            if !pop_escaping(st, nfree as usize, fx) {
                return None;
            }
            fx.obj_tables.push(table);
        }
        Instr::InstOf { argc } => {
            let class = st.stack.pop()?;
            if !pop_escaping(st, argc as usize, fx) {
                return None;
            }
            if let AVal::Class { table, index } = class {
                fx.used_classes.push((table, index));
            }
            // `instof` of ⊤: whatever class that word holds already passed
            // an escape point (capture/send/export/join) which marked it.
        }
        Instr::MkGroup {
            table,
            dst,
            count,
            nfree,
        } => {
            if !pop_escaping(st, nfree as usize, fx) {
                return None;
            }
            let end = dst as usize + count as usize;
            if end > frame {
                return None;
            }
            for (i, s) in (dst as usize..end).enumerate() {
                st.frame[s] = AVal::Class {
                    table,
                    index: i.min(u8::MAX as usize) as u8,
                };
            }
            fx.class_tables.push(table);
        }
        Instr::ExportName { slot, .. } => {
            let _ = slot!(slot);
            fx.open = true;
        }
        Instr::ExportClass { slot, .. } => {
            let s = slot!(slot);
            if let AVal::Class { table, index } = &st.frame[s] {
                fx.used_classes.push((*table, *index));
            }
            fx.open = true;
        }
        Instr::Import { dst, .. } => {
            let s = slot!(dst);
            st.frame[s] = AVal::Any;
            fx.open = true;
        }
        Instr::Print { argc, .. } => {
            // Printing renders a word; it cannot leak instantiation
            // capability, so no escape.
            if st.stack.len() < argc as usize {
                return None;
            }
            st.stack.truncate(st.stack.len() - argc as usize);
        }
        // Analysis runs on normalized code only (see `analyze`).
        Instr::PushLocal2 { .. }
        | Instr::PushLocalInt { .. }
        | Instr::PushIntBin { .. }
        | Instr::BinJumpIfFalse { .. }
        | Instr::PushLocalTrMsg { .. }
        | Instr::PushLocalTrObj { .. }
        | Instr::PushLocalInstOf { .. }
        | Instr::PushSiblingInstOf { .. }
        | Instr::PushSiblingLocal { .. } => return None,
    }
    Some(Succ::Fall)
}

/// The interprocedural fixpoint engine.
struct Walker<'p> {
    prog: &'p Program,
    owners: HashMap<BlockId, Option<(TableId, u8)>>,
    a: Analysis,
    queue: Vec<BlockId>,
    /// Object-method bodies waiting for their label to be sent.
    pending: HashMap<LabelId, Vec<BlockId>>,
    all_classes_used: bool,
}

impl Walker<'_> {
    fn mark_block(&mut self, b: BlockId) {
        let Some(live) = self.a.block_live.get_mut(b as usize) else {
            return;
        };
        if !*live {
            *live = true;
            self.queue.push(b);
        }
    }

    fn entries(&self, t: TableId) -> &[(LabelId, BlockId)] {
        self.prog
            .tables
            .get(t as usize)
            .map(|mt| mt.entries.as_slice())
            .unwrap_or(&[])
    }

    fn mark_obj_table(&mut self, t: TableId) {
        let ti = t as usize;
        if ti >= self.a.table_live.len() || self.a.table_is_object[ti] {
            return;
        }
        self.a.table_live[ti] = true;
        self.a.table_is_object[ti] = true;
        for (l, b) in self.entries(t).to_vec() {
            if self.a.open || self.a.sent_labels.contains(&l) {
                self.mark_block(b);
            } else {
                self.pending.entry(l).or_default().push(b);
            }
        }
        if self.a.table_is_class[ti] {
            // Mixed use (object dispatch *and* class group): give up on
            // per-entry precision for this table.
            self.use_whole_table(t);
        }
    }

    fn mark_class_table(&mut self, t: TableId) {
        let ti = t as usize;
        if ti >= self.a.table_live.len() || self.a.table_is_class[ti] {
            return;
        }
        self.a.table_live[ti] = true;
        self.a.table_is_class[ti] = true;
        self.a.class_used[ti] = vec![false; self.entries(t).len()];
        if self.all_classes_used || self.a.table_is_object[ti] {
            self.use_whole_table(t);
        }
    }

    fn use_whole_table(&mut self, t: TableId) {
        for i in 0..self.entries(t).len() {
            self.mark_class_used(t, i.min(u8::MAX as usize) as u8);
        }
        for (_, b) in self.entries(t).to_vec() {
            self.mark_block(b);
        }
    }

    fn mark_class_used(&mut self, t: TableId, i: u8) {
        let ti = t as usize;
        if ti >= self.a.table_live.len() {
            return;
        }
        let entries_len = self.entries(t).len();
        let used = &mut self.a.class_used[ti];
        if used.len() < entries_len {
            used.resize(entries_len, false);
        }
        let Some(flag) = used.get_mut(i as usize) else {
            return; // sibling index past the table: runtime error, not code
        };
        if !*flag {
            *flag = true;
            let b = self.entries(t)[i as usize].1;
            self.mark_block(b);
        }
    }

    fn mark_sent(&mut self, l: LabelId) {
        if self.a.sent_labels.insert(l) {
            if let Some(parked) = self.pending.remove(&l) {
                for b in parked {
                    self.mark_block(b);
                }
            }
        }
    }

    fn set_open(&mut self) {
        if self.a.open {
            return;
        }
        self.a.open = true;
        // Unknown peers may send any label: every parked method runs.
        let parked: Vec<BlockId> = self.pending.drain().flat_map(|(_, bs)| bs).collect();
        for b in parked {
            self.mark_block(b);
        }
    }

    fn set_all_classes_used(&mut self) {
        if self.all_classes_used {
            return;
        }
        self.all_classes_used = true;
        for t in 0..self.a.table_live.len() as TableId {
            if self.a.table_is_class[t as usize] {
                self.use_whole_table(t);
            }
        }
    }

    fn absorb(&mut self, fx: Effects) {
        if fx.open {
            self.set_open();
        }
        if fx.all_classes_used {
            self.set_all_classes_used();
        }
        for l in fx.sent {
            self.mark_sent(l);
        }
        for b in fx.blocks {
            self.mark_block(b);
        }
        for t in fx.obj_tables {
            self.mark_obj_table(t);
        }
        for t in fx.class_tables {
            self.mark_class_table(t);
        }
        for (t, i) in fx.used_classes {
            // A class use implies its group was (or will be) created by a
            // reachable `mkgroup`; register the table either way.
            self.mark_class_table(t);
            self.mark_class_used(t, i);
        }
    }

    fn run(&mut self) {
        while let Some(b) = self.queue.pop() {
            let block = &self.prog.blocks[b as usize];
            let normalized = crate::fuse::unfuse_code(&block.code);
            let code: &[Instr] = normalized.as_deref().unwrap_or(&block.code);
            let owner = self.owners.get(&b).copied().flatten();
            let mut fx = Effects::default();
            let facts = analyze_block(self.prog, owner, block, code, &mut fx);
            self.a.facts[b as usize] = Some(facts);
            self.absorb(fx);
        }
    }
}

/// Analyze `prog` from `roots` to a fixpoint.
///
/// The program is expected to be verifier-clean (compiler output, a loaded
/// image, or a linked packet); on malformed code the analysis degrades to
/// "everything reachable" rather than failing.
pub fn analyze(prog: &Program, roots: Roots) -> Analysis {
    let nb = prog.blocks.len();
    let nt = prog.tables.len();
    let mut w = Walker {
        prog,
        owners: body_owners(prog),
        a: Analysis {
            open: false,
            block_live: vec![false; nb],
            table_live: vec![false; nt],
            table_is_object: vec![false; nt],
            table_is_class: vec![false; nt],
            class_used: vec![Vec::new(); nt],
            sent_labels: HashSet::new(),
            facts: (0..nb).map(|_| None).collect(),
        },
        queue: Vec::new(),
        pending: HashMap::new(),
        all_classes_used: false,
    };
    match roots {
        Roots::Entry => {
            if (prog.entry as usize) < nb {
                w.mark_block(prog.entry);
            }
        }
        Roots::Tables(ts) => {
            // Shipped roots face unknown receiver code: open world, and
            // the root tables are fully live (any method may be selected,
            // any root class instantiated via `link_group`).
            w.set_open();
            for &t in ts {
                if (t as usize) >= nt {
                    continue;
                }
                w.a.table_live[t as usize] = true;
                w.a.table_is_object[t as usize] = true;
                w.a.table_is_class[t as usize] = true;
                w.a.class_used[t as usize] = vec![false; w.entries(t).len()];
                w.use_whole_table(t);
            }
        }
    }
    w.run();
    w.a
}

// -- diagnostics --------------------------------------------------------------------

/// What a finding is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// An object method whose label is never the subject of any reachable
    /// send (closed world only).
    UnreachableMethod,
    /// A class that is created but never instantiated and never escapes.
    NeverInstantiatedClass,
    /// A label that is sent but that no reachable object table defines
    /// (closed world only).
    OrphanSend,
}

impl FindingKind {
    /// Stable machine-readable tag (`--json` output, CI gating).
    pub fn tag(self) -> &'static str {
        match self {
            FindingKind::UnreachableMethod => "unreachable-method",
            FindingKind::NeverInstantiatedClass => "never-instantiated-class",
            FindingKind::OrphanSend => "orphan-send",
        }
    }
}

/// One static diagnostic over the byte-code.
#[derive(Debug, Clone)]
pub struct Finding {
    pub kind: FindingKind,
    /// What it is about: a block name (`Cell.write`) or a label.
    pub subject: String,
    pub detail: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: `{}`: {}",
            self.kind.tag(),
            self.subject,
            self.detail
        )
    }
}

impl Analysis {
    /// Byte-code-level liveness diagnostics. Label findings are only
    /// reported for closed programs: once code or channels may escape to
    /// unknown peers, any label can arrive and any method can fire.
    pub fn findings(&self, prog: &Program) -> Vec<Finding> {
        let mut out = Vec::new();
        let block_name = |b: BlockId| -> String {
            prog.blocks
                .get(b as usize)
                .map(|blk| blk.name.clone())
                .unwrap_or_else(|| format!("block {b}"))
        };
        for t in 0..prog.tables.len() {
            if !self.table_live[t] {
                continue;
            }
            let entries = &prog.tables[t].entries;
            let mixed = self.table_is_object[t] && self.table_is_class[t];
            if self.table_is_object[t] && !mixed && !self.open {
                for (l, b) in entries {
                    if !self.sent_labels.contains(l) {
                        out.push(Finding {
                            kind: FindingKind::UnreachableMethod,
                            subject: block_name(*b),
                            detail: format!(
                                "method label `{}` of table {t} is never sent by any \
                                 reachable code",
                                prog.labels.get(*l)
                            ),
                        });
                    }
                }
            }
            if self.table_is_class[t] && !mixed {
                for (i, (_, b)) in entries.iter().enumerate() {
                    if !self.class_used[t].get(i).copied().unwrap_or(true) {
                        out.push(Finding {
                            kind: FindingKind::NeverInstantiatedClass,
                            subject: block_name(*b),
                            detail: format!(
                                "class {i} of group table {t} is never instantiated and \
                                 never escapes"
                            ),
                        });
                    }
                }
            }
        }
        if !self.open {
            let defined: HashSet<LabelId> = (0..prog.tables.len())
                .filter(|&t| self.table_live[t] && self.table_is_object[t])
                .flat_map(|t| prog.tables[t].entries.iter().map(|(l, _)| *l))
                .collect();
            let mut orphans: Vec<LabelId> = self
                .sent_labels
                .iter()
                .copied()
                .filter(|l| !defined.contains(l))
                .collect();
            orphans.sort_unstable();
            for l in orphans {
                out.push(Finding {
                    kind: FindingKind::OrphanSend,
                    subject: prog.labels.get(l).to_string(),
                    detail: "label is sent but no reachable object table defines it".to_string(),
                });
            }
        }
        out.sort_by(|a, b| (a.kind.tag(), &a.subject).cmp(&(b.kind.tag(), &b.subject)));
        out
    }
}

// -- tree shaking -------------------------------------------------------------------

/// Does this (base-set) instruction reference a block, table, label or
/// string? Such instructions at provably-dead pcs are rewritten to `halt`
/// so the pruned referent leaves no dangling id behind.
fn carries_ref(ins: &Instr) -> bool {
    matches!(
        ins,
        Instr::Fork { .. }
            | Instr::TrMsg { .. }
            | Instr::TrObj { .. }
            | Instr::MkGroup { .. }
            | Instr::PushStr(_)
            | Instr::ExportName { .. }
            | Instr::ExportClass { .. }
            | Instr::Import { .. }
    )
}

/// A shaken program plus what the shake removed.
#[derive(Debug)]
pub struct Shaken {
    pub program: Program,
    /// Old table id → new table id for every surviving table (consumers
    /// that addressed the original program — e.g. a ship root — translate
    /// through this).
    pub table_map: HashMap<TableId, TableId>,
    /// Blocks removed outright (unreferenced by any kept table).
    pub blocks_dropped: usize,
    /// Blocks kept for table shape but emptied (dead methods, dead
    /// classes): they keep their frame metadata and lose their code.
    pub blocks_stubbed: usize,
    /// Instructions removed by dropping and stubbing.
    pub instrs_dropped: usize,
}

/// Prune `prog` down to what can execute from its entry block.
///
/// * Blocks and tables unreachable from the entry are removed, with ids
///   remapped and the symbol pools re-interned to the surviving uses.
/// * Method and class bodies that are *referenced* by a live table but can
///   never fire (label never sent in a closed world; class never
///   instantiated and never escaping) are stubbed: their metadata stays so
///   table shape, sibling indices and frame-layout checks are untouched,
///   but their code is emptied.
/// * Reference-carrying instructions at provably-dead pcs inside live
///   blocks are rewritten to `halt` (they can never execute), so the
///   things only they referenced can be pruned too.
///
/// The output is normalized (unfused — [`Machine::new`](crate::Machine)
/// re-fuses at boot), passes [`crate::verify::verify_program`], and is a
/// fixpoint: `shake(shake(p)) == shake(p)`.
pub fn shake(prog: &Program) -> Shaken {
    let a = analyze(prog, Roots::Entry);
    shake_with(prog, &a)
}

/// [`shake`] with a precomputed entry-rooted analysis.
pub fn shake_with(prog: &Program, a: &Analysis) -> Shaken {
    let nb = prog.blocks.len();
    let nt = prog.tables.len();
    // Blocks a kept (live) table still names: they must survive, possibly
    // as stubs, so entry counts, positional class indices and the
    // verifier's frame-layout checks keep working.
    let mut table_ref = vec![false; nb];
    for t in 0..nt {
        if a.table_live[t] {
            for (_, b) in &prog.tables[t].entries {
                table_ref[*b as usize] = true;
            }
        }
    }
    let mut block_map: HashMap<BlockId, BlockId> = HashMap::new();
    let mut kept_blocks: Vec<BlockId> = Vec::new();
    for b in 0..nb as BlockId {
        if a.block_live[b as usize] || table_ref[b as usize] {
            block_map.insert(b, kept_blocks.len() as BlockId);
            kept_blocks.push(b);
        }
    }
    let mut table_map: HashMap<TableId, TableId> = HashMap::new();
    let mut kept_tables: Vec<TableId> = Vec::new();
    for t in 0..nt as TableId {
        if a.table_live[t as usize] {
            table_map.insert(t, kept_tables.len() as TableId);
            kept_tables.push(t);
        }
    }

    let mut out = Program::default();
    let mut blocks_stubbed = 0usize;
    let mut instrs_dropped = 0usize;
    for &bid in &kept_blocks {
        let src = &prog.blocks[bid as usize];
        let normalized = crate::fuse::unfuse_code(&src.code);
        let code: &[Instr] = normalized.as_deref().unwrap_or(&src.code);
        let new_code: Arc<[Instr]> = if !a.block_live[bid as usize] {
            blocks_stubbed += 1;
            instrs_dropped += code.len();
            Arc::from(Vec::new())
        } else {
            let live = a.facts[bid as usize].as_ref().map(|f| f.live.as_slice());
            code.iter()
                .enumerate()
                .map(|(pc, ins)| {
                    let pc_live = live.and_then(|l| l.get(pc)).copied().unwrap_or(true);
                    if !pc_live && carries_ref(ins) {
                        return Instr::Halt;
                    }
                    remap_instr(ins, prog, &mut out, &block_map, &table_map)
                })
                .collect()
        };
        out.blocks.push(Block {
            name: src.name.clone(),
            nfree: src.nfree,
            nparams: src.nparams,
            nlocals: src.nlocals,
            is_class_body: src.is_class_body,
            code: new_code,
        });
    }
    for &tid in &kept_tables {
        let entries = prog.tables[tid as usize]
            .entries
            .iter()
            .map(|(l, b)| (out.labels.intern(prog.labels.get(*l)), block_map[b]))
            .collect();
        out.tables.push(MethodTable { entries });
    }
    // Table-rooted shakes may drop the original entry block; the image
    // still needs a well-formed entry (free=0, params=0, plain body), so
    // synthesize an empty one rather than pointing at an arbitrary
    // survivor.
    out.entry = match block_map.get(&prog.entry) {
        Some(&e) => e,
        None => {
            let e = out.blocks.len() as BlockId;
            out.blocks.push(Block {
                name: "entry".to_string(),
                nfree: 0,
                nparams: 0,
                nlocals: 0,
                is_class_body: false,
                code: Arc::from([]),
            });
            e
        }
    };

    let blocks_dropped = nb - kept_blocks.len();
    instrs_dropped += (0..nb as BlockId)
        .filter(|b| !block_map.contains_key(b))
        .map(|b| prog.blocks[b as usize].code.len())
        .sum::<usize>();
    debug_assert!(
        out.blocks.is_empty() || crate::verify::verify_program(&out).is_ok(),
        "shaken program failed verification: {:?}",
        crate::verify::verify_program(&out)
    );
    Shaken {
        program: out,
        table_map,
        blocks_dropped,
        blocks_stubbed,
        instrs_dropped,
    }
}

/// Remap one live instruction into the shaken program's id spaces,
/// interning labels and strings on demand (deterministic first-use order,
/// which makes the transform idempotent).
fn remap_instr(
    ins: &Instr,
    prog: &Program,
    out: &mut Program,
    block_map: &HashMap<BlockId, BlockId>,
    table_map: &HashMap<TableId, TableId>,
) -> Instr {
    let s = |pool: &mut Pool, id: StrId| -> StrId { pool.intern(prog.strings.get(id)) };
    match ins {
        Instr::Fork { block, nfree } => Instr::Fork {
            block: block_map[block],
            nfree: *nfree,
        },
        Instr::TrMsg { label, argc } => Instr::TrMsg {
            label: out.labels.intern(prog.labels.get(*label)),
            argc: *argc,
        },
        Instr::TrObj { table, nfree } => Instr::TrObj {
            table: table_map[table],
            nfree: *nfree,
        },
        Instr::MkGroup {
            table,
            dst,
            count,
            nfree,
        } => Instr::MkGroup {
            table: table_map[table],
            dst: *dst,
            count: *count,
            nfree: *nfree,
        },
        Instr::PushStr(id) => Instr::PushStr(s(&mut out.strings, *id)),
        Instr::ExportName { slot, name } => Instr::ExportName {
            slot: *slot,
            name: s(&mut out.strings, *name),
        },
        Instr::ExportClass { slot, name } => Instr::ExportClass {
            slot: *slot,
            name: s(&mut out.strings, *name),
        },
        Instr::Import {
            dst,
            site,
            name,
            kind,
        } => Instr::Import {
            dst: *dst,
            site: s(&mut out.strings, *site),
            name: s(&mut out.strings, *name),
            kind: *kind,
        },
        other => *other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::{image, LoopbackPort, Machine};
    use tyco_syntax::parse_core;

    fn prog(src: &str) -> Program {
        compile(&parse_core(src).unwrap()).unwrap()
    }

    fn io_of(p: Program) -> Vec<String> {
        let mut m = Machine::new(p, LoopbackPort::new("t"));
        m.run_to_quiescence(1_000_000).unwrap();
        m.io
    }

    #[test]
    fn closed_world_finds_dead_method() {
        // `write` is never sent: its body is parked forever.
        let p = prog(
            r#"
            new x (x?{ read(r) = r![1], write(u) = print(u) }
                   | new z (x!read[z] | z?(w) = print(w)))
            "#,
        );
        let a = analyze(&p, Roots::Entry);
        assert!(!a.open);
        let fs = a.findings(&p);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].kind, FindingKind::UnreachableMethod);
        assert!(fs[0].subject.contains("write"), "{}", fs[0].subject);
    }

    #[test]
    fn closed_world_finds_orphan_send() {
        let p = prog("new x (x?{ go(n) = print(n) } | x!stop[])");
        let a = analyze(&p, Roots::Entry);
        let fs = a.findings(&p);
        assert!(
            fs.iter()
                .any(|f| f.kind == FindingKind::OrphanSend && f.subject == "stop"),
            "{fs:?}"
        );
        // `go` is defined but never sent: also a dead method.
        assert!(
            fs.iter().any(|f| f.kind == FindingKind::UnreachableMethod),
            "{fs:?}"
        );
    }

    #[test]
    fn finds_never_instantiated_class() {
        let p = prog("def Ghost(n) = print(n) in print(0)");
        let a = analyze(&p, Roots::Entry);
        let fs = a.findings(&p);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].kind, FindingKind::NeverInstantiatedClass);
        assert!(fs[0].subject.contains("Ghost"));
    }

    #[test]
    fn instantiated_class_is_clean() {
        let p = prog("def L(n) = if n > 0 then L[n - 1] else print(n) in L[2]");
        let a = analyze(&p, Roots::Entry);
        assert!(a.findings(&p).is_empty(), "{:?}", a.findings(&p));
    }

    #[test]
    fn open_world_suppresses_label_findings() {
        // The channel escapes through the name service: a peer may send
        // any label, so `write` must stay live.
        let p = prog("export new x in x?{ read(r) = r![1], write(u) = print(u) }");
        let a = analyze(&p, Roots::Entry);
        assert!(a.open);
        assert!(a.findings(&p).is_empty(), "{:?}", a.findings(&p));
        // And the method bodies are all reachable.
        for (ti, t) in p.tables.iter().enumerate() {
            if a.table_is_object[ti] {
                for (_, b) in &t.entries {
                    assert!(a.block_live[*b as usize]);
                }
            }
        }
    }

    #[test]
    fn escaping_class_counts_as_used() {
        // The class word is exported: a peer can fetch and instantiate it.
        let p = prog("export def Srv(r) = r![1] in print(0)");
        let a = analyze(&p, Roots::Entry);
        assert!(a.findings(&p).is_empty(), "{:?}", a.findings(&p));
    }

    #[test]
    fn constant_branch_hides_untaken_arm() {
        let p = prog(r#"if 1 < 2 then print(1) else new t (t?{ go() = print(9) } | t!go[])"#);
        let a = analyze(&p, Roots::Entry);
        // The `else` arm's object table is dead: never reached.
        let entry_facts = a.facts[p.entry as usize].as_ref().unwrap();
        assert!(entry_facts.live.iter().any(|l| !*l), "some pcs are dead");
        assert!(
            (0..p.tables.len()).all(|t| !a.table_live[t]),
            "dead-branch tables must not be live"
        );
        // And no findings: dead code is not reported, only live-but-inert
        // methods and classes.
        assert!(a.findings(&p).is_empty(), "{:?}", a.findings(&p));
    }

    #[test]
    fn shake_drops_dead_branch_and_preserves_io() {
        let src = r#"
            if 1 < 2 then
                new c (c?{ go(n) = print(n) } | c!go[7])
            else
                new t (t?{ trace(a) = println("trace", a) } | t!trace[999])
        "#;
        let p = prog(src);
        let shaken = shake(&p);
        assert!(shaken.blocks_dropped > 0, "{shaken:?}");
        assert!(shaken.program.blocks.len() < p.blocks.len());
        crate::verify::verify_program(&shaken.program).unwrap();
        let before = image::to_bytes(&p);
        let after = image::to_bytes(&shaken.program);
        assert!(
            after.len() < before.len(),
            "shaken image must be byte-smaller: {} vs {}",
            after.len(),
            before.len()
        );
        assert_eq!(io_of(p), io_of(shaken.program));
    }

    #[test]
    fn shake_stubs_dead_methods_keeping_table_shape() {
        let p = prog(
            r#"
            new x (x?{ read(r) = r![1], write(u) = print(u) }
                   | new z (x!read[z] | z?(w) = print(w)))
            "#,
        );
        let shaken = shake(&p);
        assert!(shaken.blocks_stubbed > 0, "{shaken:?}");
        // Table shape preserved: both entries still present.
        let two_entry = shaken
            .program
            .tables
            .iter()
            .find(|t| t.entries.len() == 2)
            .expect("cell table survives with both entries");
        let stub = two_entry
            .entries
            .iter()
            .map(|(_, b)| &shaken.program.blocks[*b as usize])
            .find(|b| b.code.is_empty());
        assert!(stub.is_some(), "one body is a stub");
        crate::verify::verify_program(&shaken.program).unwrap();
        assert_eq!(io_of(p), io_of(shaken.program));
    }

    #[test]
    fn shake_is_idempotent() {
        for src in [
            "print(1)",
            r#"
            new x (x?{ read(r) = r![1], write(u) = print(u) }
                   | new z (x!read[z] | z?(w) = print(w)))
            "#,
            r#"if 1 < 2 then print(1) else println("never")"#,
            "def L(n) = if n > 0 then L[n - 1] else print(n) in L[2]",
            "export new x in x?{ go(n) = print(n) }",
        ] {
            let once = shake(&prog(src)).program;
            let twice = shake(&once).program;
            assert_eq!(once, twice, "shake must be a fixpoint for {src}");
        }
    }

    #[test]
    fn shake_keeps_open_world_methods() {
        let p = prog("export new x in x?{ read(r) = r![1], write(u) = print(u) }");
        let shaken = shake(&p);
        assert_eq!(shaken.blocks_stubbed, 0, "open world: nothing stubbed");
        for b in &shaken.program.blocks {
            if b.name.contains("read") || b.name.contains("write") {
                assert!(!b.code.is_empty());
            }
        }
    }

    #[test]
    fn wire_roots_keep_every_method() {
        // Rooted at a shipped table, the world is open: both methods live.
        let p = prog("new x x?{ read(r) = r![1], write(u) = print(u) }");
        let a = analyze(&p, Roots::Tables(&[0]));
        assert!(a.open);
        for (_, b) in &p.tables[0].entries {
            assert!(a.block_live[*b as usize]);
        }
    }
}
