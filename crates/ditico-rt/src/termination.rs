//! Termination detection (§7, future work: *"we need to introduce
//! fault-tolerance and termination detection into the system … to try to
//! terminate computations cleanly"*).
//!
//! We implement Mattern's four-counter scheme adapted to the DiTyCO
//! architecture. The environment keeps two global packet counters
//! ([`crate::daemon::TermCounters`]): `injected` (every packet a site or
//! the name service puts into the system) and `consumed` (every packet
//! drained by a site or handled by the name service). The detector takes
//! repeated snapshots of `(injected, consumed, any_site_active)`:
//! computation has terminated when two *consecutive* snapshots are equal,
//! balanced (`injected == consumed`) and inactive — the first snapshot
//! plays the role of Mattern's first wave, the second confirms that no
//! message was in flight between the waves.

use crate::daemon::TermCounters;
use std::sync::atomic::Ordering;

/// One snapshot of global activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    pub injected: u64,
    pub consumed: u64,
    pub any_active: bool,
}

impl Snapshot {
    /// Take a snapshot from the shared counters plus a site-activity scan.
    pub fn take(counters: &TermCounters, any_active: bool) -> Snapshot {
        // Read consumed before injected: overshooting `injected` can only
        // make the balance check fail (safe direction).
        let consumed = counters.consumed.load(Ordering::SeqCst);
        let injected = counters.injected.load(Ordering::SeqCst);
        Snapshot {
            injected,
            consumed,
            any_active,
        }
    }

    /// Is the system balanced and idle in this snapshot?
    pub fn quiet(&self) -> bool {
        !self.any_active && self.injected == self.consumed
    }
}

/// The two-wave (four-counter) termination detector.
#[derive(Debug, Default)]
pub struct TerminationDetector {
    prev: Option<Snapshot>,
    /// Number of probes performed (reported in experiment C8).
    pub probes: u64,
}

impl TerminationDetector {
    pub fn new() -> TerminationDetector {
        TerminationDetector::default()
    }

    /// Feed a snapshot; returns `true` when termination is detected.
    ///
    /// Safety: only answers `true` when two consecutive snapshots are
    /// quiet and identical, which implies no packet was produced, consumed
    /// or in flight between them.
    pub fn probe(&mut self, snap: Snapshot) -> bool {
        self.probes += 1;
        let done = snap.quiet() && self.prev == Some(snap);
        self.prev = Some(snap);
        done
    }

    /// Forget history (e.g. after a failover re-injection).
    pub fn reset(&mut self) {
        self.prev = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(i: u64, c: u64, a: bool) -> Snapshot {
        Snapshot {
            injected: i,
            consumed: c,
            any_active: a,
        }
    }

    #[test]
    fn needs_two_identical_quiet_snapshots() {
        let mut d = TerminationDetector::new();
        assert!(
            !d.probe(snap(5, 5, false)),
            "first quiet snapshot is not enough"
        );
        assert!(
            d.probe(snap(5, 5, false)),
            "second identical quiet snapshot confirms"
        );
    }

    #[test]
    fn activity_between_waves_resets() {
        let mut d = TerminationDetector::new();
        assert!(!d.probe(snap(5, 5, false)));
        // A message was sent and consumed between probes: counters moved.
        assert!(!d.probe(snap(6, 6, false)));
        assert!(d.probe(snap(6, 6, false)));
    }

    #[test]
    fn never_fires_while_unbalanced_or_active() {
        let mut d = TerminationDetector::new();
        assert!(!d.probe(snap(5, 4, false)));
        assert!(
            !d.probe(snap(5, 4, false)),
            "in-flight packet blocks detection"
        );
        assert!(!d.probe(snap(5, 5, true)));
        assert!(!d.probe(snap(5, 5, true)), "active site blocks detection");
    }

    #[test]
    fn reset_discards_history() {
        let mut d = TerminationDetector::new();
        assert!(!d.probe(snap(5, 5, false)));
        d.reset();
        assert!(
            !d.probe(snap(5, 5, false)),
            "reset forces a fresh first wave"
        );
        assert!(d.probe(snap(5, 5, false)));
    }

    #[test]
    fn snapshot_take_reads_counters() {
        let c = TermCounters::default();
        c.injected.fetch_add(3, Ordering::SeqCst);
        c.consumed.fetch_add(3, Ordering::SeqCst);
        let s = Snapshot::take(&c, false);
        assert!(s.quiet());
        c.injected.fetch_add(1, Ordering::SeqCst);
        let s = Snapshot::take(&c, false);
        assert!(!s.quiet());
    }
}
