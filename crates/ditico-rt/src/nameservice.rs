//! The Network Name Service (§5, "NETWORKS").
//!
//! Conceptually two tables, exactly as in the paper:
//!
//! ```text
//! SiteTable: SiteName → SiteId × IpAddress
//! IdTable:   SiteName × IdName → HeapId
//! ```
//!
//! (Our `IdTable` stores the full network reference — heap id, site id,
//! node — because that is what the paper composes out of the two tables
//! when answering a lookup.)
//!
//! The service is a pure state machine driven by [`Packet`]s, so it can be
//! hosted by any node's daemon, replicated (see [`crate::failure`]) and
//! unit-tested in isolation. Lookups for identifiers not yet exported are
//! parked and answered when the export arrives — this is what makes
//! `import` block until the corresponding `export` executes.

use std::collections::HashMap;
use tyco_vm::codec::{Packet, TypeStamp};
use tyco_vm::program::ImportKind;
use tyco_vm::wire::WireWord;
use tyco_vm::word::{Identity, SiteId};

/// A parked lookup waiting for its export to arrive. The (site, name)
/// pair it waits on is the key of the `pending` index, not a field.
#[derive(Debug, Clone)]
struct PendingImport {
    req: u64,
    kind: ImportKind,
    reply_to: Identity,
    expect: Option<TypeStamp>,
}

/// The name-service state.
#[derive(Debug, Default, Clone)]
pub struct NameService {
    /// `SiteTable`: site lexeme → (site id, node).
    site_table: HashMap<String, Identity>,
    /// `IdTable`: (site lexeme, identifier) → exported value + its type
    /// stamp (when the exporting site was statically checked).
    id_table: HashMap<(String, String), (WireWord, Option<TypeStamp>)>,
    /// Lookups waiting for an export, indexed by the (site lexeme,
    /// identifier) they wait on: a register touches exactly its own
    /// waiters instead of scanning every parked lookup in the network.
    pending: HashMap<(String, String), Vec<PendingImport>>,
}

/// Kind-check an exported value against the requested import kind.
fn kind_ok(kind: ImportKind, w: &WireWord) -> bool {
    matches!(
        (kind, w),
        (ImportKind::Name, WireWord::Chan(_)) | (ImportKind::Class, WireWord::Class(_))
    )
}

/// Bind-time type compatibility: refuse the import when both sides carry a
/// stamp and the stamps provably disagree. Fingerprint equality is the
/// fast path; a miss falls back to the structural `compatible` check
/// (canonical forms with *open* rows can differ textually yet unify).
/// Either side unstamped → no static evidence → defer to dynamic checks.
fn stamp_ok(expect: &Option<TypeStamp>, actual: &Option<TypeStamp>) -> Result<(), String> {
    let (Some(e), Some(a)) = (expect.as_ref(), actual.as_ref()) else {
        return Ok(());
    };
    if e.fingerprint == a.fingerprint {
        return Ok(());
    }
    if let (Some(et), Some(at)) = (
        tyco_types::parse_canonical(&e.canonical),
        tyco_types::parse_canonical(&a.canonical),
    ) {
        if tyco_types::compatible(&et, &at) {
            return Ok(());
        }
    }
    Err(format!(
        "type mismatch at bind time: importer expects `{}`, exporter provides `{}`",
        e.canonical, a.canonical
    ))
}

impl NameService {
    pub fn new() -> NameService {
        NameService::default()
    }

    /// Register a site (done by the environment when the site is created;
    /// the paper: "site names are registered in a Network Name Service").
    pub fn register_site(&mut self, lexeme: &str, identity: Identity) {
        self.site_table.insert(lexeme.to_string(), identity);
    }

    /// Where a site lives.
    pub fn lookup_site(&self, lexeme: &str) -> Option<Identity> {
        self.site_table.get(lexeme).copied()
    }

    /// Number of exported identifiers (diagnostics).
    pub fn exported_count(&self) -> usize {
        self.id_table.len()
    }

    /// Pending (blocked) lookups.
    pub fn pending_count(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }

    /// Handle an `export` registration. Returns reply packets for every
    /// parked lookup this export satisfies.
    pub fn handle_register(
        &mut self,
        _from_site: SiteId,
        site_lexeme: &str,
        name: &str,
        value: WireWord,
        stamp: Option<TypeStamp>,
    ) -> Vec<Packet> {
        let key = (site_lexeme.to_string(), name.to_string());
        self.id_table
            .insert(key.clone(), (value.clone(), stamp.clone()));
        let mut replies = Vec::new();
        for p in self.pending.remove(&key).unwrap_or_default() {
            let result = if !kind_ok(p.kind, &value) {
                Err(format!(
                    "`{site_lexeme}.{name}` exported with the wrong kind"
                ))
            } else if let Err(e) = stamp_ok(&p.expect, &stamp) {
                Err(format!("`{site_lexeme}.{name}`: {e}"))
            } else {
                Ok(value.clone())
            };
            replies.push(Packet::NsImportReply {
                to: p.reply_to,
                req: p.req,
                result,
            });
        }
        replies
    }

    /// Handle an `import` lookup. Returns the reply packet when the
    /// identifier is known (or known-bad); parks the request otherwise.
    pub fn handle_import(
        &mut self,
        req: u64,
        site: &str,
        name: &str,
        kind: ImportKind,
        reply_to: Identity,
        expect: Option<TypeStamp>,
    ) -> Option<Packet> {
        // Unknown site lexeme is a permanent error (sites are registered
        // at creation, before any program runs).
        if !self.site_table.contains_key(site) {
            return Some(Packet::NsImportReply {
                to: reply_to,
                req,
                result: Err(format!("unknown site `{site}`")),
            });
        }
        match self.id_table.get(&(site.to_string(), name.to_string())) {
            Some((w, stamp)) => {
                let result = if !kind_ok(kind, w) {
                    Err(format!("`{site}.{name}` has the wrong kind"))
                } else if let Err(e) = stamp_ok(&expect, stamp) {
                    Err(format!("`{site}.{name}`: {e}"))
                } else {
                    Ok(w.clone())
                };
                Some(Packet::NsImportReply {
                    to: reply_to,
                    req,
                    result,
                })
            }
            None => {
                self.pending
                    .entry((site.to_string(), name.to_string()))
                    .or_default()
                    .push(PendingImport {
                        req,
                        kind,
                        reply_to,
                        expect,
                    });
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyco_vm::word::{NetRef, NodeId};

    fn ident(s: u32, n: u32) -> Identity {
        Identity {
            site: SiteId(s),
            node: NodeId(n),
        }
    }

    fn chan(h: u64) -> WireWord {
        WireWord::Chan(NetRef {
            heap_id: h,
            site: SiteId(0),
            node: NodeId(0),
        })
    }

    #[test]
    fn lookup_after_register() {
        let mut ns = NameService::new();
        ns.register_site("server", ident(0, 0));
        assert!(ns
            .handle_register(SiteId(0), "server", "p", chan(7), None)
            .is_empty());
        let reply = ns
            .handle_import(1, "server", "p", ImportKind::Name, ident(1, 1), None)
            .unwrap();
        match reply {
            Packet::NsImportReply {
                req: 1,
                result: Ok(WireWord::Chan(r)),
                ..
            } => {
                assert_eq!(r.heap_id, 7);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lookup_blocks_until_register() {
        let mut ns = NameService::new();
        ns.register_site("server", ident(0, 0));
        assert!(ns
            .handle_import(1, "server", "p", ImportKind::Name, ident(1, 1), None)
            .is_none());
        assert_eq!(ns.pending_count(), 1);
        let replies = ns.handle_register(SiteId(0), "server", "p", chan(3), None);
        assert_eq!(replies.len(), 1);
        assert_eq!(ns.pending_count(), 0);
        match &replies[0] {
            Packet::NsImportReply {
                req: 1,
                result: Ok(_),
                to,
            } => {
                assert_eq!(*to, ident(1, 1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_site_is_permanent_error() {
        let mut ns = NameService::new();
        let reply = ns
            .handle_import(1, "mars", "p", ImportKind::Name, ident(1, 1), None)
            .unwrap();
        assert!(matches!(
            reply,
            Packet::NsImportReply { result: Err(_), .. }
        ));
    }

    #[test]
    fn kind_mismatch_is_error() {
        let mut ns = NameService::new();
        ns.register_site("server", ident(0, 0));
        ns.handle_register(SiteId(0), "server", "p", chan(0), None);
        let reply = ns
            .handle_import(1, "server", "p", ImportKind::Class, ident(1, 1), None)
            .unwrap();
        assert!(matches!(
            reply,
            Packet::NsImportReply { result: Err(_), .. }
        ));
        // And the parked-then-registered path checks kinds too.
        assert!(ns
            .handle_import(2, "server", "k", ImportKind::Class, ident(1, 1), None)
            .is_none());
        let replies = ns.handle_register(SiteId(0), "server", "k", chan(1), None);
        assert!(matches!(
            &replies[0],
            Packet::NsImportReply { result: Err(_), .. }
        ));
    }

    #[test]
    fn multiple_waiters_all_answered() {
        let mut ns = NameService::new();
        ns.register_site("s", ident(0, 0));
        for req in 0..5 {
            assert!(ns
                .handle_import(req, "s", "x", ImportKind::Name, ident(req as u32, 0), None)
                .is_none());
        }
        let replies = ns.handle_register(SiteId(0), "s", "x", chan(9), None);
        assert_eq!(replies.len(), 5);
    }

    fn stamp_of(src: &str) -> TypeStamp {
        // Build a stamp the way the environment does: canonicalize + hash.
        let t = tyco_types::parse_canonical(src).expect("canonical parses");
        TypeStamp {
            fingerprint: tyco_types::fingerprint(&t),
            canonical: tyco_types::canonical(&t),
        }
    }

    #[test]
    fn stamp_mismatch_is_refused_at_bind_time() {
        let mut ns = NameService::new();
        ns.register_site("server", ident(0, 0));
        ns.handle_register(
            SiteId(0),
            "server",
            "p",
            chan(0),
            Some(stamp_of("^{val(int)}")),
        );
        // An importer expecting a bool-channel is refused with a typed
        // error naming both protocols.
        let reply = ns
            .handle_import(
                1,
                "server",
                "p",
                ImportKind::Name,
                ident(1, 1),
                Some(stamp_of("^{val(bool)}")),
            )
            .unwrap();
        match reply {
            Packet::NsImportReply {
                result: Err(e),
                req: 1,
                ..
            } => {
                assert!(e.contains("type mismatch at bind time"), "{e}");
                assert!(
                    e.contains("^{val(bool)}") && e.contains("^{val(int)}"),
                    "{e}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        // A matching expectation succeeds.
        let reply = ns
            .handle_import(
                2,
                "server",
                "p",
                ImportKind::Name,
                ident(1, 1),
                Some(stamp_of("^{val(int)}")),
            )
            .unwrap();
        assert!(matches!(reply, Packet::NsImportReply { result: Ok(_), .. }));
        // An unstamped importer is let through (no static evidence).
        let reply = ns
            .handle_import(3, "server", "p", ImportKind::Name, ident(1, 1), None)
            .unwrap();
        assert!(matches!(reply, Packet::NsImportReply { result: Ok(_), .. }));
    }

    #[test]
    fn stamp_open_row_falls_back_to_structural_check() {
        // Fingerprints differ (one row is open) but the types unify:
        // the structural fallback must accept.
        let e = stamp_of("^{val(int)|r0}");
        let a = stamp_of("^{val(int)}");
        assert_ne!(e.fingerprint, a.fingerprint);
        assert!(stamp_ok(&Some(e), &Some(a)).is_ok());
    }

    #[test]
    fn stamp_mismatch_on_parked_lookup() {
        let mut ns = NameService::new();
        ns.register_site("server", ident(0, 0));
        assert!(ns
            .handle_import(
                7,
                "server",
                "late",
                ImportKind::Name,
                ident(1, 1),
                Some(stamp_of("^{val(string)}")),
            )
            .is_none());
        let replies = ns.handle_register(
            SiteId(0),
            "server",
            "late",
            chan(4),
            Some(stamp_of("^{val(float)}")),
        );
        assert_eq!(replies.len(), 1);
        assert!(matches!(
            &replies[0],
            Packet::NsImportReply { result: Err(_), .. }
        ));
    }
}
