//! TyCOsh — an interactive shell over the DiTyCO environment (§5: *"Users
//! submit new programs for execution in a node using a shell program
//! called TyCOsh"*).
//!
//! ```sh
//! cargo run --example tycosh
//! ```
//!
//! Then, at the prompt:
//!
//! ```text
//! tycosh> topology nodes=2 fabric=virtual link=myrinet
//! tycosh> site server def Srv(s) = s?{ val(x, r) = r![x + 1] | Srv[s] } in export new p in Srv[p]
//! tycosh> site client import p from server in new a (p!val[41, a] | a?(y) = print(y))
//! tycosh> run
//! tycosh> output client
//! ```
//!
//! Piped input works too:
//! `printf 'site m println("hi")\nrun\noutput m\n' | cargo run --example tycosh`

use ditico::Shell;
use std::io::{BufRead, Write};

fn main() {
    let mut shell = Shell::new();
    let stdin = std::io::stdin();
    let interactive = atty_guess();
    if interactive {
        println!("TyCOsh — DiTyCO shell. Type `help` for commands, ctrl-D to exit.");
    }
    let mut lock = stdin.lock();
    let mut line = String::new();
    loop {
        if interactive {
            print!("tycosh> ");
            let _ = std::io::stdout().flush();
        }
        line.clear();
        match lock.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if line.trim() == "exit" || line.trim() == "quit" {
                    break;
                }
                let reply = shell.exec(&line);
                if !reply.is_empty() {
                    println!("{reply}");
                }
            }
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
    }
}

/// Crude interactivity guess without extra dependencies: honor an explicit
/// override, else assume non-interactive when stdin is redirected from a
/// file or pipe (checked via the TERM-less heuristic of piped CI runs).
fn atty_guess() -> bool {
    if std::env::var_os("TYCOSH_BATCH").is_some() {
        return false;
    }
    // On Linux, /proc/self/fd/0 links to a tty when interactive.
    match std::fs::read_link("/proc/self/fd/0") {
        Ok(p) => p.to_string_lossy().contains("/dev/pts") || p.to_string_lossy().contains("tty"),
        Err(_) => true,
    }
}
