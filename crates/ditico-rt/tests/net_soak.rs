//! Event-loop transport regression and soak tests.
//!
//! * `dead_peer_does_not_delay_live_handshake` — the connector
//!   concurrency regression: with every dial owned by one event loop, an
//!   unresponsive peer consuming its full `connect_timeout` must not
//!   serialize behind it the handshake to a healthy peer.
//! * `soak_mesh_8_*` — an in-process many-peer cluster: N partitions
//!   wired all-to-all over loopback, heartbeats on every connection and a
//!   ring of remote FETCHes. Asserts clean termination, every fetch
//!   result, and zero suspicion of peers that were alive throughout.
//!   N=8 runs in CI; the 256-peer version of the same soak is
//!   `#[ignore]`d (minutes of wall clock and ~1k fds — run it by hand
//!   with `cargo test -p ditico-rt --test net_soak -- --ignored`).

use ditico_rt::{
    Cluster, Fabric, FabricMode, LinkProfile, Transport, TransportConfig, TransportReport,
};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};
use tyco_vm::word::NodeId;

/// Reserve `n` loopback listen addresses for partitions that have not
/// bound them yet. Reserve-then-drop on port 0 is not enough at this
/// scale: a freed ephemeral port can be handed to another partition's
/// *outbound* connect as its source port before the owner rebinds it.
/// Probing a contiguous block *below* the kernel's ephemeral floor
/// closes that race — connect(2) never allocates from down there.
fn reserve_addrs(n: u16) -> Vec<SocketAddr> {
    let floor: u16 = std::fs::read_to_string("/proc/sys/net/ipv4/ip_local_port_range")
        .ok()
        .and_then(|s| s.split_whitespace().next().and_then(|v| v.parse().ok()))
        .unwrap_or(32768);
    let mut base = 15000u16;
    while base + n < floor {
        let held: Vec<TcpListener> = (0..n)
            .map_while(|p| TcpListener::bind(("127.0.0.1", base + p)).ok())
            .collect();
        if held.len() == n as usize {
            return held
                .iter()
                .map(|l| l.local_addr().expect("local_addr"))
                .collect();
        }
        base += n.max(64);
    }
    panic!("no free block of {n} consecutive loopback ports below {floor}");
}

/// One dead peer must not delay a live peer's handshake.
///
/// The dead peer is a listener whose accept queue has been saturated and
/// is never drained: SYNs to it neither complete nor fail, so a dial
/// stays in flight for the whole `connect_timeout`. With that timeout set
/// to 5s and the dead peer listed *first*, any implementation that
/// serializes connect attempts cannot reach the live peer inside the 2s
/// bound this test enforces.
#[test]
fn dead_peer_does_not_delay_live_handshake() {
    let blackhole = TcpListener::bind("127.0.0.1:0").expect("bind blackhole");
    let bh_addr = blackhole.local_addr().expect("blackhole addr");
    // std binds with backlog 128; keep completed connections parked in
    // the queue until a fresh connect stops completing.
    let mut hold: Vec<TcpStream> = Vec::new();
    for _ in 0..2048 {
        match TcpStream::connect_timeout(&bh_addr, Duration::from_millis(50)) {
            Ok(s) => hold.push(s),
            Err(_) => break,
        }
    }
    assert!(
        hold.len() < 2048,
        "accept queue refused to saturate; cannot build a blackhole"
    );

    let fabric_live = Fabric::new(FabricMode::Ideal, LinkProfile::ideal());
    let live = Transport::start(
        TransportConfig {
            local_nodes: vec![NodeId(1)],
            listen: Some("127.0.0.1:0".parse().unwrap()),
            hb_period: Duration::from_millis(25),
            ..TransportConfig::default()
        },
        fabric_live.handle(),
    )
    .expect("live transport");
    let live_addr = live.local_addr().expect("live addr");

    let fabric_dialer = Fabric::new(FabricMode::Ideal, LinkProfile::ideal());
    let t0 = Instant::now();
    let dialer = Transport::start(
        TransportConfig {
            local_nodes: vec![NodeId(0)],
            // Dead peer first: a serial connector would burn its 5s
            // timeout here before ever dialing the live peer.
            peers: vec![bh_addr, live_addr],
            connect_timeout: Duration::from_secs(5),
            hb_period: Duration::from_millis(25),
            ..TransportConfig::default()
        },
        fabric_dialer.handle(),
    )
    .expect("dialing transport");

    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        if live.report().heartbeats_in > 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "live handshake delayed past 2s by a dead peer: {:?}",
            live.report()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(t0.elapsed() < Duration::from_secs(2));
    drop(dialer);
    drop(live);
}

/// Build partition `p` of an `n`-node soak cluster. Every node hosts one
/// site; site `i` exports `Inc{i}` and remote-FETCHes `Inc{(i+1)%n}`
/// from its ring successor, so every partition both serves code mobility
/// and exercises it.
fn soak_partition(p: u32, n: u32) -> Cluster {
    let mut c = Cluster::new(FabricMode::Ideal, LinkProfile::ideal(), 1);
    for _ in 0..n {
        c.add_node();
    }
    for i in 0..n {
        let j = (i + 1) % n;
        if i == p {
            let src = format!(
                "export def Inc{i}(x, r) = r![x + 1] in \
                 import Inc{j} from s{j} in \
                 new r (Inc{j}[{i}, r] | r?(y) = print(y))"
            );
            c.add_site_src(NodeId(i), &format!("s{i}"), &src).unwrap();
        } else {
            c.add_remote_site(&format!("s{i}"), NodeId(i));
        }
    }
    c
}

fn soak_cfg(p: u32, n: u32, listen: SocketAddr, peers: Vec<SocketAddr>) -> TransportConfig {
    TransportConfig {
        local_nodes: vec![NodeId(p)],
        listen: Some(listen),
        peers,
        serve: false,
        hb_period: Duration::from_millis(50),
        // The suspicion window (stale × hb) must dominate both the exit
        // skew between partitions and the worst-case scheduling
        // starvation of a beacon *sender* — and the latter grows with
        // the number of in-process partitions oversubscribing the
        // host's cores. 2.5s at n=8; 80s at n=256.
        stale_periods: 50 * u64::from(n.max(8)) / 8,
        max_retries: 20,
        // Same scaling story for the idle grace: a partition may only
        // wind down once every peer that will ever FETCH from it has
        // done so, and how long a starved peer takes to issue that
        // fetch grows with n. 1s at n=8; 32s at n=256.
        idle_grace: Duration::from_millis(1000) * n.max(8) / 8,
        ..TransportConfig::default()
    }
}

/// Run an `n`-partition soak where partition `i` dials the addresses
/// `dial(i)` selects, then assert global success: every ring fetch
/// produced its result, every partition terminated by quiescing, and no
/// live peer was ever suspected.
fn run_soak(n: u32, dial: impl Fn(u32) -> Vec<u32>) {
    let addrs = reserve_addrs(n as u16);
    let mut handles = Vec::new();
    for p in 0..n {
        let listen = addrs[p as usize];
        let peers: Vec<SocketAddr> = dial(p).into_iter().map(|j| addrs[j as usize]).collect();
        handles.push(std::thread::spawn(move || {
            soak_partition(p, n)
                .run_distributed(soak_cfg(p, n, listen, peers), Duration::from_secs(120))
                .expect("partition run")
        }));
    }
    let reports: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("partition thread"))
        .collect();
    for (p, report) in reports.iter().enumerate() {
        let expect = format!("{}", p + 1);
        assert_eq!(
            report.output(&format!("s{p}")),
            [expect],
            "partition {p}: ring fetch result"
        );
        assert!(
            report.errors.is_empty(),
            "partition {p}: {:?}",
            report.errors
        );
        assert!(
            report.quiescent,
            "partition {p} should exit by idling, not by wall"
        );
        assert!(
            report.suspects.is_empty(),
            "partition {p} suspected live peers: {:?}",
            report.suspects
        );
        let wire: TransportReport = report.transport.expect("wire counters");
        assert!(wire.heartbeats_in > 0, "partition {p}: no liveness traffic");
        assert_eq!(wire.rejected, 0, "partition {p}: {wire:?}");
    }
}

/// CI smoke: 8 partitions, full mesh (heartbeats genuinely all-to-all),
/// ring of FETCHes. 28 loopback connections inside one process.
#[test]
fn soak_mesh_8_all_to_all_heartbeats_and_fetch_ring() {
    // Partition i dials every j < i; accepted connections cover j > i,
    // so the mesh is complete without double-dialing any pair.
    run_soak(8, |p| (0..p).collect());
}

/// The 256-peer soak. Ring topology plus a spoke to node 0 (the
/// name-service host) — a full 256-way mesh would need ~65k fds for
/// 32640 in-process connection pairs, past typical fd budgets, and adds
/// nothing over the mesh smoke above. ~510 connections, ~1k threads.
#[test]
#[ignore = "minutes of wall clock; run with --ignored"]
fn soak_256_ring_of_fetches() {
    run_soak(256, |p| {
        let n = 256u32;
        let succ = (p + 1) % n;
        let mut out = vec![succ];
        if p != 0 && succ != 0 {
            out.push(0); // reach the name service directly
        }
        out
    });
}
