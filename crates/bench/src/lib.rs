//! Shared workload builders for the benchmark harness.
//!
//! Every experiment in DESIGN.md §5 has a bench target in `benches/`; the
//! workloads here are the programs those benches run. Two kinds of numbers
//! come out of the harness:
//!
//! * **wall-clock** measurements (Criterion) — the real cost of the VM,
//!   codec and runtime primitives on the host machine;
//! * **virtual-time** measurements (printed tables) — the modelled
//!   behaviour of the paper's cluster under different link profiles,
//!   concurrency levels and mobility strategies. These are deterministic
//!   and host-independent, and are what EXPERIMENTS.md records.

use ditico::{Env, FabricMode, LinkProfile, RunLimits, RunReport, Topology};

/// A server answering `val(x, r)` with `x + 1`, forever.
pub const ECHO_SERVER: &str =
    "def Srv(p) = p?{ val(x, r) = r![x + 1] | Srv[p] } in export new p in Srv[p]";

/// A client that performs `n` *sequential* RPCs (each waits for its reply).
pub fn sequential_client(n: u64) -> String {
    format!(
        r#"
        import p from server in
        def Loop(k) =
            if k > 0 then new a (p!val[k, a] | a?(v) = Loop[k - 1])
            else println("done")
        in Loop[{n}]
        "#
    )
}

/// A client with `width` independent sequential chains of `n / width`
/// RPCs each: `width` threads' worth of latency to hide.
pub fn pipelined_client(n: u64, width: u64) -> String {
    let per = (n / width.max(1)).max(1);
    let mut chains = String::new();
    for c in 0..width {
        chains.push_str(&format!(
            "| new d{c} (Chain[{per}, d{c}] | d{c}?(x) = println(\"chain\", {c}))"
        ));
    }
    format!(
        r#"
        import p from server in
        def Chain(k, done) =
            if k > 0 then new a (p!val[k, a] | a?(v) = Chain[k - 1, done])
            else done![0]
        in (0 {chains})
        "#
    )
}

/// Run a two-node client/server topology in virtual time.
pub fn run_two_node(link: LinkProfile, server: &str, client: &str, max_instrs: u64) -> RunReport {
    let mut built = Env::new(Topology {
        nodes: 2,
        mode: FabricMode::Virtual,
        link,
        ns_replicas: 1,
    })
    .site_on(0, "server", server)
    .expect("server compiles")
    .site_on(1, "client", client)
    .expect("client compiles")
    .build()
    .expect("links check");
    built.run_deterministic(RunLimits {
        max_instrs,
        fuel_per_slice: 2048,
        ..RunLimits::default()
    })
}

/// A compute-heavy single-site program: `iters` local cell transactions.
pub fn cell_churn(iters: u64) -> String {
    format!(
        r#"
        def Cell(self, v) =
            self ? {{ read(r) = r![v] | Cell[self, v], write(u) = Cell[self, u] }}
        and Driver(cell, n) =
            if n > 0 then
                (cell!write[n] | new z (cell!read[z] | z?(w) = Driver[cell, n - 1]))
            else println("finished")
        in new x (Cell[x, 0] | Driver[x, {iters}])
        "#
    )
}

/// The `cell_churn` shape shuttling string payloads instead of integers
/// (exercises `PushStr` and `Word::Str` refcounting on the same reduction
/// pattern). Shared so every harness that A/B-compares dispatch variants
/// runs byte-identical programs.
pub fn str_churn(iters: u64) -> String {
    format!(
        r#"
        def Cell(self, v) =
            self ? {{ read(r) = r![v] | Cell[self, v], write(u) = Cell[self, u] }}
        and Driver(cell, n) =
            if n > 0 then
                (cell!write["the-quick-brown-fox"] |
                 new z (cell!read[z] | z?(w) = Driver[cell, n - 1]))
            else println("finished")
        in new x (Cell[x, "seed"] | Driver[x, {iters}])
        "#
    )
}

/// The fetch-variant applet client: download once, then `reqs`
/// *sequential* local instantiations (each applet acks completion, so the
/// amortization of the single download is visible in virtual time).
pub fn fetch_client(reqs: u64) -> String {
    format!(
        r#"
        import Applet from server in
        def Drive(k) =
            if k > 0 then new d (Applet[k, d] | d?(x) = Drive[k - 1])
            else println("done")
        in Drive[{reqs}]
        "#
    )
}

pub const FETCH_SERVER: &str = r#"export def Applet(v, d) = print(v) | d![0] in 0"#;

/// The ship-variant applet client: one shipped object per request,
/// sequentially (each shipped applet acks completion).
pub fn ship_client(reqs: u64) -> String {
    format!(
        r#"
        import appletserver from server in
        def Drive(k) =
            if k > 0 then
                new q new d (appletserver!applet[q, d] | q![k] | d?(x) = Drive[k - 1])
            else println("done")
        in Drive[{reqs}]
        "#
    )
}

pub const SHIP_SERVER: &str = r#"
    def AppletServer(self) =
        self ? { applet(q, d) = (q?(x) = print(x) | d![0]) | AppletServer[self] }
    in export new appletserver in AppletServer[appletserver]
"#;

/// RMI-style baseline: the object stays at the server; every method call
/// is remote. `objects * calls` total remote invocations.
pub fn rmi_client(objects: u64, calls: u64) -> String {
    format!(
        r#"
        import factory from server in
        def UseObj(o, k, done) =
            if k > 0 then new a (o!get[a] | a?(v) = UseObj[o, k - 1, done])
            else done![0]
        and Drive(n, done) =
            if n > 0 then
                new h (factory!make[h] | h?(o) = (UseObj[o, {calls}, done] | Drive[n - 1, done]))
            else 0
        and Collect(left, done) =
            done?(x) = if left > 1 then Collect[left - 1, done] else println("done")
        in new done (Drive[{objects}, done] | Collect[{objects}, done])
        "#
    )
}

pub const RMI_SERVER: &str = r#"
    def Obj(self, n) = self?{ get(r) = r![n] | Obj[self, n] }
    and Factory(f, c) = f?{ make(h) = new o (Obj[o, c] | h![o]) | Factory[f, c + 1] }
    in export new factory in Factory[factory, 0]
"#;

/// Mobility version: the class is fetched once; objects are instantiated
/// and used locally at the client.
pub fn mobility_client(objects: u64, calls: u64) -> String {
    format!(
        r#"
        import Obj from server in
        def UseObj(o, k, done) =
            if k > 0 then new a (o!get[a] | a?(v) = UseObj[o, k - 1, done])
            else done![0]
        and Drive(n, done) =
            if n > 0 then new o (Obj[o, n] | UseObj[o, {calls}, done] | Drive[n - 1, done])
            else 0
        and Collect(left, done) =
            done?(x) = if left > 1 then Collect[left - 1, done] else println("done")
        in new done (Drive[{objects}, done] | Collect[{objects}, done])
        "#
    )
}

pub const MOBILITY_SERVER: &str =
    r#"export def Obj(self, n) = self?{ get(r) = r![n] | Obj[self, n] } in 0"#;

/// Assert a report finished cleanly and the client printed "done".
pub fn assert_done(report: &RunReport) {
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert!(
        report.output("client").iter().any(|l| l == "done"),
        "client did not finish: {:?}",
        report.output("client")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_run() {
        let r = run_two_node(
            LinkProfile::myrinet(),
            ECHO_SERVER,
            &sequential_client(5),
            10_000_000,
        );
        assert_done(&r);
        let r = run_two_node(
            LinkProfile::myrinet(),
            ECHO_SERVER,
            &pipelined_client(8, 4),
            10_000_000,
        );
        assert!(r.errors.is_empty());
        let r = run_two_node(
            LinkProfile::myrinet(),
            FETCH_SERVER,
            &fetch_client(4),
            10_000_000,
        );
        assert_done(&r);
        let r = run_two_node(
            LinkProfile::myrinet(),
            SHIP_SERVER,
            &ship_client(4),
            10_000_000,
        );
        assert_done(&r);
        let r = run_two_node(
            LinkProfile::myrinet(),
            RMI_SERVER,
            &rmi_client(2, 3),
            10_000_000,
        );
        assert_done(&r);
        let r = run_two_node(
            LinkProfile::myrinet(),
            MOBILITY_SERVER,
            &mobility_client(2, 3),
            10_000_000,
        );
        assert_done(&r);
    }
}
