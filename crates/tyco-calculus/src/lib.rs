//! # tyco-calculus
//!
//! The executable formal semantics of DiTyCO networks (§2–§3 of the paper):
//!
//! * [`sigma`] — the identifier-translation function σ and its laws;
//! * [`value`] — runtime values (global channel identities = located names
//!   after scope extrusion) and persistent environments;
//! * [`interp`] — a fair small-step interpreter implementing COMM, INST and
//!   the mobility axioms SHIPM / SHIPO / FETCH, with per-rule counters;
//! * [`lint`] — a conservative liveness lint: messages no object can ever
//!   receive, and objects no message ever targets, in closed programs;
//! * [`trace`] — reduction-rule accounting.
//!
//! The interpreter doubles as the tree-walking *baseline* against which the
//! byte-code virtual machine ([`tyco-vm`](../tyco_vm/index.html)) is
//! differentially tested and benchmarked (experiment C7 in DESIGN.md).

pub mod interp;
pub mod lint;
pub mod network_syntax;
pub mod sigma;
pub mod trace;
pub mod value;

pub use interp::{eval_binop, Network, Outcome, RtError, Scheduler};
pub use lint::{lint, Lint, LintKind};
pub use network_syntax::{normalize, CanonNet, Net};
pub use sigma::{sigma_class, sigma_name, sigma_proc};
pub use trace::{Counters, Rule};
pub use value::{Binding, ChanId, Env, SiteId, Val};
