//! Two-process cluster tests over loopback TCP, through the real
//! `ditico` binary: one `ditico serve` child hosting the server node and
//! the name service, one `ditico net --peers` client process fetching
//! code from it — first the happy path, then with the server killed
//! mid-run to check the survivor suspects it and terminates cleanly.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

fn ditico() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ditico"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ditico-net-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mk tmpdir");
    dir
}

fn write(dir: &std::path::Path, name: &str, content: &str) -> PathBuf {
    let p = dir.join(name);
    std::fs::write(&p, content).expect("write");
    p
}

/// Reserve a free loopback port by binding port 0 and dropping the
/// listener (racy in principle, fine for tests).
fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .expect("bind")
        .local_addr()
        .expect("addr")
        .port()
}

/// Wait for `child` to exit on its own, killing it (and panicking) if it
/// outlives `secs` — a hung process must fail the test, not wedge CI.
fn wait_bounded(child: &mut Child, secs: u64) -> ExitStatus {
    let t0 = Instant::now();
    loop {
        if let Some(st) = child.try_wait().expect("try_wait") {
            return st;
        }
        if t0.elapsed() > Duration::from_secs(secs) {
            let _ = child.kill();
            let _ = child.wait();
            panic!("child did not exit within {secs}s");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

const SPEC: &str = "topology nodes=2 fabric=ideal link=ideal\n\
                    site server server.dity node=0\n\
                    site client client.dity node=1\n";

const SERVER: &str = "export def Adder(x, r) = r![x + 40] in 0";

/// Both processes read the same spec; the client FETCHes `Adder`'s code
/// over the wire and instantiates it locally.
const CLIENT: &str = "import Adder from server in new r (Adder[2, r] | r?(y) = print(y))";

/// A client that also spins forever after printing, so the process stays
/// busy and can only exit when the failure detector declares the peer
/// dead (used by the kill test).
const CLIENT_SPIN: &str = "import Adder from server in \
                           def Loop(n) = Loop[n] in \
                           new r (Adder[2, r] | r?(y) = print(y) | Loop[0])";

#[test]
fn two_process_fetch_roundtrip() {
    let dir = tmpdir("roundtrip");
    write(&dir, "server.dity", SERVER);
    write(&dir, "client.dity", CLIENT);
    let spec = write(&dir, "cluster.net", SPEC);
    let addr = format!("127.0.0.1:{}", free_port());

    let mut server = ditico()
        .args(["serve", spec.to_str().unwrap(), "--node", "0"])
        .args(["--listen", &addr, "--wall", "60", "--hb-ms", "25"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");

    // The client dials with reconnect/backoff, so it need not wait for
    // the server's listener to come up.
    let client = ditico()
        .args(["net", spec.to_str().unwrap(), "--node", "1"])
        .args(["--peers", &addr, "--wall", "60", "--hb-ms", "25"])
        .output()
        .expect("run client");
    let client_err = String::from_utf8_lossy(&client.stderr).to_string();
    assert!(client.status.success(), "{client_err}");
    assert_eq!(
        String::from_utf8_lossy(&client.stdout).trim(),
        "[client] 42",
        "{client_err}"
    );
    assert!(
        !client_err.contains("suspected dead nodes"),
        "clean run must not suspect anyone: {client_err}"
    );

    // With its only peer gone, the server must wind down on its own.
    let st = wait_bounded(&mut server, 30);
    let out = server.wait_with_output().expect("server output");
    let server_err = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(st.success(), "{server_err}");
    assert!(
        server_err.contains("data in"),
        "server should report wire traffic: {server_err}"
    );
}

#[test]
fn killing_the_server_is_suspected_by_the_survivor() {
    let dir = tmpdir("kill");
    write(&dir, "server.dity", SERVER);
    write(&dir, "client.dity", CLIENT_SPIN);
    let spec = write(&dir, "cluster.net", SPEC);
    let addr = format!("127.0.0.1:{}", free_port());

    let mut server = ditico()
        .args(["serve", spec.to_str().unwrap(), "--node", "0"])
        .args(["--listen", &addr, "--wall", "60", "--hb-ms", "25"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");
    let mut client = ditico()
        .args(["net", spec.to_str().unwrap(), "--node", "1"])
        .args(["--peers", &addr, "--wall", "60", "--hb-ms", "25"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn client");

    // Let the FETCH complete, then pull the server out from under the
    // still-running client.
    std::thread::sleep(Duration::from_millis(1500));
    server.kill().expect("kill server");
    let _ = server.wait();

    // The survivor must notice the heartbeat silence, report the
    // suspicion and terminate cleanly well inside the wall bound.
    wait_bounded(&mut client, 30);
    let out = client.wait_with_output().expect("client output");
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert_eq!(stdout.trim(), "[client] 42", "{stderr}");
    assert!(
        stderr.contains("suspected dead nodes: 0"),
        "survivor must suspect node 0: {stderr}"
    );
    assert!(out.status.success(), "{stderr}");
}

/// Three sites across the two processes: `a` fetches `Adder`, uses it,
/// then kicks `b` (same node), whose own fetch of `Adder` must arrive as
/// a digest-only reply served from the client node's code store.
const SPEC_DEDUP: &str = "topology nodes=2 fabric=ideal link=ideal\n\
                          site server server.dity node=0\n\
                          site a a.dity node=1\n\
                          site b b.dity node=1\n";

const SITE_A: &str = "import Adder from server in \
                      new r (Adder[2, r] | r?(y) = \
                      import kick from b in (print(y) | kick![]))";

const SITE_B: &str = "export new kick in kick?() = \
                      import Adder from server in \
                      new s (Adder[60, s] | s?(z) = print(z))";

#[test]
fn second_fetch_from_a_node_is_served_digest_only_over_tcp() {
    let dir = tmpdir("dedup");
    write(&dir, "server.dity", SERVER);
    write(&dir, "a.dity", SITE_A);
    write(&dir, "b.dity", SITE_B);
    let spec = write(&dir, "cluster.net", SPEC_DEDUP);
    let addr = format!("127.0.0.1:{}", free_port());

    let mut server = ditico()
        .args(["serve", spec.to_str().unwrap(), "--node", "0"])
        .args(["--listen", &addr, "--wall", "60", "--hb-ms", "25"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");

    let client = ditico()
        .args(["net", spec.to_str().unwrap(), "--node", "1"])
        .args(["--peers", &addr, "--wall", "60", "--hb-ms", "25"])
        .output()
        .expect("run client");
    let client_err = String::from_utf8_lossy(&client.stderr).to_string();
    assert!(client.status.success(), "{client_err}");
    let mut lines: Vec<String> = String::from_utf8_lossy(&client.stdout)
        .lines()
        .map(|l| l.trim().to_string())
        .collect();
    lines.sort_unstable();
    assert_eq!(lines, ["[a] 42", "[b] 100"], "{client_err}");
    // The client node admitted the image once and rehydrated the second
    // reply from its store.
    assert!(
        client_err.contains("code cache: 1 hits / 0 misses"),
        "client should rehydrate locally: {client_err}"
    );

    let st = wait_bounded(&mut server, 30);
    let out = server.wait_with_output().expect("server output");
    let server_err = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(st.success(), "{server_err}");
    // The server's daemon shipped the second FetchReply digest-only.
    assert!(
        server_err.contains("1 dedup sends"),
        "second reply must be digest-only: {server_err}"
    );
}

/// Re-export invalidation across real TCP, sharded name service: site
/// `a` resolves `p` (its node caches the binding under a lease), pokes
/// the server to re-export `p` (epoch bump), and only then kicks `b` —
/// whose import of the same name must miss the invalidated caches and
/// resolve the *new* binding. FIFO TCP delivers the invalidation ahead
/// of the ack that unblocks the chain, so `b` can never see epoch 1.
const SPEC_NS: &str = "topology nodes=2 fabric=ideal link=ideal\n\
                       site server server.dity node=0\n\
                       site a a.dity node=1\n\
                       site b b.dity node=1\n";

const NS_SERVER: &str = "import ack from a in \
                         export new kick in \
                         export new p in (\
                             (p?(r) = r![1]) \
                             | (kick?() = export new p in (ack![] | (p?(r2) = r2![2])))\
                         )";

const NS_SITE_A: &str = "export new ack in \
                         import p from server in \
                         import kick from server in \
                         import go from b in \
                         new r (p![r] | r?(x) = (print(x) | kick![] | ack?() = go![]))";

const NS_SITE_B: &str = "export new go in \
                         go?() = import p from server in \
                                 new s (p![s] | s?(y) = print(y))";

#[test]
fn reexport_invalidation_crosses_tcp_between_processes() {
    let dir = tmpdir("nsinval");
    write(&dir, "server.dity", NS_SERVER);
    write(&dir, "a.dity", NS_SITE_A);
    write(&dir, "b.dity", NS_SITE_B);
    let spec = write(&dir, "cluster.net", SPEC_NS);
    let addr = format!("127.0.0.1:{}", free_port());
    let ns_flags = ["--ns-shards", "2", "--ns-lease-ms", "60000"];

    let mut server = ditico()
        .args(["serve", spec.to_str().unwrap(), "--node", "0"])
        .args(["--listen", &addr, "--wall", "60", "--hb-ms", "25"])
        .args(ns_flags)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");

    let client = ditico()
        .args(["net", spec.to_str().unwrap(), "--node", "1"])
        .args(["--peers", &addr, "--wall", "60", "--hb-ms", "25"])
        .args(ns_flags)
        .output()
        .expect("run client");
    let client_err = String::from_utf8_lossy(&client.stderr).to_string();
    assert!(client.status.success(), "{client_err}");
    let mut lines: Vec<String> = String::from_utf8_lossy(&client.stdout)
        .lines()
        .map(|l| l.trim().to_string())
        .collect();
    lines.sort_unstable();
    assert_eq!(
        lines,
        ["[a] 1", "[b] 2"],
        "b resolved the re-exported binding: {client_err}"
    );

    let st = wait_bounded(&mut server, 30);
    let out = server.wait_with_output().expect("server output");
    let server_err = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(st.success(), "{server_err}");
    // The epoch bump was observed by exactly one shard owner; which
    // process hosts it is fixed by the hash, so check both reports.
    let both = format!("{client_err}\n{server_err}");
    assert!(
        both.contains("1 invalidations"),
        "the re-export invalidated the lessee: {both}"
    );
}

#[test]
fn bad_peer_list_is_a_diagnostic_not_a_panic() {
    let dir = tmpdir("badpeers");
    write(&dir, "server.dity", SERVER);
    write(&dir, "client.dity", CLIENT);
    let spec = write(&dir, "cluster.net", SPEC);

    let out = ditico()
        .args(["net", spec.to_str().unwrap(), "--node", "1"])
        .args(["--peers", "127.0.0.1:notaport"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad peer address"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");

    // A node index outside the topology is caught before anything binds.
    let out = ditico()
        .args(["net", spec.to_str().unwrap(), "--node", "7"])
        .args(["--peers", "127.0.0.1:1"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("outside the topology"), "{stderr}");
}
