//! Wire representation of mobile code and values, with packaging
//! (transitive block closure) and dynamic linking (relocation into the
//! receiving site's program area).
//!
//! §5 of the paper: *"The byte-code for the object and the bindings for the
//! free variables (after having been translated) are packaged into a buffer
//! and placed on the outgoing-queue addressed to the remote site"* (SHIPO);
//! *"the reply message with the packaged byte-code is received … The code
//! is then dynamically linked to the local program and the reduction
//! proceeds locally"* (FETCH).
//!
//! All identifiers inside a packet are *packet-relative*: block and table
//! ids index the packet's own vectors, and labels/strings are carried
//! symbolically so heterogeneous sites can re-intern them.

use crate::program::*;
use crate::word::NetRef;
use std::collections::HashMap;

/// A value on the wire (hardware-independent).
#[derive(Debug, Clone, PartialEq)]
pub enum WireWord {
    Unit,
    Int(i64),
    Bool(bool),
    Float(f64),
    Str(String),
    /// A channel, always as a network reference (senders translate local
    /// references through their export table before shipping).
    Chan(NetRef),
    /// A class, always as a network reference.
    Class(NetRef),
}

/// A self-contained bundle of byte-code: blocks, method tables and symbol
/// pools, all packet-relative.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WireCode {
    pub blocks: Vec<Block>,
    /// Each table is a vec of (label index into `labels`, packet block id).
    pub tables: Vec<Vec<(u32, u32)>>,
    pub labels: Vec<String>,
    pub strings: Vec<String>,
}

impl WireCode {
    /// Approximate payload size in bytes (used for bandwidth accounting
    /// before actual encoding).
    pub fn approx_size(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.code.len() * 6 + b.name.len() + 8)
            .sum::<usize>()
            + self.tables.iter().map(|t| t.len() * 8).sum::<usize>()
            + self.labels.iter().map(|s| s.len() + 4).sum::<usize>()
            + self.strings.iter().map(|s| s.len() + 4).sum::<usize>()
    }
}

/// A migrating object: its method table (packet-relative), the closed code
/// and the translated captured environment.
#[derive(Debug, Clone, PartialEq)]
pub struct WireObj {
    pub code: WireCode,
    pub table: u32,
    pub captured: Vec<WireWord>,
}

/// A downloaded class group (FETCH payload).
#[derive(Debug, Clone, PartialEq)]
pub struct WireGroup {
    pub code: WireCode,
    pub table: u32,
    pub captured: Vec<WireWord>,
}

/// Result of packaging: the wire code plus the mapping from program ids to
/// packet ids (callers need it to translate the root table reference).
pub struct Packed {
    pub code: WireCode,
    pub table_map: HashMap<TableId, u32>,
    /// Content digest of `code` over its canonical codec bytes, computed
    /// once at packaging time so every shipment of this image reuses it.
    pub digest: crate::digest::Digest,
}

/// Package the transitive closure of `root_tables` from `prog`.
pub fn pack(prog: &Program, root_tables: &[TableId]) -> Packed {
    let closure = prog.closure(&[], root_tables);
    let mut block_map: HashMap<BlockId, u32> = HashMap::new();
    for (i, b) in closure.blocks.iter().enumerate() {
        block_map.insert(*b, i as u32);
    }
    let mut table_map: HashMap<TableId, u32> = HashMap::new();
    for (i, t) in closure.tables.iter().enumerate() {
        table_map.insert(*t, i as u32);
    }
    let mut labels: Vec<String> = Vec::new();
    let mut label_map: HashMap<LabelId, u32> = HashMap::new();
    let mut strings: Vec<String> = Vec::new();
    let mut string_map: HashMap<StrId, u32> = HashMap::new();

    let remap_label =
        |labels: &mut Vec<String>, label_map: &mut HashMap<LabelId, u32>, l: LabelId| -> u32 {
            *label_map.entry(l).or_insert_with(|| {
                labels.push(prog.labels.get(l).to_string());
                (labels.len() - 1) as u32
            })
        };
    let remap_string =
        |strings: &mut Vec<String>, string_map: &mut HashMap<StrId, u32>, s: StrId| -> u32 {
            *string_map.entry(s).or_insert_with(|| {
                strings.push(prog.strings.get(s).to_string());
                (strings.len() - 1) as u32
            })
        };

    let mut blocks = Vec::with_capacity(closure.blocks.len());
    for &bid in &closure.blocks {
        let src = &prog.blocks[bid as usize];
        // Fused superinstructions (see `crate::fuse`) never go on the wire:
        // ship the normalized form so the frozen opcode set and the content
        // digests computed from these bytes stay fusion-independent.
        let normalized = crate::fuse::unfuse_code(&src.code);
        let src_code: &[Instr] = normalized.as_deref().unwrap_or(&src.code);
        let code = src_code
            .iter()
            .map(|ins| match ins {
                Instr::Fork { block, nfree } => Instr::Fork {
                    block: block_map[block],
                    nfree: *nfree,
                },
                Instr::TrMsg { label, argc } => Instr::TrMsg {
                    label: remap_label(&mut labels, &mut label_map, *label),
                    argc: *argc,
                },
                Instr::TrObj { table, nfree } => Instr::TrObj {
                    table: table_map[table],
                    nfree: *nfree,
                },
                Instr::MkGroup {
                    table,
                    dst,
                    count,
                    nfree,
                } => Instr::MkGroup {
                    table: table_map[table],
                    dst: *dst,
                    count: *count,
                    nfree: *nfree,
                },
                Instr::PushStr(s) => {
                    Instr::PushStr(remap_string(&mut strings, &mut string_map, *s))
                }
                Instr::ExportName { slot, name } => Instr::ExportName {
                    slot: *slot,
                    name: remap_string(&mut strings, &mut string_map, *name),
                },
                Instr::ExportClass { slot, name } => Instr::ExportClass {
                    slot: *slot,
                    name: remap_string(&mut strings, &mut string_map, *name),
                },
                Instr::Import {
                    dst,
                    site,
                    name,
                    kind,
                } => Instr::Import {
                    dst: *dst,
                    site: remap_string(&mut strings, &mut string_map, *site),
                    name: remap_string(&mut strings, &mut string_map, *name),
                    kind: *kind,
                },
                other => *other,
            })
            .collect();
        blocks.push(Block {
            name: src.name.clone(),
            nfree: src.nfree,
            nparams: src.nparams,
            nlocals: src.nlocals,
            is_class_body: src.is_class_body,
            code,
        });
    }

    let tables = closure
        .tables
        .iter()
        .map(|&tid| {
            prog.tables[tid as usize]
                .entries
                .iter()
                .map(|(l, b)| (remap_label(&mut labels, &mut label_map, *l), block_map[b]))
                .collect()
        })
        .collect();

    let code = WireCode {
        blocks,
        tables,
        labels,
        strings,
    };
    let digest = crate::codec::code_digest(&code);
    Packed {
        code,
        table_map,
        digest,
    }
}

/// [`pack`] in shake mode: analyze the program from the shipped roots
/// ([`crate::analyze::Roots::Tables`]), prune everything that cannot run
/// at the receiving site — method bodies on labels no live code sends,
/// classes never instantiated and never escaping, dead constant-branch
/// arms — and package the pruned program.
///
/// The packet is byte-smaller (or equal) than the plain [`pack`] of the
/// same roots, carries its own content digest (shaken and unshaken images
/// are distinct cache entries — see `crate::digest`), and still passes
/// [`crate::verify::verify_wire`] at the receiving boundary: pruning
/// stubs table-referenced bodies rather than breaking table shape, so
/// frame-layout and sibling-index invariants are untouched.
pub fn pack_shaken(prog: &Program, root_tables: &[TableId]) -> Packed {
    let analysis = crate::analyze::analyze(prog, crate::analyze::Roots::Tables(root_tables));
    let shaken = crate::analyze::shake_with(prog, &analysis);
    let new_roots: Vec<TableId> = root_tables
        .iter()
        .filter_map(|t| shaken.table_map.get(t).copied())
        .collect();
    let packed = pack(&shaken.program, &new_roots);
    // Re-key the table map to the caller's (pre-shake) table ids.
    let table_map = shaken
        .table_map
        .iter()
        .filter_map(|(old, new)| packed.table_map.get(new).map(|pid| (*old, *pid)))
        .collect();
    Packed {
        code: packed.code,
        table_map,
        digest: packed.digest,
    }
}

/// The relocation produced by linking a packet into a program.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkMap {
    pub blocks: Vec<BlockId>,
    pub tables: Vec<TableId>,
}

/// Dynamically link wire code into a program area: append blocks and
/// tables, re-intern symbols, and rewrite packet-relative ids.
///
/// The bundle is first run through the static verifier
/// ([`crate::verify::verify_wire`]): an unverifiable image — dangling
/// packet-relative ids, stack underflows, frame-layout lies, duplicate
/// method registrations — is refused with a typed error *before* anything
/// is appended, so a rejected packet leaves `prog` untouched.
pub fn link(prog: &mut Program, code: &WireCode) -> Result<LinkMap, crate::verify::VerifyError> {
    crate::verify::verify_wire(code)?;
    Ok(link_trusted(prog, code))
}

/// [`link`] without the verifier pass, for images that were already
/// screened — a daemon verifies every code-carrying packet once at its
/// node boundary (and re-verification of a content-addressed cache hit
/// would be pure overhead), and same-process deliveries never crossed a
/// trust boundary at all. Callers holding bytes of unknown provenance
/// must use [`link`].
pub fn link_trusted(prog: &mut Program, code: &WireCode) -> LinkMap {
    let label_ids: Vec<LabelId> = code.labels.iter().map(|l| prog.labels.intern(l)).collect();
    let string_ids: Vec<StrId> = code
        .strings
        .iter()
        .map(|s| prog.strings.intern(s))
        .collect();
    let base_block = prog.blocks.len() as BlockId;
    let block_ids: Vec<BlockId> = (0..code.blocks.len() as u32)
        .map(|i| base_block + i)
        .collect();
    let base_table = prog.tables.len() as TableId;
    let table_ids: Vec<TableId> = (0..code.tables.len() as u32)
        .map(|i| base_table + i)
        .collect();

    for b in &code.blocks {
        let rewritten = b
            .code
            .iter()
            .map(|ins| match ins {
                Instr::Fork { block, nfree } => Instr::Fork {
                    block: block_ids[*block as usize],
                    nfree: *nfree,
                },
                Instr::TrMsg { label, argc } => Instr::TrMsg {
                    label: label_ids[*label as usize],
                    argc: *argc,
                },
                Instr::TrObj { table, nfree } => Instr::TrObj {
                    table: table_ids[*table as usize],
                    nfree: *nfree,
                },
                Instr::MkGroup {
                    table,
                    dst,
                    count,
                    nfree,
                } => Instr::MkGroup {
                    table: table_ids[*table as usize],
                    dst: *dst,
                    count: *count,
                    nfree: *nfree,
                },
                Instr::PushStr(s) => Instr::PushStr(string_ids[*s as usize]),
                Instr::ExportName { slot, name } => Instr::ExportName {
                    slot: *slot,
                    name: string_ids[*name as usize],
                },
                Instr::ExportClass { slot, name } => Instr::ExportClass {
                    slot: *slot,
                    name: string_ids[*name as usize],
                },
                Instr::Import {
                    dst,
                    site,
                    name,
                    kind,
                } => Instr::Import {
                    dst: *dst,
                    site: string_ids[*site as usize],
                    name: string_ids[*name as usize],
                    kind: *kind,
                },
                other => *other,
            })
            .collect();
        prog.blocks.push(Block {
            name: format!("{}'", b.name),
            nfree: b.nfree,
            nparams: b.nparams,
            nlocals: b.nlocals,
            is_class_body: b.is_class_body,
            code: rewritten,
        });
    }
    for t in &code.tables {
        let mut entries: Vec<(LabelId, BlockId)> = t
            .iter()
            .map(|(l, b)| (label_ids[*l as usize], block_ids[*b as usize]))
            .collect();
        entries.sort_unstable_by_key(|e| e.0);
        prog.tables.push(MethodTable { entries });
    }

    LinkMap {
        blocks: block_ids,
        tables: table_ids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use tyco_syntax::parse_core;

    fn prog(src: &str) -> Program {
        compile(&parse_core(src).unwrap()).unwrap()
    }

    #[test]
    fn pack_then_link_preserves_structure() {
        // An object whose method forks and sends: exercises every remapped
        // instruction family.
        let p = prog(
            r#"new x x?{ go(n) = (print(n) | x!go[n - 1] | x?{ go(m) = println("deep", m) }) }"#,
        );
        assert_eq!(p.tables.len(), 2);
        let packed = pack(&p, &[0, 1]);
        // The packet must contain both tables and all reachable blocks.
        assert_eq!(packed.code.tables.len(), 2);
        assert!(!packed.code.blocks.is_empty());
        assert!(packed.code.labels.iter().any(|l| l == "go"));
        assert!(packed.code.strings.iter().any(|s| s == "deep"));

        // Link into an empty destination program.
        let mut dest = Program::default();
        let lm = link(&mut dest, &packed.code).unwrap();
        assert_eq!(dest.blocks.len(), packed.code.blocks.len());
        assert_eq!(dest.tables.len(), 2);
        // Every table entry's block id is in range.
        for t in &dest.tables {
            for (_, b) in &t.entries {
                assert!((*b as usize) < dest.blocks.len());
            }
        }
        // LinkMap covers everything.
        assert_eq!(lm.blocks.len(), dest.blocks.len());
    }

    #[test]
    fn packet_ids_are_dense_and_self_contained() {
        let p = prog("new x (x?{ a() = 0, b(u) = print(u) } | x!a[])");
        let packed = pack(&p, &[0]);
        for b in &packed.code.blocks {
            for ins in b.code.iter() {
                match ins {
                    Instr::Fork { block, .. } => {
                        assert!((*block as usize) < packed.code.blocks.len());
                    }
                    Instr::TrMsg { label, .. } => {
                        assert!((*label as usize) < packed.code.labels.len());
                    }
                    Instr::TrObj { table, .. } | Instr::MkGroup { table, .. } => {
                        assert!((*table as usize) < packed.code.tables.len());
                    }
                    Instr::PushStr(s) => {
                        assert!((*s as usize) < packed.code.strings.len());
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn linking_twice_appends_disjoint_copies() {
        let p = prog("new x x?{ ping() = println(\"pong\") }");
        let packed = pack(&p, &[0]);
        let mut dest = Program::default();
        let lm1 = link(&mut dest, &packed.code).unwrap();
        let lm2 = link(&mut dest, &packed.code).unwrap();
        assert_ne!(lm1.blocks, lm2.blocks);
        assert_eq!(dest.blocks.len(), 2 * packed.code.blocks.len());
        // Interned symbols are shared, not duplicated.
        assert_eq!(dest.labels.len(), packed.code.labels.len());
    }

    #[test]
    fn pack_stamps_the_canonical_digest() {
        let p = prog("def Loop(n) = if n > 0 then Loop[n - 1] else println(\"done\") in Loop[3]");
        let packed = pack(&p, &[0]);
        assert_eq!(packed.digest, crate::codec::code_digest(&packed.code));
        // Re-packing the same program yields the same identity.
        assert_eq!(pack(&p, &[0]).digest, packed.digest);
    }

    #[test]
    fn class_group_packs_with_recursion() {
        let p = prog("def Loop(n) = if n > 0 then Loop[n - 1] else println(\"done\") in Loop[3]");
        // Find the group table (positional, with Loop's body).
        let packed = pack(&p, &[0]);
        assert_eq!(packed.code.tables.len(), 1);
        let loop_block = &packed.code.blocks[packed.code.tables[0][0].1 as usize];
        assert!(loop_block.is_class_body);
        assert!(loop_block
            .code
            .iter()
            .any(|i| matches!(i, Instr::PushSibling(0))));
    }
}
