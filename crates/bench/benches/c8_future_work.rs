//! Experiment C8 — the §7 future-work features, built and measured:
//! Mattern-style termination detection and name-service failover over
//! replicas.
//!
//! * Detector: probes needed and wall-clock overhead on a busy threaded
//!   cluster (the detector runs concurrently with real work).
//! * Failover: virtual time from primary death to a recovered import, and
//!   the replication cost on the register path.

use criterion::{criterion_group, criterion_main, Criterion};
use ditico::{Cluster, FabricMode, LinkProfile, RunLimits};
use ditico_rt::termination::{Snapshot, TerminationDetector};
use ditico_rt::TermCounters;

fn failover_table() {
    println!("\n=== C8: name-service failover (virtual time) ===");
    for replicas in [2usize, 3] {
        let mut c = Cluster::new(FabricMode::Virtual, LinkProfile::myrinet(), replicas);
        let nodes: Vec<_> = (0..replicas + 1).map(|_| c.add_node()).collect();
        let worker = nodes[replicas];
        c.heartbeat_every = Some(64);
        c.stale_periods = 2;
        c.add_site_src(
            worker,
            "server",
            "def S(p) = p?{ v(x, r) = r![x] | S[p] } in export new p in S[p]",
        )
        .unwrap();
        // Let the export replicate everywhere.
        c.run_deterministic(RunLimits {
            max_instrs: 1_000_000,
            fuel_per_slice: 256,
            ..RunLimits::default()
        });
        let before = c.virtual_ns();
        // Kill the primary, then submit a client that needs the NS.
        c.kill_node(nodes[0]);
        c.add_site_src(
            worker,
            "client",
            "import p from server in new a (p!v[1, a] | a?(x) = print(x))",
        )
        .unwrap();
        let report = c.run_deterministic(RunLimits {
            max_instrs: 10_000_000,
            fuel_per_slice: 256,
            ..RunLimits::default()
        });
        assert_eq!(
            report.output("client"),
            ["1".to_string()],
            "import survived failover"
        );
        println!(
            "{} replicas: recovery completed {} µs of virtual time after the kill; \
             register broadcast cost: {} packets total",
            replicas,
            (report.virtual_ns - before) / 1_000,
            report.fabric_packets
        );
    }
    println!("(exports are broadcast to every replica, so no export is lost on failover)");
}

fn detection_overhead() {
    println!("\n--- C8: termination-detector probes on a threaded run ---");
    let mut c = Cluster::new(FabricMode::Ideal, LinkProfile::ideal(), 1);
    let n0 = c.add_node();
    let n1 = c.add_node();
    c.add_site_src(
        n0,
        "server",
        "def S(p) = p?{ v(x, r) = r![x + 1] | S[p] } in export new p in S[p]",
    )
    .unwrap();
    c.add_site_src(
        n1,
        "client",
        r#"
        import p from server in
        def Loop(n) = if n > 0 then new a (p!v[n, a] | a?(x) = Loop[n - 1]) else println("done")
        in Loop[500]
        "#,
    )
    .unwrap();
    let t0 = std::time::Instant::now();
    let report = c.run_threaded(std::time::Duration::from_secs(60));
    let wall = t0.elapsed();
    assert_eq!(report.output("client"), ["done".to_string()]);
    println!(
        "500 RPCs in {:?}; detector probed {} times (1ms cadence) before confirming",
        wall, report.detector_probes
    );
}

fn bench_future_work(c: &mut Criterion) {
    failover_table();
    detection_overhead();

    // Criterion: the detector's probe itself (pure overhead per cycle).
    let mut group = c.benchmark_group("c8_detector");
    group.bench_function("probe", |b| {
        let counters = TermCounters::default();
        let mut det = TerminationDetector::new();
        b.iter(|| {
            let snap = Snapshot::take(&counters, true);
            det.probe(snap)
        });
    });
    group.finish();

    // Criterion: register path with 1 vs 3 NS replicas (replication cost).
    let mut group = c.benchmark_group("c8_replication");
    group.sample_size(15);
    for replicas in [1usize, 3] {
        group.bench_function(format!("exports_with_{replicas}_replicas"), |b| {
            b.iter(|| {
                let mut c = Cluster::new(FabricMode::Ideal, LinkProfile::ideal(), replicas);
                let nodes: Vec<_> = (0..replicas.max(2)).map(|_| c.add_node()).collect();
                let mut src = String::from("export new e0 in ");
                for i in 1..32 {
                    src.push_str(&format!("export new e{i} in "));
                }
                src.push_str("println(\"x\")");
                c.add_site_src(*nodes.last().unwrap(), "exporter", &src)
                    .unwrap();
                let report = c.run_deterministic(RunLimits::default());
                assert!(report.errors.is_empty());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_future_work);
criterion_main!(benches);
