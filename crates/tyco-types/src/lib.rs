//! # tyco-types
//!
//! The Damas–Milner polymorphic type system of TyCO (§2 of the paper) with
//! row-typed channels, plus the dynamic-check machinery for remote
//! interactions (§7: "combines both static and dynamic type checking").
//!
//! * [`types`] — the type language: base types, channel rows, schemes.
//! * [`unify`] — unification with open rows and level-based generalization.
//! * [`infer`] — inference over DiTyCO processes; produces a
//!   [`infer::TypeSummary`] with the site's exported interface and its
//!   expectations about imported identifiers.
//! * [`fingerprint()`] — canonical type hashes and the link-time
//!   compatibility check.

pub mod fingerprint;
pub mod infer;
pub mod types;
pub mod unify;

pub use fingerprint::{canonical, compatible, fingerprint, parse_canonical};
pub use infer::{check, ImportKind, TypeSummary};
pub use types::{Label, Row, RvId, Scheme, TvId, Type};
pub use unify::{TypeError, Unifier};

/// The distinguished label introduced by the `x![ẽ]` / `x?(ỹ)=P` sugar.
pub const VAL: &str = tyco_syntax::VAL_LABEL;
