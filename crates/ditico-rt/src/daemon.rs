//! TyCOd — the per-node communication daemon (§5, Fig. 4).
//!
//! *"The TyCOd daemon is responsible for all the data exchange between
//! sites in the network. Interactions between sites may be local, when
//! sites belong to the same node, or remote when the sites belong to
//! different nodes. Local interactions are optimized using shared
//! memory."*
//!
//! The remote path is the paper's 3-step protocol: (1) the site places a
//! packaged process on its outgoing queue; (2) the local TyCOd reads the
//! destination from the network reference and forwards the bytes through
//! the fabric to the remote TyCOd; (3) the remote TyCOd places it on the
//! destination site's incoming queue. The local path skips the fabric and
//! the byte codec entirely — packets move by reference.
//!
//! The daemon also hosts (a replica of) the name service when configured
//! to, and answers `export`/`import` traffic for its sites.
//!
//! Code mobility rides through here too: the daemon keeps the node's
//! content-addressed [`CodeCache`] and uses it to (a) fingerprint-check
//! and cache every full code image that crosses the fabric, (b) downgrade
//! repeat shipments of a cached image to digest-only packets
//! (`ObjRef`/`FetchReplyRef`, with a `NeedCode`/`HaveCode` refill round
//! trip as the backstop), and (c) fold concurrent `FetchReq`s for the
//! same remote class into one in-flight request whose reply is fanned
//! back out to every coalesced waiter (single-flight).

use crate::codecache::CodeCache;
use crate::fabric::{FabricHandle, PacketFabric};
use crate::namecache::NameCache;
use crate::nameservice::{kind_ok, stamp_ok, NameService, NsShardMap, NsStats};
use crate::sched::SiteWake;
use crate::site::RtIncoming;
use crate::wake::Notify;
use bytes::{Bytes, BytesMut};
use crossbeam::channel::{Receiver, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use tyco_vm::codec::{self, Packet};
use tyco_vm::port::Incoming;
use tyco_vm::wire::{WireCode, WireGroup, WireObj};
use tyco_vm::word::{Identity, NetRef, NodeId, SiteId};
use tyco_vm::Digest;

/// Default capacity of the per-node code store, in images (not bytes).
pub const DEFAULT_CODE_CACHE: usize = 256;

/// Idle ticks of the refill clock between `NeedCode` re-asks (the
/// embedding advances the clock only while the daemon is otherwise idle:
/// once per idle round in deterministic runs, roughly once per parked
/// millisecond in threaded ones).
pub const REFILL_RETRY_TICKS: u32 = 100;

/// Total `NeedCode` attempts per missing digest before the parked
/// packets are dropped as consumed. Bounds the park/retry loop: a peer
/// that lost the image (or a link that eats every ask) costs at most
/// `REFILL_MAX_ASKS × REFILL_RETRY_TICKS` idle ticks, never a hang.
pub const REFILL_MAX_ASKS: u32 = 4;

/// Cluster-wide packet-conservation counters used by the termination
/// detector (see [`crate::termination`]).
#[derive(Debug, Default)]
pub struct TermCounters {
    /// Packets injected into the system (site sends + NS-generated replies).
    pub injected: AtomicU64,
    /// Packets fully consumed (handled by the NS, or drained by a site).
    pub consumed: AtomicU64,
}

/// Per-daemon traffic statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DaemonStats {
    /// Packets delivered through shared memory (same node).
    pub local_deliveries: u64,
    /// Packets serialized and pushed into the fabric.
    pub remote_sends: u64,
    /// Fabric flushes those packets went out in; mean batch occupancy is
    /// `remote_sends / remote_batches`.
    pub remote_batches: u64,
    /// Bytes serialized for remote sends.
    pub bytes_out: u64,
    /// Packets received from the fabric.
    pub remote_recvs: u64,
    /// Name-service operations handled locally.
    pub ns_ops: u64,
    /// Fabric packets dropped at the trust boundary: undecodable bytes,
    /// or mobile code that failed static verification before link.
    pub rejected: u64,
    /// Content-addressed code-cache counters.
    pub cache: CodeCacheStats,
    /// Name-service counters: shard routing, lease cache, failure
    /// reasons by kind (see [`NsStats`]).
    pub ns: NsStats,
}

/// Counters for the content-addressed code store and the fetch protocol
/// built on it.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CodeCacheStats {
    /// Digest-only packets rehydrated from the local store (including
    /// ones completed by a `HaveCode` refill).
    pub hits: u64,
    /// Digest-only packets whose image was missing on arrival; each
    /// distinct missing digest costs one `NeedCode` round trip.
    pub misses: u64,
    /// `FetchReq`s folded into an already-in-flight fetch of the same
    /// class (single-flight coalescing).
    pub coalesced: u64,
    /// Code-carrying packets sent digest-only instead of with full bytes.
    pub dedup_sends: u64,
    /// Wire bytes those digest-only sends avoided (stored image size
    /// minus the digest still carried).
    pub bytes_saved: u64,
    /// Images inserted into the store.
    pub insertions: u64,
    /// Images evicted to honor the capacity bound.
    pub evictions: u64,
    /// Code packets whose bytes did not hash to their carried digest
    /// (tampered in flight; dropped before they reach the store).
    pub digest_mismatches: u64,
}

/// Digest-only packets parked behind one missing code image, plus the
/// retry bookkeeping that bounds the refill protocol (see
/// [`Daemon::tick_refills`]).
struct ParkedCode {
    pkts: Vec<Packet>,
    /// Whom to (re-)ask: the most recent sender of a ref for this digest
    /// provably holds the image (or held it moments ago).
    from: NodeId,
    /// Idle ticks since the last `NeedCode` went out.
    ticks: u32,
    /// `NeedCode` attempts so far (the first ask counts).
    asks: u32,
}

/// An outgoing batch for one destination node: packets are encoded
/// back-to-back into one buffer, frozen once per flush, and handed to the
/// fabric as zero-copy slice views — one allocation per batch instead of
/// one per packet.
#[derive(Default)]
struct OutBuf {
    buf: BytesMut,
    /// End offset of each encoded packet in `buf`.
    ends: Vec<usize>,
    /// Reusable scratch for the per-packet slice views.
    ready: Vec<Bytes>,
}

/// The per-node communication daemon.
pub struct Daemon {
    pub node: NodeId,
    /// Inboxes of local sites, plus each site's wakeup (a dedicated
    /// thread's notify, or the scheduler's readiness handle).
    sites: HashMap<SiteId, (Sender<RtIncoming>, SiteWake)>,
    /// Shared outgoing queue of all local sites.
    from_sites: Receiver<(SiteId, Packet)>,
    /// Inbound packets from other nodes.
    from_fabric: Receiver<(NodeId, Bytes)>,
    /// The outbound network: the in-process fabric, or (in distributed
    /// runs) the TCP transport's handle, swapped in via [`Daemon::set_fabric`].
    fabric: Arc<dyn PacketFabric>,
    /// Outgoing bytes per destination node, flushed to the fabric once
    /// per pump (per-link FIFO; buffers keep their allocation).
    out_bufs: HashMap<NodeId, OutBuf>,
    /// Local deliveries per site, flushed to each site inbox once per
    /// pump (one inbox lock + one wakeup per site per pump).
    site_bufs: HashMap<SiteId, Vec<RtIncoming>>,
    /// Reusable drain buffers for the two inbound queues.
    scratch_pkts: Vec<(SiteId, Packet)>,
    scratch_bytes: Vec<(NodeId, Bytes)>,
    /// This daemon's own thread wakeup: sites and the fabric notify it.
    waker: Arc<Notify>,
    /// Nodes hosting name-service replicas (primary chosen by
    /// `ns_primary`).
    ns_nodes: Vec<NodeId>,
    /// Index into `ns_nodes` of the current primary (shared for failover).
    ns_primary: Arc<AtomicUsize>,
    /// The local replica, when this node hosts one.
    pub ns: Option<NameService>,
    /// Sharded name service: the cluster-shared shard map. `None` keeps
    /// the paper's centralized routing.
    shard: Option<Arc<NsShardMap>>,
    /// Leased bindings held by this node (sharded mode).
    name_cache: NameCache,
    /// Daemon-side name-service counters: shard hops plus imports this
    /// daemon answered from its lease cache (the name service and the
    /// cache keep their own; [`Daemon::sync_ns_stats`] folds all three
    /// into `stats.ns`).
    ns_local: NsStats,
    /// Lease clock: virtual fabric time in deterministic runs, wall
    /// clock in threaded/distributed ones. Fed by the embedding.
    now_ns: u64,
    /// Modeled per-request service time of the hosted name service, in
    /// clock ns. 0 (the default) serves requests instantaneously; a
    /// positive value queues `NsRegister`/`NsImport` behind a single
    /// modeled resolver — the discrete-event analogue of the serial CPU
    /// cost the paper's central server pays per bind, which is what the
    /// sharded service divides across owners.
    ns_service_ns: u64,
    /// Completion time of the request the modeled resolver is serving.
    ns_busy_until: u64,
    /// Requests waiting for the modeled resolver, FIFO with arrival time.
    ns_backlog: std::collections::VecDeque<(u64, Packet)>,
    /// Liveness info gathered from heartbeats: node → latest sequence.
    pub heartbeats: HashMap<NodeId, u64>,
    pub stats: DaemonStats,
    term: Arc<TermCounters>,
    hb_seq: u64,
    /// The node's content-addressed store of verified code images.
    store: CodeCache,
    /// Digest-only packets parked until a `HaveCode` refill arrives (or a
    /// tombstone reports the image gone, which drops them as consumed),
    /// with bounded-retry bookkeeping per digest.
    awaiting_code: HashMap<Digest, ParkedCode>,
    /// Single-flight: remote class → the coalesced fetches waiting on the
    /// one request in flight.
    inflight: HashMap<NetRef, Vec<(Identity, u64)>>,
    /// Reverse index: the in-flight leader's reply key `(to, req)` → the
    /// class it fetched, so the reply can be fanned out to the waiters.
    inflight_leader: HashMap<(Identity, u64), NetRef>,
}

impl Daemon {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        node: NodeId,
        from_sites: Receiver<(SiteId, Packet)>,
        from_fabric: Receiver<(NodeId, Bytes)>,
        fabric: FabricHandle,
        ns_nodes: Vec<NodeId>,
        ns_primary: Arc<AtomicUsize>,
        hosts_ns: bool,
        term: Arc<TermCounters>,
    ) -> Daemon {
        Daemon {
            node,
            sites: HashMap::new(),
            from_sites,
            from_fabric,
            fabric: Arc::new(fabric),
            out_bufs: HashMap::new(),
            site_bufs: HashMap::new(),
            scratch_pkts: Vec::new(),
            scratch_bytes: Vec::new(),
            waker: Arc::new(Notify::new()),
            ns_nodes,
            ns_primary,
            ns: if hosts_ns {
                Some(NameService::new())
            } else {
                None
            },
            shard: None,
            name_cache: NameCache::new(0),
            ns_local: NsStats::default(),
            now_ns: 0,
            ns_service_ns: 0,
            ns_busy_until: 0,
            ns_backlog: std::collections::VecDeque::new(),
            heartbeats: HashMap::new(),
            stats: DaemonStats::default(),
            term,
            hb_seq: 0,
            store: CodeCache::new(DEFAULT_CODE_CACHE),
            awaiting_code: HashMap::new(),
            inflight: HashMap::new(),
            inflight_leader: HashMap::new(),
        }
    }

    /// Resize the content-addressed code store (0 disables it, which also
    /// turns off wire-level dedup and fetch coalescing on this node).
    pub fn set_code_cache(&mut self, capacity: usize) {
        self.store.set_capacity(capacity);
        self.stats.cache.evictions = self.store.evictions;
    }

    /// Images currently held by the code store.
    pub fn code_cache_len(&self) -> usize {
        self.store.len()
    }

    /// Attach a local site's inbox and its wakeup.
    pub fn attach_site(&mut self, site: SiteId, inbox: Sender<RtIncoming>, waker: SiteWake) {
        self.sites.insert(site, (inbox, waker));
    }

    /// Swap a site's wakeup (the threaded runtime rebinds sites to the
    /// scheduler's readiness protocol before the workers start).
    pub fn set_site_waker(&mut self, site: SiteId, waker: SiteWake) {
        if let Some(entry) = self.sites.get_mut(&site) {
            entry.1 = waker;
        }
    }

    /// This daemon thread's wakeup (sites and the fabric notify it when
    /// they hand it work).
    pub fn waker(&self) -> &Arc<Notify> {
        &self.waker
    }

    /// Replace the outbound network. Distributed runs rebind each local
    /// daemon to the TCP transport's handle so packets addressed to
    /// remote nodes leave the process; in-process runs never call this.
    pub fn set_fabric(&mut self, fabric: Arc<dyn PacketFabric>) {
        self.fabric = fabric;
    }

    /// The node currently acting as name-service primary.
    fn ns_primary_node(&self) -> NodeId {
        let i = self.ns_primary.load(Ordering::Relaxed) % self.ns_nodes.len().max(1);
        *self.ns_nodes.get(i).unwrap_or(&self.node)
    }

    /// Switch this daemon to the sharded name service: install the
    /// cluster-shared shard map, size the lease cache to the map's TTL,
    /// and — when this node owns a shard — host a lease-granting name
    /// service (the cluster replays site registrations into it).
    pub fn enable_ns_sharding(&mut self, map: Arc<NsShardMap>) {
        self.name_cache = NameCache::new(map.lease_ns());
        if (self.node.0 as usize) < map.ring() {
            let ns = self.ns.get_or_insert_with(NameService::new);
            ns.set_lease_mode(true);
        }
        // Heartbeats beacon to the name-service hosts; in sharded mode
        // that audience is every ring node, so any live shard can act as
        // the failure monitor's observation point.
        self.ns_nodes = (0..map.ring() as u32).map(NodeId).collect();
        self.shard = Some(map);
    }

    /// Is the sharded name service active?
    pub fn ns_sharded(&self) -> bool {
        self.shard.is_some()
    }

    /// Leased bindings currently held (diagnostics).
    pub fn name_cache_len(&self) -> usize {
        self.name_cache.len()
    }

    /// Advance the lease clock (virtual ns under the deterministic
    /// fabric, wall-clock ns under threads).
    pub fn set_now_ns(&mut self, now_ns: u64) {
        self.now_ns = now_ns;
    }

    /// Does this daemon need `set_now_ns` fed each round? True when the
    /// sharded service (lease TTLs) or the modeled resolver is active.
    pub fn needs_clock(&self) -> bool {
        self.shard.is_some() || self.ns_service_ns > 0
    }

    /// Set the modeled name-service resolver cost (see `ns_service_ns`).
    pub fn set_ns_service_ns(&mut self, service_ns: u64) {
        self.ns_service_ns = service_ns;
    }

    /// When the modeled resolver holds queued requests, the clock time at
    /// which the next one finishes service — the deterministic runner
    /// folds this into its idle advance so a backlog is always drained.
    pub fn ns_backlog_next_due(&self) -> Option<u64> {
        self.ns_backlog.front().map(|&(arrival, _)| {
            self.ns_busy_until
                .max(arrival)
                .saturating_add(self.ns_service_ns)
        })
    }

    /// Serve backlogged requests the modeled resolver has had time to
    /// finish: each occupies it for `ns_service_ns`, so a burst drains
    /// one service quantum at a time as the clock passes completions.
    fn drain_ns_backlog(&mut self) -> bool {
        let mut progress = false;
        while let Some(&(arrival, _)) = self.ns_backlog.front() {
            let done = self
                .ns_busy_until
                .max(arrival)
                .saturating_add(self.ns_service_ns);
            if done > self.now_ns {
                break;
            }
            self.ns_busy_until = done;
            let (_, p) = self.ns_backlog.pop_front().expect("peeked");
            self.serve_ns_request(p);
            progress = true;
        }
        progress
    }

    /// Fold the three name-service counter sources — the hosted shard's
    /// service, the node's lease cache, and the daemon's own routing
    /// counters — into the reportable `stats.ns`.
    fn sync_ns_stats(&mut self) {
        let mut total = self.ns_local;
        if let Some(ns) = &self.ns {
            total.add(&ns.stats);
        }
        total.lease_hits += self.name_cache.stats.hits;
        total.lease_misses += self.name_cache.stats.misses;
        total.lease_expired += self.name_cache.stats.expired;
        self.stats.ns = total;
    }

    /// Drain both queues once (each backlog moves under a single queue
    /// lock), then flush the per-site and per-destination outgoing
    /// batches. Returns whether anything was processed.
    pub fn pump(&mut self) -> bool {
        let mut progress = self.drain_ns_backlog();
        let mut pkts = std::mem::take(&mut self.scratch_pkts);
        if self.from_sites.drain_into(&mut pkts) > 0 {
            progress = true;
            for (_, packet) in pkts.drain(..) {
                self.route(packet);
            }
        }
        self.scratch_pkts = pkts;
        let mut raw = std::mem::take(&mut self.scratch_bytes);
        if self.from_fabric.drain_into(&mut raw) > 0 {
            progress = true;
            for (from, bytes) in raw.drain(..) {
                self.stats.remote_recvs += 1;
                match codec::decode(bytes) {
                    Ok(packet) => {
                        if Self::screen(&packet).is_some() {
                            self.reject();
                        } else {
                            self.ingest(from, packet);
                        }
                    }
                    // Undecodable bytes are dropped and counted; the
                    // daemon (and the node's sites) stay up.
                    Err(_) => self.reject(),
                }
            }
        }
        self.scratch_bytes = raw;
        self.flush_local();
        self.flush_remote();
        if progress {
            self.sync_ns_stats();
        }
        progress
    }

    /// Drop a fabric packet at the trust boundary. The sender already
    /// counted it as injected, so the drop must count as consumed or the
    /// termination detector would wait on it forever.
    fn reject(&mut self) {
        self.stats.rejected += 1;
        self.term.consumed.fetch_add(1, Ordering::Relaxed);
    }

    /// Static screening of mobile code arriving from the fabric (§6: the
    /// receiver cannot trust that shipped byte-code was produced by our
    /// compiler). Returns a reason to reject, or `None` to admit. Packets
    /// without code images pass through; their field-level validation
    /// happened in the codec. Also used by the TCP transport's reader,
    /// which sits on an even less trustworthy boundary.
    pub(crate) fn screen(p: &Packet) -> Option<String> {
        let (code, table) = match p {
            Packet::Obj { obj, .. } => (&obj.code, obj.table),
            Packet::FetchReply { group, .. } => (&group.code, group.table),
            // A cache refill ships a whole image with no entry table;
            // verify the code alone (the entry-table bound is re-checked
            // when a parked digest-only packet is rehydrated against it).
            Packet::HaveCode { code, .. } => {
                return tyco_vm::verify_wire(code).err().map(|e| e.to_string());
            }
            // Digest-only packets (`ObjRef`/`FetchReplyRef`) carry no code
            // to screen: they resolve against images that were verified
            // when the store admitted them.
            _ => return None,
        };
        if let Err(e) = tyco_vm::verify_wire(code) {
            return Some(e.to_string());
        }
        if table as usize >= code.tables.len() {
            return Some(format!(
                "entry table {table} out of range ({} tables shipped)",
                code.tables.len()
            ));
        }
        None
    }

    /// Admit a screened fabric packet. Full code images are
    /// fingerprint-checked against their carried digest and cached;
    /// digest-only packets are rehydrated from the store or parked behind
    /// a `NeedCode` round trip; cache-protocol packets are handled here;
    /// everything else goes straight to local delivery.
    fn ingest(&mut self, from: NodeId, p: Packet) {
        match p {
            Packet::Obj { dest, digest, obj } => {
                if !self.admit_code(from, digest, &obj.code) {
                    return;
                }
                self.deliver_local(Packet::Obj { dest, digest, obj });
            }
            Packet::FetchReply {
                to,
                req,
                digest,
                group,
                index,
            } => {
                if !self.admit_code(from, digest, &group.code) {
                    return;
                }
                self.deliver_local(Packet::FetchReply {
                    to,
                    req,
                    digest,
                    group,
                    index,
                });
            }
            Packet::ObjRef { digest, .. } | Packet::FetchReplyRef { digest, .. } => {
                match self.store.get(&digest).cloned() {
                    Some(code) => self.rehydrate(code, p),
                    None => {
                        self.stats.cache.misses += 1;
                        self.park(from, digest, p);
                    }
                }
            }
            Packet::NeedCode {
                from: needy,
                digest,
            } => {
                self.term.consumed.fetch_add(1, Ordering::Relaxed);
                let code = self.store.get(&digest).cloned().unwrap_or(WireCode {
                    // Evicted since it was advertised: answer with an
                    // empty tombstone (its bytes cannot hash to `digest`)
                    // so the requester releases its parked packets
                    // instead of waiting forever.
                    blocks: vec![],
                    tables: vec![],
                    labels: vec![],
                    strings: vec![],
                });
                self.term.injected.fetch_add(1, Ordering::Relaxed);
                self.send_remote(
                    needy,
                    &Packet::HaveCode {
                        to: needy,
                        digest,
                        code,
                    },
                );
            }
            Packet::HaveCode { digest, code, .. } => {
                self.term.consumed.fetch_add(1, Ordering::Relaxed);
                let parked = self
                    .awaiting_code
                    .remove(&digest)
                    .map(|e| e.pkts)
                    .unwrap_or_default();
                let bytes = codec::code_bytes(&code);
                if Digest::of(&bytes) != digest {
                    // A tampered refill — or the sender's tombstone for an
                    // image it no longer holds. The parked packets can
                    // never be completed; drop them as consumed so the
                    // termination detector stays balanced.
                    if !code.blocks.is_empty() || !code.tables.is_empty() {
                        self.stats.cache.digest_mismatches += 1;
                    }
                    for _ in &parked {
                        self.reject();
                    }
                    return;
                }
                self.cache_insert(digest, &code, bytes.len() as u64);
                self.store.mark_shipped(&digest, from);
                for p in parked {
                    self.rehydrate(code.clone(), p);
                }
            }
            // Replication needs the sender for its per-shipper watermark,
            // so it is applied here where the fabric still knows `from`.
            Packet::NsRepl {
                to: _,
                seq,
                from_site,
                site_lexeme,
                name,
                value,
                stamp,
                epoch,
            } => {
                self.stats.ns_ops += 1;
                if let Some(ns) = &mut self.ns {
                    let replies = ns.apply_repl(
                        from,
                        seq,
                        from_site,
                        &site_lexeme,
                        &name,
                        value,
                        stamp,
                        epoch,
                    );
                    for r in replies {
                        self.term.injected.fetch_add(1, Ordering::Relaxed);
                        self.route(r);
                    }
                }
                // Consume only after the replies it unparked are injected
                // (same ordering rule as NsRegister below).
                self.term.consumed.fetch_add(1, Ordering::Relaxed);
            }
            other => self.deliver_local(other),
        }
    }

    /// Fingerprint-check a full code image from the fabric and cache it.
    /// Returns `false` when the bytes do not hash to the carried digest
    /// (the packet is dropped as tampered). With the store disabled the
    /// image passes through unchecked, exactly as before the cache
    /// existed — the static verifier in [`Daemon::screen`] already ran.
    fn admit_code(&mut self, from: NodeId, digest: Digest, code: &WireCode) -> bool {
        if self.store.capacity() == 0 {
            return true;
        }
        let bytes = codec::code_bytes(code);
        if Digest::of(&bytes) != digest {
            self.stats.cache.digest_mismatches += 1;
            self.reject();
            return false;
        }
        self.cache_insert(digest, code, bytes.len() as u64);
        // The sender provably holds this image (it just shipped it), so
        // this node's own future shipments back to it can go digest-only.
        self.store.mark_shipped(&digest, from);
        true
    }

    /// Insert into the store and mirror its lifetime counters into the
    /// per-daemon stats.
    fn cache_insert(&mut self, digest: Digest, code: &WireCode, wire_len: u64) {
        self.store.insert(digest, code, wire_len);
        self.stats.cache.insertions = self.store.insertions;
        self.stats.cache.evictions = self.store.evictions;
    }

    /// Park a digest-only packet whose image is not in the store; the
    /// first miss for a digest asks the sender to refill it (later asks
    /// are driven by the bounded retry clock, [`Daemon::tick_refills`]).
    fn park(&mut self, from: NodeId, digest: Digest, p: Packet) {
        let entry = self.awaiting_code.entry(digest).or_insert(ParkedCode {
            pkts: Vec::new(),
            from,
            ticks: 0,
            asks: 0,
        });
        entry.pkts.push(p);
        // Refresh the refill target: the latest sender is the most likely
        // to still hold the image.
        entry.from = from;
        let first = entry.asks == 0;
        if first {
            entry.asks = 1;
            self.term.injected.fetch_add(1, Ordering::Relaxed);
            self.send_remote(
                from,
                &Packet::NeedCode {
                    from: self.node,
                    digest,
                },
            );
        }
    }

    /// Are any digest-only packets parked waiting for a code refill? The
    /// embedding uses this to keep scheduling idle ticks until the refill
    /// protocol converges (or gives up) instead of declaring the run over.
    pub fn has_pending_refills(&self) -> bool {
        !self.awaiting_code.is_empty()
    }

    /// One idle tick of the refill retry clock: re-ask for digests whose
    /// `NeedCode` (or its `HaveCode` answer) was lost, and after
    /// [`REFILL_MAX_ASKS`] fruitless attempts drop the parked packets as
    /// consumed. The previous protocol asked exactly once per digest, so
    /// a single lost refill packet parked its waiters forever — an
    /// unbounded park that chaos drop plans (and restarted peers) hit
    /// immediately. Returns whether anything was sent or dropped.
    pub fn tick_refills(&mut self) -> bool {
        if self.awaiting_code.is_empty() {
            return false;
        }
        let mut asks: Vec<(NodeId, Digest)> = Vec::new();
        let mut give_up: Vec<Digest> = Vec::new();
        for (digest, e) in self.awaiting_code.iter_mut() {
            e.ticks += 1;
            if e.ticks < REFILL_RETRY_TICKS {
                continue;
            }
            e.ticks = 0;
            if e.asks >= REFILL_MAX_ASKS {
                give_up.push(*digest);
            } else {
                e.asks += 1;
                asks.push((e.from, *digest));
            }
        }
        let acted = !asks.is_empty() || !give_up.is_empty();
        for (to, digest) in asks {
            self.term.injected.fetch_add(1, Ordering::Relaxed);
            self.send_remote(
                to,
                &Packet::NeedCode {
                    from: self.node,
                    digest,
                },
            );
        }
        for digest in give_up {
            if let Some(e) = self.awaiting_code.remove(&digest) {
                for _ in e.pkts {
                    self.reject();
                }
            }
        }
        if acted {
            // Retries happen outside the pump loop; don't leave them
            // sitting in the batch buffers.
            self.flush_remote();
        }
        acted
    }

    /// Model a daemon process bounce: the in-memory code cache, parked
    /// refills, single-flight bookkeeping, heartbeat state and any
    /// queued-but-unprocessed inbound packets are gone; the beacon
    /// sequence restarts from 1. Sites and the name service survive (the
    /// chaos `RestartNode` event models a TyCOd restart, not node loss —
    /// [`crate::fabric::Fabric::kill_node`] models that). Dropped packets
    /// are compensated as consumed so termination accounting stays
    /// balanced.
    pub fn simulate_restart(&mut self) {
        self.store = CodeCache::new(self.store.capacity());
        // Leases do not survive a daemon bounce (counters do: they are
        // lifetime totals).
        self.name_cache.clear();
        let parked: u64 = self
            .awaiting_code
            .values()
            .map(|e| e.pkts.len() as u64)
            .sum();
        self.awaiting_code.clear();
        self.inflight.clear();
        self.inflight_leader.clear();
        self.heartbeats.clear();
        self.hb_seq = 0;
        let mut raw = std::mem::take(&mut self.scratch_bytes);
        raw.clear();
        let lost_fabric = self.from_fabric.drain_into(&mut raw) as u64;
        raw.clear();
        self.scratch_bytes = raw;
        let mut pkts = std::mem::take(&mut self.scratch_pkts);
        pkts.clear();
        let lost_sites = self.from_sites.drain_into(&mut pkts) as u64;
        pkts.clear();
        self.scratch_pkts = pkts;
        self.term
            .consumed
            .fetch_add(parked + lost_fabric + lost_sites, Ordering::Relaxed);
    }

    /// Rebuild the full packet a digest-only ref stands for and deliver
    /// it. Re-applies the entry-table bound check the screen performs on
    /// full shipments (the ref's table index is attacker-controllable
    /// even though the cached image is verified).
    fn rehydrate(&mut self, code: WireCode, p: Packet) {
        match p {
            Packet::ObjRef {
                dest,
                digest,
                table,
                captured,
            } => {
                if table as usize >= code.tables.len() {
                    self.reject();
                    return;
                }
                self.stats.cache.hits += 1;
                self.deliver_local(Packet::Obj {
                    dest,
                    digest,
                    obj: WireObj {
                        code,
                        table,
                        captured,
                    },
                });
            }
            Packet::FetchReplyRef {
                to,
                req,
                digest,
                table,
                captured,
                index,
            } => {
                if table as usize >= code.tables.len() {
                    self.reject();
                    return;
                }
                self.stats.cache.hits += 1;
                self.deliver_local(Packet::FetchReply {
                    to,
                    req,
                    digest,
                    group: WireGroup {
                        code,
                        table,
                        captured,
                    },
                    index,
                });
            }
            // Only refs are ever parked or rehydrated.
            other => self.deliver_local(other),
        }
    }

    /// Hand each site its buffered backlog: one inbox lock and one wakeup
    /// per site per pump, order per site preserved.
    fn flush_local(&mut self) {
        for (site, buf) in self.site_bufs.iter_mut() {
            if buf.is_empty() {
                continue;
            }
            let n = buf.len() as u64;
            match self.sites.get(site) {
                Some((tx, waker)) => match tx.send_iter(buf.drain(..)) {
                    // Delivery first, wake second: the scheduler's
                    // readiness protocol relies on the inbox being
                    // populated before `mark_ready` runs.
                    Ok(_) => waker.wake(),
                    // The site is gone (program exited); drop, like the
                    // paper's freed sites.
                    Err(_) => {
                        self.term.consumed.fetch_add(n, Ordering::Relaxed);
                    }
                },
                None => {
                    // Unknown site on this node: drop (can only happen
                    // after a site was destroyed).
                    buf.clear();
                    self.term.consumed.fetch_add(n, Ordering::Relaxed);
                }
            }
        }
    }

    /// Hand every buffered per-destination backlog to the fabric in one
    /// batched send each (per-link FIFO preserved; see
    /// [`FabricHandle::send_batch`]). The batch's encodings share one
    /// frozen allocation; each packet is a slice view into it.
    fn flush_remote(&mut self) {
        let node = self.node;
        for (to, ob) in self.out_bufs.iter_mut() {
            if ob.ends.is_empty() {
                continue;
            }
            let frozen = std::mem::take(&mut ob.buf).freeze();
            let mut start = 0;
            for &end in &ob.ends {
                ob.ready.push(frozen.slice(start..end));
                start = end;
            }
            ob.ends.clear();
            self.stats.remote_batches += 1;
            self.fabric.send_batch(node, *to, &mut ob.ready);
        }
    }

    /// Emit a liveness beacon to the name-service nodes.
    pub fn send_heartbeat(&mut self) {
        self.hb_seq += 1;
        let seq = self.hb_seq;
        for ns_node in self.ns_nodes.clone() {
            let p = Packet::Heartbeat {
                node: self.node,
                seq,
            };
            self.term.injected.fetch_add(1, Ordering::Relaxed);
            if ns_node == self.node {
                self.deliver_local(p);
            } else {
                self.send_remote(ns_node, &p);
            }
        }
        // Heartbeats are emitted outside the pump loop (scheduler rounds);
        // don't leave them sitting in the batch buffers.
        self.flush_remote();
    }

    fn send_remote(&mut self, to: NodeId, p: &Packet) {
        let ob = self.out_bufs.entry(to).or_default();
        let start = ob.buf.len();
        codec::encode_into(p, &mut ob.buf);
        ob.ends.push(ob.buf.len());
        self.stats.remote_sends += 1;
        self.stats.bytes_out += (ob.buf.len() - start) as u64;
    }

    /// Route a packet by its destination, local or remote.
    pub fn route(&mut self, p: Packet) {
        let Some(p) = self.pre_route_sharded(p) else {
            return;
        };
        let target: NodeId = match &p {
            Packet::Msg { dest, .. } | Packet::Obj { dest, .. } => dest.node,
            Packet::FetchReq { class, .. } => class.node,
            Packet::FetchReply { to, .. } | Packet::NsImportReply { to, .. } => to.node,
            Packet::NsLease { to, .. } => to.node,
            Packet::NsInvalidate { to, .. } | Packet::NsRepl { to, .. } => *to,
            Packet::NsRegister { .. } => {
                // Centralized mode: registrations go to every replica so
                // failover loses no exports. The broadcast fans one
                // injected packet out into N consumed ones; account for
                // the extra copies.
                let extra = self.ns_nodes.len().saturating_sub(1) as u64;
                self.term.injected.fetch_add(extra, Ordering::Relaxed);
                for ns_node in self.ns_nodes.clone() {
                    if ns_node == self.node {
                        self.deliver_local(p.clone());
                    } else {
                        self.send_remote(ns_node, &p);
                    }
                }
                return;
            }
            Packet::NsImport { .. } => self.ns_primary_node(),
            Packet::Heartbeat { .. } | Packet::TermProbe { .. } | Packet::TermReport { .. } => {
                self.ns_primary_node()
            }
            // Handshakes live on the transport layer, and cache-protocol
            // packets are daemon-generated point-to-point; any reaching
            // the routing layer is consumed and ignored.
            Packet::Hello { .. }
            | Packet::ObjRef { .. }
            | Packet::FetchReplyRef { .. }
            | Packet::NeedCode { .. }
            | Packet::HaveCode { .. } => self.node,
        };
        if target == self.node {
            self.deliver_local(p);
        } else {
            self.send_remote_coded(target, p);
        }
    }

    /// Sharded-mode routing of name-service requests. Registrations go to
    /// the key's shard (owner, or its follower while the owner is
    /// suspected) — one copy, not a broadcast; replication covers the
    /// redundancy. Imports consult the node's lease cache first: a live
    /// lease answers locally with zero wire traffic, re-running the kind
    /// and type-stamp checks against the cached stamp. Returns the packet
    /// when centralized routing should proceed, `None` when handled.
    fn pre_route_sharded(&mut self, p: Packet) -> Option<Packet> {
        let Some(shard) = self.shard.clone() else {
            return Some(p);
        };
        match p {
            Packet::NsRegister {
                ref site_lexeme,
                ref name,
                ..
            } => {
                let (target, _) = shard.route(site_lexeme, name);
                if target == self.node {
                    self.deliver_local(p);
                } else {
                    self.send_remote(target, &p);
                }
                None
            }
            Packet::NsImport {
                req,
                site,
                name,
                kind,
                reply_to,
                expect,
            } => {
                if let Some((w, stamp, _epoch)) = self.name_cache.get(&site, &name, self.now_ns) {
                    self.ns_local.imports += 1;
                    let result = if !kind_ok(kind, &w) {
                        self.ns_local.kind_mismatch += 1;
                        Err(format!("`{site}.{name}` has the wrong kind"))
                    } else if let Err(e) = stamp_ok(&expect, &stamp) {
                        self.ns_local.stamp_mismatch += 1;
                        Err(format!("`{site}.{name}`: {e}"))
                    } else {
                        self.ns_local.resolved += 1;
                        Ok(w)
                    };
                    // The import dies here and its reply is synthesized
                    // locally: one injected for one consumed, so the
                    // Mattern balance holds with no wire round trip.
                    self.term.injected.fetch_add(1, Ordering::Relaxed);
                    self.deliver_local(Packet::NsImportReply {
                        to: reply_to,
                        req,
                        result,
                    });
                    self.term.consumed.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                let (target, _) = shard.route(&site, &name);
                let p = Packet::NsImport {
                    req,
                    site,
                    name,
                    kind,
                    reply_to,
                    expect,
                };
                if target == self.node {
                    self.deliver_local(p);
                } else {
                    self.ns_local.shard_hops += 1;
                    self.send_remote(target, &p);
                }
                None
            }
            other => Some(other),
        }
    }

    /// Remote send with the code-mobility optimizations: repeat shipments
    /// of a cached image go out digest-only, and a fetch of a class
    /// already being fetched is folded into the in-flight request.
    fn send_remote_coded(&mut self, target: NodeId, p: Packet) {
        if self.store.capacity() == 0 {
            self.send_remote(target, &p);
            return;
        }
        match p {
            Packet::Obj { dest, digest, obj } => {
                self.insert_outbound(digest, &obj.code);
                if self.store.was_shipped(&digest, target) {
                    self.count_dedup(digest);
                    self.send_remote(
                        target,
                        &Packet::ObjRef {
                            dest,
                            digest,
                            table: obj.table,
                            captured: obj.captured,
                        },
                    );
                } else {
                    self.send_remote(target, &Packet::Obj { dest, digest, obj });
                    self.store.mark_shipped(&digest, target);
                }
            }
            Packet::FetchReply {
                to,
                req,
                digest,
                group,
                index,
            } => {
                self.insert_outbound(digest, &group.code);
                if self.store.was_shipped(&digest, target) {
                    self.count_dedup(digest);
                    self.send_remote(
                        target,
                        &Packet::FetchReplyRef {
                            to,
                            req,
                            digest,
                            table: group.table,
                            captured: group.captured,
                            index,
                        },
                    );
                } else {
                    self.send_remote(
                        target,
                        &Packet::FetchReply {
                            to,
                            req,
                            digest,
                            group,
                            index,
                        },
                    );
                    self.store.mark_shipped(&digest, target);
                }
            }
            Packet::FetchReq {
                class,
                req,
                reply_to,
            } => {
                if let Some(waiters) = self.inflight.get_mut(&class) {
                    // Single-flight: this request dies here; its reply
                    // will be synthesized from the leader's.
                    waiters.push((reply_to, req));
                    self.stats.cache.coalesced += 1;
                    self.term.consumed.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                self.inflight.insert(class, Vec::new());
                self.inflight_leader.insert((reply_to, req), class);
                self.send_remote(
                    target,
                    &Packet::FetchReq {
                        class,
                        req,
                        reply_to,
                    },
                );
            }
            other => self.send_remote(target, &other),
        }
    }

    /// Make sure the store holds an image this node is about to ship or
    /// advertise by digest, so a later `NeedCode` from the receiver is
    /// answerable. Outbound images come from the local packager and are
    /// trusted; no fingerprint check is needed.
    fn insert_outbound(&mut self, digest: Digest, code: &WireCode) {
        if !self.store.contains(&digest) {
            let bytes = codec::code_bytes(code);
            self.cache_insert(digest, code, bytes.len() as u64);
        }
    }

    fn count_dedup(&mut self, digest: Digest) {
        self.stats.cache.dedup_sends += 1;
        self.stats.cache.bytes_saved += self
            .store
            .wire_len(&digest)
            .saturating_sub(Digest::SIZE as u64);
    }

    /// Deliver a packet whose destination is on this node (the
    /// shared-memory path) or handle it in the local name service.
    /// Handle one name-service request at this node's hosted service —
    /// the shard-owner (or centralized-primary) side of a bind or lookup.
    fn serve_ns_request(&mut self, p: Packet) {
        match p {
            Packet::NsRegister {
                from_site,
                site_lexeme,
                name,
                value,
                stamp,
            } => {
                self.stats.ns_ops += 1;
                // Sharded mode: this registration replicates to the ring
                // partner for its key — the successor when this node owns
                // the key, the owner itself when this node is the
                // follower acting for a suspected owner.
                let partner = self
                    .shard
                    .as_ref()
                    .and_then(|s| s.partner_of(self.node, &site_lexeme, &name));
                if let Some(ns) = &mut self.ns {
                    ns.set_repl_partner(partner);
                    let replies = ns.handle_register(from_site, &site_lexeme, &name, value, stamp);
                    for r in replies {
                        self.term.injected.fetch_add(1, Ordering::Relaxed);
                        self.route(r);
                    }
                }
                // Consume the request only after its replies are injected:
                // the opposite order has a window where the counters look
                // balanced while a reply is still pending, which could
                // falsely satisfy the termination detector.
                self.term.consumed.fetch_add(1, Ordering::Relaxed);
            }
            Packet::NsImport {
                req,
                site,
                name,
                kind,
                reply_to,
                expect,
            } => {
                self.stats.ns_ops += 1;
                if let Some(ns) = &mut self.ns {
                    if let Some(reply) = ns.handle_import(req, &site, &name, kind, reply_to, expect)
                    {
                        self.term.injected.fetch_add(1, Ordering::Relaxed);
                        self.route(reply);
                    }
                }
                self.term.consumed.fetch_add(1, Ordering::Relaxed);
            }
            other => unreachable!("not a name-service request: {other:?}"),
        }
    }

    fn deliver_local(&mut self, p: Packet) {
        match p {
            Packet::Msg { dest, label, args } => {
                self.deliver_to_site(
                    dest.site,
                    RtIncoming::Vm(Incoming::Msg {
                        dest: dest.heap_id,
                        label,
                        args,
                    }),
                );
            }
            Packet::Obj { dest, obj, .. } => {
                self.deliver_to_site(
                    dest.site,
                    RtIncoming::Vm(Incoming::Obj {
                        dest: dest.heap_id,
                        obj,
                    }),
                );
            }
            Packet::FetchReq {
                class,
                req,
                reply_to,
            } => {
                self.deliver_to_site(
                    class.site,
                    RtIncoming::Vm(Incoming::FetchReq {
                        dest: class.heap_id,
                        req,
                        reply_to,
                    }),
                );
            }
            Packet::FetchReply {
                to,
                req,
                group,
                index,
                ..
            } => {
                // Single-flight fan-out: if this reply answers an
                // in-flight leader fetch, synthesize a reply for every
                // waiter coalesced behind it (each consumed one injected
                // request when folded, so each synthesized reply counts
                // as injected to keep the packet balance).
                if let Some(class) = self.inflight_leader.remove(&(to, req)) {
                    if let Some(waiters) = self.inflight.remove(&class) {
                        self.term
                            .injected
                            .fetch_add(waiters.len() as u64, Ordering::Relaxed);
                        for (w_to, w_req) in waiters {
                            self.deliver_to_site(
                                w_to.site,
                                RtIncoming::Vm(Incoming::FetchReply {
                                    req: w_req,
                                    group: group.clone(),
                                    index,
                                }),
                            );
                        }
                    }
                }
                self.deliver_to_site(
                    to.site,
                    RtIncoming::Vm(Incoming::FetchReply { req, group, index }),
                );
            }
            Packet::NsImportReply { to, req, result } => {
                self.deliver_to_site(to.site, RtIncoming::ImportResolved { req, result });
            }
            Packet::NsRegister { .. } | Packet::NsImport { .. } => {
                if self.ns_service_ns > 0 {
                    // Modeled resolver cost: the request queues behind
                    // the shard's single server; `drain_ns_backlog`
                    // serves it once the clock passes its completion.
                    self.ns_backlog.push_back((self.now_ns, p));
                } else {
                    self.serve_ns_request(p);
                }
            }
            Packet::NsLease {
                to,
                req,
                site,
                name,
                value,
                stamp,
                epoch,
            } => {
                // A lease grant: cache the binding for the whole node,
                // then resolve the waiting site's import. The packet is
                // consumed when the site polls the resolution, exactly
                // like a plain NsImportReply.
                self.name_cache
                    .insert(&site, &name, value.clone(), stamp, epoch, self.now_ns);
                self.deliver_to_site(
                    to.site,
                    RtIncoming::ImportResolved {
                        req,
                        result: Ok(value),
                    },
                );
            }
            Packet::NsInvalidate {
                to: _,
                site,
                name,
                epoch,
            } => {
                self.name_cache.invalidate(&site, &name, epoch);
                // Sites hold their own resolved-binding caches; tell each
                // one to forget the key so its next import re-resolves.
                // Every forwarded notice is a fresh injection, consumed
                // when the site polls it — the balance holds even if the
                // invalidation itself was chaos-dropped upstream.
                let locals: Vec<SiteId> = self.sites.keys().copied().collect();
                self.term
                    .injected
                    .fetch_add(locals.len() as u64, Ordering::Relaxed);
                for s in locals {
                    self.deliver_to_site(
                        s,
                        RtIncoming::NsInvalidated {
                            site: site.clone(),
                            name: name.clone(),
                        },
                    );
                }
                self.term.consumed.fetch_add(1, Ordering::Relaxed);
            }
            Packet::Heartbeat { node, seq } => {
                self.term.consumed.fetch_add(1, Ordering::Relaxed);
                let e = self.heartbeats.entry(node).or_insert(0);
                *e = (*e).max(seq);
            }
            Packet::TermProbe { .. }
            | Packet::TermReport { .. }
            | Packet::Hello { .. }
            | Packet::ObjRef { .. }
            | Packet::FetchReplyRef { .. }
            | Packet::NeedCode { .. }
            | Packet::HaveCode { .. }
            | Packet::NsRepl { .. } => {
                // Termination detection runs at the environment level in
                // this implementation, handshakes at the transport layer,
                // and cache-protocol packets are resolved at ingest (as is
                // replication, which needs the sender's id); wire packets
                // reaching here are accepted and ignored.
                self.term.consumed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn deliver_to_site(&mut self, site: SiteId, item: RtIncoming) {
        self.stats.local_deliveries += 1;
        self.site_bufs.entry(site).or_default().push(item);
    }
}
