//! Distribution-invariance properties: placing sites on different nodes or
//! changing link profiles must never change a program's observable
//! behaviour — only its timing. Plus conservation properties of the
//! runtime (exactly-once delivery) and the behaviour of the future-work
//! features under failure injection.

use ditico::{Env, FabricMode, LinkProfile, Topology};
use proptest::prelude::*;

/// A small family of two-site client/server programs parameterized by a
/// seed-ish tuple, all confluent.
fn client_server(ops: &[(i64, u8)]) -> (String, String) {
    let server = r#"
        def Srv(p) =
            p ? {
                add(x, r)  = r![x + 1]  | Srv[p],
                dbl(x, r)  = r![x * 2]  | Srv[p],
                neg(x, r)  = r![0 - x]  | Srv[p]
            }
        in export new p in Srv[p]
    "#
    .to_string();
    let mut calls = String::new();
    for (i, (v, op)) in ops.iter().enumerate() {
        let label = match op % 3 {
            0 => "add",
            1 => "dbl",
            _ => "neg",
        };
        calls.push_str(&format!(
            "| new a{i} (p!{label}[{v}, a{i}] | a{i}?(y) = print(y)) "
        ));
    }
    let client = format!("import p from server in (0 {calls})");
    (server, client)
}

fn observable(topology: Topology, server: &str, client: &str) -> Vec<String> {
    let report = Env::new(topology)
        .site("server", server)
        .unwrap()
        .site("client", client)
        .unwrap()
        .run()
        .unwrap();
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    let mut lines = report.output("client").to_vec();
    lines.sort();
    lines
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same program, four placements/fabrics — identical observables.
    #[test]
    fn placement_and_links_do_not_change_observables(
        ops in proptest::collection::vec((0i64..100, 0u8..3), 1..6)
    ) {
        let (server, client) = client_server(&ops);
        let reference = observable(Topology::default(), &server, &client);
        prop_assert_eq!(ops.len(), reference.len());
        for topology in [
            Topology { nodes: 2, mode: FabricMode::Virtual, link: LinkProfile::myrinet(), ns_replicas: 1 },
            Topology { nodes: 2, mode: FabricMode::Virtual, link: LinkProfile::wan(), ns_replicas: 1 },
            Topology { nodes: 3, mode: FabricMode::Virtual, link: LinkProfile::fast_ethernet(), ns_replicas: 2 },
            Topology { nodes: 2, mode: FabricMode::Ideal, link: LinkProfile::ideal(), ns_replicas: 1 },
        ] {
            let got = observable(topology, &server, &client);
            prop_assert_eq!(&got, &reference);
        }
    }

    /// Exactly-once: every message shipped is received exactly once, and
    /// every reply printed corresponds to one request.
    #[test]
    fn shipped_equals_received(
        ops in proptest::collection::vec((0i64..100, 0u8..3), 1..6)
    ) {
        let (server, client) = client_server(&ops);
        let report = Env::new(Topology {
            nodes: 2,
            mode: FabricMode::Virtual,
            link: LinkProfile::myrinet(),
            ns_replicas: 1,
        })
        .site("server", &server).unwrap()
        .site("client", &client).unwrap()
        .run().unwrap();
        let c = &report.stats["client"];
        let s = &report.stats["server"];
        prop_assert_eq!(c.msgs_sent, s.msgs_recv);
        prop_assert_eq!(s.msgs_sent, c.msgs_recv);
        prop_assert_eq!(c.msgs_sent as usize, ops.len());
        prop_assert_eq!(report.output("client").len(), ops.len());
    }
}

/// The reference (calculus) semantics agrees with the distributed VM run
/// on multi-site programs, not just single-site ones.
#[test]
fn distributed_differential_against_calculus() {
    let cases: [(&str, &str); 3] = [
        (
            "def Srv(p) = p?{ val(x, a) = a![x * 5] | Srv[p] } in export new p in Srv[p]",
            "import p from server in new a (p!val[5, a] | a?(v) = print(v))",
        ),
        (
            "export def Work(v) = print(v + 1) in 0",
            "import Work from server in (Work[1] | Work[2])",
        ),
        (
            r#"
            def S(p) = p?{ go(r) = (r?(x) = print(x)) | S[p] }
            in export new p in S[p]
            "#,
            "import p from server in new r (p!go[r] | r![33])",
        ),
    ];
    for (server, client) in cases {
        let env = Env::new(Topology {
            nodes: 2,
            mode: FabricMode::Virtual,
            link: LinkProfile::myrinet(),
            ns_replicas: 1,
        })
        .site("server", server)
        .unwrap()
        .site("client", client)
        .unwrap();
        let reference = env.run_reference(1_000_000).unwrap();
        let report = env.run().unwrap();
        let mut vm_lines: Vec<String> = report
            .outputs
            .values()
            .flat_map(|l| l.iter().cloned())
            .collect();
        vm_lines.sort();
        assert_eq!(vm_lines, reference.line_multiset(), "case: {client}");
    }
}

/// Failure injection: killing a worker node leaves the rest of the
/// cluster's outputs intact.
#[test]
fn surviving_sites_unaffected_by_dead_node() {
    use ditico::{Cluster, RunLimits};
    let mut c = Cluster::new(FabricMode::Virtual, LinkProfile::myrinet(), 1);
    let n0 = c.add_node();
    let n1 = c.add_node();
    let n2 = c.add_node();
    c.add_site_src(
        n0,
        "srv",
        "def S(p) = p?{ v(x, r) = r![x] | S[p] } in export new p in S[p]",
    )
    .unwrap();
    c.add_site_src(
        n1,
        "good",
        "import p from srv in new a (p!v[1, a] | a?(x) = print(x))",
    )
    .unwrap();
    c.add_site_src(
        n2,
        "doomed",
        "import p from srv in new a (p!v[2, a] | a?(x) = print(x))",
    )
    .unwrap();
    c.kill_node(n2);
    let report = c.run_deterministic(RunLimits::default());
    assert_eq!(report.output("good"), ["1".to_string()]);
    assert_eq!(report.output("doomed"), Vec::<String>::new().as_slice());
}

/// Termination detection (threaded): the detector stops a busy cluster
/// only after it is genuinely done.
#[test]
fn threaded_termination_detector_waits_for_work() {
    let report = Env::new(Topology {
        nodes: 2,
        mode: FabricMode::Ideal,
        link: LinkProfile::ideal(),
        ns_replicas: 1,
    })
    .site(
        "server",
        "def S(p) = p?{ v(x, r) = r![x + 1] | S[p] } in export new p in S[p]",
    )
    .unwrap()
    .site(
        "client",
        r#"
        import p from server in
        def Loop(n, acc) =
            if n > 0 then new a (p!v[acc, a] | a?(x) = Loop[n - 1, x])
            else println("acc", acc)
        in Loop[200, 0]
        "#,
    )
    .unwrap()
    .build()
    .unwrap()
    .run_threaded(std::time::Duration::from_secs(60));
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(report.output("client"), ["acc 200".to_string()]);
}
