//! Hand-written lexer for the DiTyCO concrete syntax.
//!
//! Comments: `//` to end of line and nestable `/* … */`.

use crate::pos::{Pos, Span};
use crate::token::Tok;
use std::fmt;

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub tok: Tok,
    pub span: Span,
}

/// A lexical error.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub message: String,
    pub pos: Pos,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `src` completely; the final token is always [`Tok::Eof`].
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    pos: Pos,
    out: Vec<Spanned>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            chars: src.char_indices().peekable(),
            pos: Pos::start(),
            out: Vec::new(),
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let (i, c) = self.chars.next()?;
        self.pos.offset = (i + c.len_utf8()) as u32;
        if c == '\n' {
            self.pos.line += 1;
            self.pos.col = 1;
        } else {
            self.pos.col += 1;
        }
        Some(c)
    }

    fn err(&self, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            pos: self.pos,
        }
    }

    fn emit(&mut self, tok: Tok, start: Pos) {
        self.out.push(Spanned {
            tok,
            span: Span::new(start, self.pos),
        });
    }

    fn run(mut self) -> Result<Vec<Spanned>, LexError> {
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let Some(c) = self.peek() else {
                self.emit(Tok::Eof, start);
                return Ok(self.out);
            };
            match c {
                'a'..='z' | 'A'..='Z' | '_' => self.ident(start),
                '0'..='9' => self.number(start)?,
                '"' => self.string(start)?,
                _ => self.symbol(start)?,
            }
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') => {
                    // Look ahead two characters without consuming on mismatch.
                    let rest = &self.src[self.pos.offset as usize..];
                    if rest.starts_with("//") {
                        while let Some(c) = self.peek() {
                            if c == '\n' {
                                break;
                            }
                            self.bump();
                        }
                    } else if rest.starts_with("/*") {
                        self.bump();
                        self.bump();
                        let mut depth = 1usize;
                        loop {
                            let rest = &self.src[self.pos.offset as usize..];
                            if rest.starts_with("/*") {
                                self.bump();
                                self.bump();
                                depth += 1;
                            } else if rest.starts_with("*/") {
                                self.bump();
                                self.bump();
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            } else if self.bump().is_none() {
                                return Err(self.err("unterminated block comment"));
                            }
                        }
                    } else {
                        return Ok(());
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn ident(&mut self, start: Pos) {
        let begin = self.pos.offset as usize;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' || c == '\'' {
                self.bump();
            } else {
                break;
            }
        }
        let lexeme = &self.src[begin..self.pos.offset as usize];
        let tok = match Tok::keyword(lexeme) {
            Some(kw) => kw,
            None => {
                let first = lexeme.chars().next().expect("nonempty ident");
                if first.is_ascii_uppercase() {
                    Tok::UpperId(lexeme.to_string())
                } else {
                    Tok::LowerId(lexeme.to_string())
                }
            }
        };
        self.emit(tok, start);
    }

    fn number(&mut self, start: Pos) -> Result<(), LexError> {
        let begin = self.pos.offset as usize;
        while matches!(self.peek(), Some('0'..='9')) {
            self.bump();
        }
        // A float has a '.' followed by a digit (so `1.x` stays Int Dot Id —
        // though names never follow ints in practice).
        let mut is_float = false;
        let rest = &self.src[self.pos.offset as usize..];
        let mut rc = rest.chars();
        if rc.next() == Some('.') && matches!(rc.next(), Some('0'..='9')) {
            is_float = true;
            self.bump(); // '.'
            while matches!(self.peek(), Some('0'..='9')) {
                self.bump();
            }
        }
        let lexeme = &self.src[begin..self.pos.offset as usize];
        if is_float {
            let x: f64 = lexeme
                .parse()
                .map_err(|e| self.err(format!("bad float literal: {e}")))?;
            self.emit(Tok::Float(x), start);
        } else {
            let i: i64 = lexeme
                .parse()
                .map_err(|e| self.err(format!("bad int literal: {e}")))?;
            self.emit(Tok::Int(i), start);
        }
        Ok(())
    }

    fn string(&mut self, start: Pos) -> Result<(), LexError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string literal")),
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('\\') => s.push('\\'),
                    Some('"') => s.push('"'),
                    Some(other) => {
                        return Err(self.err(format!("unknown escape `\\{other}`")));
                    }
                    None => return Err(self.err("unterminated string literal")),
                },
                Some(c) => s.push(c),
            }
        }
        self.emit(Tok::Str(s), start);
        Ok(())
    }

    fn symbol(&mut self, start: Pos) -> Result<(), LexError> {
        let c = self.bump().expect("peeked");
        let two = |this: &mut Self, second: char, yes: Tok, no: Tok| {
            if this.peek() == Some(second) {
                this.bump();
                yes
            } else {
                no
            }
        };
        let tok = match c {
            '!' => two(self, '=', Tok::NotEq, Tok::Bang),
            '?' => Tok::Query,
            '[' => Tok::LBracket,
            ']' => Tok::RBracket,
            '(' => Tok::LParen,
            ')' => Tok::RParen,
            '{' => Tok::LBrace,
            '}' => Tok::RBrace,
            '=' => two(self, '=', Tok::EqEq, Tok::Assign),
            ',' => Tok::Comma,
            '|' => two(self, '|', Tok::OrOr, Tok::Bar),
            '.' => Tok::Dot,
            '+' => Tok::Plus,
            '-' => Tok::Minus,
            '*' => Tok::StarOp,
            '/' => Tok::Slash,
            '%' => Tok::Percent,
            '^' => Tok::Caret,
            '<' => two(self, '=', Tok::Le, Tok::Lt),
            '>' => two(self, '=', Tok::Ge, Tok::Gt),
            '&' => {
                if self.peek() == Some('&') {
                    self.bump();
                    Tok::AndAnd
                } else {
                    return Err(self.err("expected `&&`"));
                }
            }
            other => return Err(self.err(format!("unexpected character `{other}`"))),
        };
        self.emit(tok, start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src)
            .expect("lex ok")
            .into_iter()
            .map(|s| s.tok)
            .collect()
    }

    #[test]
    fn lexes_message_form() {
        assert_eq!(
            toks("x!read[r]"),
            vec![
                Tok::LowerId("x".into()),
                Tok::Bang,
                Tok::LowerId("read".into()),
                Tok::LBracket,
                Tok::LowerId("r".into()),
                Tok::RBracket,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn keywords_and_classvars() {
        assert_eq!(
            toks("def Cell and new in"),
            vec![
                Tok::KwDef,
                Tok::UpperId("Cell".into()),
                Tok::KwAnd,
                Tok::KwNew,
                Tok::KwIn,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("x // trailing\n/* multi \n /* nested */ line */ y"),
            vec![Tok::LowerId("x".into()), Tok::LowerId("y".into()), Tok::Eof]
        );
    }

    #[test]
    fn numbers_and_floats() {
        assert_eq!(
            toks("42 3.25 0"),
            vec![Tok::Int(42), Tok::Float(3.25), Tok::Int(0), Tok::Eof]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            toks(r#""a\nb\"c""#),
            vec![Tok::Str("a\nb\"c".into()), Tok::Eof]
        );
    }

    #[test]
    fn operators_two_char() {
        assert_eq!(
            toks("== != <= >= && || | = < >"),
            vec![
                Tok::EqEq,
                Tok::NotEq,
                Tok::Le,
                Tok::Ge,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Bar,
                Tok::Assign,
                Tok::Lt,
                Tok::Gt,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn spans_track_lines() {
        let ts = lex("x\n  y").unwrap();
        assert_eq!(ts[0].span.start.line, 1);
        assert_eq!(ts[1].span.start.line, 2);
        assert_eq!(ts[1].span.start.col, 3);
    }

    #[test]
    fn error_on_unterminated_string() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn error_on_bad_char() {
        assert!(lex("x # y").is_err());
    }

    #[test]
    fn located_name_tokens() {
        assert_eq!(
            toks("server.applet"),
            vec![
                Tok::LowerId("server".into()),
                Tok::Dot,
                Tok::LowerId("applet".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn primes_in_identifiers() {
        assert_eq!(
            toks("x' x''"),
            vec![
                Tok::LowerId("x'".into()),
                Tok::LowerId("x''".into()),
                Tok::Eof
            ]
        );
    }
}
