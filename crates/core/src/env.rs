//! The DiTyCO environment: a declarative builder over the distributed
//! runtime, with link-time interface checking and a reference semantics
//! for differential testing.

use crate::program::{Program, ProgramError};
use ditico_rt::{ChaosPlan, Cluster, FabricMode, LinkProfile, RunLimits, RunReport, SiteInterface};
use std::collections::HashMap;
use std::fmt;
use tyco_calculus::{Network, Outcome, RtError, Scheduler};
use tyco_types::infer::ImportKind;
use tyco_vm::codec::TypeStamp;
use tyco_vm::word::NodeId;

/// Environment-level errors.
#[derive(Debug, Clone, PartialEq)]
pub enum EnvError {
    Program(String, ProgramError),
    /// Link-time protocol mismatch between an importer and an exporter
    /// (the dynamic half of the hybrid check, §7).
    Interface {
        importer: String,
        exporter: String,
        name: String,
        expected: String,
        actual: String,
    },
    /// An import refers to a site that is never defined.
    UnknownSite {
        importer: String,
        site: String,
    },
    /// An import names an identifier its exporter never exports (the
    /// import would block forever).
    MissingExport {
        importer: String,
        exporter: String,
        name: String,
    },
    Reference(String),
    /// An invalid fault-injection plan (rates over budget, bad events).
    Chaos(String),
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvError::Program(site, e) => write!(f, "in site `{site}`: {e}"),
            EnvError::Interface {
                importer,
                exporter,
                name,
                expected,
                actual,
            } => write!(
                f,
                "interface mismatch: `{importer}` imports `{name}` from `{exporter}` expecting \
                 `{expected}`, but it is exported as `{actual}`"
            ),
            EnvError::UnknownSite { importer, site } => {
                write!(f, "site `{importer}` imports from unknown site `{site}`")
            }
            EnvError::MissingExport {
                importer,
                exporter,
                name,
            } => write!(
                f,
                "site `{importer}` imports `{name}` from `{exporter}`, which never exports it \
                 (the import would block forever)"
            ),
            EnvError::Reference(e) => write!(f, "reference semantics: {e}"),
            EnvError::Chaos(e) => write!(f, "chaos plan: {e}"),
        }
    }
}

impl std::error::Error for EnvError {}

/// How sites are mapped onto nodes and how the fabric behaves.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Number of nodes; sites are placed round-robin unless pinned.
    pub nodes: usize,
    pub mode: FabricMode,
    pub link: LinkProfile,
    pub ns_replicas: usize,
}

impl Default for Topology {
    fn default() -> Self {
        Topology {
            nodes: 1,
            mode: FabricMode::Ideal,
            link: LinkProfile::ideal(),
            ns_replicas: 1,
        }
    }
}

impl Topology {
    /// The paper's hardware platform (Fig. 1): four nodes on a Myrinet
    /// switch, deterministic virtual time.
    pub fn paper_cluster() -> Topology {
        Topology {
            nodes: 4,
            mode: FabricMode::Virtual,
            link: LinkProfile::myrinet(),
            ns_replicas: 1,
        }
    }
}

/// A site declaration queued in the builder.
struct SiteDecl {
    lexeme: String,
    program: Program,
    pin: Option<usize>,
}

/// The DiTyCO environment builder.
pub struct Env {
    topology: Topology,
    sites: Vec<SiteDecl>,
    /// Skip the link-time interface check (to demonstrate pure dynamic
    /// checking at reduction time).
    pub check_interfaces: bool,
    /// Worker-pool size for threaded runs (None: available parallelism).
    workers: Option<usize>,
    /// Per-node code-cache capacity (None: the runtime default).
    code_cache: Option<usize>,
    /// Tree-shake shipped code (SHIPO / served FETCH packages).
    shake: bool,
    /// Seeded fault-injection plan installed at build time.
    chaos: Option<ChaosPlan>,
    /// Sharded name service: ring size and lease TTL (None: centralized).
    ns_shards: Option<(usize, u64)>,
}

impl Env {
    pub fn new(topology: Topology) -> Env {
        Env {
            topology,
            sites: Vec::new(),
            check_interfaces: true,
            workers: None,
            code_cache: None,
            shake: false,
            chaos: None,
            ns_shards: None,
        }
    }

    /// Shard the name service over the first `shards` nodes by consistent
    /// hashing, with each shard replicated to its ring successor and
    /// resolved bindings lease-cached at importing nodes for `lease_ms`
    /// milliseconds (0 keeps sharding but disables the cache). The
    /// default — no call — is the paper's centralized service.
    pub fn ns_shards(mut self, shards: usize, lease_ms: u64) -> Env {
        self.ns_shards = Some((shards, lease_ms.saturating_mul(1_000_000)));
        self
    }

    /// Set the worker-pool size used by threaded runs (the M:N site
    /// scheduler); defaults to the machine's available parallelism.
    pub fn workers(mut self, workers: usize) -> Env {
        self.workers = Some(workers);
        self
    }

    /// Set every node's content-addressed code-cache capacity, in images.
    /// Zero disables the cache along with wire-level dedup and
    /// single-flight fetch coalescing (the uncached baseline).
    pub fn code_cache(mut self, capacity: usize) -> Env {
        self.code_cache = Some(capacity);
        self
    }

    /// Tree-shake every shipped code package: SHIPO payloads and served
    /// FETCH replies carry the pruned closure (`tyco_vm::wire::pack_shaken`)
    /// instead of the full one. The run report's
    /// [`RunReport::shake_totals`](ditico_rt::RunReport::shake_totals)
    /// records packages built and bytes saved.
    pub fn shake(mut self, enabled: bool) -> Env {
        self.shake = enabled;
        self
    }

    /// Install a seeded fault-injection plan ([`ChaosPlan`]): per-packet
    /// drop/duplicate/delay rates plus timed partition/heal/kill/restart
    /// events. The same seed and plan replay the same injected schedule;
    /// the run report's `chaos` field tallies every injected event.
    pub fn chaos(mut self, plan: ChaosPlan) -> Env {
        self.chaos = Some(plan);
        self
    }

    /// A single-node environment with an ideal fabric.
    pub fn local() -> Env {
        Env::new(Topology::default())
    }

    /// Declare a site from source (placed round-robin).
    pub fn site(mut self, lexeme: &str, source: &str) -> Result<Env, EnvError> {
        let program =
            Program::compile(source).map_err(|e| EnvError::Program(lexeme.to_string(), e))?;
        self.sites.push(SiteDecl {
            lexeme: lexeme.to_string(),
            program,
            pin: None,
        });
        Ok(self)
    }

    /// Declare a site pinned to a specific node index.
    pub fn site_on(mut self, node: usize, lexeme: &str, source: &str) -> Result<Env, EnvError> {
        let program =
            Program::compile(source).map_err(|e| EnvError::Program(lexeme.to_string(), e))?;
        self.sites.push(SiteDecl {
            lexeme: lexeme.to_string(),
            program,
            pin: Some(node),
        });
        Ok(self)
    }

    /// Link-time interface check: every import expectation must be
    /// compatible with the exporter's inferred interface (the paper's
    /// hybrid static/dynamic type checking applied at deployment).
    fn check_links(&self) -> Result<(), EnvError> {
        if !self.check_interfaces {
            return Ok(());
        }
        let by_lexeme: HashMap<&str, &SiteDecl> =
            self.sites.iter().map(|s| (s.lexeme.as_str(), s)).collect();
        for s in &self.sites {
            for (site, name, kind) in &s.program.types.imports {
                let Some(exporter) = by_lexeme.get(site.as_str()) else {
                    return Err(EnvError::UnknownSite {
                        importer: s.lexeme.clone(),
                        site: site.clone(),
                    });
                };
                // Exports are syntactically static (`export new` /
                // `export def`), so an identifier absent from the
                // exporter's interface can never appear: the import would
                // block forever. Catch it at link time.
                let exported = match kind {
                    ImportKind::Name => exporter.program.types.exported_names.contains_key(name),
                    ImportKind::Class => exporter.program.types.exported_classes.contains_key(name),
                };
                if !exported {
                    return Err(EnvError::MissingExport {
                        importer: s.lexeme.clone(),
                        exporter: site.clone(),
                        name: name.clone(),
                    });
                }
                if *kind == ImportKind::Name {
                    let expected = s
                        .program
                        .types
                        .import_expectations
                        .get(&(site.clone(), name.clone()));
                    let actual = exporter.program.types.exported_names.get(name);
                    if let (Some(exp), Some(act)) = (expected, actual) {
                        if !tyco_types::compatible(exp, act) {
                            return Err(EnvError::Interface {
                                importer: s.lexeme.clone(),
                                exporter: site.clone(),
                                name: name.clone(),
                                expected: exp.to_string(),
                                actual: act.to_string(),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Materialize the cluster (nodes, daemons, sites).
    pub fn build(self) -> Result<BuiltEnv, EnvError> {
        self.build_inner(None)
    }

    /// Materialize **one process's partition** of a multi-process cluster:
    /// the full topology is built (every node gets a daemon id, every site
    /// a deterministic [`SiteId`](tyco_vm::word::SiteId)), but only sites
    /// placed on `local_nodes` get a VM — the rest are declared via
    /// [`Cluster::add_remote_site`] so the name service can still resolve
    /// them. Every process of the run must build from the *same*
    /// environment so placements and ids agree across the wire.
    pub fn build_partition(self, local_nodes: &[usize]) -> Result<BuiltEnv, EnvError> {
        let local: std::collections::HashSet<usize> = local_nodes.iter().copied().collect();
        self.build_inner(Some(local))
    }

    fn build_inner(
        self,
        local: Option<std::collections::HashSet<usize>>,
    ) -> Result<BuiltEnv, EnvError> {
        self.check_links()?;
        let mut cluster = Cluster::new(
            self.topology.mode,
            self.topology.link,
            self.topology.ns_replicas,
        );
        if let Some(w) = self.workers {
            cluster.sched.workers = w;
        }
        if let Some(c) = self.code_cache {
            cluster.set_code_cache(c);
        }
        if self.shake {
            cluster.set_shake(true);
        }
        if let Some(plan) = self.chaos {
            cluster.set_chaos(plan).map_err(EnvError::Chaos)?;
        }
        if let Some((shards, lease_ns)) = self.ns_shards {
            // Before add_node/add_site: new nodes then self-configure and
            // site registrations reach every shard's site table.
            cluster.set_ns_sharding(shards.min(self.topology.nodes.max(1)), lease_ns);
        }
        let nodes: Vec<NodeId> = (0..self.topology.nodes.max(1))
            .map(|_| cluster.add_node())
            .collect();
        let mut placements = Vec::new();
        let check_interfaces = self.check_interfaces;
        for (i, s) in self.sites.into_iter().enumerate() {
            let node_idx = s.pin.unwrap_or(i % nodes.len()) % nodes.len();
            let node = nodes[node_idx];
            if local.as_ref().is_some_and(|set| !set.contains(&node_idx)) {
                // Hosted by a peer process: identity only, no VM.
                cluster.add_remote_site(&s.lexeme, node);
            } else {
                // In pure-dynamic mode the sites carry no stamps and the
                // name service has no static evidence to refuse on.
                let iface = if check_interfaces {
                    site_interface(&s.program.types)
                } else {
                    SiteInterface::default()
                };
                cluster.add_site_with_interface(node, &s.lexeme, s.program.code.clone(), iface);
            }
            placements.push((s.lexeme.clone(), node, s.program));
        }
        Ok(BuiltEnv {
            cluster,
            placements,
        })
    }

    /// Build and run deterministically with default limits.
    pub fn run(self) -> Result<RunReport, EnvError> {
        Ok(self.build()?.run_deterministic(RunLimits::default()))
    }

    /// Run the same site programs on the calculus interpreter — the
    /// reference semantics used for differential testing and as the
    /// experiment-C7 baseline.
    pub fn run_reference(&self, max_steps: u64) -> Result<Outcome, EnvError> {
        self.run_reference_with(Scheduler::RoundRobin, max_steps)
    }

    pub fn run_reference_with(
        &self,
        scheduler: Scheduler,
        max_steps: u64,
    ) -> Result<Outcome, EnvError> {
        let mut net = Network::new().with_scheduler(scheduler);
        for s in &self.sites {
            net.add_site(&s.lexeme, s.program.ast.clone());
        }
        net.run(max_steps)
            .map_err(|e: RtError| EnvError::Reference(e.to_string()))
    }

    /// The declared site lexemes, in order.
    pub fn lexemes(&self) -> Vec<String> {
        self.sites.iter().map(|s| s.lexeme.clone()).collect()
    }
}

/// Derive the runtime type stamps a site ships with its name-service
/// traffic from the type checker's summary: exported channel names carry
/// the stamp of their inferred type; `import`s of names carry the stamp of
/// the type the importer's body requires.
fn site_interface(types: &tyco_types::TypeSummary) -> SiteInterface {
    fn stamp(t: &tyco_types::Type) -> TypeStamp {
        TypeStamp {
            fingerprint: tyco_types::fingerprint(t),
            canonical: tyco_types::canonical(t),
        }
    }
    let mut iface = SiteInterface::default();
    for (name, ty) in &types.exported_names {
        iface.exports.insert(name.clone(), stamp(ty));
    }
    for ((site, name), ty) in &types.import_expectations {
        iface
            .imports
            .insert((site.clone(), name.clone()), stamp(ty));
    }
    iface
}

/// A materialized environment ready to run.
pub struct BuiltEnv {
    pub cluster: Cluster,
    /// (lexeme, node, program) for each site.
    pub placements: Vec<(String, NodeId, Program)>,
}

impl BuiltEnv {
    pub fn run_deterministic(&mut self, limits: RunLimits) -> RunReport {
        self.cluster.run_deterministic(limits)
    }

    pub fn run_threaded(self, wall: std::time::Duration) -> RunReport {
        self.cluster.run_threaded(wall)
    }

    /// Run this process's partition over the real TCP transport (built
    /// with [`Env::build_partition`]). `cfg.local_nodes` must match the
    /// partition the environment was built for.
    pub fn run_distributed(
        self,
        cfg: ditico_rt::TransportConfig,
        wall: std::time::Duration,
    ) -> Result<RunReport, String> {
        self.cluster.run_distributed(cfg, wall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_env_runs_cell() {
        let report = Env::local()
            .site(
                "main",
                r#"
                def Cell(self, v) =
                    self ? { read(r) = r![v] | Cell[self, v], write(u) = Cell[self, u] }
                in new x (Cell[x, 9] | new z (x!read[z] | z?(w) = print(w)))
                "#,
            )
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(report.output("main"), ["9".to_string()]);
    }

    #[test]
    fn paper_cluster_topology_places_sites() {
        let built = Env::new(Topology::paper_cluster())
            .site("a", "println(\"a\")")
            .unwrap()
            .site("b", "println(\"b\")")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(built.placements[0].1, NodeId(0));
        assert_eq!(built.placements[1].1, NodeId(1));
    }

    #[test]
    fn interface_check_rejects_protocol_mismatch() {
        // Importer sends `go(int)`, exporter offers only `halt()`.
        let err = Env::new(Topology {
            nodes: 2,
            ..Topology::default()
        })
        .site("server", "export new p in p?{ halt() = 0 }")
        .unwrap()
        .site("client", "import p from server in p!go[1]")
        .unwrap()
        .run()
        .unwrap_err();
        assert!(matches!(err, EnvError::Interface { .. }), "{err}");
    }

    #[test]
    fn interface_check_accepts_compatible() {
        let report = Env::new(Topology {
            nodes: 2,
            ..Topology::default()
        })
        .site(
            "server",
            "export new p in p?{ go(n) = print(n), halt() = 0 }",
        )
        .unwrap()
        .site("client", "import p from server in p!go[1]")
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(report.output("server"), ["1".to_string()]);
    }

    #[test]
    fn unknown_site_rejected_at_link_time() {
        let err = Env::local()
            .site("client", "import p from nowhere in p![1]")
            .unwrap()
            .run()
            .unwrap_err();
        assert!(matches!(err, EnvError::UnknownSite { .. }), "{err}");
    }

    #[test]
    fn dynamic_check_still_fires_when_static_disabled() {
        let mut env = Env::new(Topology {
            nodes: 2,
            ..Topology::default()
        });
        env.check_interfaces = false;
        let report = env
            .site("server", "export new p in p?{ halt() = 0 }")
            .unwrap()
            .site("client", "import p from server in p!go[1]")
            .unwrap()
            .run()
            .unwrap();
        // The protocol error shows up at reduction time on the server.
        assert!(
            report
                .errors
                .iter()
                .any(|(s, e)| s == "server" && e.to_string().contains("go")),
            "{:?}",
            report.errors
        );
    }

    #[test]
    fn reference_semantics_agrees_on_cell() {
        let env = Env::local()
            .site("main", "new x (x!go[2] | x?{ go(n) = print(n * 10) })")
            .unwrap();
        let reference = env.run_reference(100_000).unwrap();
        let vm = env.run().unwrap();
        assert_eq!(reference.line_multiset(), {
            let mut v: Vec<String> = vm
                .outputs
                .values()
                .flat_map(|l| l.iter().cloned())
                .collect();
            v.sort();
            v
        });
    }
}
