//! # ditico
//!
//! **DiTyCO** — *a concurrent programming environment with support for
//! distributed computations and code mobility* (CLUSTER 2000), as a Rust
//! library.
//!
//! The public facade over the full stack:
//!
//! * [`Program`] — source → parse → desugar → Damas–Milner type check →
//!   byte-code, in one value;
//! * [`Env`] / [`Topology`] — declare sites, place them on nodes, pick a
//!   fabric (ideal / virtual-time / real-time) and run, with link-time
//!   interface checking between importers and exporters;
//! * [`Shell`] — the TyCOsh-style command interpreter;
//! * re-exports of the underlying layers: [`tyco_syntax`], [`tyco_types`],
//!   [`tyco_calculus`] (the executable formal semantics and differential
//!   baseline), [`tyco_vm`] (the byte-code machine) and [`ditico_rt`]
//!   (sites / nodes / TyCOd / name service / fabric).
//!
//! ## Quickstart
//!
//! ```
//! use ditico::{Env, Topology};
//!
//! let report = Env::new(Topology { nodes: 2, ..Topology::default() })
//!     .site("server", "def Srv(s) = s?{ val(x, r) = r![x * 2] | Srv[s] } \
//!                      in export new p in Srv[p]").unwrap()
//!     .site("client", "import p from server in \
//!                      new a (p!val[21, a] | a?(y) = print(y))").unwrap()
//!     .run().unwrap();
//! assert_eq!(report.output("client"), ["42".to_string()]);
//! ```

pub mod env;
pub mod program;
pub mod shell;

pub use env::{BuiltEnv, Env, EnvError, Topology};
pub use program::{Program, ProgramError};
pub use shell::Shell;

// The full stack, re-exported for downstream use.
pub use ditico_rt;
pub use tyco_calculus;
pub use tyco_syntax;
pub use tyco_types;
pub use tyco_vm;

pub use ditico_rt::{
    parse_peer_list, ChaosEvent, ChaosPlan, ChaosReport, ChaosSpec, Cluster, FabricMode, IoBackend,
    LinkProfile, NsStats, RunLimits, RunReport, TransportConfig, TransportReport,
};
