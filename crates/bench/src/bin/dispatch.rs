//! Hot-path throughput harness: single-site VM dispatch (instrs/sec) and
//! cross-site fabric messaging (messages/sec), recorded to
//! `BENCH_dispatch.json`.
//!
//! ```sh
//! cargo run --release -p ditico-bench --bin dispatch -- --record current
//! ```
//!
//! `--record baseline` stores the measurements under the `baseline` key,
//! `--record current` (the default) under `current`; whichever section the
//! file already holds is preserved, and when both are present the speedup
//! ratios are recomputed. The workloads are fixed-size and deterministic so
//! baseline and current runs measure the same work.

use std::time::{Duration, Instant};

use ditico::{Cluster, FabricMode, LinkProfile};
use ditico_bench::cell_churn;
use tyco_vm::{compile, LoopbackPort, Machine};

/// Cell transactions for the single-site dispatch workload.
const CHURN_ITERS: u64 = 500_000;
/// Same shape, but shuttling string payloads (exercises `PushStr`).
const STR_ITERS: u64 = 350_000;
/// Repetitions per single-site workload; best run is recorded.
const REPS: usize = 3;
/// Messages streamed to the hub per cross-site client.
const MSGS_PER_CLIENT: u64 = 96_000;
/// Flow-control window: after every `BURST` pings the client waits for a
/// sync ack, bounding in-flight traffic without idling the wires.
const BURST: u64 = 1_000;
/// Client sites per worker node.
const CLIENTS_PER_NODE: usize = 2;
/// Worker nodes (plus one hub node).
const WORKER_NODES: usize = 3;
/// Hard cap on the threaded run.
const WALL_LIMIT: Duration = Duration::from_secs(60);

fn str_churn(iters: u64) -> String {
    format!(
        r#"
        def Cell(self, v) =
            self ? {{ read(r) = r![v] | Cell[self, v], write(u) = Cell[self, u] }}
        and Driver(cell, n) =
            if n > 0 then
                (cell!write["the-quick-brown-fox"] |
                 new z (cell!read[z] | z?(w) = Driver[cell, n - 1]))
            else println("finished")
        in new x (Cell[x, "seed"] | Driver[x, {iters}])
        "#
    )
}

/// Best-of-`REPS` wall-clock execution of a single-site program; returns
/// (instructions, best elapsed).
fn time_single_site(src: &str) -> (u64, Duration) {
    let prog = compile(&tyco_syntax::parse_core(src).expect("parses")).expect("compiles");
    let mut best = Duration::MAX;
    let mut instrs = 0;
    for _ in 0..REPS {
        let mut m = Machine::new(prog.clone(), LoopbackPort::new("main"));
        let start = Instant::now();
        m.run_to_quiescence(u64::MAX).expect("runs");
        let elapsed = start.elapsed();
        instrs = m.stats.instrs;
        if elapsed < best {
            best = elapsed;
        }
    }
    (instrs, best)
}

fn measure_instrs_per_sec() -> f64 {
    let (i1, t1) = time_single_site(&cell_churn(CHURN_ITERS));
    let (i2, t2) = time_single_site(&str_churn(STR_ITERS));
    let total = (i1 + i2) as f64;
    let secs = t1.as_secs_f64() + t2.as_secs_f64();
    println!(
        "single-site: {} instrs in {:.3}s (cell {:.3}s + str {:.3}s) -> {:.0} instrs/sec",
        i1 + i2,
        secs,
        t1.as_secs_f64(),
        t2.as_secs_f64(),
        total / secs
    );
    total / secs
}

/// Threaded cluster: one hub node draining a message stream, `WORKER_NODES`
/// nodes of `CLIENTS_PER_NODE` sites each pushing `MSGS_PER_CLIENT` pings
/// in `BURST`-sized windows closed by a sync round-trip.
fn measure_msgs_per_sec() -> f64 {
    let mut c = Cluster::new(FabricMode::Ideal, LinkProfile::ideal(), 1);
    let hub_node = c.add_node();
    c.add_site_src(
        hub_node,
        "hub",
        "def Hub(self) = self?{ ping(x) = Hub[self], sync(r) = (r![0] | Hub[self]) } \
         in export new hub in Hub[hub]",
    )
    .expect("hub compiles");
    let bursts = MSGS_PER_CLIENT / BURST;
    for n in 0..WORKER_NODES {
        let node = c.add_node();
        for s in 0..CLIENTS_PER_NODE {
            c.add_site_src(
                node,
                &format!("w{n}{s}"),
                &format!(
                    r#"
                    import hub from hub in
                    def Outer(m) =
                        if m > 0 then new a (Burst[{BURST}, a] | a?(v) = Outer[m - 1])
                        else println("done")
                    and Burst(k, a) =
                        if k > 0 then (hub!ping[k] | Burst[k - 1, a])
                        else hub!sync[a]
                    in Outer[{bursts}]
                    "#
                ),
            )
            .expect("client compiles");
        }
    }
    let start = Instant::now();
    let report = c.run_threaded(WALL_LIMIT);
    let elapsed = start.elapsed();
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    let clients = (WORKER_NODES * CLIENTS_PER_NODE) as u64;
    let expected = clients * (MSGS_PER_CLIENT + 2 * (MSGS_PER_CLIENT / BURST));
    assert!(
        report.fabric_packets >= expected,
        "run ended early: {} of {expected} packets carried",
        report.fabric_packets
    );
    let done = report
        .outputs
        .iter()
        .filter(|(site, lines)| site.starts_with('w') && lines.iter().any(|l| l == "done"))
        .count();
    println!(
        "cross-site: {} fabric packets in {:.3}s ({} of {} clients finished) -> {:.0} msgs/sec",
        report.fabric_packets,
        elapsed.as_secs_f64(),
        done,
        WORKER_NODES * CLIENTS_PER_NODE,
        report.fabric_packets as f64 / elapsed.as_secs_f64()
    );
    report.fabric_packets as f64 / elapsed.as_secs_f64()
}

/// Extract `"key": <number>` from the given JSON section, if present.
fn extract(json: &str, section: &str, key: &str) -> Option<f64> {
    let sec = json.find(&format!("\"{section}\""))?;
    let body = &json[sec..];
    let open = body.find('{')?;
    let close = body[open..].find('}')? + open;
    let body = &body[open..close];
    let k = body.find(&format!("\"{key}\""))?;
    let rest = &body[k..];
    let colon = rest.find(':')?;
    let num: String = rest[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    num.parse().ok()
}

fn section(label: &str, vals: Option<(f64, f64)>) -> String {
    match vals {
        Some((ips, mps)) => format!(
            "  \"{label}\": {{\n    \"instrs_per_sec\": {ips:.0},\n    \"messages_per_sec\": {mps:.0}\n  }}"
        ),
        None => format!("  \"{label}\": null"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let record = match args.iter().position(|a| a == "--record") {
        Some(i) => args.get(i + 1).cloned().unwrap_or_else(|| "current".into()),
        None => "current".into(),
    };
    assert!(
        record == "baseline" || record == "current",
        "--record must be 'baseline' or 'current'"
    );
    let path = "BENCH_dispatch.json";

    let ips = measure_instrs_per_sec();
    let mps = measure_msgs_per_sec();

    // Preserve the other section from an existing file.
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let other = if record == "baseline" {
        "current"
    } else {
        "baseline"
    };
    let other_vals = extract(&existing, other, "instrs_per_sec").zip(extract(
        &existing,
        other,
        "messages_per_sec",
    ));

    let (base, cur) = if record == "baseline" {
        (Some((ips, mps)), other_vals)
    } else {
        (other_vals, Some((ips, mps)))
    };
    let speedup = match (base, cur) {
        (Some((bi, bm)), Some((ci, cm))) => format!(
            "  \"speedup\": {{\n    \"instrs_per_sec\": {:.2},\n    \"messages_per_sec\": {:.2}\n  }}",
            ci / bi,
            cm / bm
        ),
        _ => "  \"speedup\": null".to_string(),
    };
    let json = format!(
        "{{\n  \"bench\": \"dispatch\",\n  \"workload\": {{\n    \"single_site\": \"cell_churn({CHURN_ITERS}) + str_churn({STR_ITERS}), best of {REPS}\",\n    \"cross_site\": \"{WORKER_NODES} nodes x {CLIENTS_PER_NODE} sites streaming {MSGS_PER_CLIENT} msgs (sync every {BURST}) to one hub, ideal fabric, threaded\"\n  }},\n{},\n{},\n{}\n}}\n",
        section("baseline", base),
        section("current", cur),
        speedup
    );
    std::fs::write(path, &json).expect("write BENCH_dispatch.json");
    println!("recorded '{record}' in {path}");
}
