//! Content fingerprints for mobile code.
//!
//! Every [`WireGroup`](crate::wire::WireGroup) / [`WireObj`](crate::wire::WireObj)
//! image is identified by a stable 128-bit hash over its *canonical codec
//! bytes* (the exact `put_code` serialization — see
//! [`codec::code_bytes`](crate::codec::code_bytes)). Because the codec is
//! the hardware-independent form of the paper's byte-code, two sites
//! compiling or re-shipping the same class always agree on the digest, and
//! the digest of a received image can be re-derived locally to detect
//! tampering in transit.
//!
//! The hash is a from-scratch MurmurHash3 x64/128 (public domain
//! algorithm): non-cryptographic, but 128 bits of well-mixed output make
//! accidental collisions implausible for a code cache, and the trust story
//! does not rest on it — cached images are re-screened by the static
//! verifier at insertion time (see DESIGN.md §12).

use std::fmt;

/// A 128-bit content fingerprint of a code image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Digest(pub u128);

impl Digest {
    /// Encoded size on the wire, in bytes.
    pub const SIZE: usize = 16;

    /// Fingerprint a byte string.
    pub fn of(bytes: &[u8]) -> Digest {
        Digest(murmur3_x64_128(bytes, 0))
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

#[inline]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51afd7ed558ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ceb9fe1a85ec53);
    k ^= k >> 33;
    k
}

/// MurmurHash3 x64/128 over `data` with the given seed.
fn murmur3_x64_128(data: &[u8], seed: u64) -> u128 {
    const C1: u64 = 0x87c37b91114253d5;
    const C2: u64 = 0x4cf5ad432745937f;
    let mut h1 = seed;
    let mut h2 = seed;

    let mut chunks = data.chunks_exact(16);
    for chunk in &mut chunks {
        let mut k1 = u64::from_le_bytes(chunk[0..8].try_into().unwrap());
        let mut k2 = u64::from_le_bytes(chunk[8..16].try_into().unwrap());
        k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
        h1 = (h1 ^ k1)
            .rotate_left(27)
            .wrapping_add(h2)
            .wrapping_mul(5)
            .wrapping_add(0x52dce729);
        k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
        h2 = (h2 ^ k2)
            .rotate_left(31)
            .wrapping_add(h1)
            .wrapping_mul(5)
            .wrapping_add(0x38495ab5);
    }

    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut buf = [0u8; 16];
        buf[..tail.len()].copy_from_slice(tail);
        let mut k1 = u64::from_le_bytes(buf[0..8].try_into().unwrap());
        let mut k2 = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        if tail.len() > 8 {
            k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
            h2 ^= k2;
        }
        k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= data.len() as u64;
    h2 ^= data.len() as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    ((h2 as u128) << 64) | h1 as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_input_sensitive() {
        let a = Digest::of(b"def Adder(x, r) = r![x + 40]");
        let b = Digest::of(b"def Adder(x, r) = r![x + 40]");
        let c = Digest::of(b"def Adder(x, r) = r![x + 41]");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, Digest::of(b""));
    }

    #[test]
    fn every_tail_length_hashes_distinctly() {
        // Exercise all chunk remainders (0..16) and check no trivial
        // prefix collisions among them.
        let data: Vec<u8> = (0u8..64).collect();
        let mut seen = std::collections::HashSet::new();
        for n in 0..=data.len() {
            assert!(seen.insert(Digest::of(&data[..n])), "collision at len {n}");
        }
    }

    #[test]
    fn single_bit_flips_change_the_digest() {
        let base: Vec<u8> = (0u8..48).map(|i| i.wrapping_mul(37)).collect();
        let d0 = Digest::of(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut m = base.clone();
                m[byte] ^= 1 << bit;
                assert_ne!(Digest::of(&m), d0, "byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn display_is_fixed_width_hex() {
        let s = format!("{}", Digest(0x1f));
        assert_eq!(s.len(), 32);
        assert!(s.ends_with("1f"));
        assert_eq!(format!("{}", Digest(0)), "0".repeat(32));
    }
}
