//! End-to-end tests of the `ditico` command-line tool: compile → image →
//! run → disassemble → network files, through the real binary.

use std::path::PathBuf;
use std::process::Command;

fn ditico() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ditico"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ditico-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mk tmpdir");
    dir
}

fn write(dir: &std::path::Path, name: &str, content: &str) -> PathBuf {
    let p = dir.join(name);
    std::fs::write(&p, content).expect("write");
    p
}

const CELL: &str = r#"
def Cell(self, v) =
    self ? { read(r) = r![v] | Cell[self, v], write(u) = Cell[self, u] }
in new x (Cell[x, 9] | new z (x!read[z] | z?(w) = print(w)))
"#;

#[test]
fn check_run_compile_roundtrip() {
    let dir = tmpdir("roundtrip");
    let src = write(&dir, "cell.dity", CELL);

    let out = ditico().arg("check").arg(&src).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("ok ("));

    let out = ditico().arg("run").arg(&src).output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "9");

    let img = dir.join("cell.tyco");
    let out = ditico()
        .args([
            "compile",
            src.to_str().unwrap(),
            "-o",
            img.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(img.exists());

    // The image runs identically.
    let out = ditico().arg("run").arg(&img).output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "9");

    // And disassembles to assembly mentioning the class blocks.
    let out = ditico().arg("disasm").arg(&img).output().unwrap();
    assert!(out.status.success());
    let asm = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(asm.contains(".entry"), "{asm}");
    assert!(asm.contains("trmsg read"), "{asm}");
}

#[test]
fn asm_output_reassembles() {
    let dir = tmpdir("asm");
    let src = write(&dir, "p.dity", "print(40 + 2)");
    let out = ditico().arg("asm").arg(&src).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    let prog = tyco_vm::parse_asm(&text).expect("asm output reassembles");
    let mut m = tyco_vm::Machine::new(prog, tyco_vm::LoopbackPort::new("main"));
    m.run_to_quiescence(10_000).unwrap();
    assert_eq!(m.io, vec!["42".to_string()]);
}

#[test]
fn net_spec_runs_two_sites() {
    let dir = tmpdir("net");
    write(
        &dir,
        "server.dity",
        "def S(p) = p?{ val(x, r) = r![x + 1] | S[p] } in export new p in S[p]",
    );
    write(
        &dir,
        "client.dity",
        "import p from server in let y = p!val[41] in print(y)",
    );
    let spec = write(
        &dir,
        "demo.net",
        "# demo\ntopology nodes=2 fabric=virtual link=myrinet\nsite server server.dity\nsite client client.dity\n",
    );
    let out = ditico().arg("net").arg(&spec).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[client] 42"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("fabric packets"), "{stderr}");
}

#[test]
fn type_errors_fail_with_message() {
    let dir = tmpdir("typeerr");
    let src = write(&dir, "bad.dity", "new x (x![1] | x![true])");
    let out = ditico().arg("check").arg(&src).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("type error"), "{stderr}");
}

#[test]
fn unknown_command_and_usage() {
    let out = ditico().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let out = ditico().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage"));
}

#[test]
fn shell_subcommand_batch() {
    use std::io::Write as _;
    let mut child = ditico()
        .arg("shell")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"site m println(\"from shell\")\nrun\noutput m\nexit\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("from shell"));
}
