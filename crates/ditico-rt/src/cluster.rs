//! The cluster environment: nodes, sites, fabric and the two execution
//! modes (deterministic virtual-time and threaded real-time).
//!
//! This is the programmatic face of Fig. 2 of the paper: a static IP
//! topology of nodes, each running a pool of sites plus a TyCOd, with a
//! name service hosted on the first node(s) and sites communicating
//! point-to-point through the fabric. The TyCOi/TyCOsh user-level flow
//! ("users submit new programs for execution in a node") corresponds to
//! [`Cluster::add_site`].

use crate::chaos::{ChaosEvent, ChaosPlan, ChaosReport, ChaosState};
use crate::daemon::{CodeCacheStats, Daemon, DaemonStats, TermCounters, DEFAULT_CODE_CACHE};
use crate::fabric::{Fabric, FabricMode, LinkProfile};
use crate::failure::FailureMonitor;
use crate::nameservice::{NsShardMap, NsStats};
use crate::sched::{SchedConfig, SchedStats, Shared, SiteWake, Worker};
use crate::site::{RtIncoming, RtPort, Site, SiteInterface};
use crate::termination::{Snapshot, TerminationDetector};
use crate::transport::{Transport, TransportConfig, TransportReport};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use tyco_vm::codec::Packet;
use tyco_vm::stats::ExecStats;
use tyco_vm::word::{Identity, NodeId, SiteId};
use tyco_vm::{Program, VmError};

/// One node: its daemon, its sites, and the shared outgoing queue end
/// that new sites clone.
struct NodeCell {
    id: NodeId,
    daemon: Daemon,
    sites: Vec<Site>,
    out_tx: Sender<(SiteId, Packet)>,
    dead: bool,
}

/// Everything a finished run reports.
#[derive(Debug, Default)]
pub struct RunReport {
    /// I/O-port lines per site lexeme.
    pub outputs: HashMap<String, Vec<String>>,
    /// VM statistics per site lexeme.
    pub stats: HashMap<String, ExecStats>,
    /// Runtime errors per site lexeme.
    pub errors: Vec<(String, VmError)>,
    /// Final virtual time (deterministic mode; 0 otherwise).
    pub virtual_ns: u64,
    /// Fabric traffic.
    pub fabric_packets: u64,
    pub fabric_bytes: u64,
    /// Per-node daemon statistics.
    pub daemon_stats: Vec<DaemonStats>,
    /// True when the run ended with nothing runnable anywhere.
    pub quiescent: bool,
    /// Import requests still unresolved at the end.
    pub blocked_imports: usize,
    /// Probes the termination detector performed (threaded mode).
    pub detector_probes: u64,
    /// Total byte-code instructions executed across all sites.
    pub total_instrs: u64,
    /// Work-stealing scheduler counters (threaded mode; zero elsewhere).
    pub sched: SchedStats,
    /// Remote nodes considered dead at the end of a distributed run
    /// (heartbeat silence or exhausted reconnects).
    pub suspects: Vec<NodeId>,
    /// Wire-level counters (distributed runs only).
    pub transport: Option<TransportReport>,
    /// Runtime-thread failures survived during the run: a worker, site or
    /// daemon thread that panicked. The run completes and reports instead
    /// of aborting; each entry names what was lost.
    pub aborts: Vec<String>,
    /// Fault-injection tallies (`None` unless the run had a chaos plan
    /// installed). Every injected event — drop, duplicate, delay,
    /// partition block, kill, restart — is counted here.
    pub chaos: Option<ChaosReport>,
    /// Shard-map read failovers: lookups routed to a follower because the
    /// owning shard was suspected down (sharded name service only).
    pub ns_failovers: u64,
}

impl RunReport {
    /// Output lines of one site (empty slice if unknown).
    pub fn output(&self, lexeme: &str) -> &[String] {
        self.outputs.get(lexeme).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Summed VM statistics across sites.
    pub fn total_comm(&self) -> u64 {
        self.stats.values().map(|s| s.comm).sum()
    }

    /// Tree-shake counters summed across sites: `(shaken_packs,
    /// shake_bytes_saved)`. Zero unless the run used
    /// [`Cluster::set_shake`].
    pub fn shake_totals(&self) -> (u64, u64) {
        self.stats.values().fold((0, 0), |(p, b), s| {
            (p + s.shaken_packs, b + s.shake_bytes_saved)
        })
    }

    /// Code-cache counters summed across every node's daemon.
    pub fn cache_totals(&self) -> CodeCacheStats {
        let mut t = CodeCacheStats::default();
        for d in &self.daemon_stats {
            t.hits += d.cache.hits;
            t.misses += d.cache.misses;
            t.coalesced += d.cache.coalesced;
            t.dedup_sends += d.cache.dedup_sends;
            t.bytes_saved += d.cache.bytes_saved;
            t.insertions += d.cache.insertions;
            t.evictions += d.cache.evictions;
            t.digest_mismatches += d.cache.digest_mismatches;
        }
        t
    }

    /// Name-service counters summed across every node's daemon: shard
    /// routing, lease-cache traffic, invalidations and replication.
    pub fn ns_totals(&self) -> NsStats {
        let mut t = NsStats::default();
        for d in &self.daemon_stats {
            t.add(&d.ns);
        }
        t
    }

    /// Duplicate/late fetch replies dropped by sites (idempotency guard).
    pub fn total_dup_fetch_replies(&self) -> u64 {
        self.stats.values().map(|s| s.dup_fetch_replies).sum()
    }

    pub fn total_shipped(&self) -> u64 {
        self.stats
            .values()
            .map(|s| s.msgs_sent + s.objs_sent + s.fetches)
            .sum()
    }
}

/// Limits for a deterministic run.
#[derive(Debug, Clone, Copy)]
pub struct RunLimits {
    /// Stop after this many byte-code instructions (across all sites).
    pub max_instrs: u64,
    /// Instructions per site slice (context-switch granularity between
    /// sites in the deterministic scheduler).
    pub fuel_per_slice: u64,
    /// When the deterministic loop goes idle and advances virtual time
    /// to the next due event, overshoot the target by this much so a
    /// whole *wave* of nearby deliveries lands in one advance. 0 (the
    /// default) advances exactly event-by-event; large fan-out scenarios
    /// (100k+ sites) set ~1ms to avoid O(events × sites) idle rounds.
    /// Purely a batching knob: deliveries stay FIFO per link and the
    /// schedule stays deterministic for a given value.
    pub idle_advance_ns: u64,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            max_instrs: 100_000_000,
            fuel_per_slice: 4096,
            idle_advance_ns: 0,
        }
    }
}

/// A DiTyCO cluster.
pub struct Cluster {
    fabric: Fabric,
    mode: FabricMode,
    nodes: Vec<NodeCell>,
    term: Arc<TermCounters>,
    ns_replicas: usize,
    ns_primary: Arc<AtomicUsize>,
    site_lexemes: Vec<String>,
    /// Heartbeat cadence in scheduler rounds (deterministic mode);
    /// `None` disables heartbeats.
    pub heartbeat_every: Option<u64>,
    /// Staleness threshold for the failure monitor, in heartbeat periods.
    pub stale_periods: u64,
    /// Worker-pool configuration for threaded runs (M:N scheduler).
    pub sched: SchedConfig,
    /// Per-node code-cache capacity in images (0 disables caching,
    /// wire-level dedup and fetch coalescing).
    code_cache: usize,
    /// Whether sites package shipped code tree-shaken
    /// (`tyco_vm::wire::pack_shaken`).
    shake: bool,
    /// Installed fault-injection plan (see [`Cluster::set_chaos`]).
    chaos: Option<Arc<ChaosState>>,
    /// Ring size of the sharded name service (0 = centralized).
    ns_shards: usize,
    /// The shared shard map when sharding is on: consistent-hash
    /// ownership plus the live down-set routing reads to followers.
    shard_map: Option<Arc<NsShardMap>>,
    /// Modeled per-request resolver cost at name-service hosts (clock
    /// ns; 0 = instantaneous). See [`Cluster::set_ns_service`].
    ns_service_ns: u64,
}

impl Cluster {
    /// A cluster with the given fabric mode and default link profile.
    /// `ns_replicas` ≥ 1 name-service replicas are hosted on the first
    /// nodes added.
    pub fn new(mode: FabricMode, link: LinkProfile, ns_replicas: usize) -> Cluster {
        Cluster {
            fabric: Fabric::new(mode, link),
            mode,
            nodes: Vec::new(),
            term: Arc::new(TermCounters::default()),
            ns_replicas: ns_replicas.max(1),
            ns_primary: Arc::new(AtomicUsize::new(0)),
            site_lexemes: Vec::new(),
            heartbeat_every: None,
            stale_periods: 3,
            sched: SchedConfig::default(),
            code_cache: DEFAULT_CODE_CACHE,
            shake: false,
            chaos: None,
            ns_shards: 0,
            shard_map: None,
            ns_service_ns: 0,
        }
    }

    /// Switch the cluster to the **sharded** name service: the first
    /// `shards` nodes each own a consistent-hash partition of the export
    /// table, replicate it to their ring successor, and grant importing
    /// nodes `lease_ns`-TTL cached bindings (0 disables caching). Call
    /// before adding sites so registrations land in every shard's site
    /// table; existing nodes are retrofitted.
    pub fn set_ns_sharding(&mut self, shards: usize, lease_ns: u64) {
        let shards = shards.max(1);
        let map = Arc::new(NsShardMap::new(shards, lease_ns));
        self.ns_shards = shards;
        for cell in &mut self.nodes {
            cell.daemon.enable_ns_sharding(map.clone());
        }
        self.shard_map = Some(map);
    }

    /// The shard map when the sharded name service is on.
    pub fn shard_map(&self) -> Option<Arc<NsShardMap>> {
        self.shard_map.clone()
    }

    /// Model a per-request resolver cost at every name-service host:
    /// each `NsRegister`/`NsImport` occupies the serving daemon for
    /// `service_ns` of virtual time (0, the default, serves instantly).
    /// Meaningful in deterministic virtual-time runs, where it makes the
    /// centralized server's serial bind cost — the paper's bottleneck —
    /// visible in the makespan. Applies to existing and future nodes.
    pub fn set_ns_service(&mut self, service_ns: u64) {
        self.ns_service_ns = service_ns;
        for cell in &mut self.nodes {
            cell.daemon.set_ns_service_ns(service_ns);
        }
    }

    /// Set every node's code-cache capacity (existing and future nodes).
    pub fn set_code_cache(&mut self, capacity: usize) {
        self.code_cache = capacity;
        for cell in &mut self.nodes {
            cell.daemon.set_code_cache(capacity);
        }
    }

    /// The configured per-node code-cache capacity.
    pub fn code_cache(&self) -> usize {
        self.code_cache
    }

    /// Tree-shake shipped code on every site (existing and future ones).
    /// Off by default: shaken packets carry their own digests, so mixed
    /// fleets would split the receiving code caches.
    pub fn set_shake(&mut self, enabled: bool) {
        self.shake = enabled;
        for cell in &mut self.nodes {
            for site in &mut cell.sites {
                site.machine.set_shake(enabled);
            }
        }
    }

    /// Whether shipped code is tree-shaken.
    pub fn shake(&self) -> bool {
        self.shake
    }

    /// A single-node, ideal-fabric cluster (functional testing).
    pub fn local() -> Cluster {
        let mut c = Cluster::new(FabricMode::Ideal, LinkProfile::ideal(), 1);
        c.add_node();
        c
    }

    /// Override one link's profile.
    pub fn set_link(&self, a: NodeId, b: NodeId, profile: LinkProfile) {
        self.fabric.set_link(a, b, profile);
    }

    /// Add a node (an "IP node" of Fig. 2) and its TyCOd.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let (out_tx, out_rx) = unbounded();
        let fabric_rx = self.fabric.register_node(id);
        let ns_nodes: Vec<NodeId> = (0..self.ns_replicas as u32).map(NodeId).collect();
        let hosts_ns = (id.0 as usize) < self.ns_replicas;
        let mut daemon = Daemon::new(
            id,
            out_rx,
            fabric_rx,
            self.fabric.handle(),
            ns_nodes,
            self.ns_primary.clone(),
            hosts_ns,
            self.term.clone(),
        );
        daemon.set_code_cache(self.code_cache);
        if let Some(map) = &self.shard_map {
            daemon.enable_ns_sharding(map.clone());
        }
        daemon.set_ns_service_ns(self.ns_service_ns);
        // Deliveries into this node's fabric inbox wake its daemon thread.
        self.fabric.set_waker(id, daemon.waker().clone());
        self.nodes.push(NodeCell {
            id,
            daemon,
            sites: Vec::new(),
            out_tx,
            dead: false,
        });
        id
    }

    /// Create a site running `program` on `node`, under `lexeme`
    /// (the TyCOsh "submit a program" operation).
    pub fn add_site(&mut self, node: NodeId, lexeme: &str, program: Program) -> SiteId {
        self.add_site_with_interface(node, lexeme, program, SiteInterface::default())
    }

    /// Like [`add_site`](Cluster::add_site), with the site's statically
    /// inferred interface attached: its exports register with type stamps
    /// and its imports ship expectation stamps, so protocol mismatches
    /// between sites are refused at bind time by the name service.
    pub fn add_site_with_interface(
        &mut self,
        node: NodeId,
        lexeme: &str,
        program: Program,
        interface: SiteInterface,
    ) -> SiteId {
        let site_id = SiteId(self.site_lexemes.len() as u32);
        self.site_lexemes.push(lexeme.to_string());
        let identity = Identity {
            site: site_id,
            node,
        };
        // Register the site in every name-service host up front — the
        // paper: "site names are registered in a Network Name Service"
        // and "all sites know its location in advance". Centralized mode
        // hosts on the first `ns_replicas` nodes; sharded mode on every
        // ring node.
        for cell in self.nodes.iter_mut() {
            if let Some(ns) = &mut cell.daemon.ns {
                ns.register_site(lexeme, identity);
            }
        }
        let (in_tx, in_rx): (Sender<RtIncoming>, Receiver<RtIncoming>) = unbounded();
        let cell = &mut self.nodes[node.0 as usize];
        let mut port = RtPort::new(
            identity,
            lexeme.to_string(),
            cell.out_tx.clone(),
            in_rx,
            cell.daemon.waker().clone(),
            self.term.clone(),
        );
        port.set_interface(interface);
        let mut site = Site::new(lexeme, identity, program, port);
        site.machine.set_shake(self.shake);
        cell.daemon
            .attach_site(site_id, in_tx, SiteWake::Notify(site.waker.clone()));
        cell.sites.push(site);
        site_id
    }

    /// Compile source and add the site (convenience).
    pub fn add_site_src(
        &mut self,
        node: NodeId,
        lexeme: &str,
        src: &str,
    ) -> Result<SiteId, String> {
        let ast = tyco_syntax::parse_core(src).map_err(|e| e.to_string())?;
        let prog = tyco_vm::compile(&ast).map_err(|e| e.to_string())?;
        Ok(self.add_site(node, lexeme, prog))
    }

    /// Declare a site that lives on `node` in *another process* of a
    /// multi-process run. No VM is created here; the site's identity is
    /// registered in the local name-service replicas so imports of its
    /// exports resolve, and a [`SiteId`] is consumed so every process that
    /// builds the same topology in the same order assigns identical ids —
    /// the invariant the wire protocol relies on.
    pub fn add_remote_site(&mut self, lexeme: &str, node: NodeId) -> SiteId {
        let site_id = SiteId(self.site_lexemes.len() as u32);
        self.site_lexemes.push(lexeme.to_string());
        let identity = Identity {
            site: site_id,
            node,
        };
        for cell in self.nodes.iter_mut() {
            if let Some(ns) = &mut cell.daemon.ns {
                ns.register_site(lexeme, identity);
            }
        }
        site_id
    }

    /// Set the run-queue policy of every site (ablation A3).
    pub fn set_queue_policy(&mut self, policy: tyco_vm::QueuePolicy) {
        for cell in &mut self.nodes {
            for site in &mut cell.sites {
                site.machine.queue_policy = policy;
            }
        }
    }

    /// Kill a node: its traffic is dropped and its daemon and sites stop
    /// (failure injection for the §7 experiments).
    pub fn kill_node(&mut self, node: NodeId) {
        self.fabric.kill_node(node);
        if let Some(cell) = self.nodes.get_mut(node.0 as usize) {
            cell.dead = true;
        }
        // Sharded name service: route the dead owner's keys to its
        // follower at once, and re-issue imports parked at the corpse.
        if let Some(map) = self.shard_map.clone() {
            if map.mark_down(node) {
                self.resend_all_pending_imports();
            }
        }
    }

    /// Restart a killed node, modelling a daemon process bounce: fabric
    /// delivery resumes, sites pump again, but the node's TyCOd comes
    /// back *empty* — code cache cleared, parked and queued traffic lost
    /// (Mattern-compensated so termination still balances), heartbeat
    /// history reset. In-flight shipments to the node converge again via
    /// the daemon's bounded NeedCode refill retries.
    pub fn restart_node(&mut self, node: NodeId) {
        self.fabric.revive_node(node);
        if let Some(cell) = self.nodes.get_mut(node.0 as usize) {
            cell.dead = false;
            cell.daemon.simulate_restart();
        }
        // A healed owner serves its shard again. Writes it missed arrive
        // via the follower's symmetric replication stream.
        if let Some(map) = &self.shard_map {
            map.mark_up(node);
        }
    }

    /// Re-issue every live site's unresolved imports: they may be parked
    /// at a node that just died or changed shard role.
    fn resend_all_pending_imports(&mut self) {
        for cell in &mut self.nodes {
            if cell.dead {
                continue;
            }
            for site in &mut cell.sites {
                site.machine.port.resend_pending_imports();
            }
        }
    }

    /// Install a seeded fault-injection plan on the cluster's fabric.
    /// Every packet crossing a node boundary then rolls for a fate
    /// (drop / duplicate / delay within the link's profile) from a
    /// deterministic per-edge stream, and the plan's timed events
    /// (partition, heal, kill, restart) fire as virtual or wall time
    /// passes them. Same seed + same plan ⇒ same injected schedule.
    pub fn set_chaos(&mut self, plan: ChaosPlan) -> Result<(), String> {
        plan.validate()?;
        let st = ChaosState::new(plan, self.term.clone());
        self.fabric.set_chaos(Some(st.clone()));
        self.chaos = Some(st);
        Ok(())
    }

    /// Fire every chaos event due at `now_ns`, acting on the ones that
    /// need the cluster (kill/restart); partitions and heals were already
    /// applied inside the chaos state.
    fn apply_chaos_due(&mut self, now_ns: u64) {
        let Some(ch) = self.chaos.clone() else {
            return;
        };
        for ev in ch.apply_due(now_ns) {
            match ev {
                ChaosEvent::KillNode(n) => self.kill_node(n),
                ChaosEvent::RestartNode(n) => self.restart_node(n),
                ChaosEvent::Partition { .. } | ChaosEvent::Heal => {}
            }
        }
    }

    /// The current name-service primary node.
    pub fn ns_primary_node(&self) -> NodeId {
        NodeId(self.ns_primary.load(Ordering::Relaxed) as u32 % self.ns_replicas.max(1) as u32)
    }

    /// One heartbeat round: beacons from live nodes, observation from a
    /// live replica's view, and failover when the primary is suspected.
    fn heartbeat_cycle(&mut self, monitor: &mut FailureMonitor, hb_round: u64) {
        for cell in &mut self.nodes {
            if !cell.dead {
                cell.daemon.send_heartbeat();
            }
        }
        let ns_hosts = self.ns_replicas.max(self.ns_shards);
        if let Some(obs) = self.nodes.iter().take(ns_hosts).find(|c| !c.dead) {
            let beats: Vec<(NodeId, u64)> = obs
                .daemon
                .heartbeats
                .iter()
                .map(|(n, s)| (*n, *s))
                .collect();
            for (n, s) in beats {
                monitor.observe(n, s, hb_round);
            }
        }
        if self.shard_map.is_some() {
            // Sharded mode: the shard map reacts to the monitor's
            // verdicts — a suspected owner's keys fail over to its ring
            // successor, a healed owner takes them back.
            for i in 0..self.ns_shards {
                let n = NodeId(i as u32);
                let dead = self.nodes.get(i).is_none_or(|c| c.dead);
                let down = dead || monitor.suspected(n, hb_round);
                let map = self.shard_map.clone().expect("sharded");
                if down {
                    if map.mark_down(n) {
                        // Imports parked at the suspect re-issue and
                        // route to the follower.
                        self.resend_all_pending_imports();
                    }
                } else {
                    map.mark_up(n);
                }
            }
            return;
        }
        let primary = self.ns_primary_node();
        if monitor.suspected(primary, hb_round) || self.nodes[primary.0 as usize].dead {
            self.failover_to_next_live_replica();
        }
    }

    fn failover_to_next_live_replica(&mut self) -> bool {
        let cur = self.ns_primary.load(Ordering::Relaxed);
        for step in 1..=self.ns_replicas {
            let cand = (cur + step) % self.ns_replicas;
            if !self.nodes[cand].dead {
                self.ns_primary.store(cand, Ordering::Relaxed);
                // Lost requests were parked at the dead primary; sites
                // re-issue them against the new primary.
                self.resend_all_pending_imports();
                return true;
            }
        }
        false
    }

    /// Run deterministically: round-robin pumping of daemons and sites,
    /// advancing the virtual clock when nothing is runnable.
    pub fn run_deterministic(&mut self, limits: RunLimits) -> RunReport {
        assert!(
            self.mode != FabricMode::RealTime,
            "deterministic runs require Ideal or Virtual fabric"
        );
        let mut round: u64 = 0;
        let mut hb_round: u64 = 0;
        let mut forced_hb: u64 = 0;
        let mut monitor = FailureMonitor::new(self.stale_periods);
        loop {
            round += 1;
            let mut progress = false;
            // Chaos events scheduled at or before the current virtual
            // time fire first, so a partition cuts this round's traffic
            // and a restart's daemon is pumpable this round.
            self.apply_chaos_due(self.fabric.now_ns());
            // Heartbeats + failure detection (when enabled).
            if let Some(every) = self.heartbeat_every {
                if round.is_multiple_of(every) {
                    hb_round += 1;
                    self.heartbeat_cycle(&mut monitor, hb_round);
                }
            }
            // Lease TTLs and the modeled resolver run on the fabric's
            // virtual clock here.
            if self.shard_map.is_some() || self.ns_service_ns > 0 {
                let now = self.fabric.now_ns();
                for cell in &mut self.nodes {
                    cell.daemon.set_now_ns(now);
                }
            }
            for cell in &mut self.nodes {
                if !cell.dead {
                    progress |= cell.daemon.pump();
                }
            }
            let mut site_progress = false;
            for cell in &mut self.nodes {
                if cell.dead {
                    continue;
                }
                for site in &mut cell.sites {
                    site_progress |= site.pump(limits.fuel_per_slice);
                }
            }
            progress |= site_progress;
            if site_progress {
                forced_hb = 0;
            }
            if !progress {
                // Nothing runnable: advance virtual time to the next due
                // event — a fabric delivery or a scheduled chaos event,
                // whichever is earlier — optionally overshooting by
                // `idle_advance_ns` to land a whole wave at once.
                let mut next = self.fabric.next_event_ns();
                if let Some(c) = self.chaos.as_ref().and_then(|ch| ch.next_event_ns()) {
                    next = Some(next.map_or(c, |f| f.min(c)));
                }
                // A modeled resolver with a backlog finishes its current
                // request at a known clock time; jump there so queued
                // binds are always served.
                for cell in &self.nodes {
                    if cell.dead {
                        continue;
                    }
                    if let Some(d) = cell.daemon.ns_backlog_next_due() {
                        next = Some(next.map_or(d, |f| f.min(d)));
                    }
                }
                if let Some(t) = next {
                    self.fabric
                        .advance_to(t.saturating_add(limits.idle_advance_ns));
                    continue;
                }
                // A daemon waiting on a code refill gets its retry clock
                // ticked only on idle rounds like this one: each tick is
                // a unit of "nothing else happened", so the bounded
                // re-ask/give-up ladder runs the same way on every
                // fabric and never races real deliveries.
                let mut ticked = false;
                for cell in &mut self.nodes {
                    if !cell.dead && cell.daemon.has_pending_refills() {
                        cell.daemon.tick_refills();
                        ticked = true;
                    }
                }
                if ticked {
                    continue;
                }
                // Otherwise, when failure detection is on, keep the
                // heartbeat protocol alive for a bounded number of idle
                // cycles so a dead name-service primary is noticed and
                // failover (which re-injects imports) can happen.
                if self.heartbeat_every.is_some()
                    && forced_hb
                        < self.stale_periods + self.ns_replicas.max(self.ns_shards) as u64 + 2
                {
                    forced_hb += 1;
                    hb_round += 1;
                    self.heartbeat_cycle(&mut monitor, hb_round);
                    continue;
                }
                break;
            }
            let total: u64 = self
                .nodes
                .iter()
                .flat_map(|c| &c.sites)
                .map(|s| s.machine.stats.instrs)
                .sum();
            if total > limits.max_instrs {
                break;
            }
        }
        let mut report = self.report(0);
        // Surface the failure monitor's verdict like distributed runs do:
        // a node that stopped beaconing (killed and never restarted) is
        // reported suspected. Only meaningful when the deterministic
        // heartbeat protocol ran at all.
        if self.heartbeat_every.is_some() && hb_round > 0 {
            let known: Vec<NodeId> = (0..self.nodes.len() as u32).map(NodeId).collect();
            report.suspects = monitor.suspects(&known, hb_round);
            report.suspects.sort_by_key(|n| n.0);
        }
        report
    }

    /// Run with real threads: sites are multiplexed over a fixed worker
    /// pool by the M:N work-stealing scheduler (`self.sched`; default
    /// worker count is the available parallelism), daemons keep dedicated
    /// threads, the fabric runs its delivery thread, and termination
    /// detection runs on the caller's thread, woken by the scheduler's
    /// idle transitions. Consumes the cluster and returns the report.
    pub fn run_threaded(mut self, wall_limit: std::time::Duration) -> RunReport {
        assert!(
            self.mode != FabricMode::Virtual,
            "threaded runs require Ideal or RealTime fabric"
        );
        self.fabric.start();
        let stop = Arc::new(AtomicBool::new(false));
        let workers_n = self.sched.effective_workers();
        let slice_fuel = self.sched.slice_fuel;

        // Flatten nodes into daemons + a site pool, remembering which
        // daemon owns each site so its delivery wakeup can be rebound to
        // the scheduler's readiness protocol.
        let mut daemons: Vec<(Daemon, bool)> = Vec::new();
        let mut sites: Vec<Site> = Vec::new();
        let mut owner_of_slot: Vec<usize> = Vec::new();
        for cell in self.nodes.drain(..) {
            let NodeCell {
                daemon,
                sites: node_sites,
                dead,
                ..
            } = cell;
            let di = daemons.len();
            daemons.push((daemon, dead));
            for site in node_sites {
                owner_of_slot.push(di);
                sites.push(site);
            }
        }
        let slot_ids: Vec<SiteId> = sites.iter().map(|s| s.identity.site).collect();
        let shared = Shared::new(sites, workers_n);
        for (slot, (&di, id)) in owner_of_slot.iter().zip(&slot_ids).enumerate() {
            daemons[di]
                .0
                .set_site_waker(*id, SiteWake::Sched(shared.handle(slot as u32)));
        }

        let mut daemon_threads = Vec::new();
        for (mut daemon, dead) in daemons {
            if dead {
                continue;
            }
            let stop_d = stop.clone();
            daemon_threads.push(std::thread::spawn(move || {
                // Spin-then-park: while traffic flows, an empty pump
                // yields (cheap handoff on few cores); a sustained lull
                // parks on the daemon's waker — sites and the fabric
                // notify it when they hand it work, so an idle daemon
                // costs no scheduler quanta. The timeout only bounds
                // stop-flag latency.
                let t0d = std::time::Instant::now();
                let clocked = daemon.needs_clock();
                let mut lull = 0u32;
                while !stop_d.load(Ordering::Relaxed) {
                    // Lease TTLs run on the wall clock under threads.
                    if clocked {
                        daemon.set_now_ns(t0d.elapsed().as_nanos() as u64);
                    }
                    if daemon.pump() {
                        lull = 0;
                    } else {
                        lull += 1;
                        if lull > 2 {
                            daemon
                                .waker()
                                .wait_timeout(std::time::Duration::from_millis(1));
                            // One refill tick per parked millisecond: the
                            // bounded NeedCode re-ask/give-up ladder for
                            // shipments parked on a restarted (and thus
                            // cache-empty) peer.
                            if daemon.has_pending_refills() {
                                daemon.tick_refills();
                            }
                        } else {
                            std::thread::yield_now();
                        }
                    }
                }
                daemon
            }));
        }

        let mut worker_threads = Vec::new();
        for i in 0..workers_n {
            let worker = Worker::new(shared.clone(), i, slice_fuel);
            worker_threads.push(
                std::thread::Builder::new()
                    .name(format!("ditico-worker-{i}"))
                    .spawn(move || worker.run())
                    .expect("spawn worker"),
            );
        }

        // Termination detection on the environment thread, probing on the
        // scheduler's idle edges rather than a fixed poll quantum.
        let mut detector = TerminationDetector::new();
        let t0 = std::time::Instant::now();
        let probes;
        let detected;
        let chaos = self.chaos.clone();
        loop {
            // Chaos events fire against the wall clock here; kills and
            // restarts act at the fabric (traffic blackholed/revived) —
            // the daemons themselves are owned by their threads.
            if let Some(ch) = &chaos {
                for ev in ch.apply_due(t0.elapsed().as_nanos() as u64) {
                    match ev {
                        ChaosEvent::KillNode(n) => {
                            self.fabric.kill_node(n);
                            if let Some(m) = &self.shard_map {
                                m.mark_down(n);
                            }
                        }
                        ChaosEvent::RestartNode(n) => {
                            self.fabric.revive_node(n);
                            if let Some(m) = &self.shard_map {
                                m.mark_up(n);
                            }
                        }
                        ChaosEvent::Partition { .. } | ChaosEvent::Heal => {}
                    }
                }
            }
            let any_active = shared.active_sites() > 0;
            let snap = Snapshot::take(&self.term, any_active);
            if detector.probe(snap) {
                probes = detector.probes;
                detected = true;
                break;
            }
            if t0.elapsed() > wall_limit {
                probes = detector.probes;
                detected = false;
                break;
            }
            if snap.quiet() {
                // First quiet wave. Once the system is truly terminated no
                // further idle edge will fire, so take the confirming
                // probe after a token wait instead of blocking on the
                // notify.
                shared
                    .idle
                    .wait_timeout(std::time::Duration::from_micros(200));
            } else {
                // Busy: sleep until the next idle edge; the timeout only
                // bounds the wall-limit check.
                shared
                    .idle
                    .wait_timeout(std::time::Duration::from_millis(20));
            }
        }
        stop.store(true, Ordering::Relaxed);
        shared.stop();

        let worker_aborts = join_workers(&shared, worker_threads);
        let mut report = RunReport {
            detector_probes: probes,
            sched: shared.stats(),
            aborts: worker_aborts,
            ..Default::default()
        };
        shared.for_each_site(|site| collect_site(&mut report, site));
        join_daemons(&mut report, daemon_threads);
        report.fabric_packets = self.fabric.stats.packets.load(Ordering::Relaxed);
        report.fabric_bytes = self.fabric.stats.bytes.load(Ordering::Relaxed);
        report.chaos = chaos.as_ref().map(|c| c.report());
        report.ns_failovers = self.shard_map.as_ref().map_or(0, |m| m.failovers());
        // Quiescent iff the detector confirmed termination (as opposed to
        // hitting the wall-clock limit).
        report.quiescent = detected;
        self.fabric.shutdown();
        report
    }

    /// Run as **one process of a multi-process cluster**: local nodes'
    /// sites execute on the M:N scheduler exactly as in
    /// [`run_threaded`](Cluster::run_threaded), but every daemon's fabric
    /// handle is replaced by the TCP transport's [`crate::NetHandle`] —
    /// node-local traffic stays on the in-process fabric, traffic for
    /// nodes hosted by peer processes is framed onto sockets, and inbound
    /// frames are verifier-screened and injected back into the local
    /// fabric. Every process must build the *same topology in the same
    /// order* (remote sites via [`add_remote_site`](Cluster::add_remote_site))
    /// so site/node ids agree across the wire.
    ///
    /// Termination is activity-based (Mattern counters are per-process and
    /// do not balance across the wire): a non-serve process exits once its
    /// scheduler is idle and the wire has been silent for
    /// `cfg.idle_grace`, or when every known remote node is suspected,
    /// departed or permanently unreachable; a serve process lingers until
    /// every peer that ever connected is gone. `wall_limit` backstops
    /// both.
    pub fn run_distributed(
        mut self,
        cfg: TransportConfig,
        wall_limit: std::time::Duration,
    ) -> Result<RunReport, String> {
        if self.mode != FabricMode::Ideal {
            return Err(
                "distributed runs require the Ideal fabric mode: link latency is supplied \
                 by the real network, not the simulator"
                    .to_string(),
            );
        }
        if cfg.local_nodes.is_empty() {
            return Err("distributed run with no local nodes".to_string());
        }
        let local: HashSet<NodeId> = cfg.local_nodes.iter().copied().collect();
        for n in &local {
            if n.0 as usize >= self.nodes.len() {
                return Err(format!(
                    "local node {} is outside the topology ({} nodes)",
                    n.0,
                    self.nodes.len()
                ));
            }
        }
        self.fabric.start();
        let serve = cfg.serve;
        let idle_grace = cfg.idle_grace;
        let dials_out = !cfg.peers.is_empty();
        // Fallback probe period for the environment loop. The loop is
        // event-driven — scheduler idle edges and transport topology
        // edges both ping `shared.idle` — so this only bounds how stale
        // the wire-counter stability check can get, and can be much
        // coarser than the old fixed 20ms poll.
        let env_tick = (idle_grace / 3).min(cfg.hb_period).clamp(
            std::time::Duration::from_millis(5),
            std::time::Duration::from_millis(100),
        );
        let mut transport = Transport::start(cfg, self.fabric.handle())?;
        if let Some(ch) = &self.chaos {
            // Chaos moves from the node-local fabric to the wire: an
            // inbound frame that already survived the sender's dice must
            // not be rolled again when the transport injects it locally.
            transport.set_chaos(Some(ch.clone()));
            self.fabric.set_chaos(None);
        }
        let net = transport.handle();

        let stop = Arc::new(AtomicBool::new(false));
        let workers_n = self.sched.effective_workers();
        let slice_fuel = self.sched.slice_fuel;

        // Flatten only the locally hosted nodes; cells for nodes that live
        // in peer processes are dropped (their sites were never created
        // here — see `add_remote_site`).
        let mut daemons: Vec<(Daemon, bool)> = Vec::new();
        let mut sites: Vec<Site> = Vec::new();
        let mut owner_of_slot: Vec<usize> = Vec::new();
        for cell in self.nodes.drain(..) {
            let NodeCell {
                id,
                daemon,
                sites: node_sites,
                dead,
                ..
            } = cell;
            if !local.contains(&id) {
                continue;
            }
            let mut daemon = daemon;
            daemon.set_fabric(Arc::new(net.clone()));
            let di = daemons.len();
            daemons.push((daemon, dead));
            for site in node_sites {
                owner_of_slot.push(di);
                sites.push(site);
            }
        }
        let slot_ids: Vec<SiteId> = sites.iter().map(|s| s.identity.site).collect();
        let shared = Shared::new(sites, workers_n);
        // One parking story: the transport pings the same Notify the
        // scheduler's idle edge does, so a route install, connection
        // death or dialer exhaustion wakes the environment loop at once
        // instead of being discovered a poll later.
        transport.set_activity_notify(shared.idle.clone());
        for (slot, (&di, id)) in owner_of_slot.iter().zip(&slot_ids).enumerate() {
            daemons[di]
                .0
                .set_site_waker(*id, SiteWake::Sched(shared.handle(slot as u32)));
        }

        let mut daemon_threads = Vec::new();
        for (mut daemon, dead) in daemons {
            if dead {
                continue;
            }
            let stop_d = stop.clone();
            daemon_threads.push(std::thread::spawn(move || {
                let t0d = std::time::Instant::now();
                let clocked = daemon.needs_clock();
                let mut lull = 0u32;
                while !stop_d.load(Ordering::Relaxed) {
                    // Lease TTLs run on the wall clock under threads.
                    if clocked {
                        daemon.set_now_ns(t0d.elapsed().as_nanos() as u64);
                    }
                    if daemon.pump() {
                        lull = 0;
                    } else {
                        lull += 1;
                        if lull > 2 {
                            daemon
                                .waker()
                                .wait_timeout(std::time::Duration::from_millis(1));
                            // One refill tick per parked millisecond: the
                            // bounded NeedCode re-ask/give-up ladder for
                            // shipments parked on a restarted (and thus
                            // cache-empty) peer.
                            if daemon.has_pending_refills() {
                                daemon.tick_refills();
                            }
                        } else {
                            std::thread::yield_now();
                        }
                    }
                }
                daemon
            }));
        }
        let mut worker_threads = Vec::new();
        for i in 0..workers_n {
            let worker = Worker::new(shared.clone(), i, slice_fuel);
            worker_threads.push(
                std::thread::Builder::new()
                    .name(format!("ditico-worker-{i}"))
                    .spawn(move || worker.run())
                    .expect("spawn worker"),
            );
        }

        // The environment loop: watch local scheduler activity and the
        // wire's data counters; exit per the policy in the doc comment.
        let t0 = std::time::Instant::now();
        let mut last_counters = transport.data_counters();
        let mut stable_since = std::time::Instant::now();
        let mut quiesced = false;
        let chaos = self.chaos.clone();
        loop {
            shared.idle.wait_timeout(env_tick);
            if let Some(ch) = &chaos {
                for ev in ch.apply_due(t0.elapsed().as_nanos() as u64) {
                    match ev {
                        // Kills/restarts act on locally hosted nodes'
                        // fabric endpoints; peers under chaos run their
                        // own plan against their own clock.
                        ChaosEvent::KillNode(n) => {
                            self.fabric.kill_node(n);
                            if let Some(m) = &self.shard_map {
                                m.mark_down(n);
                            }
                        }
                        ChaosEvent::RestartNode(n) => {
                            self.fabric.revive_node(n);
                            if let Some(m) = &self.shard_map {
                                m.mark_up(n);
                            }
                        }
                        ChaosEvent::Partition { .. } | ChaosEvent::Heal => {}
                    }
                }
            }
            if t0.elapsed() > wall_limit {
                break;
            }
            // The wire's failure verdicts steer shard-read failover the
            // same way the in-process monitor does.
            if let Some(m) = &self.shard_map {
                for n in transport.suspects() {
                    m.mark_down(n);
                }
            }
            let counters = transport.data_counters();
            if counters != last_counters {
                last_counters = counters;
                stable_since = std::time::Instant::now();
            }
            if !serve && transport.all_remotes_down() {
                // Every peer is dead, departed or unreachable: whatever
                // this process is computing or waiting for, the
                // distributed run is over. If that happened as a clean
                // cascade — local sites idle, nobody suspected, no
                // dialer exhausted — the peers simply finished and
                // left, which *is* the computation quiescing, arriving
                // over the wire instead of through the grace timer.
                // Anything else is a cut, reported with its suspects.
                quiesced = shared.active_sites() == 0
                    && transport.suspects().is_empty()
                    && transport.report().peers_failed == 0;
                break;
            }
            let local_idle = shared.active_sites() == 0;
            if !local_idle {
                stable_since = std::time::Instant::now();
                continue;
            }
            if serve {
                // A server's work arrives over the wire: it stays up
                // until at least one peer connected and all of them are
                // gone again (then the usual idle+grace applies).
                if transport.ever_connected()
                    && transport.peers_all_gone()
                    && stable_since.elapsed() >= idle_grace
                {
                    quiesced = true;
                    break;
                }
            } else {
                // Don't conclude "nothing left to do" while still dialing:
                // the handshake itself may deliver the work.
                if dials_out && !transport.ever_connected() {
                    continue;
                }
                if stable_since.elapsed() >= idle_grace {
                    quiesced = true;
                    break;
                }
            }
        }
        // Capture liveness verdicts *before* tearing the wire down.
        let suspects = transport.suspects();
        stop.store(true, Ordering::Relaxed);
        shared.stop();

        let worker_aborts = join_workers(&shared, worker_threads);
        let mut report = RunReport {
            sched: shared.stats(),
            aborts: worker_aborts,
            suspects,
            ..Default::default()
        };
        shared.for_each_site(|site| collect_site(&mut report, site));
        join_daemons(&mut report, daemon_threads);
        report.fabric_packets = self.fabric.stats.packets.load(Ordering::Relaxed);
        report.fabric_bytes = self.fabric.stats.bytes.load(Ordering::Relaxed);
        report.quiescent = quiesced;
        report.chaos = chaos.as_ref().map(|c| c.report());
        report.ns_failovers = self.shard_map.as_ref().map_or(0, |m| m.failovers());
        transport.shutdown();
        report.transport = Some(transport.report());
        self.fabric.shutdown();
        Ok(report)
    }

    /// The pre-scheduler execution mode: one OS thread per site (plus one
    /// per daemon), each spin-then-parking on its own [`crate::Notify`].
    /// Kept only as the measured baseline for `BENCH_scheduler.json` —
    /// it is the architecture the M:N scheduler replaces, and it falls
    /// over beyond a few hundred sites.
    pub fn run_threaded_thread_per_site(mut self, wall_limit: std::time::Duration) -> RunReport {
        assert!(
            self.mode != FabricMode::Virtual,
            "threaded runs require Ideal or RealTime fabric"
        );
        self.fabric.start();
        let stop = Arc::new(AtomicBool::new(false));
        let t0 = std::time::Instant::now();
        let mut site_threads = Vec::new();
        let mut site_thread_lexemes: Vec<String> = Vec::new();
        let mut daemon_threads = Vec::new();
        let mut active_flags: Vec<Arc<AtomicBool>> = Vec::new();
        let mut unbooted: Vec<Site> = Vec::new();

        for cell in self.nodes.drain(..) {
            let NodeCell {
                daemon,
                sites,
                dead,
                ..
            } = cell;
            if !dead {
                let stop_d = stop.clone();
                let mut daemon = daemon;
                daemon_threads.push(std::thread::spawn(move || {
                    let mut lull = 0u32;
                    while !stop_d.load(Ordering::Relaxed) {
                        if daemon.pump() {
                            lull = 0;
                        } else {
                            lull += 1;
                            if lull > 2 {
                                daemon
                                    .waker()
                                    .wait_timeout(std::time::Duration::from_millis(1));
                            } else {
                                std::thread::yield_now();
                            }
                        }
                    }
                    daemon
                }));
            }
            for mut site in sites {
                // Booting one thread per site is part of the strategy's
                // measurable cost: under heavy oversubscription the spawn
                // loop itself crawls, so it honours the wall limit instead
                // of wedging the run before the detector loop ever starts.
                if t0.elapsed() > wall_limit {
                    unbooted.push(site);
                    continue;
                }
                let flag = Arc::new(AtomicBool::new(true));
                active_flags.push(flag.clone());
                let stop_s = stop.clone();
                site_thread_lexemes.push(site.lexeme.clone());
                site_threads.push(
                    std::thread::Builder::new()
                        // Sites are shallow; small stacks keep thousands of
                        // threads mappable for the baseline sweep.
                        .stack_size(512 * 1024)
                        .spawn(move || {
                            let waker = site.waker.clone();
                            let mut lull = 0u32;
                            while !stop_s.load(Ordering::Relaxed) {
                                // Conservatively active for the whole pump:
                                // a slice consumes messages before reacting
                                // to them, and if this thread is
                                // descheduled in between, a stale `false`
                                // here would let the detector see balanced
                                // counters with no activity — a false
                                // termination.
                                flag.store(true, Ordering::SeqCst);
                                let ran = site.pump(8192);
                                let active = ran
                                    || site.machine.runnable()
                                    || site.machine.port.inbox_len() > 0;
                                flag.store(active, Ordering::Relaxed);
                                if ran {
                                    lull = 0;
                                } else {
                                    lull += 1;
                                    if lull > 2 && !active {
                                        waker.wait_timeout(std::time::Duration::from_millis(1));
                                    } else {
                                        std::thread::yield_now();
                                    }
                                }
                            }
                            site
                        })
                        .expect("spawn site thread"),
                );
            }
        }

        let mut detector = TerminationDetector::new();
        let probes;
        let detected;
        loop {
            std::thread::sleep(std::time::Duration::from_millis(1));
            let any_active = active_flags.iter().any(|f| f.load(Ordering::Relaxed));
            let snap = Snapshot::take(&self.term, any_active);
            if detector.probe(snap) {
                probes = detector.probes;
                detected = true;
                break;
            }
            if t0.elapsed() > wall_limit {
                probes = detector.probes;
                detected = false;
                break;
            }
        }
        stop.store(true, Ordering::Relaxed);

        let mut report = RunReport {
            detector_probes: probes,
            ..Default::default()
        };
        for (h, lexeme) in site_threads.into_iter().zip(site_thread_lexemes) {
            match h.join() {
                Ok(site) => collect_site(&mut report, &site),
                Err(_) => {
                    // The thread unwound with the site inside it: its
                    // output and statistics are gone, but the run still
                    // reports — the failure is surfaced, not fatal.
                    report.errors.push((
                        lexeme.clone(),
                        VmError::Internal("site thread panicked".to_string()),
                    ));
                    report.aborts.push(format!(
                        "site thread `{lexeme}` panicked; its results are lost"
                    ));
                }
            }
        }
        for site in &unbooted {
            collect_site(&mut report, site);
        }
        join_daemons(&mut report, daemon_threads);
        report.fabric_packets = self.fabric.stats.packets.load(Ordering::Relaxed);
        report.fabric_bytes = self.fabric.stats.bytes.load(Ordering::Relaxed);
        report.quiescent = detected;
        self.fabric.shutdown();
        report
    }

    /// Direct access to a site's I/O output after a deterministic run.
    pub fn output(&self, lexeme: &str) -> Vec<String> {
        for cell in &self.nodes {
            for site in &cell.sites {
                if site.lexeme == lexeme {
                    return site.machine.io.clone();
                }
            }
        }
        Vec::new()
    }

    /// A site's VM statistics after a deterministic run.
    pub fn site_stats(&self, lexeme: &str) -> Option<ExecStats> {
        for cell in &self.nodes {
            for site in &cell.sites {
                if site.lexeme == lexeme {
                    return Some(site.machine.stats.clone());
                }
            }
        }
        None
    }

    /// Current virtual time (deterministic Virtual mode).
    pub fn virtual_ns(&self) -> u64 {
        self.fabric.now_ns()
    }

    fn report(&self, detector_probes: u64) -> RunReport {
        let mut report = RunReport {
            detector_probes,
            virtual_ns: self.fabric.now_ns(),
            fabric_packets: self.fabric.stats.packets.load(Ordering::Relaxed),
            fabric_bytes: self.fabric.stats.bytes.load(Ordering::Relaxed),
            chaos: self.chaos.as_ref().map(|c| c.report()),
            ns_failovers: self.shard_map.as_ref().map_or(0, |m| m.failovers()),
            ..Default::default()
        };
        let mut quiescent = true;
        for cell in &self.nodes {
            debug_assert_eq!(cell.id.0 as usize, report.daemon_stats.len());
            report.daemon_stats.push(cell.daemon.stats);
            for site in &cell.sites {
                collect_site(&mut report, site);
                if site.machine.runnable() {
                    quiescent = false;
                }
            }
        }
        report.quiescent = quiescent;
        report
    }
}

/// Join the worker pool, surviving panicked workers. A worker that died
/// mid-slice abandoned its slot in state `RUNNING`; the site it was
/// pumping is marked errored and its inbox drained (the errored-site
/// discipline) so the run reports instead of aborting. Sound because this
/// runs after `Shared::stop`, when no live worker can re-enter the slot.
fn join_workers(shared: &Arc<Shared>, workers: Vec<std::thread::JoinHandle<()>>) -> Vec<String> {
    let mut aborts = Vec::new();
    for (i, h) in workers.into_iter().enumerate() {
        if h.join().is_err() {
            match shared.take_running(i) {
                Some(slot) => {
                    shared.mark_errored(
                        slot,
                        VmError::Internal(format!("worker thread {i} panicked mid-slice")),
                    );
                    aborts.push(format!(
                        "worker thread {i} panicked while pumping site slot {slot}; \
                         the site is reported errored"
                    ));
                }
                None => aborts.push(format!("worker thread {i} panicked between slices")),
            }
        }
    }
    aborts
}

/// Join daemon threads, surviving panics: a lost daemon costs its node's
/// statistics, not the run.
fn join_daemons(report: &mut RunReport, daemons: Vec<std::thread::JoinHandle<Daemon>>) {
    for h in daemons {
        match h.join() {
            Ok(daemon) => report.daemon_stats.push(daemon.stats),
            Err(_) => report
                .aborts
                .push("a daemon thread panicked; its node's statistics are lost".to_string()),
        }
    }
}

fn collect_site(report: &mut RunReport, site: &Site) {
    report
        .outputs
        .insert(site.lexeme.clone(), site.machine.io.clone());
    report
        .stats
        .insert(site.lexeme.clone(), site.machine.stats.clone());
    report.total_instrs += site.machine.stats.instrs;
    report.blocked_imports += site.machine.port.pending_imports();
    if let Some(e) = &site.error {
        report.errors.push((site.lexeme.clone(), e.clone()));
    }
}
